//! Differential testing: every plan the optimizer enumerates must compute
//! exactly the same result as the logical query on real instances whose
//! access structures were materialized from base data.
//!
//! This is the strongest soundness check we have — it exercises the whole
//! pipeline (constraint generation, chase, backchase, cleanup, reorder,
//! evaluation) against ground truth.

use universal_plans::chase::ChaseContext;
use universal_plans::prelude::*;

/// A context shared across the seeds/scales of one scenario: the chase
/// and backchase are cost-independent, so re-optimizing the same query
/// under refreshed statistics answers phase 1–2 from the memos.
fn context_for(catalog: &Catalog) -> ChaseContext {
    ChaseContext::new(catalog.all_constraints(), Default::default())
}

fn check_all_plans(catalog: &Catalog, q: &Query, instance: &Instance, ctx: &mut ChaseContext) {
    let ev = Evaluator::for_catalog(catalog, instance);
    let reference = ev.eval_query(q).unwrap();
    // A bounded enumeration keeps the suite fast; an incomplete backchase
    // is still sound, which is exactly what this test checks.
    let config = cb_optimizer::OptimizerConfig {
        backchase: universal_plans::chase::BackchaseConfig {
            max_visited: 400,
            ..Default::default()
        },
        cost_visited: true,
        ..Default::default()
    };
    let outcome = Optimizer::with_config(catalog, config)
        .optimize_in(ctx, q)
        .unwrap();
    assert!(!outcome.candidates.is_empty());
    for (i, c) in outcome.candidates.iter().enumerate() {
        let rows = ev
            .eval_query(&c.query)
            .unwrap_or_else(|e| panic!("plan #{i} failed to evaluate: {e}\nplan: {}", c.query));
        assert_eq!(
            rows, reference,
            "plan #{i} differs from Q\nplan: {}\nraw:  {}",
            c.query, c.raw
        );
    }
}

#[test]
fn projdept_plans_agree_across_seeds() {
    let mut ctx = context_for(&cb_catalog::scenarios::projdept::catalog());
    for seed in [1, 1234] {
        let mut catalog = cb_catalog::scenarios::projdept::catalog();
        let q = cb_catalog::scenarios::projdept::query();
        let mut instance = cb_engine::projdept_instance(&cb_engine::ProjDeptParams {
            n_depts: 12,
            projs_per_dept: 4,
            n_customers: 5,
            seed,
        });
        Materializer::new(&catalog)
            .materialize(&mut instance)
            .unwrap();
        *catalog.stats_mut() = cb_engine::collect_stats(&instance);
        check_all_plans(&catalog, &q, &instance, &mut ctx);
    }
}

#[test]
fn projdept_plans_agree_when_citibank_absent() {
    // Edge case: no project has the CitiBank customer — all plans
    // (including the non-failing lookup plan P3) must return the empty
    // set rather than fail.
    let mut catalog = cb_catalog::scenarios::projdept::catalog();
    let q = cb_catalog::scenarios::projdept::query();
    let mut instance = cb_engine::projdept_instance(&cb_engine::ProjDeptParams {
        n_depts: 6,
        projs_per_dept: 3,
        n_customers: 0, // generator: n_customers == 0 -> all CitiBank
        seed: 3,
    });
    // Rewrite every CustName so that CitiBank is genuinely absent.
    let projs = instance.get("Proj").unwrap().as_set().unwrap().clone();
    let rewritten: std::collections::BTreeSet<Value> = projs
        .into_iter()
        .map(|row| {
            let mut fields = match row {
                Value::Struct(f) => f,
                _ => unreachable!(),
            };
            fields.insert("CustName".into(), Value::str("Nobody"));
            Value::Struct(fields)
        })
        .collect();
    instance.set("Proj", Value::Set(rewritten));
    // Departments still reference the same project names, so the
    // constraints hold.
    Materializer::new(&catalog)
        .materialize(&mut instance)
        .unwrap();
    *catalog.stats_mut() = cb_engine::collect_stats(&instance);

    let ev = Evaluator::for_catalog(&catalog, &instance);
    assert!(ev.eval_query(&q).unwrap().is_empty());
    check_all_plans(&catalog, &q, &instance, &mut context_for(&catalog));
}

#[test]
fn relational_indexes_plans_agree() {
    let mut ctx = context_for(&cb_catalog::scenarios::relational_indexes::catalog());
    for (n, da, db, seed) in [(200, 20, 10, 1), (500, 8, 40, 9)] {
        let mut catalog = cb_catalog::scenarios::relational_indexes::catalog();
        let q = cb_catalog::scenarios::relational_indexes::query();
        let mut instance = cb_engine::rabc_instance(&cb_engine::RabcParams {
            n_rows: n,
            distinct_a: da,
            distinct_b: db,
            seed,
        });
        Materializer::new(&catalog)
            .materialize(&mut instance)
            .unwrap();
        *catalog.stats_mut() = cb_engine::collect_stats(&instance);
        check_all_plans(&catalog, &q, &instance, &mut ctx);
    }
}

#[test]
fn relational_views_plans_agree() {
    let mut ctx = context_for(&cb_catalog::scenarios::relational_views::catalog());
    for (frac, seed) in [(0.05, 2), (0.5, 5), (1.0, 8)] {
        let mut catalog = cb_catalog::scenarios::relational_views::catalog();
        let q = cb_catalog::scenarios::relational_views::query();
        let mut instance = cb_engine::join_instance(&cb_engine::JoinParams {
            n_r: 120,
            n_s: 120,
            match_fraction: frac,
            seed,
        });
        Materializer::new(&catalog)
            .materialize(&mut instance)
            .unwrap();
        *catalog.stats_mut() = cb_engine::collect_stats(&instance);
        check_all_plans(&catalog, &q, &instance, &mut ctx);
    }
}

#[test]
fn gmap_backed_plans_agree() {
    // A generalized gmap as the only access structure besides R itself.
    let mut catalog = Catalog::new();
    catalog.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int)]);
    catalog.add_direct_mapping("R");
    catalog
        .add_gmap(
            "G",
            cb_catalog::GmapDef {
                from: vec![Binding::iter("r", Path::root("R"))],
                where_: vec![],
                key: vec![("A".into(), Path::var("r").field("A"))],
                value: vec![("B".into(), Path::var("r").field("B"))],
            },
        )
        .unwrap();
    let q = parse_query("select struct(B = r.B) from R r where r.A = 3").unwrap();

    let mut instance = Instance::new();
    let rows: Vec<Value> = (0..60)
        .map(|i| Value::record([("A", Value::Int(i % 6)), ("B", Value::Int(i))]))
        .collect();
    instance.set("R", Value::set(rows));
    Materializer::new(&catalog)
        .materialize(&mut instance)
        .unwrap();
    *catalog.stats_mut() = cb_engine::collect_stats(&instance);
    let mut ctx = context_for(&catalog);
    check_all_plans(&catalog, &q, &instance, &mut ctx);

    // The gmap plan is actually among the candidates.
    let outcome = Optimizer::new(&catalog).optimize_in(&mut ctx, &q).unwrap();
    assert!(
        outcome
            .candidates
            .iter()
            .any(|c| c.query.to_string().contains('G')),
        "no gmap plan among candidates"
    );
}

#[test]
fn asr_backed_plans_agree() {
    // Access support relation over the ProjDept membership path.
    let mut catalog = cb_catalog::scenarios::projdept::catalog();
    catalog
        .add_access_support_relation("ASR", "depts", &["DProjs"])
        .unwrap();
    let q = parse_query("select struct(DN = d.DName, PN = s) from depts d, d.DProjs s").unwrap();
    let mut instance = cb_engine::projdept_instance(&cb_engine::ProjDeptParams {
        n_depts: 8,
        projs_per_dept: 3,
        n_customers: 4,
        seed: 21,
    });
    Materializer::new(&catalog)
        .materialize(&mut instance)
        .unwrap();
    *catalog.stats_mut() = cb_engine::collect_stats(&instance);
    let mut ctx = context_for(&catalog);
    check_all_plans(&catalog, &q, &instance, &mut ctx);
    let outcome = Optimizer::new(&catalog).optimize_in(&mut ctx, &q).unwrap();
    assert!(
        outcome
            .candidates
            .iter()
            .any(|c| c.query.to_string().contains("ASR")),
        "no ASR plan among candidates"
    );
}
