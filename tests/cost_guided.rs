//! Differential testing of the cost-guided branch-and-bound backchase:
//! `SearchStrategy::CostGuided` must find a best plan whose cost equals
//! the exhaustive enumeration's cheapest on every catalog scenario, while
//! costing strictly fewer subqueries wherever its admissible lower bound
//! bites — and the bound itself must under-estimate the cost of every
//! subquery the backchase visits.

use cb_optimizer::{CostBound, CostModel, Optimizer, OptimizerConfig, SearchStrategy};
use universal_plans::chase::{backchase_in, ChaseContext, MustRemainAnalysis};
use universal_plans::prelude::*;

/// Scenario catalogs with statistics, plus their logical query — every
/// built-in scenario, each under `D ∪ D'` and under `D'` alone.
fn scenarios() -> Vec<(String, Catalog, Query)> {
    use cb_catalog::scenarios::{projdept, relational_indexes, relational_views};
    let mut out = Vec::new();
    let mut c = projdept::catalog();
    projdept::stats_for(&mut c, 100, 10, 20);
    out.push(("projdept".to_string(), c, projdept::query()));
    let mut c = relational_indexes::catalog();
    relational_indexes::stats_for(&mut c, 10_000, 1000, 1000);
    out.push(("indexes".to_string(), c, relational_indexes::query()));
    let mut c = relational_views::catalog();
    relational_views::stats_for(&mut c, 10_000, 10_000, 10);
    out.push(("views".to_string(), c, relational_views::query()));
    // The mapping-only regimes of the completeness theorems.
    let with_bare: Vec<_> = out
        .iter()
        .map(|(n, c, q)| {
            (
                format!("{n} (mapping-only)"),
                c.without_semantic_constraints(),
                q.clone(),
            )
        })
        .collect();
    out.extend(with_bare);
    out
}

#[test]
fn cost_guided_best_cost_equals_exhaustive_on_every_scenario() {
    for (name, catalog, q) in scenarios() {
        let full = Optimizer::new(&catalog).optimize(&q).unwrap();
        let config = OptimizerConfig {
            strategy: SearchStrategy::CostGuided,
            ..Default::default()
        };
        let guided = Optimizer::with_config(&catalog, config)
            .optimize(&q)
            .unwrap();
        assert!(
            (guided.best.cost - full.best.cost).abs() < 1e-9,
            "{name}: guided best {} != exhaustive best {}\nguided: {}\nexhaustive: {}",
            guided.best.cost,
            full.best.cost,
            guided.best.query,
            full.best.query
        );
        assert!(guided.complete, "{name}: guided search incomplete");
        assert!(
            guided.nodes_visited <= full.nodes_visited,
            "{name}: guided visited {} > exhaustive {}",
            guided.nodes_visited,
            full.nodes_visited
        );
    }
}

#[test]
fn cost_guided_prunes_on_projdept_and_views() {
    // The acceptance bar: strictly fewer subqueries costed (with the
    // savings reported in the counters) on at least ProjDept and the
    // materialized-view scenario.
    for (name, catalog, q) in scenarios()
        .into_iter()
        .filter(|(n, _, _)| n == "projdept" || n == "views")
    {
        let full = Optimizer::new(&catalog).optimize(&q).unwrap();
        let config = OptimizerConfig {
            strategy: SearchStrategy::CostGuided,
            ..Default::default()
        };
        let guided = Optimizer::with_config(&catalog, config)
            .optimize(&q)
            .unwrap();
        assert!(
            guided.nodes_pruned_by_cost > 0,
            "{name}: no cost pruning (visited {})",
            guided.nodes_visited
        );
        assert!(
            guided.nodes_visited < full.nodes_visited,
            "{name}: guided visited {} not < exhaustive {}",
            guided.nodes_visited,
            full.nodes_visited
        );
        assert_eq!(full.nodes_pruned_by_cost, 0, "{name}");
    }
}

#[test]
fn cost_guided_plans_are_sound_on_real_data() {
    // Every candidate the guided search costs must still compute the
    // reference result — pruning steers the search, never the semantics.
    let mut catalog = cb_catalog::scenarios::projdept::catalog();
    let q = cb_catalog::scenarios::projdept::query();
    let mut instance = cb_engine::projdept_instance(&cb_engine::ProjDeptParams {
        n_depts: 12,
        projs_per_dept: 4,
        n_customers: 5,
        seed: 7,
    });
    Materializer::new(&catalog)
        .materialize(&mut instance)
        .unwrap();
    *catalog.stats_mut() = cb_engine::collect_stats(&instance);
    let config = OptimizerConfig {
        strategy: SearchStrategy::CostGuided,
        ..Default::default()
    };
    let outcome = Optimizer::with_config(&catalog, config)
        .optimize(&q)
        .unwrap();
    let ev = Evaluator::for_catalog(&catalog, &instance);
    let reference = ev.eval_query(&q).unwrap();
    assert!(!outcome.candidates.is_empty());
    for (i, c) in outcome.candidates.iter().enumerate() {
        let rows = ev
            .eval_query(&c.query)
            .unwrap_or_else(|e| panic!("plan #{i} failed: {e}\nplan: {}", c.query));
        assert_eq!(rows, reference, "plan #{i} differs: {}", c.query);
    }
}

#[test]
fn lower_bound_is_admissible_for_every_visited_subquery() {
    // The property behind the pruning: `lower_bound(q) <= plan_cost(q)`
    // for every subquery the (exhaustive) backchase visits, in every
    // scenario — the bound may steer, it must never overshoot.
    for (name, catalog, q) in scenarios() {
        let model = CostModel::for_catalog(&catalog);
        let mut ctx = ChaseContext::new(catalog.all_constraints(), Default::default());
        let u = ctx.chase(&q).query;
        let out = backchase_in(&mut ctx, &u, 0);
        assert!(out.complete, "{name}");
        for v in &out.visited {
            let lb = model.lower_bound(v);
            let cost = model.plan_cost(v);
            assert!(
                lb <= cost + 1e-9,
                "{name}: lower_bound = {lb} > plan_cost = {cost} for {v}"
            );
        }
    }
}

#[test]
fn must_remain_bound_multiplies_pruning_over_the_access_floor() {
    // The acceptance bar of the must-remain bound (ISSUE 5 / E16): on
    // ProjDept, the summed bound must prune at least 3x what the single
    // cheapest access floor pruned — at identical best cost on *every*
    // scenario, since both bounds are admissible.
    let mut projdept_pruned = (0usize, 0usize);
    for (name, catalog, q) in scenarios() {
        let full = Optimizer::new(&catalog).optimize(&q).unwrap();
        let must_cfg = OptimizerConfig {
            strategy: SearchStrategy::CostGuided,
            ..Default::default()
        };
        let floor_cfg = OptimizerConfig {
            bound: CostBound::AccessFloor,
            ..must_cfg.clone()
        };
        let floor = Optimizer::with_config(&catalog, floor_cfg)
            .optimize(&q)
            .unwrap();
        let must = Optimizer::with_config(&catalog, must_cfg)
            .optimize(&q)
            .unwrap();
        for (label, out) in [("access-floor", &floor), ("must-remain", &must)] {
            assert!(
                (out.best.cost - full.best.cost).abs() < 1e-9,
                "{name}: {label} best {} != exhaustive best {}",
                out.best.cost,
                full.best.cost
            );
        }
        assert!(
            must.nodes_pruned_by_cost >= floor.nodes_pruned_by_cost,
            "{name}: must-remain pruned {} < access-floor {}",
            must.nodes_pruned_by_cost,
            floor.nodes_pruned_by_cost
        );
        if name == "projdept" {
            projdept_pruned = (floor.nodes_pruned_by_cost, must.nodes_pruned_by_cost);
        }
    }
    assert!(
        projdept_pruned.1 >= 3 * projdept_pruned.0.max(1),
        "projdept: must-remain pruned {} < 3x access-floor pruned {}",
        projdept_pruned.1,
        projdept_pruned.0
    );
}

#[test]
fn must_remain_core_survives_into_every_plan() {
    // What the analysis claims ("these bindings appear in every
    // equivalence-preserving plan") checked against what the exhaustive
    // enumeration actually produces, on every scenario.
    for (name, catalog, q) in scenarios() {
        let full = Optimizer::new(&catalog).optimize(&q).unwrap();
        let mut analysis = MustRemainAnalysis::new(&full.universal);
        let pinned = analysis.must_remain(&Default::default());
        assert_eq!(
            full.must_remain,
            pinned.iter().cloned().collect::<Vec<_>>(),
            "{name}: outcome does not report the analysis's set"
        );
        for c in &full.candidates {
            for var in &pinned {
                assert!(
                    c.raw.from.iter().any(|b| &b.var == var),
                    "{name}: must-remain binding {var} missing from {}",
                    c.raw
                );
            }
        }
    }
}

#[test]
fn lower_bound_monotone_along_the_visited_lattice() {
    // Each visited node's bound must also under-estimate the *final*
    // cost of every visited node (they are all lattice descendants or
    // relatives reached by removals) once cleaned and reordered — the
    // end-to-end admissibility the branch-and-bound relies on, checked
    // against the costs the optimizer actually assigns.
    for (name, catalog, q) in scenarios() {
        let full = Optimizer::new(&catalog).optimize(&q).unwrap();
        let model = CostModel::for_catalog(&catalog);
        let root_bound = model.lower_bound(&full.universal);
        for c in &full.candidates {
            assert!(
                root_bound <= c.cost + 1e-9,
                "{name}: universal-plan bound {root_bound} > final cost {} of {}",
                c.cost,
                c.query
            );
        }
    }
}
