//! Integration coverage for the versioned plan format and the
//! prepared-plan service.
//!
//! Two properties carry the PR's acceptance bar:
//!
//! * **Round-trip fidelity** — `parse ∘ render` is the identity on
//!   [`PlanRepr`] (and `render ∘ parse` on the text), and a plan loaded
//!   back through [`PlanRepr::load_verified`] executes row-identically
//!   to the in-memory plan it was serialized from. Checked on all three
//!   builtin scenarios and, via proptest, on random generated catalogs
//!   (random access structures, statistics, and queries — the same
//!   generator family as `generated_scenarios.rs`).
//! * **Cache keying** — a [`PlanService`] hit requires exactly the key
//!   the plan depends on: identical re-preparation hits with zero
//!   phase-2 search, a genuine catalog hot-swap invalidates (a plan is
//!   never served across a `deps_resets` boundary), and a
//!   reordered-but-identical catalog neither resets the chase core nor
//!   misses the cache.

use proptest::prelude::*;

use cb_optimizer::{Optimizer, OptimizerConfig, PlanRepr, PlanService};
use universal_plans::catalog::RootStats;
use universal_plans::prelude::*;

/// The three builtin scenarios with materialized access structures and
/// instance-derived statistics, at paper-shaped (but test-sized) scales.
fn builtin_scenarios() -> Vec<(&'static str, Catalog, Instance, Query)> {
    let mut out = Vec::new();
    {
        let mut catalog = cb_catalog::scenarios::projdept::catalog();
        let mut instance = cb_engine::projdept_instance(&cb_engine::ProjDeptParams {
            n_depts: 10,
            projs_per_dept: 4,
            n_customers: 6,
            seed: 42,
        });
        Materializer::new(&catalog)
            .materialize(&mut instance)
            .unwrap();
        *catalog.stats_mut() = cb_engine::collect_stats(&instance);
        let q = cb_catalog::scenarios::projdept::query();
        out.push(("projdept", catalog, instance, q));
    }
    {
        let mut catalog = cb_catalog::scenarios::relational_indexes::catalog();
        let mut instance = cb_engine::rabc_instance(&cb_engine::RabcParams {
            n_rows: 300,
            distinct_a: 20,
            distinct_b: 15,
            seed: 7,
        });
        Materializer::new(&catalog)
            .materialize(&mut instance)
            .unwrap();
        *catalog.stats_mut() = cb_engine::collect_stats(&instance);
        let q = cb_catalog::scenarios::relational_indexes::query();
        out.push(("relational_indexes", catalog, instance, q));
    }
    {
        let mut catalog = cb_catalog::scenarios::relational_views::catalog();
        let mut instance = cb_engine::join_instance(&cb_engine::JoinParams {
            n_r: 120,
            n_s: 120,
            match_fraction: 0.1,
            seed: 11,
        });
        Materializer::new(&catalog)
            .materialize(&mut instance)
            .unwrap();
        *catalog.stats_mut() = cb_engine::collect_stats(&instance);
        let q = cb_catalog::scenarios::relational_views::query();
        out.push(("relational_views", catalog, instance, q));
    }
    out
}

/// Serialize, reparse, and reload one outcome; assert the fixed point
/// and row-identical execution against both the in-memory plan and the
/// logical query.
fn assert_round_trip(desc: &str, catalog: &Catalog, instance: &Instance, q: &Query) {
    let outcome = Optimizer::with_config(catalog, OptimizerConfig::default())
        .optimize(q)
        .unwrap();
    let repr = PlanRepr::from_outcome(&outcome);
    let text = repr.render();
    let parsed = PlanRepr::parse(&text).unwrap_or_else(|e| panic!("{desc}: reparse failed: {e}"));
    assert_eq!(parsed, repr, "{desc}: parse ∘ render must be the identity");
    assert_eq!(
        parsed.render(),
        text,
        "{desc}: render ∘ parse must be the identity"
    );
    let (loaded, _pipeline) = parsed
        .load_verified(catalog)
        .unwrap_or_else(|e| panic!("{desc}: load_verified rejected the plan it came from: {e}"));
    let ev = Evaluator::for_catalog(catalog, instance);
    let loaded_rows = ev.eval_query(&loaded).unwrap();
    let memory_rows = ev.eval_query(&outcome.best.query).unwrap();
    assert_eq!(
        loaded_rows, memory_rows,
        "{desc}: loaded plan differs from the in-memory plan\nloaded: {loaded}\nmemory: {}",
        outcome.best.query
    );
    let reference = ev.eval_query(q).unwrap();
    assert_eq!(
        loaded_rows, reference,
        "{desc}: loaded plan differs from the logical query\nloaded: {loaded}"
    );
}

#[test]
fn round_trip_executes_identically_on_builtin_scenarios() {
    for (name, catalog, instance, q) in builtin_scenarios() {
        assert_round_trip(name, &catalog, &instance, &q);
    }
}

/// One generated catalog + query, with a replayable description (the
/// vendored proptest stub does not shrink; the description is the
/// reproduction recipe).
#[derive(Debug, Clone)]
struct Scenario {
    catalog: Catalog,
    query: Query,
    desc: String,
}

/// A small R(A,B) ⋈ S(B,C) catalog with randomly chosen access
/// structures, statistics and query — the `generated_scenarios.rs`
/// family, sized for execution: `join_instance` supplies base data the
/// key constraint (R.A unique) genuinely satisfies.
#[allow(clippy::too_many_arguments)]
fn build_scenario(
    sa: bool,
    sb: bool,
    pk: bool,
    view_join: bool,
    view_s: bool,
    cards: Vec<u64>,
    distincts: Vec<u64>,
    fanout: f64,
    cond_mask: u8,
    out_mask: u8,
    self_join: bool,
) -> Scenario {
    let mut c = Catalog::new();
    c.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int)]);
    c.add_logical_relation("S", [("B", Type::Int), ("C", Type::Int)]);
    c.add_direct_mapping("R");
    c.add_direct_mapping("S");
    if sa {
        c.add_secondary_index("SA", "R", "A").unwrap();
    }
    if sb {
        c.add_secondary_index("SB", "S", "B").unwrap();
    }
    if pk {
        c.add_primary_index("IA", "R", "A").unwrap();
    }
    if view_join {
        c.add_materialized_view(
            "V",
            parse_query("select struct(A = r.A) from R r, S s where r.B = s.B").unwrap(),
        )
        .unwrap();
    }
    if view_s {
        c.add_materialized_view(
            "W",
            parse_query("select struct(B = s.B, C = s.C) from S s").unwrap(),
        )
        .unwrap();
    }

    let stats = c.stats_mut();
    for (i, root) in ["R", "S", "SA", "SB", "IA", "V", "W"].iter().enumerate() {
        let mut rs = RootStats::with_cardinality(cards[i % cards.len()]);
        match *root {
            "R" => {
                rs.distinct.insert("A".into(), distincts[0]);
                rs.distinct.insert("B".into(), distincts[1]);
            }
            "S" => {
                rs.distinct.insert("B".into(), distincts[2]);
                rs.distinct.insert("C".into(), distincts[3]);
            }
            "SA" | "SB" => {
                rs.avg_fanout.insert("".into(), fanout);
            }
            _ => {}
        }
        stats.set(*root, rs);
    }

    let mut from = vec!["R r", "S s"];
    let mut conds = vec!["r.B = s.B"];
    if cond_mask & 1 != 0 {
        conds.push("r.A = 1");
    }
    if cond_mask & 2 != 0 {
        conds.push("s.C = 2");
    }
    if cond_mask & 4 != 0 {
        conds.push("s.B = 3");
    }
    if self_join {
        from.push("R r2");
        conds.push("r2.A = r.A");
    }
    let mut outs = Vec::new();
    if out_mask & 1 != 0 {
        outs.push("OA = r.A");
    }
    if out_mask & 2 != 0 {
        outs.push("OC = s.C");
    }
    if out_mask & 4 != 0 {
        outs.push("OB = s.B");
    }
    if outs.is_empty() {
        outs.push("OA = r.A");
    }
    let text = format!(
        "select struct({}) from {} where {}",
        outs.join(", "),
        from.join(", "),
        conds.join(" and ")
    );
    let query = parse_query(&text).unwrap();
    let desc = format!(
        "structures(sa={sa}, sb={sb}, pk={pk}, V={view_join}, W={view_s}) \
         cards={cards:?} distincts={distincts:?} fanout={fanout} query=`{text}`"
    );
    Scenario {
        catalog: c,
        query,
        desc,
    }
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        (
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
        ),
        prop::collection::vec(prop::sample::select(vec![0u64, 1, 5, 120, 4_000]), 7),
        prop::collection::vec(prop::sample::select(vec![1u64, 3, 950]), 4),
        prop::sample::select(vec![0.5f64, 2.0, 40.0]),
        (0u8..8, 0u8..8, any::<bool>()),
    )
        .prop_map(
            |((sa, sb, pk, vj, vs), cards, distincts, fanout, (cond, out, selfj))| {
                build_scenario(
                    sa, sb, pk, vj, vs, cards, distincts, fanout, cond, out, selfj,
                )
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On every generated catalog: serialize → parse → serialize is a
    /// fixed point, and the reloaded, re-verified plan computes exactly
    /// the rows of the in-memory plan (and of the logical query) on a
    /// materialized instance.
    #[test]
    fn round_trip_executes_identically_on_random_catalogs(s in arb_scenario()) {
        let mut instance = cb_engine::join_instance(&cb_engine::JoinParams {
            n_r: 48,
            n_s: 36,
            match_fraction: 0.25,
            seed: 5,
        });
        Materializer::new(&s.catalog)
            .materialize(&mut instance)
            .unwrap();
        assert_round_trip(&s.desc, &s.catalog, &instance, &s.query);
    }
}

/// The R/S catalog used by the service-level cache tests, with the
/// secondary indexes added in a caller-chosen order (the constraint
/// *set* is identical either way) and fixed statistics.
fn rs_catalog(index_order: &[&str]) -> Catalog {
    let mut c = Catalog::new();
    c.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int)]);
    c.add_logical_relation("S", [("B", Type::Int), ("C", Type::Int)]);
    c.add_direct_mapping("R");
    c.add_direct_mapping("S");
    for name in index_order {
        match *name {
            "SA" => c.add_secondary_index("SA", "R", "A").unwrap(),
            "SB" => c.add_secondary_index("SB", "S", "B").unwrap(),
            other => panic!("unknown index {other}"),
        };
    }
    let stats = c.stats_mut();
    let mut r = RootStats::with_cardinality(400);
    r.distinct.insert("A".into(), 40);
    r.distinct.insert("B".into(), 20);
    stats.set("R", r);
    let mut s = RootStats::with_cardinality(300);
    s.distinct.insert("B".into(), 20);
    s.distinct.insert("C".into(), 30);
    stats.set("S", s);
    c
}

fn rs_query() -> Query {
    parse_query("select struct(OA = r.A, OC = s.C) from R r, S s where r.B = s.B and r.A = 1")
        .unwrap()
}

#[test]
fn cache_hits_on_identical_repreparation_and_misses_across_a_hot_swap() {
    let mut svc = PlanService::new(rs_catalog(&["SA", "SB"]), OptimizerConfig::default());
    let q = rs_query();

    let cold = svc.prepare(&q).unwrap();
    assert!(!cold.cache_hit);
    assert!(cold.nodes_visited > 0);
    let warm = svc.prepare(&q).unwrap();
    assert!(warm.cache_hit, "identical re-preparation must hit");
    assert_eq!(warm.nodes_visited, 0, "a hit must skip phase-2 search");
    assert_eq!(warm.plan.outcome.best.query, cold.plan.outcome.best.query);

    // A genuinely different constraint theory (SB dropped) resets the
    // chase core; the cached plan must not survive that boundary.
    svc.swap_catalog(rs_catalog(&["SA"]));
    assert_eq!(
        svc.chase_stats().deps_resets,
        1,
        "dropping an index changes the theory — the core must reset"
    );
    assert_eq!(
        svc.cached_plans(),
        0,
        "no plan may be served across a deps_resets boundary"
    );
    assert!(svc.stats().invalidations >= 1);
    let re = svc.prepare(&q).unwrap();
    assert!(!re.cache_hit, "the swapped catalog must re-prepare");
    assert!(re.nodes_visited > 0);
}

#[test]
fn reordered_catalog_swap_keeps_chase_memos_and_cached_plans() {
    let mut svc = PlanService::new(rs_catalog(&["SA", "SB"]), OptimizerConfig::default());
    let q = rs_query();
    let cold = svc.prepare(&q).unwrap();
    assert!(!cold.cache_hit);

    // Same catalog, constraints registered in the opposite order: the
    // canonical fingerprint is order-insensitive, so the swap must keep
    // both the chase memos (no spurious reset) and the plan cache.
    svc.swap_catalog(rs_catalog(&["SB", "SA"]));
    assert_eq!(
        svc.chase_stats().deps_resets,
        0,
        "a reordered-but-identical catalog must not reset the chase core"
    );
    assert!(
        svc.chase_stats().reorder_resets_avoided >= 1,
        "the avoided reset must be counted"
    );
    assert_eq!(svc.stats().invalidations, 0);
    let warm = svc.prepare(&q).unwrap();
    assert!(warm.cache_hit, "the reordered catalog must still hit");
    assert_eq!(warm.nodes_visited, 0);
    assert_eq!(warm.plan.outcome.best.query, cold.plan.outcome.best.query);
}
