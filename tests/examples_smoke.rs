//! Smoke test: every example binary builds and runs to completion, so the
//! examples cannot silently rot.
//!
//! Examples are run at the release profile: the chase/backchase search they
//! exercise is too slow unoptimized, and the tier-1 pipeline
//! (`cargo build --release && cargo test -q`) has already warmed that cache.

use std::path::Path;
use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "projdept",
    "relational_indexes",
    "materialized_views",
    "physical_operators",
    "semantic_optimization",
];

#[test]
fn all_examples_run() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    for example in EXAMPLES {
        let output = Command::new(&cargo)
            .current_dir(manifest_dir)
            .args(["run", "--quiet", "--release", "--example", example])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example {example} failed with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}
