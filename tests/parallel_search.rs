//! The parallel, anytime plan search end to end: the work-sharing
//! frontier over the sharded chase core must be a pure *scheduling*
//! change — same best plan and cost at every worker count, on every
//! scenario — and the anytime budget must be a pure *latency* knob: an
//! expired search still returns a fully verified, executable,
//! result-correct incumbent (the universal plan itself when the budget
//! allows nothing else).

use std::time::Duration;

use cb_optimizer::{Optimizer, OptimizerConfig, SearchStrategy};
use universal_plans::chase::SearchBudget;
use universal_plans::prelude::*;

/// Scenario catalogs with statistics, plus their logical query — every
/// built-in scenario, each under `D ∪ D'` and under `D'` alone.
fn scenarios() -> Vec<(String, Catalog, Query)> {
    use cb_catalog::scenarios::{projdept, relational_indexes, relational_views};
    let mut out = Vec::new();
    let mut c = projdept::catalog();
    projdept::stats_for(&mut c, 100, 10, 20);
    out.push(("projdept".to_string(), c, projdept::query()));
    let mut c = relational_indexes::catalog();
    relational_indexes::stats_for(&mut c, 10_000, 1000, 1000);
    out.push(("indexes".to_string(), c, relational_indexes::query()));
    let mut c = relational_views::catalog();
    relational_views::stats_for(&mut c, 10_000, 10_000, 10);
    out.push(("views".to_string(), c, relational_views::query()));
    let with_bare: Vec<_> = out
        .iter()
        .map(|(n, c, q)| {
            (
                format!("{n} (mapping-only)"),
                c.without_semantic_constraints(),
                q.clone(),
            )
        })
        .collect();
    out.extend(with_bare);
    out
}

fn config(strategy: SearchStrategy, threads: usize) -> OptimizerConfig {
    OptimizerConfig {
        strategy,
        threads,
        cost_visited: true,
        ..Default::default()
    }
}

#[test]
fn parallel_exhaustive_candidates_match_sequential_on_every_scenario() {
    // Exhaustive has no pruning, so the parallel frontier must produce
    // the *identical* candidate list — same plans, same costs, same
    // minimality flags — in the same (deterministically sorted) order.
    for (name, catalog, q) in scenarios() {
        let base = Optimizer::with_config(&catalog, config(SearchStrategy::Exhaustive, 1))
            .optimize(&q)
            .unwrap();
        for threads in [2usize, 4] {
            let par = Optimizer::with_config(&catalog, config(SearchStrategy::Exhaustive, threads))
                .optimize(&q)
                .unwrap();
            assert_eq!(
                par.candidates.len(),
                base.candidates.len(),
                "{name} @ {threads} threads"
            );
            for (a, b) in par.candidates.iter().zip(&base.candidates) {
                assert_eq!(
                    a.query.alpha_normalized(),
                    b.query.alpha_normalized(),
                    "{name} @ {threads} threads"
                );
                assert!((a.cost - b.cost).abs() < 1e-9, "{name} @ {threads} threads");
                assert_eq!(
                    a.minimal, b.minimal,
                    "{name} @ {threads} threads: {}",
                    a.query
                );
            }
            assert_eq!(par.nodes_visited, base.nodes_visited, "{name} @ {threads}");
            assert!(par.complete, "{name} @ {threads} threads");
        }
    }
}

#[test]
fn parallel_cost_guided_same_best_plan_at_every_thread_count() {
    // The determinism bar: branch-and-bound prunes only on a *strict*
    // incumbent comparison and the final ranking ties on canonical plan
    // keys, so the best plan — not just its cost — is a function of the
    // scenario, not of the schedule.
    for (name, catalog, q) in scenarios() {
        let full = Optimizer::with_config(&catalog, config(SearchStrategy::Exhaustive, 1))
            .optimize(&q)
            .unwrap();
        let base = Optimizer::with_config(&catalog, config(SearchStrategy::CostGuided, 1))
            .optimize(&q)
            .unwrap();
        for threads in [1usize, 2, 4] {
            let par = Optimizer::with_config(&catalog, config(SearchStrategy::CostGuided, threads))
                .optimize(&q)
                .unwrap();
            assert!(
                (par.best.cost - full.best.cost).abs() < 1e-9,
                "{name} @ {threads} threads: guided best {} != exhaustive best {}",
                par.best.cost,
                full.best.cost
            );
            assert_eq!(
                par.best.query.alpha_normalized(),
                base.best.query.alpha_normalized(),
                "{name} @ {threads} threads: best plan changed with the thread count"
            );
            assert!(par.complete, "{name} @ {threads} threads");
        }
    }
}

#[test]
fn zero_budget_returns_the_universal_plan() {
    // A budget of zero nodes still admits the root: the search returns
    // the universal plan itself — always equivalent by construction —
    // rather than failing.
    for (name, catalog, q) in scenarios() {
        for (strategy, threads) in [
            (SearchStrategy::Exhaustive, 1usize),
            (SearchStrategy::Exhaustive, 4),
            (SearchStrategy::CostGuided, 1),
            (SearchStrategy::CostGuided, 4),
        ] {
            let cfg = OptimizerConfig {
                search_budget: SearchBudget {
                    nodes: Some(0),
                    ..SearchBudget::default()
                },
                ..config(strategy, threads)
            };
            let out = Optimizer::with_config(&catalog, cfg).optimize(&q).unwrap();
            assert!(out.budget_expired, "{name} {strategy:?} @ {threads}");
            assert!(!out.complete, "{name} {strategy:?} @ {threads}");
            assert_eq!(
                out.best.raw.alpha_normalized(),
                out.universal.alpha_normalized(),
                "{name} {strategy:?} @ {threads}: best is not the universal plan"
            );
        }
    }
}

#[test]
fn expired_budget_incumbent_is_executable_and_result_correct() {
    // Mid-search expiry: whatever the incumbent is when the budget runs
    // out, it must execute and compute the reference result — anytime is
    // a latency SLO, never a correctness change.
    let mut catalog = cb_catalog::scenarios::projdept::catalog();
    let q = cb_catalog::scenarios::projdept::query();
    let mut instance = cb_engine::projdept_instance(&cb_engine::ProjDeptParams {
        n_depts: 12,
        projs_per_dept: 4,
        n_customers: 5,
        seed: 7,
    });
    Materializer::new(&catalog)
        .materialize(&mut instance)
        .unwrap();
    *catalog.stats_mut() = cb_engine::collect_stats(&instance);
    let ev = Evaluator::for_catalog(&catalog, &instance);
    let reference = ev.eval_query(&q).unwrap();
    // Sweep node budgets from "root only" past "search finished", and a
    // zero wall clock, at both worker counts.
    for threads in [1usize, 2] {
        let mut expired_at_least_once = false;
        for nodes in [0usize, 1, 2, 3, 5, 8, 1000] {
            let cfg = OptimizerConfig {
                search_budget: SearchBudget {
                    nodes: Some(nodes),
                    ..SearchBudget::default()
                },
                ..config(SearchStrategy::CostGuided, threads)
            };
            let out = Optimizer::with_config(&catalog, cfg).optimize(&q).unwrap();
            expired_at_least_once |= out.budget_expired;
            let rows = ev.eval_query(&out.best.query).unwrap_or_else(|e| {
                panic!(
                    "budget {nodes} @ {threads} threads: incumbent failed: {e}\nplan: {}",
                    out.best.query
                )
            });
            assert_eq!(
                rows, reference,
                "budget {nodes} @ {threads} threads: incumbent differs: {}",
                out.best.query
            );
        }
        assert!(expired_at_least_once, "@ {threads} threads");
        let wall_cfg = OptimizerConfig {
            search_budget: SearchBudget {
                wall_clock: Some(Duration::ZERO),
                ..SearchBudget::default()
            },
            ..config(SearchStrategy::CostGuided, threads)
        };
        let out = Optimizer::with_config(&catalog, wall_cfg)
            .optimize(&q)
            .unwrap();
        assert!(out.budget_expired, "@ {threads} threads");
        assert_eq!(ev.eval_query(&out.best.query).unwrap(), reference);
    }
}

#[test]
fn top_k_plans_are_distinct_and_cost_ordered() {
    for (name, catalog, q) in scenarios() {
        for threads in [1usize, 2] {
            let cfg = OptimizerConfig {
                k_best: 5,
                ..config(SearchStrategy::CostGuided, threads)
            };
            let out = Optimizer::with_config(&catalog, cfg).optimize(&q).unwrap();
            assert!(!out.top_k.is_empty(), "{name} @ {threads} threads");
            assert!(out.top_k.len() <= 5, "{name} @ {threads} threads");
            assert_eq!(
                out.top_k[0].query.alpha_normalized(),
                out.best.query.alpha_normalized(),
                "{name} @ {threads} threads: top-1 is not the best"
            );
            for w in out.top_k.windows(2) {
                assert!(
                    w[0].cost <= w[1].cost,
                    "{name} @ {threads} threads: top-k not cost-ordered"
                );
                assert_ne!(
                    w[0].query.alpha_normalized(),
                    w[1].query.alpha_normalized(),
                    "{name} @ {threads} threads: duplicate plan in top-k"
                );
            }
            // Mutually distinct, not just adjacent-distinct.
            let mut keys: Vec<_> = out
                .top_k
                .iter()
                .map(|c| c.query.alpha_normalized())
                .collect();
            keys.sort();
            keys.dedup();
            assert_eq!(keys.len(), out.top_k.len(), "{name} @ {threads} threads");
        }
    }
}

#[test]
fn incumbent_trace_descends_and_shard_stats_flow() {
    let (_, catalog, q) = scenarios().remove(0);
    for threads in [1usize, 4] {
        let out = Optimizer::with_config(&catalog, config(SearchStrategy::CostGuided, threads))
            .optimize(&q)
            .unwrap();
        assert!(
            !out.incumbent_trace.is_empty(),
            "@ {threads} threads: no incumbent improvements recorded"
        );
        for w in out.incumbent_trace.windows(2) {
            assert!(
                w[0].0 <= w[1].0,
                "@ {threads} threads: trace not time-ordered"
            );
            assert!(w[0].1 > w[1].1, "@ {threads} threads: trace not descending");
        }
        assert!(
            (out.incumbent_trace.last().unwrap().1 - out.best.cost).abs() < 1e-9,
            "@ {threads} threads: trace does not end at the best cost"
        );
        if threads > 1 {
            assert!(
                !out.shard_cache.is_empty(),
                "no shard stats at {threads} threads"
            );
            let total: u64 = out.shard_cache.iter().map(|s| s.hits() + s.misses()).sum();
            assert!(total > 0, "shards saw no traffic at {threads} threads");
        } else {
            assert!(out.shard_cache.is_empty(), "shard stats at 1 thread");
        }
    }
}
