//! Direct checks of the paper's §5 theory, beyond the E9 cross-check.

use std::collections::BTreeSet;

use universal_plans::chase::{
    backchase, chase, contained_in, examine_removal, BackchaseConfig, ChaseConfig, RemovalJudgement,
};
use universal_plans::prelude::*;

fn views_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    catalog.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int)]);
    catalog.add_logical_relation("S", [("B", Type::Int), ("C", Type::Int)]);
    catalog.add_direct_mapping("R");
    catalog.add_direct_mapping("S");
    catalog
        .add_materialized_view(
            "V",
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap(),
        )
        .unwrap();
    catalog
}

/// Theorem 1 (Bounding Chase): every minimal plan is a subquery of
/// chase(Q) — its bindings are a subset of U's (up to the removal-set
/// correspondence) and it is derivable via examine_removal.
#[test]
fn minimal_plans_are_subqueries_of_the_universal_plan() {
    let catalog = views_catalog();
    let q = parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
    let deps = catalog.all_constraints();
    let u = chase(&q, &deps, &ChaseConfig::default()).query;
    let u_vars: BTreeSet<String> = u.from.iter().map(|b| b.var.clone()).collect();
    let out = backchase(
        &u,
        &deps,
        &BackchaseConfig {
            max_visited: 0,
            ..Default::default()
        },
    );
    assert!(out.complete);
    for nf in &out.normal_forms {
        let nf_vars: BTreeSet<String> = nf.from.iter().map(|b| b.var.clone()).collect();
        assert!(
            nf_vars.is_subset(&u_vars),
            "normal form uses variables outside U: {nf}"
        );
        let removed: BTreeSet<String> = u_vars.difference(&nf_vars).cloned().collect();
        // The removal set reproduces the plan (up to the canonical
        // condition formatting).
        match examine_removal(&u, &deps, &removed, &ChaseConfig::default()) {
            RemovalJudgement::Valid(qq) => {
                assert_eq!(qq.alpha_normalized(), nf.alpha_normalized());
            }
            other => panic!("normal form not re-derivable: {other:?}"),
        }
    }
}

/// chase(Q) is "essentially unique": permuting the dependency order gives
/// alpha-equivalent universal plans for full dependency sets.
#[test]
fn chase_is_order_insensitive_for_full_dependencies() {
    let catalog = views_catalog();
    let q = parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
    let mut deps = catalog.all_constraints();
    let a = chase(&q, &deps, &ChaseConfig::default()).query;
    deps.reverse();
    let b = chase(&q, &deps, &ChaseConfig::default()).query;
    assert_eq!(a.from.len(), b.from.len());
    // Same binding-source multiset and congruent conditions.
    let srcs = |x: &Query| {
        let mut v: Vec<String> = x.from.iter().map(|b| b.src.to_string()).collect();
        v.sort();
        v
    };
    assert_eq!(srcs(&a), srcs(&b));
}

/// The universal plan is equivalent to the original query (chase
/// soundness at the containment level).
#[test]
fn universal_plan_is_equivalent_to_query() {
    let catalog = cb_catalog::scenarios::projdept::catalog();
    let q = cb_catalog::scenarios::projdept::query();
    let deps = catalog.all_constraints();
    let u = chase(&q, &deps, &ChaseConfig::default()).query;
    assert!(contained_in(&q, &u, &deps, &ChaseConfig::default()));
    assert!(contained_in(&u, &q, &deps, &ChaseConfig::default()));
}

/// Monotone pruning (paper §5): if a subquery of U is not equivalent,
/// none of its subqueries are. Verified exhaustively on the views
/// scenario.
#[test]
fn pruning_is_monotone_on_views_scenario() {
    let catalog = views_catalog();
    let q = parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
    let deps = catalog.all_constraints();
    let u = chase(&q, &deps, &ChaseConfig::default()).query;
    let vars: Vec<String> = u.from.iter().map(|b| b.var.clone()).collect();
    let n = vars.len();
    let cfg = ChaseConfig::default();
    let mut verdicts: Vec<(BTreeSet<String>, bool)> = Vec::new();
    for mask in 0..(1u32 << n) {
        let removed: BTreeSet<String> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| vars[i].clone())
            .collect();
        let ok = matches!(
            examine_removal(&u, &deps, &removed, &cfg),
            RemovalJudgement::Valid(_)
        );
        verdicts.push((removed, ok));
    }
    for (r1, ok1) in &verdicts {
        if *ok1 {
            continue;
        }
        // Not equivalent: every superset removal must also be invalid…
        for (r2, ok2) in &verdicts {
            if r2.is_superset(r1) && r2 != r1 {
                assert!(
                    !ok2,
                    "pruning unsound: removing {r1:?} invalid but {r2:?} valid"
                );
            }
        }
    }
}

/// Chasing an already-chased query is a no-op (fixpoint stability).
#[test]
fn chase_is_idempotent() {
    let catalog = cb_catalog::scenarios::projdept::catalog();
    let q = cb_catalog::scenarios::projdept::query();
    let deps = catalog.all_constraints();
    let cfg = ChaseConfig::default();
    let once = chase(&q, &deps, &cfg);
    assert!(once.complete);
    let twice = chase(&once.query, &deps, &cfg);
    assert!(
        twice.steps.is_empty(),
        "second chase fired: {:?}",
        twice.steps
    );
    assert_eq!(once.query, twice.query);
}
