//! The completeness theorems of paper §5, checked experimentally in their
//! own regime: PC queries over relations, physical schema = materialized
//! PC views only, no logical constraints, no index dictionaries.
//!
//! * **Theorem 1 (Bounding Chase)** — the chase with the (full) view
//!   constraints terminates, is polynomial in size, and every minimal
//!   plan is one of its subqueries (implicitly exercised by the
//!   enumeration).
//! * **Theorem 2 (Complete Backchase)** — the backchase normal forms are
//!   exactly the minimal equivalent subqueries of the universal plan; we
//!   verify against a brute-force enumeration of *all* binding subsets.

use std::collections::BTreeSet;

use universal_plans::chase::{
    backchase, chase, contained_in, equivalent, BackchaseConfig, ChaseConfig,
};
use universal_plans::prelude::*;

/// Brute force: for every subset of U's bindings, build the subquery the
/// same way the backchase does (via the public examine API) and test
/// equivalence; keep the minimal equivalent ones.
fn brute_force_minimal(u: &Query, deps: &[Dependency]) -> Vec<Query> {
    let vars: Vec<String> = u.from.iter().map(|b| b.var.clone()).collect();
    let n = vars.len();
    let cfg = ChaseConfig::default();
    let mut equivalents: Vec<(BTreeSet<String>, Query)> = Vec::new();
    for mask in 0..(1u32 << n) {
        let removed: BTreeSet<String> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| vars[i].clone())
            .collect();
        if let universal_plans::chase::RemovalJudgement::Valid(q) =
            universal_plans::chase::examine_removal(u, deps, &removed, &cfg)
        {
            equivalents.push((removed, q));
        }
    }
    // Minimal = no other equivalent subquery removes strictly more.
    let minimal: Vec<Query> = equivalents
        .iter()
        .filter(|(r1, _)| {
            !equivalents
                .iter()
                .any(|(r2, _)| r2.len() > r1.len() && r2.is_superset(r1))
        })
        .map(|(_, q)| q.clone())
        .collect();
    minimal
}

fn shapes(plans: &[Query]) -> BTreeSet<Vec<String>> {
    plans
        .iter()
        .map(|p| {
            let mut v: Vec<String> = p.from.iter().map(|b| b.src.to_string()).collect();
            v.sort();
            v
        })
        .collect()
}

/// One randomized scenario: a 3-ary join query plus 1–2 views over parts
/// of it.
fn scenario(seed: u64) -> (Catalog, Query) {
    let mut catalog = Catalog::new();
    catalog.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int)]);
    catalog.add_logical_relation("S", [("B", Type::Int), ("C", Type::Int)]);
    catalog.add_logical_relation("T", [("C", Type::Int), ("D", Type::Int)]);
    catalog.add_direct_mapping("R");
    catalog.add_direct_mapping("S");
    catalog.add_direct_mapping("T");
    // A deterministic little family of view sets.
    match seed % 4 {
        0 => {
            catalog
                .add_materialized_view(
                    "V1",
                    parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
                        .unwrap(),
                )
                .unwrap();
        }
        1 => {
            catalog
                .add_materialized_view(
                    "V1",
                    parse_query("select struct(B = s.B, D = t.D) from S s, T t where s.C = t.C")
                        .unwrap(),
                )
                .unwrap();
        }
        2 => {
            catalog
                .add_materialized_view(
                    "V1",
                    parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
                        .unwrap(),
                )
                .unwrap();
            catalog
                .add_materialized_view(
                    "V2",
                    parse_query("select struct(C = t.C, D = t.D) from T t").unwrap(),
                )
                .unwrap();
        }
        _ => {
            catalog
                .add_materialized_view(
                    "V1",
                    parse_query(
                        "select struct(A = r.A, D = t.D) from R r, S s, T t \
                         where r.B = s.B and s.C = t.C",
                    )
                    .unwrap(),
                )
                .unwrap();
        }
    }
    let q = parse_query(
        "select struct(A = r.A, D = t.D) from R r, S s, T t \
         where r.B = s.B and s.C = t.C",
    )
    .unwrap();
    (catalog, q)
}

#[test]
fn backchase_matches_brute_force_on_view_scenarios() {
    for seed in 0..4u64 {
        let (catalog, q) = scenario(seed);
        let deps = catalog.all_constraints();
        let chased = chase(&q, &deps, &ChaseConfig::default());
        assert!(
            chased.complete,
            "scenario {seed}: chase must terminate (full deps)"
        );
        let u = chased.query;

        let out = backchase(
            &u,
            &deps,
            &BackchaseConfig {
                max_visited: 0,
                ..Default::default()
            },
        );
        assert!(out.complete);
        let brute = brute_force_minimal(&u, &deps);

        assert_eq!(
            shapes(&out.normal_forms),
            shapes(&brute),
            "scenario {seed}: backchase vs brute force"
        );
        // Every normal form is equivalent to the original query.
        for nf in &out.normal_forms {
            assert!(
                equivalent(nf, &q, &deps, &ChaseConfig::default()),
                "scenario {seed}: NF not equivalent: {nf}"
            );
        }
    }
}

#[test]
fn chase_size_is_polynomial_for_view_constraints() {
    // Theorem 1: with k single-join views over a 2-ary join query, the
    // chase adds at most one binding per applicable view — linear growth.
    for k in 1..=6usize {
        let mut catalog = Catalog::new();
        catalog.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int)]);
        catalog.add_logical_relation("S", [("B", Type::Int), ("C", Type::Int)]);
        catalog.add_direct_mapping("R");
        catalog.add_direct_mapping("S");
        for i in 0..k {
            catalog
                .add_materialized_view(
                    &format!("V{i}"),
                    parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
                        .unwrap(),
                )
                .unwrap();
        }
        let q =
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
        let out = chase(&q, &catalog.all_constraints(), &ChaseConfig::default());
        assert!(out.complete);
        assert_eq!(out.query.from.len(), 2 + k, "one binding per view");
    }
}

#[test]
fn containment_is_a_preorder_on_samples() {
    let qs: Vec<Query> = [
        "select struct(A = r.A) from R r",
        "select struct(A = r.A) from R r, S s where r.B = s.B",
        "select struct(A = r.A) from R r, S s, T t where r.B = s.B and s.C = t.C",
        "select struct(A = r.A) from R r where r.A = 1",
    ]
    .iter()
    .map(|s| parse_query(s).unwrap())
    .collect();
    let cfg = ChaseConfig::default();
    for q in &qs {
        assert!(contained_in(q, q, &[], &cfg), "reflexivity: {q}");
    }
    for a in &qs {
        for b in &qs {
            for c in &qs {
                if contained_in(a, b, &[], &cfg) && contained_in(b, c, &[], &cfg) {
                    assert!(
                        contained_in(a, c, &[], &cfg),
                        "transitivity: {a} / {b} / {c}"
                    );
                }
            }
        }
    }
}
