//! The chaos differential harness: random fault schedules against the
//! resilience layer, end to end.
//!
//! Every failpoint site registered in [`cb_chase::faults::SITES`] sits on
//! a seam the multi-tenant service path exercises — shard locks, memo
//! checkouts, frontier pops, chase steps, containment proofs. This
//! harness generates schedules over those sites (panics, spurious
//! errors, memory-pressure signals, delays; counter-based and seeded
//! probabilistic triggers) and asserts the three contracts the
//! resilience layer owes its callers:
//!
//! 1. **Differential correctness** — the surviving best plan is the
//!    fault-free best plan, unless the degradation ladder's last rung
//!    was taken, in which case it is still a *verified* plan: the
//!    universal plan itself or a member of the fault-free candidate set.
//! 2. **No hangs** — every run under every schedule finishes inside a
//!    generous wall-clock guard; a worker death or a poisoned shard may
//!    degrade the search but never wedge it.
//! 3. **No silent swallowing** — every injected fault is acknowledged:
//!    `injected == recovered + reported` after every schedule.
//!
//! The vendored proptest stub does not shrink, so schedules are built
//! shrink-friendly by hand: each one is a small independent choice of
//! (site, action, trigger, seed) rendered to the `CB_FAULTS` syntax, and
//! every assertion message carries the spec string — replaying a failure
//! means pasting that spec into [`ScopedFaults::install`] in a unit
//! test.
//!
//! Panic faults are restricted to phase-2 sites: a panic in the phase-1
//! chase (before a universal plan exists) has nothing to degrade to and
//! legitimately propagates to the service layer, so `chase::step` gets
//! only the recoverable kinds here.

use std::time::{Duration, Instant};

use cb_optimizer::{Degradation, OptimizeOutcome, OptimizerConfig, PlanChoice, SearchStrategy};
use proptest::prelude::*;
use universal_plans::chase::faults::{self, ScopedFaults};
use universal_plans::chase::SearchBudget;
use universal_plans::prelude::*;

/// Per-run wall-clock ceiling. The scenarios finish in well under a
/// second fault-free; a schedule that pushes a run past this has wedged
/// the search, which is exactly what the harness exists to catch.
const HANG_GUARD: Duration = Duration::from_secs(120);

/// The sites a generated schedule may target with recoverable kinds
/// (err / mem / delay): everything the optimizer path can hit.
/// `exec::op` is excluded — the pipeline driver never runs during
/// `optimize`, and its typed-error surfacing has its own tests.
const RECOVERABLE_SITES: &[&str] = &[
    "chase::step",
    "context::contained_in",
    "context::implies",
    "shared::shard_lock",
    "shared::checkout",
    "shared::park",
    "shared::memo",
    "parallel::pop",
    "parallel::claim",
    "parallel::spawn",
    "parallel::visit",
];

/// The sites a generated schedule may panic at: every phase-2 seam. The
/// parallel sites unwind into a worker's `catch_unwind`; the context and
/// shared sites unwind either there or into the optimizer's phase-2
/// isolation, which degrades to the verified universal plan.
const PANIC_SITES: &[&str] = &[
    "context::contained_in",
    "context::implies",
    "shared::shard_lock",
    "shared::checkout",
    "shared::park",
    "shared::memo",
    "parallel::pop",
    "parallel::claim",
    "parallel::spawn",
    "parallel::visit",
];

/// Scenario catalogs with statistics plus their logical query — the
/// three built-in scenarios of the paper.
fn scenarios() -> Vec<(String, Catalog, Query)> {
    use cb_catalog::scenarios::{projdept, relational_indexes, relational_views};
    let mut out = Vec::new();
    let mut c = projdept::catalog();
    projdept::stats_for(&mut c, 100, 10, 20);
    out.push(("projdept".to_string(), c, projdept::query()));
    let mut c = relational_indexes::catalog();
    relational_indexes::stats_for(&mut c, 10_000, 1000, 1000);
    out.push(("indexes".to_string(), c, relational_indexes::query()));
    let mut c = relational_views::catalog();
    relational_views::stats_for(&mut c, 10_000, 10_000, 10);
    out.push(("views".to_string(), c, relational_views::query()));
    out
}

fn config(strategy: SearchStrategy, threads: usize) -> OptimizerConfig {
    OptimizerConfig {
        strategy,
        threads,
        cost_visited: true,
        ..Default::default()
    }
}

/// One generated `CB_FAULTS` schedule, already rendered to its spec
/// string (the string is the replay artifact).
fn arb_schedule() -> impl Strategy<Value = String> {
    let mut pool = Vec::new();
    for site in RECOVERABLE_SITES {
        for action in ["err", "mem", "delay:1"] {
            pool.push(format!("{site}={action}"));
        }
    }
    for site in PANIC_SITES {
        pool.push(format!("{site}=panic"));
    }
    (
        prop::sample::select(vec![1u64, 7, 42, 20260808]),
        prop::collection::vec(
            (
                prop::sample::select(pool),
                prop::sample::select(vec!["", "@1", "@3", "@9", "*2", "*5", "%0.2", "%0.7"]),
            ),
            1..=3,
        ),
    )
        .prop_map(|(seed, entries)| {
            let mut spec = format!("seed={seed}");
            for (entry, trigger) in entries {
                spec.push(';');
                spec.push_str(&entry);
                spec.push_str(trigger);
            }
            spec
        })
}

/// Did the ladder reach its last rung — the verified universal plan?
fn fell_back(out: &OptimizeOutcome) -> bool {
    out.degradations
        .iter()
        .any(|d| matches!(d, Degradation::UniversalFallback { .. }))
}

/// Is `best` a plan the fault-free run vouches for: the universal plan
/// itself, or (alpha-equivalent to) a member of the fault-free
/// candidate set?
fn is_vouched_plan(best: &PlanChoice, base: &OptimizeOutcome, universal: &Query) -> bool {
    best.raw.alpha_normalized() == universal.alpha_normalized()
        || base
            .candidates
            .iter()
            .any(|c| c.query.alpha_normalized() == best.query.alpha_normalized())
}

/// The harness core: run `optimize` under `spec` and assert the three
/// chaos contracts against the fault-free baseline `base` (same
/// strategy, one thread, no faults).
fn chaos_run(
    desc: &str,
    catalog: &Catalog,
    q: &Query,
    base: &OptimizeOutcome,
    strategy: SearchStrategy,
    threads: usize,
    spec: &str,
) {
    let guard = ScopedFaults::install(spec)
        .unwrap_or_else(|e| panic!("{desc}: generated spec `{spec}` invalid: {e:?}"));
    let t0 = Instant::now();
    let out = Optimizer::with_config(catalog, config(strategy, threads))
        .optimize(q)
        .unwrap_or_else(|e| panic!("{desc} under `{spec}`: optimize failed: {e}"));
    let elapsed = t0.elapsed();
    let fs = faults::stats();
    drop(guard);

    // Contract 2: no hangs.
    assert!(
        elapsed < HANG_GUARD,
        "{desc} under `{spec}`: took {elapsed:?} (hang guard {HANG_GUARD:?})"
    );
    // Contract 3: no silent swallowing.
    assert_eq!(
        fs.injected,
        fs.acknowledged(),
        "{desc} under `{spec}`: {} fault(s) injected but only {} acknowledged: {fs:?}",
        fs.injected,
        fs.acknowledged()
    );
    // Contract 1: the differential.
    if fell_back(&out) {
        assert!(
            is_vouched_plan(&out.best, base, &out.universal),
            "{desc} under `{spec}`: universal fallback returned an unvouched plan:\n{}",
            out.best.query
        );
        assert!(
            out.best.cost >= base.best.cost - 1e-9,
            "{desc} under `{spec}`: degraded best {} beat the fault-free best {}",
            out.best.cost,
            base.best.cost
        );
        assert!(
            !out.complete,
            "{desc} under `{spec}`: fell back yet complete"
        );
    } else {
        assert!(
            (out.best.cost - base.best.cost).abs() < 1e-9,
            "{desc} under `{spec}`: best cost {} != fault-free {}",
            out.best.cost,
            base.best.cost
        );
        assert_eq!(
            out.best.query.alpha_normalized(),
            base.best.query.alpha_normalized(),
            "{desc} under `{spec}`: best plan changed under faults"
        );
        // Exhaustive has no pruning: the surviving candidate list must
        // be the fault-free one, plan for plan.
        if matches!(strategy, SearchStrategy::Exhaustive) {
            assert_eq!(
                out.candidates.len(),
                base.candidates.len(),
                "{desc} under `{spec}`: candidate count changed under faults"
            );
            for (a, b) in out.candidates.iter().zip(&base.candidates) {
                assert_eq!(
                    a.query.alpha_normalized(),
                    b.query.alpha_normalized(),
                    "{desc} under `{spec}`: candidate list diverged"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline sweep: random schedules against the paper's three
    /// scenarios, both strategies, parallel worker pools.
    #[test]
    fn random_fault_schedules_never_change_the_surviving_best_plan(
        pick in (0usize..3, any::<bool>(), prop::sample::select(vec![2usize, 4])),
        spec in arb_schedule(),
    ) {
        let (idx, guided, threads) = pick;
        let (name, catalog, q) = scenarios().swap_remove(idx);
        let strategy = if guided { SearchStrategy::CostGuided } else { SearchStrategy::Exhaustive };
        let base = Optimizer::with_config(&catalog, config(strategy, 1))
            .optimize(&q)
            .unwrap();
        let desc = format!("{name} {strategy:?} @ {threads} threads");
        chaos_run(&desc, &catalog, &q, &base, strategy, threads, &spec);
    }
}

/// A generated catalog for the random-catalog sweep: R(A, B) ⋈ S(B, C)
/// with optional secondary indexes and an optional materialized join
/// view, random cardinalities, and a random selection mask.
fn build_catalog(
    sa: bool,
    sb: bool,
    view_join: bool,
    cond_mask: u8,
    cards: Vec<u64>,
) -> (Catalog, Query, String) {
    use universal_plans::catalog::RootStats;
    let mut c = Catalog::new();
    c.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int)]);
    c.add_logical_relation("S", [("B", Type::Int), ("C", Type::Int)]);
    c.add_direct_mapping("R");
    c.add_direct_mapping("S");
    if sa {
        c.add_secondary_index("SA", "R", "A").unwrap();
    }
    if sb {
        c.add_secondary_index("SB", "S", "B").unwrap();
    }
    if view_join {
        c.add_materialized_view(
            "V",
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap(),
        )
        .unwrap();
    }
    let stats = c.stats_mut();
    for (i, root) in ["R", "S", "SA", "SB", "V"].iter().enumerate() {
        stats.set(*root, RootStats::with_cardinality(cards[i % cards.len()]));
    }
    let mut conds = vec!["r.B = s.B"];
    if cond_mask & 1 != 0 {
        conds.push("r.A = 1");
    }
    if cond_mask & 2 != 0 {
        conds.push("s.C = 2");
    }
    let text = format!(
        "select struct(OA = r.A, OC = s.C) from R r, S s where {}",
        conds.join(" and ")
    );
    let query = parse_query(&text).unwrap();
    let desc = format!("catalog(sa={sa}, sb={sb}, V={view_join}) cards={cards:?} query=`{text}`");
    (c, query, desc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random catalogs under random schedules: the resilience layer is
    /// scenario-independent, not tuned to the three built-ins.
    #[test]
    fn random_catalogs_survive_random_schedules(
        shape in ((any::<bool>(), any::<bool>(), any::<bool>()), 0u8..4,
                  prop::collection::vec(prop::sample::select(vec![1u64, 50, 4_000]), 3)),
        spec in arb_schedule(),
    ) {
        let ((sa, sb, vj), cond_mask, cards) = shape;
        let (catalog, q, desc) = build_catalog(sa, sb, vj, cond_mask, cards);
        let base = Optimizer::with_config(&catalog, config(SearchStrategy::Exhaustive, 1))
            .optimize(&q)
            .unwrap();
        chaos_run(&desc, &catalog, &q, &base, SearchStrategy::Exhaustive, 2, &spec);
    }
}

/// Every registered failpoint site is reachable from a real workload:
/// arm an empty schedule (hit counting only, nothing fires) and drive
/// the optimizer plus the compiled pipeline; every site in
/// [`faults::SITES`] must record traffic. If a site were orphaned by a
/// refactor, a schedule targeting it would silently test nothing.
#[test]
fn every_failpoint_site_is_reachable_from_a_real_workload() {
    let mut catalog = cb_catalog::scenarios::projdept::catalog();
    let q = cb_catalog::scenarios::projdept::query();
    let mut instance = cb_engine::projdept_instance(&cb_engine::ProjDeptParams {
        n_depts: 6,
        projs_per_dept: 3,
        n_customers: 4,
        seed: 1,
    });
    Materializer::new(&catalog)
        .materialize(&mut instance)
        .unwrap();
    *catalog.stats_mut() = cb_engine::collect_stats(&instance);

    let guard = ScopedFaults::install("seed=1").unwrap();
    let out = Optimizer::with_config(&catalog, config(SearchStrategy::CostGuided, 4))
        .optimize(&q)
        .unwrap();
    let ev = Evaluator::for_catalog(&catalog, &instance);
    let pipeline = cb_engine::compile(&out.best.query, cb_engine::CompileOptions::default());
    let rows = cb_engine::execute(&ev, &pipeline).unwrap();
    assert_eq!(rows, ev.eval_query(&q).unwrap(), "best plan result differs");
    let fs = faults::stats();
    drop(guard);

    assert_eq!(fs.injected, 0, "empty schedule fired a fault: {fs:?}");
    for site in faults::SITES {
        assert!(
            fs.hits_by_site.get(site).copied().unwrap_or(0) > 0,
            "failpoint site `{site}` never hit by the workload: {:?}",
            fs.hits_by_site
        );
    }
}

/// One worker death among many is absorbed without any degradation: the
/// survivors re-claim the dead worker's work and the outcome is
/// bit-identical to the fault-free run.
#[test]
fn a_single_worker_death_is_absorbed_without_degradation() {
    let (_, catalog, q) = scenarios().swap_remove(0);
    let base = Optimizer::with_config(&catalog, config(SearchStrategy::Exhaustive, 1))
        .optimize(&q)
        .unwrap();
    let guard = ScopedFaults::install("parallel::pop=panic@4").unwrap();
    let out = Optimizer::with_config(&catalog, config(SearchStrategy::Exhaustive, 4))
        .optimize(&q)
        .unwrap();
    let fs = faults::stats();
    drop(guard);

    assert_eq!(fs.injected, 1, "{fs:?}");
    assert_eq!(fs.injected, fs.acknowledged(), "{fs:?}");
    assert_eq!(out.workers_died, 1);
    assert!(out.complete, "one death must not abort the search");
    assert!(
        !out.degradations
            .iter()
            .any(|d| matches!(d, Degradation::SequentialFallback { .. })),
        "one death among four workers is not a degradation: {:?}",
        out.degradations
    );
    assert_eq!(out.candidates.len(), base.candidates.len());
    assert_eq!(
        out.best.query.alpha_normalized(),
        base.best.query.alpha_normalized()
    );
}

/// The ladder composes rung by rung on one schedule: every spawn dies
/// (rung 2: sequential fallback), then the sequential rerun panics at
/// its first containment proof (rung 3: the verified universal plan).
#[test]
fn the_ladder_composes_rung_by_rung() {
    let (_, catalog, q) = scenarios().swap_remove(0);
    let guard =
        ScopedFaults::install("seed=3;parallel::spawn=panic;context::contained_in=panic").unwrap();
    let out = Optimizer::with_config(&catalog, config(SearchStrategy::Exhaustive, 4))
        .optimize(&q)
        .unwrap();
    let fs = faults::stats();
    drop(guard);

    assert_eq!(fs.injected, fs.acknowledged(), "{fs:?}");
    assert!(
        out.degradations
            .iter()
            .any(|d| matches!(d, Degradation::SequentialFallback { .. })),
        "rung 2 missing: {:?}",
        out.degradations
    );
    assert!(fell_back(&out), "rung 3 missing: {:?}", out.degradations);
    assert_eq!(
        out.best.raw.alpha_normalized(),
        out.universal.alpha_normalized(),
        "past the full ladder the answer is the universal plan"
    );
    assert!(!out.complete);
    let text = cb_optimizer::explain(&out);
    assert!(text.contains("reran sequentially"), "{text}");
    assert!(text.contains("phase-2 search aborted"), "{text}");
}

// ---------------------------------------------------------------------
// Budget-expiry edge cases: the anytime SLO interacting with parked
// checkouts, racing incumbent publication, and over-asked k_best.
// ---------------------------------------------------------------------

/// Wall-clock expiry while workers are asleep inside a memo checkout (a
/// delay fault holds them there): the search must still return a
/// verified incumbent promptly — expiry is checked outside the parked
/// wait, never wedged by it.
#[test]
fn wall_clock_expiry_during_parked_checkouts_still_returns_a_plan() {
    let (_, catalog, q) = scenarios().swap_remove(0);
    let base = Optimizer::with_config(&catalog, config(SearchStrategy::Exhaustive, 1))
        .optimize(&q)
        .unwrap();
    let guard = ScopedFaults::install("shared::checkout=delay:2").unwrap();
    let cfg = OptimizerConfig {
        search_budget: SearchBudget {
            wall_clock: Some(Duration::from_millis(5)),
            ..SearchBudget::default()
        },
        ..config(SearchStrategy::CostGuided, 4)
    };
    let t0 = Instant::now();
    let out = Optimizer::with_config(&catalog, cfg).optimize(&q).unwrap();
    let elapsed = t0.elapsed();
    let fs = faults::stats();
    drop(guard);

    assert!(elapsed < HANG_GUARD, "parked expiry took {elapsed:?}");
    assert_eq!(fs.injected, fs.acknowledged(), "{fs:?}");
    assert!(
        is_vouched_plan(&out.best, &base, &out.universal),
        "expired incumbent is unvouched: {}",
        out.best.query
    );
}

/// Wall-clock expiry racing incumbent publication, swept across tiny
/// budgets at several worker counts: whatever instant the budget
/// expires at, the returned best is a vouched plan and never an error.
#[test]
fn wall_clock_expiry_racing_incumbent_publication_is_benign() {
    let (_, catalog, q) = scenarios().swap_remove(1);
    let base = Optimizer::with_config(&catalog, config(SearchStrategy::CostGuided, 1))
        .optimize(&q)
        .unwrap();
    for threads in [1usize, 4] {
        for micros in [0u64, 50, 200, 1000] {
            let cfg = OptimizerConfig {
                search_budget: SearchBudget {
                    wall_clock: Some(Duration::from_micros(micros)),
                    ..SearchBudget::default()
                },
                ..config(SearchStrategy::CostGuided, threads)
            };
            let out = Optimizer::with_config(&catalog, cfg)
                .optimize(&q)
                .unwrap_or_else(|e| panic!("{micros}µs @ {threads} threads: {e}"));
            assert!(
                is_vouched_plan(&out.best, &base, &out.universal),
                "{micros}µs @ {threads} threads: unvouched incumbent: {}",
                out.best.query
            );
            if out.budget_expired {
                assert!(!out.complete, "{micros}µs @ {threads} threads");
            }
        }
    }
}

/// `k_best` larger than the whole candidate set: the ladder is simply
/// every distinct plan, the best on top — never an error, never
/// padding.
#[test]
fn k_best_beyond_the_candidate_set_returns_every_distinct_plan() {
    let (_, catalog, q) = scenarios().swap_remove(0);
    let cfg = OptimizerConfig {
        k_best: 50,
        ..config(SearchStrategy::Exhaustive, 2)
    };
    let out = Optimizer::with_config(&catalog, cfg).optimize(&q).unwrap();
    assert!(!out.top_k.is_empty());
    assert!(out.top_k.len() <= 50);
    assert_eq!(
        out.top_k[0].query.alpha_normalized(),
        out.best.query.alpha_normalized()
    );
    let mut keys: Vec<_> = out
        .top_k
        .iter()
        .map(|c| c.query.alpha_normalized())
        .collect();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), out.top_k.len(), "top-k has duplicates");

    // And with a zero node budget the ladder collapses to exactly one
    // rung: the universal plan itself.
    let cfg = OptimizerConfig {
        k_best: 50,
        search_budget: SearchBudget {
            nodes: Some(0),
            ..SearchBudget::default()
        },
        ..config(SearchStrategy::Exhaustive, 2)
    };
    let out = Optimizer::with_config(&catalog, cfg).optimize(&q).unwrap();
    assert!(out.budget_expired);
    assert_eq!(out.top_k.len(), 1, "zero budget admits exactly the root");
    assert_eq!(
        out.best.raw.alpha_normalized(),
        out.universal.alpha_normalized()
    );
}
