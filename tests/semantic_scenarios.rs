//! Further semantic-optimization scenarios beyond the paper's running
//! example: foreign-key chains, gmap/view interplay, and optimizer
//! behaviour under constraint ablation.

use universal_plans::prelude::*;

/// Orders -> Customers -> Regions FK chain: both dangling joins vanish.
#[test]
fn fk_chain_join_elimination() {
    let mut catalog = Catalog::new();
    catalog.add_logical_relation("Orders", [("OId", Type::Int), ("Cust", Type::Int)]);
    catalog.add_logical_relation("Customers", [("CId", Type::Int), ("Region", Type::Int)]);
    catalog.add_logical_relation("Regions", [("RId", Type::Int), ("Name", Type::Str)]);
    for r in ["Orders", "Customers", "Regions"] {
        catalog.add_direct_mapping(r);
    }
    catalog
        .add_semantic_constraint(cb_catalog::builtin::foreign_key(
            "fk1",
            "Orders",
            "Cust",
            "Customers",
            "CId",
        ))
        .unwrap();
    catalog
        .add_semantic_constraint(cb_catalog::builtin::foreign_key(
            "fk2",
            "Customers",
            "Region",
            "Regions",
            "RId",
        ))
        .unwrap();

    let q = parse_query(
        "select struct(O = o.OId) from Orders o, Customers c, Regions g \
         where o.Cust = c.CId and c.Region = g.RId",
    )
    .unwrap();
    let outcome = Optimizer::new(&catalog).optimize(&q).unwrap();
    assert_eq!(
        outcome.best.query.to_string(),
        "select struct(O = o.OId) from Orders o"
    );

    // Drop the first FK: only the Regions join is removable.
    let mut partial = catalog.clone();
    let kept: Vec<Dependency> = partial
        .semantic_constraints()
        .iter()
        .filter(|d| d.name == "fk2")
        .cloned()
        .collect();
    partial = partial.without_semantic_constraints();
    for d in kept {
        partial.add_semantic_constraint(d).unwrap();
    }
    let outcome2 = Optimizer::new(&partial).optimize(&q).unwrap();
    assert_eq!(outcome2.best.query.from.len(), 2, "{}", outcome2.best.query);
}

/// An output column produced by the joined table blocks elimination even
/// with the FK present.
#[test]
fn fk_join_kept_when_columns_are_used() {
    let mut catalog = Catalog::new();
    catalog.add_logical_relation("Orders", [("OId", Type::Int), ("Cust", Type::Int)]);
    catalog.add_logical_relation("Customers", [("CId", Type::Int), ("Name", Type::Str)]);
    catalog.add_direct_mapping("Orders");
    catalog.add_direct_mapping("Customers");
    catalog
        .add_semantic_constraint(cb_catalog::builtin::foreign_key(
            "fk",
            "Orders",
            "Cust",
            "Customers",
            "CId",
        ))
        .unwrap();
    let q = parse_query(
        "select struct(O = o.OId, N = c.Name) from Orders o, Customers c \
         where o.Cust = c.CId",
    )
    .unwrap();
    let outcome = Optimizer::new(&catalog).optimize(&q).unwrap();
    assert_eq!(outcome.best.query.from.len(), 2);
}

/// A gmap and a view over the same body: the optimizer sees both and the
/// cheaper structure wins according to the statistics.
#[test]
fn gmap_and_view_compete() {
    let mut catalog = Catalog::new();
    catalog.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int)]);
    catalog.add_direct_mapping("R");
    catalog
        .add_materialized_view(
            "VA",
            parse_query("select struct(A = r.A, B = r.B) from R r where r.A = 3").unwrap(),
        )
        .unwrap();
    catalog
        .add_gmap(
            "G",
            cb_catalog::GmapDef {
                from: vec![Binding::iter("r", Path::root("R"))],
                where_: vec![],
                key: vec![("A".into(), Path::var("r").field("A"))],
                value: vec![("B".into(), Path::var("r").field("B"))],
            },
        )
        .unwrap();

    let mut instance = Instance::new();
    instance.set(
        "R",
        Value::set(
            (0..200).map(|i| Value::record([("A", Value::Int(i % 10)), ("B", Value::Int(i))])),
        ),
    );
    Materializer::new(&catalog)
        .materialize(&mut instance)
        .unwrap();
    *catalog.stats_mut() = cb_engine::collect_stats(&instance);

    let q = parse_query("select struct(B = r.B) from R r where r.A = 3").unwrap();
    let outcome = Optimizer::new(&catalog).optimize(&q).unwrap();
    let shapes: Vec<String> = outcome
        .candidates
        .iter()
        .map(|c| c.query.to_string())
        .collect();
    assert!(
        shapes.iter().any(|s| s.contains("VA")),
        "view plan present: {shapes:?}"
    );
    assert!(
        shapes.iter().any(|s| s.contains('G')),
        "gmap plan present: {shapes:?}"
    );
    // Both beat the base scan; the winner is one of the structures.
    let best = &outcome.best.query.to_string();
    assert!(best.contains("VA") || best.contains('G'), "best = {best}");

    // Differential check for every candidate.
    let ev = Evaluator::for_catalog(&catalog, &instance);
    let reference = ev.eval_query(&q).unwrap();
    for c in &outcome.candidates {
        assert_eq!(
            ev.eval_query(&c.query).unwrap(),
            reference,
            "plan {}",
            c.query
        );
    }
}

/// The class-extent dictionary alone supports OO navigation queries (no
/// relation involved).
#[test]
fn class_dictionary_only_navigation() {
    let mut catalog = Catalog::new();
    catalog.declare_class(
        ClassDecl::new(
            "Dept",
            [("DName", Type::Str), ("DProjs", Type::set(Type::Str))],
        ),
        "depts",
    );
    catalog.add_class_dict("Dept", "depts", "Dept").unwrap();

    let mut instance = Instance::new();
    let mk = |n: u64| {
        (
            Value::Oid("Dept".into(), n),
            Value::record([
                ("DName", Value::str(format!("d{n}"))),
                ("DProjs", Value::set([Value::str(format!("p{n}"))])),
            ]),
        )
    };
    instance.set("Dept", Value::dict([mk(0), mk(1), mk(2)]));
    Materializer::new(&catalog)
        .materialize(&mut instance)
        .unwrap();
    *catalog.stats_mut() = cb_engine::collect_stats(&instance);

    let q = parse_query("select struct(DN = d.DName, PN = s) from depts d, d.DProjs s").unwrap();
    let outcome = Optimizer::new(&catalog).optimize(&q).unwrap();
    // The chosen plan runs over the dictionary, not the (logical) extent.
    assert!(
        outcome
            .best
            .query
            .from
            .iter()
            .any(|b| b.src.mentions_root("Dept")),
        "{}",
        outcome.best.query
    );
    let ev = Evaluator::for_catalog(&catalog, &instance);
    assert_eq!(
        ev.eval_query(&outcome.best.query).unwrap(),
        ev.eval_query(&q).unwrap()
    );
    assert_eq!(ev.eval_query(&q).unwrap().len(), 3);
}

/// Incomplete search budgets still produce sound (if fewer) plans.
#[test]
fn bounded_search_remains_sound() {
    let mut catalog = cb_catalog::scenarios::projdept::catalog();
    cb_catalog::scenarios::projdept::stats_for(&mut catalog, 20, 5, 5);
    let config = cb_optimizer::OptimizerConfig {
        backchase: universal_plans::chase::BackchaseConfig {
            max_visited: 3,
            ..Default::default()
        },
        cost_visited: true,
        ..Default::default()
    };
    let q = cb_catalog::scenarios::projdept::query();
    let outcome = Optimizer::with_config(&catalog, config)
        .optimize(&q)
        .unwrap();
    assert!(!outcome.complete);
    assert!(!outcome.candidates.is_empty());

    let mut instance = cb_engine::projdept_instance(&cb_engine::ProjDeptParams {
        n_depts: 20,
        projs_per_dept: 5,
        n_customers: 5,
        seed: 9,
    });
    Materializer::new(&catalog)
        .materialize(&mut instance)
        .unwrap();
    let ev = Evaluator::for_catalog(&catalog, &instance);
    let reference = ev.eval_query(&q).unwrap();
    for c in &outcome.candidates {
        assert_eq!(
            ev.eval_query(&c.query).unwrap(),
            reference,
            "plan {}",
            c.query
        );
    }
}
