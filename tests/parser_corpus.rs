//! A corpus of concrete-syntax queries, constraints and schemas pushed
//! through parse → typecheck → PC-check → display → reparse.

use universal_plans::prelude::*;

fn projdept_schema() -> Schema {
    parse_schema(
        r#"
        class Dept { DName: String, DProjs: Set<String>, MgrName: String }
        let depts : Set<Oid<Dept>>;
        let Proj : Set<Struct{PName: String, CustName: String, PDept: String, Budg: Int}>;
        let Dept : Dict<Oid<Dept>, Struct{DName: String, DProjs: Set<String>, MgrName: String}>;
        let I : Dict<String, Struct{PName: String, CustName: String, PDept: String, Budg: Int}>;
        let SI : Dict<String, Set<Struct{PName: String, CustName: String, PDept: String, Budg: Int}>>;
        let JI : Set<Struct{DOID: Oid<Dept>, PN: String}>;
        "#,
    )
    .unwrap()
}

#[test]
fn schema_text_matches_programmatic_catalog() {
    let parsed = projdept_schema();
    let catalog = cb_catalog::scenarios::projdept::catalog();
    let combined = catalog.combined_schema();
    for (name, ty) in &parsed.roots {
        assert_eq!(
            combined.root(name),
            Some(ty),
            "root {name} differs between DDL text and builder"
        );
    }
    assert_eq!(parsed.classes.len(), 1);
    assert_eq!(
        parsed.class("Dept").unwrap().attrs,
        combined.class("Dept").unwrap().attrs
    );
}

#[test]
fn pc_query_corpus_round_trips_and_typechecks() {
    let schema = projdept_schema();
    let corpus = [
        // The paper's query and plans in PC form.
        r#"select struct(PN = s, PB = p.Budg, DN = d.DName)
           from depts d, d.DProjs s, Proj p
           where s = p.PName and p.CustName = "CitiBank""#,
        r#"select struct(PN = s, PB = p.Budg, DN = Dept[d].DName)
           from dom(Dept) d, Dept[d].DProjs s, Proj p
           where s = p.PName and p.CustName = "CitiBank""#,
        // dom-guarded primary index dereference.
        "select struct(B = I[i].Budg) from dom(I) i",
        // Secondary index with a constant-pinned key.
        r#"select struct(PN = t.PName) from dom(SI) k, SI[k] t where k = "CitiBank""#,
        // Join through the join-index view.
        "select struct(PN = j.PN) from JI j, Proj p where j.PN = p.PName",
        // Nested membership only.
        "select struct(S = s) from depts d, d.DProjs s",
        // Output can be a bare path.
        "select p.Budg from Proj p",
        // Multiple conditions across three bindings.
        r#"select struct(A = p.PName, B = q.PName)
           from Proj p, Proj q, depts d
           where p.PDept = d.DName and q.PDept = d.DName and p.CustName = q.CustName"#,
    ];
    for src in corpus {
        let q = parse_query(src).unwrap_or_else(|e| panic!("parse {src}: {e}"));
        check_pc_query(&schema, &q).unwrap_or_else(|e| panic!("typecheck {src}: {e}"));
        let printed = q.to_string();
        let q2 = parse_query(&printed).unwrap_or_else(|e| panic!("reparse of `{printed}`: {e}"));
        assert_eq!(q, q2, "round trip changed {src}");
    }
}

#[test]
fn plan_corpus_typechecks_but_is_not_pc() {
    let schema = projdept_schema();
    let plans = [
        // Non-failing lookup (P3 display form).
        r#"select struct(PN = p.PName) from SI{"CitiBank"} p"#,
        // Unguarded failing lookups (P4).
        r#"select struct(PN = j.PN, PB = I[j.PN].Budg, DN = Dept[j.DOID].DName)
           from JI j where I[j.PN].CustName = "CitiBank""#,
        // Let binding.
        r#"select struct(B = x.Budg) from let x := I["proj0_0"]"#,
    ];
    for src in plans {
        let q = parse_query(src).unwrap();
        check_query(&schema, &q).unwrap_or_else(|e| panic!("typecheck {src}: {e}"));
        assert!(
            check_pc_query(&schema, &q).is_err(),
            "{src} should not be strict PC"
        );
    }
}

#[test]
fn constraint_corpus_parses_and_typechecks() {
    let schema = projdept_schema();
    let corpus = [
        (
            "RIC1",
            "forall (d in depts) (s in d.DProjs) -> exists (p in Proj) where s = p.PName",
        ),
        (
            "RIC2",
            "forall (p in Proj) -> exists (d in depts) where p.PDept = d.DName",
        ),
        (
            "INV1",
            "forall (d in depts) (s in d.DProjs) (p in Proj) where s = p.PName \
             -> p.PDept = d.DName",
        ),
        (
            "INV2",
            "forall (p in Proj) (d in depts) where p.PDept = d.DName \
             -> exists (s in d.DProjs) where p.PName = s",
        ),
        (
            "KEY1",
            "forall (d in depts) (e in depts) where d.DName = e.DName -> d = e",
        ),
        (
            "KEY2",
            "forall (p in Proj) (q in Proj) where p.PName = q.PName -> p = q",
        ),
        (
            "PI1",
            "forall (p in Proj) -> exists (i in dom(I)) where i = p.PName and I[i] = p",
        ),
        (
            "PI2",
            "forall (i in dom(I)) -> exists (p in Proj) where i = p.PName and I[i] = p",
        ),
        (
            "SI1",
            "forall (p in Proj) -> exists (k in dom(SI)) (t in SI[k]) \
             where k = p.CustName and p = t",
        ),
        (
            "SI3",
            "forall (k in dom(SI)) -> exists (t in SI[k]) where t = t",
        ),
        (
            "c_JI",
            "forall (d in depts) (s in d.DProjs) (p in Proj) where s = p.PName \
             -> exists (j in JI) where j.DOID = d and j.PN = p.PName",
        ),
    ];
    for (name, src) in corpus {
        let d = parse_dependency(name, src).unwrap_or_else(|e| panic!("parse {name}: {e}"));
        check_dependency(&schema, &d).unwrap_or_else(|e| panic!("typecheck {name}: {e}"));
    }
}

#[test]
fn parser_rejects_garbage_gracefully() {
    for src in [
        "",
        "select",
        "select struct(",
        "select x from",
        "select x from R", // missing variable name
        "select x from R x where",
        "forall -> x = y",
        "select x from R x where x == y",
    ] {
        assert!(
            parse_query(src).is_err() || src.starts_with("forall"),
            "should reject: {src}"
        );
    }
    assert!(parse_dependency("d", "exists (x in R) -> x = x").is_err());
    assert!(parse_schema("class {}").is_err());
    assert!(parse_schema("let x : Unknown<Int>;").is_err());
}

#[test]
fn typechecker_rejects_ill_typed_corpus() {
    let schema = projdept_schema();
    for (src, why) in [
        ("select struct(X = p.Nope) from Proj p", "unknown field"),
        (
            "select struct(X = p.Budg) from Proj p, p.Budg b",
            "iterating a non-set",
        ),
        (
            "select struct(X = I[p.Budg].Budg) from Proj p, dom(I) i where i = p.PName",
            "key type",
        ),
        (
            "select struct(X = d.DProjs) from depts d",
            "collection output in PC",
        ),
    ] {
        let q = parse_query(src).unwrap();
        assert!(
            check_pc_query(&schema, &q).is_err(),
            "should reject ({why}): {src}"
        );
    }
}
