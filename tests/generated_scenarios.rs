//! The random-scenario differential harness for the cost-guided
//! backchase and its must-remain lower bound.
//!
//! The hand-built catalogs (ProjDept, §4 indexes, §4 views — each also
//! run in its mapping-only regime) pin the paper's numbers; this suite
//! establishes the *claims* — admissibility
//! and monotonicity of `CostModel::lattice_lower_bound`, and
//! `CostGuided ≡ Exhaustive` best cost — on generated instances: random
//! catalogs (secondary/primary indexes, materialized views over random
//! subsets), random statistics (empty collections, sub-row fanouts and
//! deliberately *inconsistent* distinct counts included: the bound's
//! proof does not assume clean stats, so neither does the harness), and
//! random queries (selections, a self-join under a key constraint,
//! random output columns).
//!
//! The vendored proptest stub does not shrink, so the generator is built
//! shrink-friendly by hand: every dimension is a small independent
//! choice (structure flags, per-root cardinality picks, condition/output
//! masks), each assertion message carries the full scenario description,
//! and replaying a failure means pasting that description into a unit
//! test — no minimization pass needed to make it readable.
//!
//! The harness also proves it *would catch* a broken bound: a
//! deliberately inflated (inadmissible) bound, injected through the
//! test-only `OptimizerConfig::bound_scale` hook, must make the
//! differential check fail.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

use cb_optimizer::{CostModel, Optimizer, OptimizerConfig, SearchStrategy};
use universal_plans::analyze::codes;
use universal_plans::catalog::RootStats;
use universal_plans::chase::{
    first_unsafe, ChaseConfig, ChaseContext, MustRemainAnalysis, PlanSearch, SearchVisitor, Visit,
};
use universal_plans::engine::{compile, CompileOptions, Operator};
use universal_plans::prelude::*;

/// One generated catalog + query, with a replayable description.
#[derive(Debug, Clone)]
struct Scenario {
    catalog: Catalog,
    query: Query,
    desc: String,
}

#[allow(clippy::too_many_arguments)]
fn build_scenario(
    sa: bool,
    sb: bool,
    pk: bool,
    view_join: bool,
    view_s: bool,
    cards: Vec<u64>,
    distincts: Vec<u64>,
    fanout: f64,
    cond_mask: u8,
    out_mask: u8,
    self_join: bool,
) -> Scenario {
    let mut c = Catalog::new();
    c.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int)]);
    c.add_logical_relation("S", [("B", Type::Int), ("C", Type::Int)]);
    // R and S stay physical so every generated query has a plan.
    c.add_direct_mapping("R");
    c.add_direct_mapping("S");
    if sa {
        c.add_secondary_index("SA", "R", "A").unwrap();
    }
    if sb {
        c.add_secondary_index("SB", "S", "B").unwrap();
    }
    if pk {
        // Also injects the key constraint on R.A — the chase may now
        // coalesce self-join bindings.
        c.add_primary_index("IA", "R", "A").unwrap();
    }
    if view_join {
        c.add_materialized_view(
            "V",
            parse_query("select struct(A = r.A) from R r, S s where r.B = s.B").unwrap(),
        )
        .unwrap();
    }
    if view_s {
        c.add_materialized_view(
            "W",
            parse_query("select struct(B = s.B, C = s.C) from S s").unwrap(),
        )
        .unwrap();
    }

    let stats = c.stats_mut();
    for (i, root) in ["R", "S", "SA", "SB", "IA", "V", "W"].iter().enumerate() {
        let mut rs = RootStats::with_cardinality(cards[i % cards.len()]);
        match *root {
            "R" => {
                rs.distinct.insert("A".into(), distincts[0]);
                rs.distinct.insert("B".into(), distincts[1]);
            }
            "S" => {
                rs.distinct.insert("B".into(), distincts[2]);
                rs.distinct.insert("C".into(), distincts[3]);
            }
            "SA" | "SB" => {
                rs.avg_fanout.insert("".into(), fanout);
            }
            _ => {}
        }
        stats.set(*root, rs);
    }

    let mut from = vec!["R r", "S s"];
    let mut conds = vec!["r.B = s.B"];
    if cond_mask & 1 != 0 {
        conds.push("r.A = 1");
    }
    if cond_mask & 2 != 0 {
        conds.push("s.C = 2");
    }
    if cond_mask & 4 != 0 {
        conds.push("s.B = 3");
    }
    if self_join {
        from.push("R r2");
        conds.push("r2.A = r.A");
    }
    let mut outs = Vec::new();
    if out_mask & 1 != 0 {
        outs.push("OA = r.A");
    }
    if out_mask & 2 != 0 {
        outs.push("OC = s.C");
    }
    if out_mask & 4 != 0 {
        outs.push("OB = s.B");
    }
    if outs.is_empty() {
        outs.push("OA = r.A");
    }
    let text = format!(
        "select struct({}) from {} where {}",
        outs.join(", "),
        from.join(", "),
        conds.join(" and ")
    );
    let query = parse_query(&text).unwrap();
    let desc = format!(
        "structures(sa={sa}, sb={sb}, pk={pk}, V={view_join}, W={view_s}) \
         cards={cards:?} distincts={distincts:?} fanout={fanout} query=`{text}`"
    );
    Scenario {
        catalog: c,
        query,
        desc,
    }
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        (
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
        ),
        prop::collection::vec(prop::sample::select(vec![0u64, 1, 5, 120, 4_000]), 7),
        prop::collection::vec(prop::sample::select(vec![1u64, 3, 950]), 4),
        prop::sample::select(vec![0.5f64, 2.0, 40.0]),
        (0u8..8, 0u8..8, any::<bool>()),
    )
        .prop_map(
            |((sa, sb, pk, vj, vs), cards, distincts, fanout, (cond, out, selfj))| {
                build_scenario(
                    sa, sb, pk, vj, vs, cards, distincts, fanout, cond, out, selfj,
                )
            },
        )
}

/// Records every node of the exhaustive walk with its removal set, so
/// the bound can be evaluated against genuine parent/descendant pairs.
struct Recorder {
    nodes: Vec<(BTreeSet<String>, Query)>,
}

impl SearchVisitor for Recorder {
    fn visit(&mut self, _ctx: &mut ChaseContext, q: &Query, removed: &BTreeSet<String>) -> Visit {
        self.nodes.push((removed.clone(), q.clone()));
        Visit::Explore
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The headline differential: on every generated catalog the
    /// cost-guided branch-and-bound reaches exactly the exhaustive best
    /// cost, visiting no more nodes, with consistent pruning accounting.
    #[test]
    fn cost_guided_matches_exhaustive_on_random_catalogs(s in arb_scenario()) {
        let full = Optimizer::new(&s.catalog).optimize(&s.query).unwrap();
        let guided = Optimizer::with_config(
            &s.catalog,
            OptimizerConfig { strategy: SearchStrategy::CostGuided, ..Default::default() },
        )
        .optimize(&s.query)
        .unwrap();
        prop_assert!(
            (guided.best.cost - full.best.cost).abs() < 1e-9,
            "guided best {} != exhaustive best {} on {}\nguided: {}\nexhaustive: {}",
            guided.best.cost, full.best.cost, s.desc, guided.best.query, full.best.query
        );
        prop_assert!(guided.complete, "guided search incomplete on {}", s.desc);
        prop_assert!(
            guided.nodes_visited <= full.nodes_visited,
            "guided visited {} > exhaustive {} on {}",
            guided.nodes_visited, full.nodes_visited, s.desc
        );
        prop_assert!(
            guided.nodes_visited + guided.nodes_pruned_by_cost >= 1,
            "accounting lost the root on {}", s.desc
        );
        prop_assert_eq!(
            guided.nodes_pruned_by_cost,
            guided.nodes_pruned_at_gate + guided.nodes_pruned_at_visit,
            "pruning split inconsistent on {}", s.desc
        );
        prop_assert_eq!(full.nodes_pruned_by_cost, 0);
        // The must-remain core of the universal plan survives into every
        // candidate the exhaustive search costed.
        for c in &full.candidates {
            for var in &full.must_remain {
                prop_assert!(
                    c.raw.from.iter().any(|b| &b.var == var),
                    "must-remain binding {} missing from candidate {} on {}",
                    var, c.raw, s.desc
                );
            }
        }
    }

    /// The parallel frontier on random catalogs: at 2 and 4 workers the
    /// cost-guided search returns the *same best plan* (not just the
    /// same cost) as the sequential run — pruning is strict against the
    /// incumbent and ranking ties break on canonical plan keys, so the
    /// schedule cannot leak into the answer.
    #[test]
    fn parallel_cost_guided_deterministic_on_random_catalogs(s in arb_scenario()) {
        let guided = |threads: usize| {
            Optimizer::with_config(
                &s.catalog,
                OptimizerConfig {
                    strategy: SearchStrategy::CostGuided,
                    threads,
                    ..Default::default()
                },
            )
            .optimize(&s.query)
            .unwrap()
        };
        let full = Optimizer::new(&s.catalog).optimize(&s.query).unwrap();
        let base = guided(1);
        for threads in [2usize, 4] {
            let par = guided(threads);
            prop_assert!(
                (par.best.cost - full.best.cost).abs() < 1e-9,
                "parallel best {} != exhaustive best {} @ {} threads on {}",
                par.best.cost, full.best.cost, threads, s.desc
            );
            prop_assert_eq!(
                par.best.query.alpha_normalized(),
                base.best.query.alpha_normalized(),
                "best plan changed with the thread count ({} threads) on {}",
                threads, s.desc
            );
            prop_assert!(par.complete, "incomplete @ {} threads on {}", threads, s.desc);
        }
    }

    /// Admissibility and monotonicity of the must-remain bound across
    /// the *actual* removal lattice: for every pair of lattice nodes in
    /// the descent relation, the ancestor's bound under-estimates the
    /// descendant's bound (monotone) and its finally-costed plan
    /// (admissible); the root's bound under-estimates every candidate.
    #[test]
    fn lattice_bound_admissible_and_monotone_on_random_catalogs(s in arb_scenario()) {
        let model = CostModel::for_catalog(&s.catalog);
        let mut ctx = ChaseContext::new(s.catalog.all_constraints(), ChaseConfig::default());
        let u = ctx.chase(&s.query).query;
        let mut rec = Recorder { nodes: Vec::new() };
        let out = PlanSearch::new(&u).run(&mut ctx, &mut rec);
        prop_assert!(out.complete, "{}", s.desc);
        let mut analysis = MustRemainAnalysis::new(&u);

        // Final (cleaned, reordered) costs per raw subquery, as the
        // optimizer assigns them.
        let full = Optimizer::new(&s.catalog).optimize(&s.query).unwrap();
        let final_costs: BTreeMap<Query, f64> = full
            .candidates
            .iter()
            .map(|c| (c.raw.alpha_normalized(), c.cost))
            .collect();

        let bounds: Vec<f64> = rec
            .nodes
            .iter()
            .map(|(removed, q)| model.lattice_lower_bound(q, removed, &mut analysis))
            .collect();
        for (i, (removed_i, q_i)) in rec.nodes.iter().enumerate() {
            // Per-node admissibility: never above the node's own raw and
            // final cost.
            prop_assert!(
                bounds[i] <= model.plan_cost(q_i) + 1e-9,
                "bound {} > raw cost {} at {:?} on {}",
                bounds[i], model.plan_cost(q_i), removed_i, s.desc
            );
            if let Some(&final_cost) = final_costs.get(&q_i.alpha_normalized()) {
                prop_assert!(
                    bounds[i] <= final_cost + 1e-9,
                    "bound {} > final cost {} at {:?} on {}",
                    bounds[i], final_cost, removed_i, s.desc
                );
            }
            for (j, (removed_j, q_j)) in rec.nodes.iter().enumerate() {
                if i == j || !removed_j.is_superset(removed_i) {
                    continue;
                }
                // Monotone along descent…
                prop_assert!(
                    bounds[i] <= bounds[j] + 1e-9,
                    "bound fell along descent {:?} -> {:?} ({} -> {}) on {}",
                    removed_i, removed_j, bounds[i], bounds[j], s.desc
                );
                // …hence admissible for every derivable plan below.
                if let Some(&final_cost) = final_costs.get(&q_j.alpha_normalized()) {
                    prop_assert!(
                        bounds[i] <= final_cost + 1e-9,
                        "ancestor bound {} > descendant final cost {} on {}",
                        bounds[i], final_cost, s.desc
                    );
                }
            }
        }
    }
}

/// The harness must *fail* on a broken bound: inflating the bound makes
/// it inadmissible, the branch-and-bound then prunes the optimal cone,
/// and the differential check reports a cost gap. (This is the
/// `bound_scale` test-only hook doing its one job; with the hook at its
/// default the same check passes — see the proptest above and
/// `tests/cost_guided.rs`.)
#[test]
fn inadmissible_bound_is_caught_by_the_differential_check() {
    use cb_catalog::scenarios::relational_views;
    let mut catalog = relational_views::catalog();
    relational_views::stats_for(&mut catalog, 10_000, 10_000, 10);
    let q = relational_views::query();
    let full = Optimizer::new(&catalog).optimize(&q).unwrap();
    let broken = Optimizer::with_config(
        &catalog,
        OptimizerConfig {
            strategy: SearchStrategy::CostGuided,
            bound_scale: 1.0e6,
            ..Default::default()
        },
    )
    .optimize(&q)
    .unwrap();
    assert!(
        broken.nodes_pruned_by_cost > 0,
        "the inflated bound pruned nothing"
    );
    assert!(
        (broken.best.cost - full.best.cost).abs() > 1e-9,
        "an inadmissible bound went undetected: both found cost {}",
        full.best.cost
    );
    // Scaling is the only difference: at 1.0 the same configuration is
    // exact again.
    let sound = Optimizer::with_config(
        &catalog,
        OptimizerConfig {
            strategy: SearchStrategy::CostGuided,
            ..Default::default()
        },
    )
    .optimize(&q)
    .unwrap();
    assert!((sound.best.cost - full.best.cost).abs() < 1e-9);
}

/// Deflating the bound keeps it admissible (any under-estimate is), so
/// the differential check must still pass — the harness reacts to
/// overshooting specifically, not to any perturbation.
#[test]
fn deflated_bound_stays_admissible_and_exact() {
    use cb_catalog::scenarios::projdept;
    let mut catalog = projdept::catalog();
    projdept::stats_for(&mut catalog, 100, 10, 20);
    let q = projdept::query();
    let full = Optimizer::new(&catalog).optimize(&q).unwrap();
    let deflated = Optimizer::with_config(
        &catalog,
        OptimizerConfig {
            strategy: SearchStrategy::CostGuided,
            bound_scale: 0.25,
            ..Default::default()
        },
    )
    .optimize(&q)
    .unwrap();
    assert!((deflated.best.cost - full.best.cost).abs() < 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The static-analysis differential: every generated scenario lints
    /// clean (no error-severity diagnostics), every candidate plan the
    /// optimizer produces compiles to a pipeline the dataflow verifier
    /// accepts (in both compile modes), and the static lookup-safety
    /// pass never contradicts the backchase's chase-based prover — a
    /// lookup declared statically safe is never the one `first_unsafe`
    /// returns, and when *every* obligation is discharged statically the
    /// prover has nothing left to reject.
    #[test]
    fn random_scenarios_lint_clean_and_plans_verify(s in arb_scenario()) {
        let analyzer = Analyzer::new(&s.catalog);
        let lint = analyzer.lint(&s.query);
        prop_assert!(!lint.has_errors(), "lint errors on {}:\n{}", s.desc, lint);

        // The default warn-mode pre-flight already dataflow-verifies every
        // candidate pipeline; its merged report must be error-free.
        let out = Optimizer::new(&s.catalog).optimize(&s.query).unwrap();
        prop_assert!(
            !out.diagnostics.has_errors(),
            "pre-flight errors on {}:\n{}", s.desc, out.diagnostics
        );

        for c in &out.candidates {
            for (hash_joins, merge_joins) in [(false, false), (true, false), (true, true)] {
                let p = compile(
                    &c.query,
                    CompileOptions { hash_joins, merge_joins, ..Default::default() },
                );
                let rep = analyzer.check_pipeline(&p);
                prop_assert!(
                    !rep.has_errors(),
                    "pipeline errors (hash_joins={}, merge_joins={}) for `{}` on {}:\n{}",
                    hash_joins, merge_joins, c.query, s.desc, rep
                );
            }
            // Static vs prover, on the raw subquery the backchase judged.
            let summary = analyzer.lookup_summary(&c.raw);
            let mut ctx =
                ChaseContext::new(s.catalog.all_constraints(), ChaseConfig::default());
            let prover = first_unsafe(&mut ctx, &c.raw);
            if let Some((lookup, _)) = &prover {
                prop_assert!(
                    !summary.statically_safe().contains(&lookup),
                    "static pass declared `{}` safe but the prover rejected it \
                     in `{}` on {}",
                    lookup, c.raw, s.desc
                );
            }
            if summary.all_static() {
                prop_assert!(
                    prover.is_none(),
                    "all lookups static-safe in `{}` but the prover rejected `{}` on {}",
                    c.raw, prover.unwrap().0, s.desc
                );
            }
        }
    }
}

/// A fixed, fully-featured scenario for the mutation canaries below: all
/// access structures on, both selections, a two-column output.
fn canary_scenario() -> Scenario {
    build_scenario(
        true,
        true,
        true,
        true,
        true,
        vec![120, 5, 4_000, 1, 120, 5, 120],
        vec![3, 3, 3, 3],
        2.0,
        3,
        3,
        false,
    )
}

/// Canary 1: redirecting an operator's slot write must be caught — the
/// double write is a CB031 layout error and the orphaned register a
/// CB030 read-before-write.
#[test]
fn canary_swapped_slot_write_is_caught() {
    let s = canary_scenario();
    let mut p = compile(
        &s.query,
        CompileOptions {
            hash_joins: false,
            ..Default::default()
        },
    );
    let clean = Analyzer::new(&s.catalog).check_pipeline(&p);
    assert!(!clean.has_errors(), "canary baseline dirty: {clean}");
    // Redirect the second writing operator onto the first one's register.
    let mut writes = p.ops.iter_mut().filter_map(|op| match op {
        Operator::Scan { slot, .. }
        | Operator::IterDependent { slot, .. }
        | Operator::Bind { slot, .. }
        | Operator::HashJoin { slot, .. }
        | Operator::MergeJoin { slot, .. } => Some(slot),
        Operator::Filter { .. } => None,
    });
    let first = *writes.next().expect("a writing operator");
    let second = writes.next().expect("a second writing operator");
    *second = first;
    let report = Analyzer::new(&s.catalog).check_pipeline(&p);
    assert!(
        report.errors().any(|d| d.code == codes::SLOT_LAYOUT),
        "no CB031 for the double write: {report}"
    );
    assert!(
        report.errors().any(|d| d.code == codes::READ_BEFORE_WRITE),
        "no CB030 for the orphaned register: {report}"
    );
}

/// Canary 2: dropping a `from` binding must be caught twice over — the
/// well-formedness pass reports the now-unbound variable (CB001) and the
/// compiled pipeline's accessors cannot resolve it (CB032).
#[test]
fn canary_dropped_binding_is_caught() {
    let s = canary_scenario();
    let mut q = s.query.clone();
    q.from.remove(1);
    let report = Analyzer::new(&s.catalog).check_query(&q);
    assert!(
        report.errors().any(|d| d.code == codes::QUERY_SCOPE),
        "no CB001 for the dropped binding: {report}"
    );
    let p = compile(
        &q,
        CompileOptions {
            hash_joins: false,
            ..Default::default()
        },
    );
    let report = Analyzer::new(&s.catalog).check_pipeline(&p);
    assert!(
        report.errors().any(|d| d.code == codes::UNRESOLVED_VAR),
        "no CB032 for the unresolved variable: {report}"
    );
}

/// Canary 3: breaking a dependency's scope (a premise condition over a
/// variable no binding introduces) must be caught as CB006, anchored at
/// the mutated dependency.
#[test]
fn canary_broken_dependency_scope_is_caught() {
    use universal_plans::analyze::check_dependencies;

    let s = canary_scenario();
    let mut deps = s.catalog.all_constraints();
    let clean = check_dependencies(&s.catalog.combined_schema(), &deps);
    assert!(clean.is_empty(), "canary baseline dirty: {clean}");
    let victim = deps.first_mut().expect("the catalog emits constraints");
    victim
        .premise
        .push(Equality(Path::var("ghost"), Path::int(0)));
    let name = victim.name.clone();
    let report = check_dependencies(&s.catalog.combined_schema(), &deps);
    assert!(
        report.errors().any(|d| d.code == codes::DEP_SCOPE
            && d.anchor == universal_plans::analyze::Anchor::Dependency(name.clone())),
        "no CB006 at [{name}]: {report}"
    );
}
