//! Property-based tests over the core invariants.

use proptest::prelude::*;
use std::collections::BTreeMap;

use universal_plans::chase::{
    backchase, chase, contained_in, minimize, BackchaseConfig, ChaseConfig, EGraph,
};
use universal_plans::prelude::*;

// ---------- generators ----------

/// Fields that exist in the generated R(A,B) instances.
fn field_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["A", "B"]).prop_map(str::to_string)
}

/// Fields for purely syntactic path tests (never evaluated).
fn any_field_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["A", "B", "C"]).prop_map(str::to_string)
}

fn var_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["x", "y", "z"]).prop_map(str::to_string)
}

/// Random flat paths over variables x, y, z and roots R, S.
fn arb_path() -> impl Strategy<Value = Path> {
    let leaf = prop_oneof![
        var_name().prop_map(Path::Var),
        prop::sample::select(vec!["R", "S"]).prop_map(Path::root),
        any::<i64>().prop_map(Path::int),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), any_field_name()).prop_map(|(p, f)| p.field(f)),
            inner.clone().prop_map(Path::dom),
            (inner.clone(), inner).prop_map(|(m, k)| m.get(k)),
        ]
    })
}

/// Random conjunctive queries over R(A,B): 1–3 bindings, 0–3 conditions
/// among variable fields and small constants.
fn arb_cq() -> impl Strategy<Value = Query> {
    let n_bindings = 1..=3usize;
    (
        n_bindings,
        prop::collection::vec((0..3usize, field_name(), 0..3usize, field_name()), 0..3),
        (0..3usize, field_name()),
    )
        .prop_map(|(n, eqs, (ov, of))| {
            let from: Vec<Binding> = (0..n)
                .map(|i| Binding::iter(format!("v{i}"), Path::root("R")))
                .collect();
            let where_: Vec<Equality> = eqs
                .into_iter()
                .map(|(l, lf, r, rf)| {
                    Equality(
                        Path::var(format!("v{}", l % n)).field(lf),
                        Path::var(format!("v{}", r % n)).field(rf),
                    )
                })
                .collect();
            Query::new(
                Output::record([("O".to_string(), Path::var(format!("v{}", ov % n)).field(of))]),
                from,
                where_,
            )
        })
}

/// Random queries for the pipeline executor: 1–3 `iter` bindings over
/// roots R/S with variable names drawn from a *small* pool (so shadowed
/// and reused names occur), and conditions that mix equi-joins (the
/// hash-join trigger), selections against constants, and ground
/// constant comparisons (the hoisting trigger). Error paths are
/// represented too: root `T` is absent from the instances, root `D` is
/// a dictionary (not a set), and field `C` is missing from every row —
/// the executor must fail exactly where the interpreter fails.
fn arb_pipeline_query() -> impl Strategy<Value = Query> {
    let binding = (
        prop::sample::select(vec!["R", "S", "R", "S", "R", "S", "T", "D"]),
        prop::sample::select(vec!["u", "v", "w"]),
    );
    // (kind, l, lf, r, rf, c): kind 0 = vl.lf = vr.rf (equi-join, the
    // hash-join trigger), kind 1 = vl.lf = c (selection), kind 2 =
    // (c % 2) = (l % 2) (ground, the hoisting trigger). Fields include
    // the absent `C` occasionally, so conditions can error.
    let cond_field =
        || prop::sample::select(vec!["A", "B", "A", "B", "C"]).prop_map(str::to_string);
    let cond = (
        0..3u8,
        0..3usize,
        cond_field(),
        0..3usize,
        cond_field(),
        0..4i64,
    );
    (
        prop::collection::vec(binding, 1..4),
        prop::collection::vec(cond, 0..4),
        (0..3usize, field_name()),
    )
        .prop_map(|(binds, conds, (ov, of))| {
            let names: Vec<String> = binds.iter().map(|(_, v)| v.to_string()).collect();
            let from: Vec<Binding> = binds
                .iter()
                .map(|(root, var)| Binding::iter(*var, Path::root(*root)))
                .collect();
            let where_: Vec<Equality> = conds
                .into_iter()
                .map(|(kind, l, lf, r, rf, c)| match kind {
                    0 => Equality(
                        Path::var(&names[l % names.len()]).field(lf),
                        Path::var(&names[r % names.len()]).field(rf),
                    ),
                    1 => Equality(Path::var(&names[l % names.len()]).field(lf), Path::int(c)),
                    _ => Equality(Path::int(c % 2), Path::int(l as i64 % 2)),
                })
                .collect();
            Query::new(
                Output::record([(
                    "O".to_string(),
                    Path::var(&names[ov % names.len()]).field(of),
                )]),
                from,
                where_,
            )
        })
}

/// A small random instance with both R(A,B) and S(A,B) (plus the
/// dictionary root `D` the error-path queries scan; `T` stays absent).
fn arb_rs_instance() -> impl Strategy<Value = Instance> {
    let rows = || {
        prop::collection::vec((0..4i64, 0..4i64), 0..10).prop_map(|rows| {
            Value::set(
                rows.into_iter()
                    .map(|(a, b)| Value::record([("A", Value::Int(a)), ("B", Value::Int(b))])),
            )
        })
    };
    (rows(), rows()).prop_map(|(r, s)| {
        let mut i = Instance::new();
        i.set("R", r);
        i.set("S", s);
        i.set("D", Value::dict([(Value::Int(0), Value::Int(0))]));
        i
    })
}

/// A small random R(A,B) instance.
fn arb_instance() -> impl Strategy<Value = Instance> {
    prop::collection::vec((0..4i64, 0..4i64), 0..12).prop_map(|rows| {
        let mut i = Instance::new();
        i.set(
            "R",
            Value::set(
                rows.into_iter()
                    .map(|(a, b)| Value::record([("A", Value::Int(a)), ("B", Value::Int(b))])),
            ),
        );
        i
    })
}

// ---------- properties ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Printing and reparsing a path is the identity.
    #[test]
    fn path_display_parse_roundtrip(p in arb_path()) {
        let text = p.to_string();
        let vars: std::collections::BTreeSet<String> = p.free_vars();
        // Reparse: bare identifiers come back as roots; rename variables
        // first so the comparison is faithful.
        let parsed = parse_path(&text).unwrap();
        // parse_path resolves all identifiers to roots; map our vars
        // to roots for comparison.
        let as_roots = {
            fn var_to_root(p: &Path, vars: &std::collections::BTreeSet<String>) -> Path {
                match p {
                    Path::Var(v) if vars.contains(v) => Path::Root(v.clone()),
                    Path::Var(_) | Path::Const(_) | Path::Root(_) => p.clone(),
                    Path::Field(q, f) => var_to_root(q, vars).field(f.clone()),
                    Path::Dom(q) => var_to_root(q, vars).dom(),
                    Path::Get(m, k) => var_to_root(m, vars).get(var_to_root(k, vars)),
                    Path::GetOrEmpty(m, k) => {
                        var_to_root(m, vars).get_or_empty(var_to_root(k, vars))
                    }
                }
            }
            var_to_root(&p, &vars)
        };
        prop_assert_eq!(parsed, as_roots);
    }

    /// Queries round-trip through the printer and parser.
    #[test]
    fn query_display_parse_roundtrip(q in arb_cq()) {
        let reparsed = parse_query(&q.to_string()).unwrap();
        prop_assert_eq!(q, reparsed);
    }

    /// The e-graph congruence relation is reflexive/symmetric/transitive
    /// and congruent under field projection.
    #[test]
    fn egraph_laws(pairs in prop::collection::vec((var_name(), var_name()), 0..4),
                   probe in var_name(), f in field_name()) {
        let mut g = EGraph::new();
        for (a, b) in &pairs {
            g.union_paths(&Path::var(a.clone()), &Path::var(b.clone()));
        }
        // Reflexive.
        prop_assert!(g.paths_equal(&Path::var(probe.clone()), &Path::var(probe.clone())));
        // Symmetric + congruent: check every recorded pair.
        for (a, b) in &pairs {
            prop_assert!(g.paths_equal(&Path::var(b.clone()), &Path::var(a.clone())));
            prop_assert!(g.paths_equal(
                &Path::var(a.clone()).field(f.clone()),
                &Path::var(b.clone()).field(f.clone())
            ));
        }
        // Transitive closure via chained unions.
        if pairs.len() >= 2 {
            let (a0, _) = &pairs[0];
            let class0 = g.add_path(&Path::var(a0.clone()));
            let _ = g.extract(class0, &Default::default());
        }
    }

    /// Tableau minimization is sound (same results on random instances)
    /// and idempotent.
    #[test]
    fn minimization_sound_and_idempotent(q in arb_cq(), inst in arb_instance()) {
        let m = minimize(&q, &BackchaseConfig::default());
        prop_assert!(m.from.len() <= q.from.len());
        let m2 = minimize(&m, &BackchaseConfig::default());
        prop_assert_eq!(m.alpha_normalized(), m2.alpha_normalized());
        let ev = Evaluator::new(&inst);
        let a = ev.eval_query(&q).unwrap();
        let b = ev.eval_query(&m).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Chasing with a constraint never changes results on instances that
    /// satisfy the constraint (chase soundness).
    #[test]
    fn chase_soundness_on_satisfying_instances(q in arb_cq(), inst in arb_instance()) {
        // The key EGD on A is satisfiable by filtering the instance to
        // one row per A value.
        let key = parse_dependency(
            "key",
            "forall (p in R) (q in R) where p.A = q.A -> p = q",
        ).unwrap();
        let mut by_a: BTreeMap<Value, Value> = BTreeMap::new();
        if let Some(Value::Set(rows)) = inst.get("R").cloned() {
            for row in rows {
                by_a.entry(row.field("A").cloned().unwrap()).or_insert(row);
            }
        }
        let mut keyed = Instance::new();
        keyed.set("R", Value::set(by_a.into_values()));

        let ev = Evaluator::new(&keyed);
        prop_assert!(cb_engine::satisfies(&ev, &key).unwrap());
        let chased = chase(&q, &[key], &ChaseConfig::default());
        prop_assert!(chased.complete);
        let a = ev.eval_query(&q).unwrap();
        let b = ev.eval_query(&chased.query).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Backchase normal forms of a chased query still evaluate to the
    /// same result (backchase soundness).
    #[test]
    fn backchase_soundness(q in arb_cq(), inst in arb_instance()) {
        let out = backchase(&q, &[], &BackchaseConfig::default());
        let ev = Evaluator::new(&inst);
        let reference = ev.eval_query(&q).unwrap();
        for nf in &out.normal_forms {
            let rows = ev.eval_query(nf).unwrap();
            prop_assert_eq!(&rows, &reference, "nf = {}", nf);
        }
    }

    /// The cost-guided pruning bound never overshoots: for random
    /// queries and random statistics, `lower_bound(q') <= plan_cost(q')`
    /// holds for every subquery the backchase visits (the per-node half
    /// of the branch-and-bound's admissibility; monotonicity along the
    /// lattice supplies the rest).
    #[test]
    fn lower_bound_admissible_across_backchase_lattice(
        q in arb_cq(),
        card in 0u64..5_000,
        distinct_a in 1u64..100,
    ) {
        let mut stats = universal_plans::catalog::Stats::new();
        let mut r = universal_plans::catalog::RootStats::with_cardinality(card);
        r.distinct.insert("A".into(), distinct_a);
        stats.set("R", r);
        let model = CostModel::new(&stats);
        let out = backchase(&q, &[], &BackchaseConfig::default());
        prop_assert!(out.complete);
        for v in &out.visited {
            prop_assert!(
                model.lower_bound(v) <= model.plan_cost(v) + 1e-9,
                "lower_bound = {} > plan_cost = {} for {}",
                model.lower_bound(v), model.plan_cost(v), v
            );
        }
    }

    /// The slot-compiled pipeline executor matches the tree-walking
    /// interpreter on random queries and instances (shadowed variable
    /// names, hoisted ground filters, lazy table builds, and error
    /// paths — absent roots, non-set roots, missing fields — included).
    /// The three-way differential: interpreter ≡ row-at-a-time ≡ batched.
    /// The batched driver must return *exactly* the row machine's
    /// `Result` — rows and errors, at every batch size and join mode.
    /// Without joins the whole `Result` must also be identical to the
    /// interpreter's, errors and all; with hash or merge joins on, the
    /// join applies its equality ahead of the other same-level conjuncts,
    /// so on erroring queries only Ok-results are required to agree (see
    /// the exec.rs module doc).
    #[test]
    fn pipeline_executor_matches_evaluator(
        q in arb_pipeline_query(),
        inst in arb_rs_instance(),
    ) {
        use universal_plans::engine::exec::{
            compile, execute_with_stats, execute_rows_with_stats, CompileOptions,
        };
        let ev = Evaluator::new(&inst);
        let reference = ev.eval_query(&q);

        for (hash_joins, merge_joins) in
            [(false, false), (true, false), (false, true), (true, true)]
        {
            for batch_size in [1usize, 2, 1024] {
                let options = CompileOptions { hash_joins, merge_joins, batch_size };
                let p = compile(&q, options);
                let rowwise = execute_rows_with_stats(&ev, &p).map(|(rows, _)| rows);
                let batched = execute_with_stats(&ev, &p).map(|(rows, _)| rows);
                prop_assert_eq!(
                    &rowwise, &batched,
                    "drivers disagree: q = {} batch = {} pipeline = {}",
                    q, batch_size, p
                );
                if !hash_joins && !merge_joins {
                    prop_assert_eq!(
                        &reference, &batched,
                        "q = {} batch = {} pipeline = {}", q, batch_size, p
                    );
                } else {
                    match (&reference, execute_with_stats(&ev, &p)) {
                        (Ok(want), Ok((got, stats))) => {
                            prop_assert_eq!(
                                want, &got,
                                "q = {} pipeline = {}", q, p
                            );
                            prop_assert!(
                                stats.tables_built + stats.tables_skipped
                                    == p.n_tables as u64,
                                "table accounting off: {:?} for {}", stats, p
                            );
                            prop_assert!(
                                stats.runs_built + stats.runs_skipped
                                    == p.n_runs as u64,
                                "run accounting off: {:?} for {}", stats, p
                            );
                        }
                        // Join condition reordering may change which
                        // error surfaces, or filter the offending rows
                        // away entirely — but it must never conjure rows
                        // the interpreter rejects.
                        (Err(_), _) | (_, Err(_)) => {}
                    }
                }
            }
        }
    }

    /// Containment agrees with evaluation: if Q1 ⊑ Q2 is claimed, then on
    /// every instance eval(Q1) ⊆ eval(Q2).
    #[test]
    fn containment_sound_wrt_evaluation(q1 in arb_cq(), q2 in arb_cq(), inst in arb_instance()) {
        if contained_in(&q1, &q2, &[], &ChaseConfig::default()) {
            let ev = Evaluator::new(&inst);
            let a = ev.eval_query(&q1).unwrap();
            let b = ev.eval_query(&q2).unwrap();
            prop_assert!(a.is_subset(&b), "q1 = {} q2 = {}", q1, q2);
        }
    }

    /// Materialized secondary indexes always satisfy their constraints.
    #[test]
    fn materialized_index_satisfies_constraints(inst in arb_instance()) {
        let mut catalog = Catalog::new();
        catalog.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int)]);
        catalog.add_direct_mapping("R");
        catalog.add_secondary_index("SA", "R", "A").unwrap();
        let mut inst = inst;
        Materializer::new(&catalog).materialize(&mut inst).unwrap();
        let ev = Evaluator::for_catalog(&catalog, &inst);
        let bad = cb_engine::violations(&ev, &catalog.all_constraints()).unwrap();
        prop_assert!(bad.is_empty(), "violations: {:?}", bad);
    }
}
