//! The physical-operator pipeline must agree with the reference
//! interpreter on every optimizer-produced plan, in every compile mode
//! (nested loop, hash joins, hash+merge joins), under both drivers
//! (batched and row-at-a-time) — and the batch counters must reconcile
//! with the per-operator row counts.

use universal_plans::engine::exec::{
    compile, execute_rows_with_stats, execute_with_stats, CompileOptions,
};
use universal_plans::prelude::*;

fn check_pipelines(catalog: &Catalog, q: &Query, instance: &Instance) {
    let ev = Evaluator::for_catalog(catalog, instance);
    let reference = ev.eval_query(q).unwrap();
    let config = cb_optimizer::OptimizerConfig {
        backchase: universal_plans::chase::BackchaseConfig {
            max_visited: 200,
            ..Default::default()
        },
        cost_visited: true,
        ..Default::default()
    };
    let outcome = Optimizer::with_config(catalog, config).optimize(q).unwrap();
    for c in &outcome.candidates {
        for (hash_joins, merge_joins) in [(false, false), (true, false), (true, true)] {
            let options = CompileOptions {
                hash_joins,
                merge_joins,
                ..Default::default()
            };
            let pipeline = compile(&c.query, options);
            let (rows, stats) = execute_with_stats(&ev, &pipeline).unwrap_or_else(|e| {
                panic!(
                    "pipeline failed: {e}\nplan: {}\npipeline: {pipeline}",
                    c.query
                )
            });
            assert_eq!(rows, reference, "plan {} via {pipeline}", c.query);
            // The counters must account for every emitted row and table.
            assert!(
                stats.rows_emitted as usize >= rows.len(),
                "emitted {} < {} distinct rows via {pipeline}",
                stats.rows_emitted,
                rows.len()
            );
            assert_eq!(
                stats.tables_built + stats.tables_skipped,
                pipeline.n_tables as u64,
                "table accounting off via {pipeline}"
            );
            assert_eq!(
                stats.runs_built + stats.runs_skipped,
                pipeline.n_runs as u64,
                "run accounting off via {pipeline}"
            );
            // Batch-counter reconciliation: every live row riding a batch
            // is consumed by exactly one operator or the final
            // projection, so the selection-vector numerator must equal
            // the per-operator inputs plus the emitted rows.
            let consumed: u64 =
                stats.per_op.iter().map(|o| o.input).sum::<u64>() + stats.rows_emitted;
            assert_eq!(
                stats.sel_rows_live, consumed,
                "batch rows unaccounted for via {pipeline}: {stats:?}"
            );
            assert!(
                stats.sel_rows_live <= stats.sel_rows_total,
                "live rows exceed total via {pipeline}"
            );
            // The row-at-a-time driver must agree row for row: same
            // result, same per-operator counts, no batch counters.
            let (row_rows, row_stats) = execute_rows_with_stats(&ev, &pipeline)
                .unwrap_or_else(|e| panic!("row driver failed: {e}\npipeline: {pipeline}"));
            assert_eq!(row_rows, rows, "drivers disagree via {pipeline}");
            assert_eq!(
                row_stats.per_op, stats.per_op,
                "per-op counts drift between drivers via {pipeline}"
            );
            assert_eq!(row_stats.batches, 0, "row driver counted batches");
            // The rendered report carries the batch and join-algorithm
            // columns.
            let rendered = stats.render(&pipeline);
            assert!(
                rendered.contains("join algorithms:"),
                "no join-algorithm line in:\n{rendered}"
            );
            assert!(
                rendered.contains("batches:"),
                "no batch line in:\n{rendered}"
            );
        }
    }
}

#[test]
fn projdept_plans_compile_to_pipelines() {
    let mut catalog = cb_catalog::scenarios::projdept::catalog();
    let q = cb_catalog::scenarios::projdept::query();
    let mut instance = cb_engine::projdept_instance(&cb_engine::ProjDeptParams {
        n_depts: 10,
        projs_per_dept: 4,
        n_customers: 4,
        seed: 77,
    });
    Materializer::new(&catalog)
        .materialize(&mut instance)
        .unwrap();
    *catalog.stats_mut() = cb_engine::collect_stats(&instance);
    check_pipelines(&catalog, &q, &instance);
}

#[test]
fn view_plans_compile_to_pipelines() {
    let mut catalog = cb_catalog::scenarios::relational_views::catalog();
    let q = cb_catalog::scenarios::relational_views::query();
    let mut instance = cb_engine::join_instance(&cb_engine::JoinParams {
        n_r: 80,
        n_s: 80,
        match_fraction: 0.3,
        seed: 5,
    });
    Materializer::new(&catalog)
        .materialize(&mut instance)
        .unwrap();
    *catalog.stats_mut() = cb_engine::collect_stats(&instance);
    check_pipelines(&catalog, &q, &instance);
}

#[test]
fn greedy_strategy_plans_execute_correctly() {
    let mut catalog = cb_catalog::scenarios::projdept::catalog();
    let q = cb_catalog::scenarios::projdept::query();
    let mut instance = cb_engine::projdept_instance(&cb_engine::ProjDeptParams {
        n_depts: 10,
        projs_per_dept: 4,
        n_customers: 4,
        seed: 13,
    });
    Materializer::new(&catalog)
        .materialize(&mut instance)
        .unwrap();
    *catalog.stats_mut() = cb_engine::collect_stats(&instance);

    let ev = Evaluator::for_catalog(&catalog, &instance);
    let reference = ev.eval_query(&q).unwrap();
    let config = cb_optimizer::OptimizerConfig {
        strategy: cb_optimizer::SearchStrategy::Greedy,
        cost_visited: false,
        ..Default::default()
    };
    let outcome = Optimizer::with_config(&catalog, config)
        .optimize(&q)
        .unwrap();
    assert_eq!(outcome.candidates.len(), 1);
    let rows = ev.eval_query(&outcome.best.query).unwrap();
    assert_eq!(rows, reference, "greedy plan: {}", outcome.best.query);
}
