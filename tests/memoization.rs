//! Differential testing of the `ChaseContext` caches: memoization is a
//! pure speedup, so a memoized backchase and a cache-disabled one must
//! produce exactly the same plan sets, and the memo must actually be
//! exercised on the paper's pipeline.

use cb_chase::{backchase_in, ChaseConfig, ChaseContext};
use pcql::Query;

fn norm(plans: &[Query]) -> Vec<Query> {
    let mut out: Vec<Query> = plans.iter().map(Query::alpha_normalized).collect();
    out.sort();
    out
}

/// Chases `q` and backchases the universal plan twice — once with the
/// caches on, once with them disabled — and asserts the outcomes are
/// identical (alpha-normalized, order-insensitive).
fn check_scenario(name: &str, catalog: &cb_catalog::Catalog, q: &Query, max_visited: usize) {
    let deps = catalog.all_constraints();
    let cfg = ChaseConfig::default();

    let mut memoized = ChaseContext::new(deps.clone(), cfg.clone());
    let mut disabled = ChaseContext::without_memo(deps, cfg);

    let u1 = memoized.chase(q).query;
    let u2 = disabled.chase(q).query;
    assert_eq!(u1, u2, "{name}: universal plans differ");

    let a = backchase_in(&mut memoized, &u1, max_visited);
    let b = backchase_in(&mut disabled, &u2, max_visited);
    assert_eq!(a.complete, b.complete, "{name}: completeness differs");
    assert_eq!(
        norm(&a.normal_forms),
        norm(&b.normal_forms),
        "{name}: normal forms differ between memoized and cache-disabled runs"
    );
    assert_eq!(
        norm(&a.visited),
        norm(&b.visited),
        "{name}: visited sets differ between memoized and cache-disabled runs"
    );
    // The memoized run must actually have reused work, and the disabled
    // context must never report a hit.
    assert!(memoized.stats().hits() > 0, "{name}: memo never hit");
    assert_eq!(disabled.stats().hits(), 0, "{name}: disabled cache hit");
}

#[test]
fn projdept_memoized_backchase_matches_cache_disabled() {
    let catalog = cb_catalog::scenarios::projdept::catalog();
    check_scenario(
        "projdept",
        &catalog,
        &cb_catalog::scenarios::projdept::query(),
        400,
    );
}

#[test]
fn projdept_mapping_only_memoized_backchase_matches_cache_disabled() {
    let catalog = cb_catalog::scenarios::projdept::catalog().without_semantic_constraints();
    check_scenario(
        "projdept (mapping-only)",
        &catalog,
        &cb_catalog::scenarios::projdept::query(),
        400,
    );
}

#[test]
fn relational_indexes_memoized_backchase_matches_cache_disabled() {
    let catalog = cb_catalog::scenarios::relational_indexes::catalog();
    check_scenario(
        "relational_indexes",
        &catalog,
        &cb_catalog::scenarios::relational_indexes::query(),
        400,
    );
}

#[test]
fn relational_views_memoized_backchase_matches_cache_disabled() {
    let catalog = cb_catalog::scenarios::relational_views::catalog();
    check_scenario(
        "relational_views",
        &catalog,
        &cb_catalog::scenarios::relational_views::query(),
        400,
    );
}

#[test]
fn projdept_pipeline_hits_the_memo() {
    // The full Algorithm-1 pipeline on ProjDept must exercise every
    // cache of its one-per-optimization context.
    let mut catalog = cb_catalog::scenarios::projdept::catalog();
    cb_catalog::scenarios::projdept::stats_for(&mut catalog, 100, 10, 20);
    let out = cb_optimizer::Optimizer::new(&catalog)
        .optimize(&cb_catalog::scenarios::projdept::query())
        .unwrap();
    let cache = out.cache;
    // The lattice nodes of one run are pairwise alpha-distinct, so the
    // chase/containment memos mostly pay off across *repeated* questions
    // — the implication memo (lookup-safety and pruning proofs repeat
    // heavily) and the parent-hom seeding are the in-run workhorses.
    assert!(
        cache.implication_hits > 0,
        "implication memo unused: {cache:?}"
    );
    assert!(cache.hits() > 0, "no memo hit at all: {cache:?}");
    assert!(cache.hit_rate() > 0.0);
    assert!(
        cache.seeded_hom_hits > 0,
        "lattice hom seeding unused: {cache:?}"
    );
}
