//! Verbatim reproduction checks of the paper's printed artifacts.

use universal_plans::chase::{chase, chase_step, ChaseConfig};
use universal_plans::prelude::*;

/// §3's chase-step example, character for character (modulo the fresh
/// variable name `j0` vs. the paper's `j`).
#[test]
fn chase_step_output_matches_paper_text() {
    let q = cb_catalog::scenarios::projdept::query();
    let c_ji = parse_dependency(
        "c_JI",
        "forall (d in depts) (s in d.DProjs) (p in Proj) where s = p.PName \
         -> exists (j in JI) where j.DOID = d and j.PN = p.PName",
    )
    .unwrap();
    let stepped = chase_step(&q, &c_ji, &ChaseConfig::default()).unwrap();
    assert_eq!(
        stepped.to_string(),
        "select struct(DN = d.DName, PB = p.Budg, PN = s) \
         from depts d, d.DProjs s, Proj p, JI j0 \
         where s = p.PName and p.CustName = \"CitiBank\" \
         and j0.DOID = d and j0.PN = p.PName"
    );
}

/// §1's chosen plan P3, printed verbatim by the optimizer under
/// realistic statistics.
#[test]
fn optimizer_prints_p3_verbatim() {
    let mut catalog = cb_catalog::scenarios::projdept::catalog();
    cb_catalog::scenarios::projdept::stats_for(&mut catalog, 100, 10, 20);
    let outcome = Optimizer::new(&catalog)
        .optimize(&cb_catalog::scenarios::projdept::query())
        .unwrap();
    assert_eq!(
        outcome.best.query.to_string(),
        "select struct(DN = t1.PDept, PB = t1.Budg, PN = t1.PName) \
         from SI{\"CitiBank\"} t1"
    );
}

/// The universal plan's conditions contain every condition the paper
/// prints for U.
#[test]
fn universal_plan_conditions_cover_paper_u() {
    let catalog = cb_catalog::scenarios::projdept::catalog();
    let u = chase(
        &cb_catalog::scenarios::projdept::query(),
        &catalog.all_constraints(),
        &ChaseConfig::default(),
    )
    .query;
    let conds: Vec<String> = u
        .where_
        .iter()
        .map(|e| format!("{} = {}", e.0, e.1))
        .collect();
    let has = |needle: &str| conds.iter().any(|c| c == needle);
    // Original query conditions.
    assert!(has("s = p.PName"));
    assert!(has("p.CustName = \"CitiBank\""));
    // INV1's EGD consequence ("d.DName = p.PDept" in the paper).
    assert!(has("p.PDept = d.DName") || has("d.DName = p.PDept"));
    // Dictionary coupling ("d = d'" / "s = s'").
    assert!(has("d = o0"));
    assert!(has("s = s1"));
    // Primary index ("i = p.PName and p = I[i]").
    assert!(has("i0 = p.PName"));
    assert!(has("I[i0] = p") || has("p = I[i0]"));
    // Secondary index ("p.CustName = k and p = t").
    assert!(has("k0 = p.CustName"));
    assert!(has("p = t1"));
    // Join index ("j.DOID = d and j.PN = p.PName").
    assert!(has("v0.DOID = d"));
    assert!(has("v0.PN = p.PName"));
}

/// §4's navigation-join plan for the views scenario, verbatim shape.
#[test]
fn navigation_join_plan_matches_paper_form() {
    let mut catalog = cb_catalog::scenarios::relational_views::catalog();
    cb_catalog::scenarios::relational_views::stats_for(&mut catalog, 10_000, 10_000, 10);
    let outcome = Optimizer::new(&catalog)
        .optimize(&cb_catalog::scenarios::relational_views::query())
        .unwrap();
    // The paper's final plan: select ... from V v, I_R[v.A] r', I_S⟨r'.B⟩ s'.
    // Ours: the I_R access is non-failing too (equivalent here, and
    // uniform), with machine-chosen variable names.
    let s = outcome.best.query.to_string();
    assert!(s.contains("from V v0"), "{s}");
    assert!(s.contains("IR{v0.A}") || s.contains("IR[v0.A]"), "{s}");
    assert!(s.contains("IS{"), "{s}");
}

/// Paper §2: "primary and secondary indexes are completely characterized
/// by constraints" — dropping one direction of the characterization loses
/// plans.
#[test]
fn both_index_directions_are_needed() {
    let full = cb_catalog::scenarios::projdept::catalog();
    let deps_full = full.all_constraints();
    // Remove SI2/SI3 (the dictionary-to-relation direction).
    let deps_oneway: Vec<Dependency> = deps_full
        .iter()
        .filter(|d| d.name != "SI2(SI)" && d.name != "SI3(SI)")
        .cloned()
        .collect();
    let q = cb_catalog::scenarios::projdept::query();
    let cfg = ChaseConfig::default();
    let u_full = chase(&q, &deps_full, &cfg).query;
    let u_oneway = chase(&q, &deps_oneway, &cfg).query;
    // The chase still *introduces* SI either way (SI1 is present)…
    assert!(u_full.from.iter().any(|b| b.src.to_string() == "dom(SI)"));
    assert!(u_oneway.from.iter().any(|b| b.src.to_string() == "dom(SI)"));
    // …but without the inverse direction the SI-only plan can no longer
    // be *justified*: removing the Proj binding requires SI2.
    let out_full = backchase(
        &u_full,
        &deps_full,
        &universal_plans::chase::BackchaseConfig {
            max_visited: 4096,
            ..Default::default()
        },
    );
    let out_oneway = backchase(
        &u_oneway,
        &deps_oneway,
        &universal_plans::chase::BackchaseConfig {
            max_visited: 4096,
            ..Default::default()
        },
    );
    let si_only = |nfs: &[Query]| {
        nfs.iter()
            .any(|p| p.from.len() == 2 && p.from.iter().all(|b| b.src.mentions_root("SI")))
    };
    assert!(si_only(&out_full.normal_forms));
    assert!(!si_only(&out_oneway.normal_forms));
}
