//! Pass 2: static lookup-safety.
//!
//! A failing lookup `M[k]` is safe only when `k ∈ dom(M)` is guaranteed
//! at its evaluation point. The backchase proves this dynamically with
//! the chase-based implication prover
//! ([`cb_chase::first_unsafe`]); this pass is the *syntactic* pre-pass:
//! it accepts exactly the lookups a `dom` binding in scope guards — a
//! binding `(g in dom(M))` whose variable is the key literally, or (where
//! the query's conditions are assumable) congruent to the key in the
//! query's e-graph. The obligation discipline is the prover's, verbatim:
//!
//! * a lookup in the `i`-th binding source sees only earlier bindings and
//!   no conditions;
//! * a lookup in a `where` condition sees all bindings, no conditions;
//! * a lookup in the output sees all bindings and all conditions.
//!
//! Static-safe therefore implies prover-safe by construction (the prover
//! runs the same syntactic guard before consulting implication), and the
//! test suite checks that differentially. Lookups this pass cannot
//! discharge are *deferred*, not condemned: they get an info-level
//! [`codes::LOOKUP_DEFERRED`] diagnostic and the prover has the last
//! word. The one statically-condemnable shape — a failing lookup with no
//! binding in scope at all — warns with [`codes::LOOKUP_UNGUARDABLE`].

use cb_chase::QueryGraph;
use pcql::path::Path;
use pcql::query::Query;

use crate::diag::{codes, Anchor, Diagnostic, Report, Severity};

/// Where one lookup obligation came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Site {
    Binding(usize),
    Output,
    Condition(usize),
}

impl Site {
    fn anchor(self) -> Anchor {
        match self {
            Site::Binding(i) => Anchor::Binding(i),
            Site::Output => Anchor::Output,
            Site::Condition(i) => Anchor::Condition(i),
        }
    }
}

/// The verdict for a single failing lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupVerdict {
    /// A `dom` guard in scope discharges the obligation syntactically.
    StaticSafe,
    /// No syntactic guard; the chase-based prover decides.
    Deferred,
    /// No binding in scope: no guard can exist, the prover will reject
    /// it too.
    Unguardable,
}

/// One analyzed lookup obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupFinding {
    pub lookup: Path,
    pub verdict: LookupVerdict,
}

/// Counters for the E17 record: how much of the lookup-safety work the
/// static pass discharges without the chase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LookupSummary {
    /// Distinct failing lookups examined.
    pub total: usize,
    /// Proven safe syntactically (no chase needed).
    pub static_safe: usize,
    /// Left to the chase-based prover.
    pub deferred: usize,
    /// Provably unguardable (empty scope).
    pub unguardable: usize,
    /// Every finding, for differential checks against the prover.
    pub findings: Vec<LookupFinding>,
}

impl LookupSummary {
    /// The lookups the static pass declared safe — the set that must
    /// never contradict the prover.
    pub fn statically_safe(&self) -> Vec<&Path> {
        self.findings
            .iter()
            .filter(|f| f.verdict == LookupVerdict::StaticSafe)
            .map(|f| &f.lookup)
            .collect()
    }

    /// All obligations discharged without the prover?
    pub fn all_static(&self) -> bool {
        self.deferred == 0 && self.unguardable == 0
    }

    /// Folds another summary into this one (aggregation across queries,
    /// e.g. every candidate plan of an optimization).
    pub fn absorb(&mut self, other: LookupSummary) {
        self.total += other.total;
        self.static_safe += other.static_safe;
        self.deferred += other.deferred;
        self.unguardable += other.unguardable;
        self.findings.extend(other.findings);
    }
}

/// Runs the static lookup-safety pass over one query.
pub fn check_lookups(q: &Query) -> (Report, LookupSummary) {
    let mut report = Report::new();
    let mut summary = LookupSummary::default();
    let mut checked: std::collections::BTreeSet<Path> = std::collections::BTreeSet::new();
    let mut guard_graph: Option<QueryGraph> = None;

    // (lookup, bindings in scope, conditions assumable, site) — the
    // prover's obligation list, in the prover's order, deduplicated the
    // prover's way (first site wins).
    let mut obligations: Vec<(Path, usize, bool, Site)> = Vec::new();
    for (i, b) in q.from.iter().enumerate() {
        for sub in b.src.subpaths() {
            if matches!(sub, Path::Get(_, _)) {
                obligations.push((sub.clone(), i, false, Site::Binding(i)));
            }
        }
    }
    for (_, p) in q.output.paths() {
        for sub in p.subpaths() {
            if matches!(sub, Path::Get(_, _)) {
                obligations.push((sub.clone(), q.from.len(), true, Site::Output));
            }
        }
    }
    for (ci, eq) in q.where_.iter().enumerate() {
        for p in [&eq.0, &eq.1] {
            for sub in p.subpaths() {
                if matches!(sub, Path::Get(_, _)) {
                    obligations.push((sub.clone(), q.from.len(), false, Site::Condition(ci)));
                }
            }
        }
    }

    for (lookup, scope, with_conditions, site) in obligations {
        if !checked.insert(lookup.clone()) {
            continue;
        }
        summary.total += 1;
        let (m, k) = match &lookup {
            Path::Get(m, k) => (m.as_ref().clone(), k.as_ref().clone()),
            _ => unreachable!("obligations only collect Get paths"),
        };
        let in_scope = &q.from[..scope];
        let mut guarded = false;
        for b in in_scope {
            if b.src != Path::Dom(Box::new(m.clone())) {
                continue;
            }
            if Path::Var(b.var.clone()) == k {
                guarded = true;
                break;
            }
            if with_conditions {
                let g = guard_graph.get_or_insert_with(|| QueryGraph::of_query(q));
                if g.egraph.paths_equal(&Path::Var(b.var.clone()), &k) {
                    guarded = true;
                    break;
                }
            }
        }
        let verdict = if guarded {
            summary.static_safe += 1;
            LookupVerdict::StaticSafe
        } else if in_scope.is_empty() {
            summary.unguardable += 1;
            report.push(Diagnostic::new(
                codes::LOOKUP_UNGUARDABLE,
                Severity::Warning,
                site.anchor(),
                format!("failing lookup `{lookup}` has no binding in scope; no guard can exist"),
            ));
            LookupVerdict::Unguardable
        } else {
            summary.deferred += 1;
            report.push(Diagnostic::new(
                codes::LOOKUP_DEFERRED,
                Severity::Info,
                site.anchor(),
                format!(
                    "failing lookup `{lookup}` is not syntactically guarded; \
                     safety deferred to the chase-based prover"
                ),
            ));
            LookupVerdict::Deferred
        };
        summary.findings.push(LookupFinding { lookup, verdict });
    }
    (report, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcql::parser::parse_query;

    #[test]
    fn guarded_dom_lookup_is_static_safe() {
        // The paper's P3 shape: `from dom(SI) k, SI[k] t`.
        let q = parse_query(
            "select struct(N = t.PName) from dom(SI) k, SI[k] t where k = \"CitiBank\"",
        )
        .unwrap();
        let (report, summary) = check_lookups(&q);
        assert!(report.is_empty(), "{report}");
        assert_eq!(summary.total, 1);
        assert_eq!(summary.static_safe, 1);
        assert!(summary.all_static());
    }

    #[test]
    fn congruent_key_in_output_is_static_safe() {
        // The output lookup key equals the guard variable only through a
        // condition — assumable at output position.
        let q = parse_query("select I[r.A] from dom(I) k, R r where k = r.A").unwrap();
        let (report, summary) = check_lookups(&q);
        assert!(report.is_empty(), "{report}");
        assert_eq!(summary.static_safe, 1);
    }

    #[test]
    fn unguarded_lookup_defers_to_the_prover() {
        // The paper's P4 shape: lookups guarded only semantically.
        let q = parse_query(
            "select struct(D = Dept[j.DOID].DName) from JI j, I[j.PN] p \
             where p.CustName = \"CitiBank\"",
        )
        .unwrap();
        let (report, summary) = check_lookups(&q);
        assert!(!report.has_errors(), "{report}");
        assert!(summary.static_safe == 0);
        assert!(summary.deferred >= 1);
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.code == codes::LOOKUP_DEFERRED));
    }

    #[test]
    fn empty_scope_lookup_is_unguardable() {
        let q = parse_query("select struct(X = t.X) from I[\"k\"] t").unwrap();
        let (report, summary) = check_lookups(&q);
        assert_eq!(summary.unguardable, 1);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == codes::LOOKUP_UNGUARDABLE && d.severity == Severity::Warning));
    }

    #[test]
    fn lookup_free_queries_have_empty_summaries() {
        let q = parse_query("select struct(A = r.A) from R r where r.A = 5").unwrap();
        let (report, summary) = check_lookups(&q);
        assert!(report.is_empty());
        assert_eq!(summary.total, 0);
        assert!(summary.all_static());
    }

    #[test]
    fn condition_site_lookups_do_not_assume_conditions() {
        // In a condition, `k = r.A` itself cannot justify the lookup
        // (conjunct order is engine-defined) — deferred, not safe.
        let q = parse_query("select struct(A = r.A) from dom(I) k, R r where I[r.A] = r").unwrap();
        let (_, summary) = check_lookups(&q);
        assert_eq!(summary.static_safe, 0);
        assert_eq!(summary.deferred, 1);
    }
}
