//! Pass 3: dependency-set analysis.
//!
//! Wraps [`cb_chase::analyze_termination_with_witness`] into diagnostics:
//! a verdict of [`TerminationVerdict::Unknown`] becomes a warning whose
//! message carries the position-graph cycle and the dependencies drawing
//! its edges — evidence, not a bare verdict. Each blamed dependency is
//! additionally anchored individually so a report consumer can jump to
//! the constraint at fault.

use cb_chase::{analyze_termination_with_witness, TerminationVerdict};
use pcql::Dependency;

use crate::diag::{codes, Anchor, Diagnostic, Report, Severity};

/// Classifies a dependency set and renders the failure evidence as
/// diagnostics. Terminating sets (full or weakly acyclic) produce no
/// diagnostics at all.
pub fn check_termination(deps: &[Dependency]) -> (TerminationVerdict, Report) {
    let (verdict, witness) = analyze_termination_with_witness(deps);
    let mut report = Report::new();
    if let Some(w) = witness {
        report.push(Diagnostic::new(
            codes::CHASE_TERMINATION,
            Severity::Warning,
            Anchor::Catalog,
            format!(
                "no static chase-termination guarantee: {w}; \
                 the restricted chase relies on its budgets"
            ),
        ));
        for dep in &w.dependencies {
            report.push(Diagnostic::new(
                codes::CHASE_TERMINATION,
                Severity::Warning,
                Anchor::Dependency(dep.clone()),
                format!(
                    "dependency lies on the special-edge cycle {}",
                    w.positions.join(" -> ")
                ),
            ));
        }
    }
    (verdict, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcql::parser::parse_dependency;

    #[test]
    fn terminating_sets_are_diagnostic_free() {
        let deps =
            vec![
                parse_dependency("ric", "forall (r in R) -> exists (s in S) where r.B = s.B")
                    .unwrap(),
            ];
        let (verdict, report) = check_termination(&deps);
        assert_eq!(verdict, TerminationVerdict::WeaklyAcyclic);
        assert!(report.is_empty());
    }

    #[test]
    fn unknown_verdict_carries_the_cycle_and_blames_dependencies() {
        let deps = vec![
            parse_dependency("rs", "forall (r in R) -> exists (s in S) where r.A = s.A").unwrap(),
            parse_dependency("sr", "forall (s in S) -> exists (r in R) where s.B = r.B").unwrap(),
        ];
        let (verdict, report) = check_termination(&deps);
        assert_eq!(verdict, TerminationVerdict::Unknown);
        // One catalog-level diagnostic with the cycle, one per blamed dep.
        assert_eq!(report.len(), 3);
        assert!(report.diagnostics[0].message.contains("R -> S -> R"));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.anchor == Anchor::Dependency("rs".into())));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.anchor == Anchor::Dependency("sr".into())));
        // Never error severity: the restricted chase may still terminate.
        assert!(!report.has_errors());
    }

    #[test]
    fn projdept_catalog_reports_its_known_cycle() {
        let cat = cb_catalog::scenarios::projdept::catalog();
        let (verdict, report) = check_termination(&cat.all_constraints());
        assert_eq!(verdict, TerminationVerdict::Unknown);
        assert!(!report.is_empty());
        assert!(!report.has_errors());
    }
}
