//! Pass 1: query and catalog well-formedness.
//!
//! Queries are checked for scoping (unbound variables, duplicate
//! bindings), dead variables, unknown roots, and type consistency against
//! the catalog's combined schema. Catalogs are checked constraint by
//! constraint: every dependency the catalog emits must pass
//! [`pcql::Dependency::check_scopes`] and type-check against the combined
//! schema — the guarantee the chase silently assumes.

use cb_catalog::Catalog;
use pcql::query::{Query, ScopeError};
use pcql::schema::Schema;
use pcql::typecheck::{check_dependency, check_query, TypeError};
use pcql::Dependency;

use crate::diag::{codes, Anchor, Diagnostic, Report, Severity};

/// Maps a scope error to its diagnostic, anchored as precisely as the
/// error allows.
fn scope_diag(q: &Query, e: &ScopeError) -> Diagnostic {
    let binding_index = |var: &str| q.from.iter().position(|b| b.var == var);
    match e {
        ScopeError::UnboundInBinding { binding, var } => Diagnostic::new(
            codes::QUERY_SCOPE,
            Severity::Error,
            binding_index(binding).map_or(Anchor::Query, Anchor::Binding),
            format!("binding `{binding}` refers to unbound variable `{var}`"),
        ),
        ScopeError::DuplicateVar(v) => Diagnostic::new(
            codes::DUPLICATE_VAR,
            Severity::Error,
            binding_index(v).map_or(Anchor::Query, Anchor::Binding),
            format!("variable `{v}` is bound more than once"),
        ),
        ScopeError::UnboundInWhere(v) => Diagnostic::new(
            codes::QUERY_SCOPE,
            Severity::Error,
            Anchor::Query,
            format!("where clause refers to unbound variable `{v}`"),
        ),
        ScopeError::UnboundInSelect(v) => Diagnostic::new(
            codes::QUERY_SCOPE,
            Severity::Error,
            Anchor::Output,
            format!("select clause refers to unbound variable `{v}`"),
        ),
    }
}

/// Maps a type error to a diagnostic (scope errors route through
/// [`scope_diag`], unknown roots get their own code).
fn type_diag(q: &Query, e: TypeError) -> Diagnostic {
    match e {
        TypeError::Scope(se) => scope_diag(q, &se),
        TypeError::UnknownRoot(r) => Diagnostic::new(
            codes::UNKNOWN_ROOT,
            Severity::Error,
            Anchor::Query,
            format!("unknown catalog root `{r}`"),
        ),
        other => Diagnostic::new(
            codes::TYPE_MISMATCH,
            Severity::Error,
            Anchor::Query,
            other.to_string(),
        ),
    }
}

/// Checks one query against a catalog: scoping, types, dead variables.
pub fn check_query_wellformed(catalog: &Catalog, q: &Query) -> Report {
    let mut report = Report::new();
    if let Err(e) = q.check_scopes() {
        report.push(scope_diag(q, &e));
        // Typing would only repeat the scope failure.
        return report;
    }
    if let Err(e) = check_query(&catalog.combined_schema(), q) {
        report.push(type_diag(q, e));
    }
    // Dead variables: bound but never read by a later binding source, a
    // condition, or the output. Under set semantics such a binding still
    // matters (an empty collection empties the result), so this is a
    // warning about intent, not an error.
    for (i, b) in q.from.iter().enumerate() {
        let used_later = q.from[i + 1..].iter().any(|b2| b2.src.mentions_var(&b.var));
        let used_where = q
            .where_
            .iter()
            .any(|eq| eq.0.mentions_var(&b.var) || eq.1.mentions_var(&b.var));
        let used_out = q.output.paths().iter().any(|(_, p)| p.mentions_var(&b.var));
        if !used_later && !used_where && !used_out {
            report.push(Diagnostic::new(
                codes::DEAD_VAR,
                Severity::Warning,
                Anchor::Binding(i),
                format!(
                    "variable `{}` is never read; the binding only contributes existence",
                    b.var
                ),
            ));
        }
    }
    report
}

/// Checks a dependency set against a schema: scopes first (the
/// structural contract every emitter owes), then types.
pub fn check_dependencies(schema: &Schema, deps: &[Dependency]) -> Report {
    let mut report = Report::new();
    for d in deps {
        if let Err(e) = d.check_scopes() {
            report.push(Diagnostic::new(
                codes::DEP_SCOPE,
                Severity::Error,
                Anchor::Dependency(d.name.clone()),
                e.to_string(),
            ));
            continue;
        }
        if let Err(e) = check_dependency(schema, d) {
            report.push(Diagnostic::new(
                codes::DEP_TYPE,
                Severity::Error,
                Anchor::Dependency(d.name.clone()),
                e.to_string(),
            ));
        }
    }
    report
}

/// Checks every constraint a catalog emits (semantic and mapping).
pub fn check_catalog_wellformed(catalog: &Catalog) -> Report {
    check_dependencies(&catalog.combined_schema(), &catalog.all_constraints())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcql::parser::parse_query;
    use pcql::path::Path;
    use pcql::query::{Binding, Equality, Output};
    use pcql::Type;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int)]);
        c.add_logical_relation("S", [("B", Type::Int), ("C", Type::Int)]);
        c.add_direct_mapping("R");
        c.add_direct_mapping("S");
        c
    }

    #[test]
    fn clean_query_lints_clean() {
        let c = catalog();
        let q = parse_query("select struct(A = r.A) from R r, S s where r.B = s.B").unwrap();
        let report = check_query_wellformed(&c, &q);
        assert!(!report.has_errors(), "{report}");
        // `s` is read by the join condition: no dead-variable warning.
        assert!(report.is_empty(), "{report}");
    }

    #[test]
    fn unbound_variable_is_cb001() {
        let c = catalog();
        let mut q = parse_query("select struct(A = r.A) from R r, S s where r.B = s.B").unwrap();
        q.from.remove(1);
        let report = check_query_wellformed(&c, &q);
        assert!(report
            .errors()
            .any(|d| d.code == codes::QUERY_SCOPE && d.message.contains("`s`")));
    }

    #[test]
    fn duplicate_binding_is_cb002() {
        let c = catalog();
        let q = Query::new(
            Output::Path(Path::var("r")),
            vec![
                Binding::iter("r", Path::root("R")),
                Binding::iter("r", Path::root("S")),
            ],
            vec![],
        );
        let report = check_query_wellformed(&c, &q);
        assert!(report.errors().any(|d| d.code == codes::DUPLICATE_VAR));
    }

    #[test]
    fn dead_variable_is_a_cb003_warning() {
        let c = catalog();
        let q = parse_query("select struct(A = r.A) from R r, S s").unwrap();
        let report = check_query_wellformed(&c, &q);
        assert!(!report.has_errors());
        let dead: Vec<_> = report.at(Severity::Warning).collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].code, codes::DEAD_VAR);
        assert_eq!(dead[0].anchor, Anchor::Binding(1));
    }

    #[test]
    fn unknown_root_and_type_errors() {
        let c = catalog();
        let q = parse_query("select struct(X = x.X) from Nowhere x").unwrap();
        let report = check_query_wellformed(&c, &q);
        assert!(report.errors().any(|d| d.code == codes::UNKNOWN_ROOT));

        let q2 = parse_query("select struct(X = r.Nope) from R r").unwrap();
        let report2 = check_query_wellformed(&c, &q2);
        assert!(report2.errors().any(|d| d.code == codes::TYPE_MISMATCH));
    }

    #[test]
    fn broken_dependency_scope_is_cb006() {
        let c = catalog();
        // Premise condition mentions a variable no binding introduces.
        let bad = Dependency::new(
            "broken",
            vec![Binding::iter("r", Path::root("R"))],
            vec![Equality(Path::var("ghost"), Path::var("r"))],
            vec![],
            vec![Equality(Path::var("r"), Path::var("r"))],
        );
        let report = check_dependencies(&c.combined_schema(), &[bad]);
        assert!(
            report
                .errors()
                .any(|d| d.code == codes::DEP_SCOPE
                    && d.anchor == Anchor::Dependency("broken".into()))
        );
    }

    #[test]
    fn ill_typed_dependency_is_cb007() {
        let c = catalog();
        let bad = Dependency::new(
            "ill-typed",
            vec![Binding::iter("r", Path::root("R"))],
            vec![],
            vec![],
            vec![Equality(Path::var("r").field("Nope"), Path::int(1))],
        );
        let report = check_dependencies(&c.combined_schema(), &[bad]);
        assert!(report.errors().any(|d| d.code == codes::DEP_TYPE));
    }

    #[test]
    fn builtin_catalogs_emit_only_clean_constraints() {
        for (name, cat) in [
            ("projdept", cb_catalog::scenarios::projdept::catalog()),
            (
                "relational_indexes",
                cb_catalog::scenarios::relational_indexes::catalog(),
            ),
            (
                "relational_views",
                cb_catalog::scenarios::relational_views::catalog(),
            ),
        ] {
            let report = check_catalog_wellformed(&cat);
            assert!(report.is_empty(), "{name}: {report}");
        }
    }
}
