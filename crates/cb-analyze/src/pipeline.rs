//! Pass 4: pipeline dataflow verification.
//!
//! An abstract interpreter over [`cb_engine::Pipeline`] — the compiled
//! plan is replayed over an abstract register file that tracks only
//! *written-ness*, independently re-deriving what the slot compiler had
//! to get right:
//!
//! * **def-before-use** — every accessor reads only registers some
//!   earlier operator wrote; a hash join's probe key must not read the
//!   join's own register (it resolves against the outer stream), and its
//!   build key must read *only* the join's own register (the table is
//!   built once and cached across probes, so any outer register read
//!   would bake a stale value into it);
//! * **resolvability** — no accessor embeds an `UnknownVar`, every
//!   interned root id is in range and agrees with the operator's root
//!   name;
//! * **layout** — each register is written exactly once and every slot of
//!   the register file has a writer; hash-table indices are unique, in
//!   range, and all used; merge-run indices obey the same arena
//!   discipline (CB037), and merge joins obey the hash join's key
//!   discipline (probe key outer-only, build key own-slot-only);
//! * **batch layout** — the pipeline's batch size is nonzero (CB038):
//!   the batched driver fills fixed-capacity batches, and a zero
//!   capacity could never make progress;
//! * **liveness** — registers written but never read (warning: the
//!   binding only contributes existence), mirroring the query-level
//!   dead-variable lint;
//! * **groundedness** — hoisted [`GroundFilter`]s must be genuinely
//!   environment-independent: no register reads, no unknown variables.

use std::collections::{BTreeMap, BTreeSet};

use cb_engine::{Access, AccessKind, CompiledOutput, Operator, Pipeline};

use crate::diag::{codes, Anchor, Diagnostic, Report, Severity};

/// Visits `a` and every nested accessor (lookup dictionaries, keys, dom
/// arguments), outermost first.
fn walk_access(a: &Access, f: &mut impl FnMut(&Access)) {
    f(a);
    match a.kind() {
        AccessKind::Dom(inner) => walk_access(inner, f),
        AccessKind::Get { dict, key } | AccessKind::GetOrEmpty { dict, key } => {
            walk_access(dict, f);
            walk_access(key, f);
        }
        AccessKind::Slot(_)
        | AccessKind::UnknownVar(_)
        | AccessKind::Root { .. }
        | AccessKind::Const => {}
    }
}

/// All register slots an accessor reads, anywhere in its structure.
fn slots_read(a: &Access) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    walk_access(a, &mut |x| {
        if let AccessKind::Slot(i) = x.kind() {
            out.insert(i);
        }
    });
    out
}

/// The abstract state threaded through the pipeline replay.
struct Verifier<'p> {
    p: &'p Pipeline,
    report: Report,
    /// slot -> index of the operator that wrote it.
    written: BTreeMap<usize, usize>,
    /// Every slot read by any accessor (for liveness).
    read: BTreeSet<usize>,
    /// table index -> operator that owns it.
    tables_seen: BTreeMap<usize, usize>,
    /// merge-run index -> operator that owns it.
    runs_seen: BTreeMap<usize, usize>,
}

impl Verifier<'_> {
    /// Resolvability of one accessor at `anchor`: unknown vars and root
    /// interning, plus read bookkeeping. `allowed` is the def-before-use
    /// register set; `what` names the accessor in messages.
    fn check_access(&mut self, a: &Access, allowed: &BTreeSet<usize>, anchor: Anchor, what: &str) {
        let mut diags: Vec<Diagnostic> = Vec::new();
        walk_access(a, &mut |x| match x.kind() {
            AccessKind::UnknownVar(v) => diags.push(Diagnostic::new(
                codes::UNRESOLVED_VAR,
                Severity::Error,
                anchor.clone(),
                format!("{what} `{a}` references unresolved variable `{v}`"),
            )),
            AccessKind::Slot(i) => {
                self.read.insert(i);
                if !allowed.contains(&i) {
                    diags.push(Diagnostic::new(
                        codes::READ_BEFORE_WRITE,
                        Severity::Error,
                        anchor.clone(),
                        format!("{what} `{a}` reads register {i} before any operator writes it"),
                    ));
                }
            }
            AccessKind::Root { id, name } => {
                if self.p.roots.get(id).map(String::as_str) != Some(name) {
                    diags.push(Diagnostic::new(
                        codes::ROOT_INTERN,
                        Severity::Error,
                        anchor.clone(),
                        format!(
                            "{what} `{a}` reads root `{name}` through id {id}, \
                             which the root table does not intern as that name"
                        ),
                    ));
                }
            }
            AccessKind::Const
            | AccessKind::Dom(_)
            | AccessKind::Get { .. }
            | AccessKind::GetOrEmpty { .. } => {}
        });
        for d in diags {
            self.report.push(d);
        }
    }

    /// Records the write of `slot` by operator `op_idx` (layout checks).
    fn write_slot(&mut self, slot: usize, op_idx: usize, var: &str) {
        if slot >= self.p.n_slots {
            self.report.push(Diagnostic::new(
                codes::SLOT_LAYOUT,
                Severity::Error,
                Anchor::PipelineOp(op_idx),
                format!(
                    "binding `{var}` writes register {slot}, but the register file has only {} slot(s)",
                    self.p.n_slots
                ),
            ));
        }
        if let Some(&prev) = self.written.get(&slot) {
            self.report.push(Diagnostic::new(
                codes::SLOT_LAYOUT,
                Severity::Error,
                Anchor::PipelineOp(op_idx),
                format!("binding `{var}` writes register {slot}, already written by op #{prev}"),
            ));
        } else {
            self.written.insert(slot, op_idx);
        }
    }

    fn check_root_op(&mut self, root_id: usize, root: &str, op_idx: usize) {
        if self.p.roots.get(root_id).map(String::as_str) != Some(root) {
            self.report.push(Diagnostic::new(
                codes::ROOT_INTERN,
                Severity::Error,
                Anchor::PipelineOp(op_idx),
                format!("root `{root}` claims id {root_id}, which the root table does not intern"),
            ));
        }
    }
}

/// Verifies one compiled pipeline. An empty report certifies the slot
/// compiler's output for this plan; error-severity findings mean the
/// pipeline would misbehave (or error) at run time.
pub fn check_pipeline(p: &Pipeline) -> Report {
    let mut v = Verifier {
        p,
        report: Report::new(),
        written: BTreeMap::new(),
        read: BTreeSet::new(),
        tables_seen: BTreeMap::new(),
        runs_seen: BTreeMap::new(),
    };

    // Batch layout: the batched driver flushes batches at capacity; a
    // zero capacity could never hold a row.
    if p.batch_size == 0 {
        v.report.push(Diagnostic::new(
            codes::BATCH_LAYOUT,
            Severity::Error,
            Anchor::Catalog,
            "pipeline batch size is 0; the batched driver cannot make progress".to_string(),
        ));
    }

    // Hoisted ground filters run before any register is written: both
    // sides must be environment-independent.
    for (gi, g) in p.ground.iter().enumerate() {
        for (side, a) in [("left", &g.left), ("right", &g.right)] {
            let reads = slots_read(a);
            let mut unknown = false;
            walk_access(a, &mut |x| {
                unknown |= matches!(x.kind(), AccessKind::UnknownVar(_));
            });
            if !reads.is_empty() || unknown {
                v.report.push(Diagnostic::new(
                    codes::GROUND_NOT_GROUND,
                    Severity::Error,
                    Anchor::GroundFilter(gi),
                    format!(
                        "{side} side `{a}` of a hoisted ground filter is not \
                         environment-independent"
                    ),
                ));
            }
            // Still check root interning on ground accessors.
            v.check_access(a, &reads, Anchor::GroundFilter(gi), "ground accessor");
        }
    }

    for (i, op) in p.ops.iter().enumerate() {
        let readable: BTreeSet<usize> = v.written.keys().copied().collect();
        match op {
            Operator::Scan {
                var,
                slot,
                root,
                root_id,
            } => {
                v.check_root_op(*root_id, root, i);
                v.write_slot(*slot, i, var);
            }
            Operator::IterDependent { var, slot, src } | Operator::Bind { var, slot, src } => {
                v.check_access(src, &readable, Anchor::PipelineOp(i), "source");
                v.write_slot(*slot, i, var);
            }
            Operator::Filter { left, right } => {
                v.check_access(left, &readable, Anchor::PipelineOp(i), "filter operand");
                v.check_access(right, &readable, Anchor::PipelineOp(i), "filter operand");
            }
            Operator::HashJoin {
                row_var,
                slot,
                root,
                root_id,
                build_key,
                probe_key,
                table,
            } => {
                v.check_root_op(*root_id, root, i);
                // The probe key resolves against the outer stream only.
                v.check_access(probe_key, &readable, Anchor::PipelineOp(i), "probe key");
                if slots_read(probe_key).contains(slot) {
                    v.report.push(Diagnostic::new(
                        codes::READ_BEFORE_WRITE,
                        Severity::Error,
                        Anchor::PipelineOp(i),
                        format!("probe key `{probe_key}` reads the join's own register {slot}"),
                    ));
                }
                // The build key sees only the join's own row: the table
                // is built once and cached across probes, so an outer
                // register read would freeze a stale value into it.
                let own: BTreeSet<usize> = [*slot].into();
                v.check_access(build_key, &own, Anchor::PipelineOp(i), "build key");
                for s in slots_read(build_key) {
                    if s != *slot {
                        v.report.push(Diagnostic::new(
                            codes::READ_BEFORE_WRITE,
                            Severity::Error,
                            Anchor::PipelineOp(i),
                            format!(
                                "build key `{build_key}` of a cached table reads outer \
                                 register {s}"
                            ),
                        ));
                    }
                }
                if *table >= p.n_tables {
                    v.report.push(Diagnostic::new(
                        codes::TABLE_LAYOUT,
                        Severity::Error,
                        Anchor::PipelineOp(i),
                        format!(
                            "table index {table} out of range (arena has {})",
                            p.n_tables
                        ),
                    ));
                } else if let Some(&prev) = v.tables_seen.get(table) {
                    v.report.push(Diagnostic::new(
                        codes::TABLE_LAYOUT,
                        Severity::Error,
                        Anchor::PipelineOp(i),
                        format!("table index {table} already owned by op #{prev}"),
                    ));
                } else {
                    v.tables_seen.insert(*table, i);
                }
                v.write_slot(*slot, i, row_var);
            }
            Operator::MergeJoin {
                row_var,
                slot,
                root,
                root_id,
                build_key,
                probe_key,
                run,
            } => {
                v.check_root_op(*root_id, root, i);
                // The probe key resolves against the outer stream only.
                v.check_access(probe_key, &readable, Anchor::PipelineOp(i), "probe key");
                if slots_read(probe_key).contains(slot) {
                    v.report.push(Diagnostic::new(
                        codes::MERGE_DISCIPLINE,
                        Severity::Error,
                        Anchor::PipelineOp(i),
                        format!("probe key `{probe_key}` reads the join's own register {slot}"),
                    ));
                }
                // The build key sees only the join's own row: the run is
                // materialized once and cached across probes, so an
                // outer register read would freeze a stale key into it.
                let own: BTreeSet<usize> = [*slot].into();
                v.check_access(build_key, &own, Anchor::PipelineOp(i), "build key");
                for s in slots_read(build_key) {
                    if s != *slot {
                        v.report.push(Diagnostic::new(
                            codes::MERGE_DISCIPLINE,
                            Severity::Error,
                            Anchor::PipelineOp(i),
                            format!(
                                "build key `{build_key}` of a cached merge run reads outer \
                                 register {s}"
                            ),
                        ));
                    }
                }
                if *run >= p.n_runs {
                    v.report.push(Diagnostic::new(
                        codes::MERGE_DISCIPLINE,
                        Severity::Error,
                        Anchor::PipelineOp(i),
                        format!(
                            "merge-run index {run} out of range (arena has {})",
                            p.n_runs
                        ),
                    ));
                } else if let Some(&prev) = v.runs_seen.get(run) {
                    v.report.push(Diagnostic::new(
                        codes::MERGE_DISCIPLINE,
                        Severity::Error,
                        Anchor::PipelineOp(i),
                        format!("merge-run index {run} already owned by op #{prev}"),
                    ));
                } else {
                    v.runs_seen.insert(*run, i);
                }
                v.write_slot(*slot, i, row_var);
            }
        }
    }

    // Output accesses see the full register file.
    let all_written: BTreeSet<usize> = v.written.keys().copied().collect();
    match &p.output {
        CompiledOutput::Struct(fields) => {
            for (_, a) in fields {
                v.check_access(a, &all_written, Anchor::Output, "output accessor");
            }
        }
        CompiledOutput::Path(a) => {
            v.check_access(a, &all_written, Anchor::Output, "output accessor");
        }
    }

    // Layout: every slot of the register file must have a writer.
    for slot in 0..p.n_slots {
        if !v.written.contains_key(&slot) {
            v.report.push(Diagnostic::new(
                codes::SLOT_LAYOUT,
                Severity::Error,
                Anchor::Catalog,
                format!("register {slot} is never written by any operator"),
            ));
        }
    }
    // Liveness: written but never read.
    for (&slot, &op_idx) in &v.written {
        if !v.read.contains(&slot) {
            let var = match &p.ops[op_idx] {
                Operator::Scan { var, .. }
                | Operator::IterDependent { var, .. }
                | Operator::Bind { var, .. } => var.as_str(),
                Operator::HashJoin { row_var, .. } | Operator::MergeJoin { row_var, .. } => {
                    row_var.as_str()
                }
                Operator::Filter { .. } => "?",
            };
            v.report.push(Diagnostic::new(
                codes::DEAD_SLOT,
                Severity::Warning,
                Anchor::PipelineOp(op_idx),
                format!(
                    "register {slot} (`{var}`) is never read; the binding only \
                     contributes existence"
                ),
            ));
        }
    }
    // Table arena: every index must be owned by some join.
    for t in 0..p.n_tables {
        if !v.tables_seen.contains_key(&t) {
            v.report.push(Diagnostic::new(
                codes::TABLE_LAYOUT,
                Severity::Error,
                Anchor::Catalog,
                format!("hash-table index {t} is allocated but owned by no join"),
            ));
        }
    }
    // Run arena: the same discipline for merge runs.
    for r in 0..p.n_runs {
        if !v.runs_seen.contains_key(&r) {
            v.report.push(Diagnostic::new(
                codes::MERGE_DISCIPLINE,
                Severity::Error,
                Anchor::Catalog,
                format!("merge-run index {r} is allocated but owned by no join"),
            ));
        }
    }

    v.report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_engine::{compile, CompileOptions};
    use pcql::parser::parse_query;

    fn compile_both(src: &str) -> Vec<Pipeline> {
        let q = parse_query(src).unwrap();
        vec![
            compile(
                &q,
                CompileOptions {
                    hash_joins: false,
                    ..Default::default()
                },
            ),
            compile(
                &q,
                CompileOptions {
                    hash_joins: true,
                    ..Default::default()
                },
            ),
            compile(
                &q,
                CompileOptions {
                    hash_joins: true,
                    merge_joins: true,
                    ..Default::default()
                },
            ),
        ]
    }

    fn merge_pipeline() -> Pipeline {
        let q =
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where s.B = r.B").unwrap();
        let p = compile(
            &q,
            CompileOptions {
                merge_joins: true,
                ..Default::default()
            },
        );
        assert!(
            p.ops
                .iter()
                .any(|op| matches!(op, Operator::MergeJoin { .. })),
            "compiler did not choose a merge join: {p}"
        );
        p
    }

    #[test]
    fn compiler_output_verifies_clean() {
        for src in [
            "select struct(A = r.A) from R r where r.A = 5",
            "select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B",
            "select struct(N = t.PName) from dom(SI) k, SI[k] t where k = \"CitiBank\"",
            "select struct(X = p.B) from R r, I[r.A] p where 1 = 1",
            "select r from R r, S s where r.B = s.B and s.C = 7",
        ] {
            for p in compile_both(src) {
                let report = check_pipeline(&p);
                assert!(!report.has_errors(), "{src} (pipeline {p}): {report}");
            }
        }
    }

    #[test]
    fn existence_only_binding_is_a_dead_slot_warning() {
        let q = parse_query("select struct(A = r.A) from R r, S s").unwrap();
        let p = compile(&q, CompileOptions::default());
        let report = check_pipeline(&p);
        assert!(!report.has_errors(), "{report}");
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == codes::DEAD_SLOT && d.message.contains("`s`")));
    }

    #[test]
    fn swapped_slot_write_is_caught() {
        let q =
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
        let mut p = compile(
            &q,
            CompileOptions {
                hash_joins: false,
                ..Default::default()
            },
        );
        // Mutation canary: the second scan writes the first scan's slot.
        match &mut p.ops[1] {
            Operator::Scan { slot, .. } => *slot = 0,
            other => panic!("expected a scan, got {other}"),
        }
        let report = check_pipeline(&p);
        assert!(report.errors().any(|d| d.code == codes::SLOT_LAYOUT));
        // Register 1 now has no writer, and the filter reads it.
        assert!(report.errors().any(|d| d.code == codes::READ_BEFORE_WRITE));
    }

    #[test]
    fn dropped_binding_leaves_an_unresolved_var() {
        let mut q =
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
        q.from.remove(1);
        let p = compile(&q, CompileOptions::default());
        let report = check_pipeline(&p);
        assert!(report.errors().any(|d| d.code == codes::UNRESOLVED_VAR));
    }

    #[test]
    fn hash_join_key_discipline_is_enforced() {
        let q =
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where s.B = r.B").unwrap();
        let p = compile(
            &q,
            CompileOptions {
                hash_joins: true,
                ..Default::default()
            },
        );
        // Sanity: the compiler produced a hash join and it verifies.
        assert!(p
            .ops
            .iter()
            .any(|op| matches!(op, Operator::HashJoin { .. })));
        assert!(!check_pipeline(&p).has_errors());

        // Mutation canary: swap build and probe keys — the probe key now
        // reads the join's own register and the build key an outer one.
        let mut bad = p.clone();
        for op in &mut bad.ops {
            if let Operator::HashJoin {
                build_key,
                probe_key,
                ..
            } = op
            {
                std::mem::swap(build_key, probe_key);
            }
        }
        let report = check_pipeline(&bad);
        assert!(report.errors().any(|d| d.message.contains("own register")));
        assert!(report
            .errors()
            .any(|d| d.message.contains("outer register")));
    }

    #[test]
    fn merge_join_key_discipline_is_enforced() {
        let p = merge_pipeline();
        assert!(!check_pipeline(&p).has_errors());

        // Mutation canary: swap build and probe keys — the probe key now
        // reads the join's own register and the build key an outer one,
        // both reported under the merge-discipline code.
        let mut bad = p.clone();
        for op in &mut bad.ops {
            if let Operator::MergeJoin {
                build_key,
                probe_key,
                ..
            } = op
            {
                std::mem::swap(build_key, probe_key);
            }
        }
        let report = check_pipeline(&bad);
        assert!(report
            .errors()
            .any(|d| d.code == codes::MERGE_DISCIPLINE && d.message.contains("own register")));
        assert!(report
            .errors()
            .any(|d| d.code == codes::MERGE_DISCIPLINE && d.message.contains("outer register")));
    }

    #[test]
    fn broken_run_arena_is_caught() {
        // Mutation canary: an allocated run no join owns.
        let mut p = merge_pipeline();
        p.n_runs += 1;
        let report = check_pipeline(&p);
        assert!(report
            .errors()
            .any(|d| d.code == codes::MERGE_DISCIPLINE && d.message.contains("owned by no join")));

        // And a duplicated run index.
        let mut p = merge_pipeline();
        p.n_runs = 0;
        let report = check_pipeline(&p);
        assert!(report
            .errors()
            .any(|d| d.code == codes::MERGE_DISCIPLINE && d.message.contains("out of range")));
    }

    #[test]
    fn zero_batch_size_is_caught() {
        // Mutation canary: compile clamps batch_size to ≥ 1, so a zero
        // can only appear through corruption — CB038 must fire.
        let q = parse_query("select struct(A = r.A) from R r").unwrap();
        let p = compile(
            &q,
            CompileOptions {
                batch_size: 0,
                ..Default::default()
            },
        );
        assert!(p.batch_size >= 1, "compile must clamp a zero batch size");
        assert!(!check_pipeline(&p).has_errors());
        let mut bad = p.clone();
        bad.batch_size = 0;
        let report = check_pipeline(&bad);
        assert!(report.errors().any(|d| d.code == codes::BATCH_LAYOUT));
    }

    #[test]
    fn broken_table_arena_is_caught() {
        let q =
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where s.B = r.B").unwrap();
        let mut p = compile(
            &q,
            CompileOptions {
                hash_joins: true,
                ..Default::default()
            },
        );
        p.n_tables += 1;
        let report = check_pipeline(&p);
        assert!(report.errors().any(|d| d.code == codes::TABLE_LAYOUT));
    }
}
