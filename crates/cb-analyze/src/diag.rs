//! The diagnostics framework: codes, severities, anchors, and the report
//! they accumulate into.
//!
//! Every finding of every pass is a [`Diagnostic`] with a stable `CB0xx`
//! code (the [`codes`] registry), a [`Severity`], and an [`Anchor`]
//! pointing at the construct it is about — a binding index, a condition
//! index, a named dependency, or a pipeline operator. A [`Report`] is the
//! machine-readable list plus a rendered text form; CI and the optimizer's
//! deny mode key off error severity only.

use std::fmt;

/// How bad a finding is.
///
/// Only `Error` findings describe constructs that are definitely wrong
/// (they would misbehave or fail at run time); `Warning` marks constructs
/// that are legal but suspicious; `Info` records facts a human or a later
/// pass may want (e.g. a lookup whose safety is deferred to the chase
/// prover).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// What a diagnostic points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Anchor {
    /// The query as a whole.
    Query,
    /// The `i`-th `from` binding.
    Binding(usize),
    /// The `i`-th `where` condition.
    Condition(usize),
    /// The `select` clause.
    Output,
    /// A named dependency of the catalog's constraint set.
    Dependency(String),
    /// The `i`-th operator of a compiled pipeline.
    PipelineOp(usize),
    /// The `i`-th hoisted ground filter of a compiled pipeline.
    GroundFilter(usize),
    /// The catalog (or pipeline layout) as a whole.
    Catalog,
    /// The process environment (e.g. the `CB_FAULTS` fault schedule).
    Environment,
}

impl fmt::Display for Anchor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Anchor::Query => write!(f, "query"),
            Anchor::Binding(i) => write!(f, "binding #{i}"),
            Anchor::Condition(i) => write!(f, "condition #{i}"),
            Anchor::Output => write!(f, "select"),
            Anchor::Dependency(name) => write!(f, "dependency [{name}]"),
            Anchor::PipelineOp(i) => write!(f, "pipeline op #{i}"),
            Anchor::GroundFilter(i) => write!(f, "ground filter #{i}"),
            Anchor::Catalog => write!(f, "catalog"),
            Anchor::Environment => write!(f, "environment"),
        }
    }
}

/// The stable diagnostic-code registry. Codes are grouped by pass:
/// `CB00x` well-formedness, `CB01x` lookup safety, `CB02x` dependency-set
/// analysis, `CB03x` pipeline dataflow.
pub mod codes {
    /// Query scoping violation (unbound variable in a binding, condition
    /// or output).
    pub const QUERY_SCOPE: &str = "CB001";
    /// Two `from` bindings introduce the same variable.
    pub const DUPLICATE_VAR: &str = "CB002";
    /// A bound variable is never read; it only contributes existence.
    pub const DEAD_VAR: &str = "CB003";
    /// The query mentions a root the catalog does not declare.
    pub const UNKNOWN_ROOT: &str = "CB004";
    /// A field access, lookup or equality is inconsistent with the
    /// catalog's types.
    pub const TYPE_MISMATCH: &str = "CB005";
    /// A catalog constraint fails [`pcql::Dependency::check_scopes`].
    pub const DEP_SCOPE: &str = "CB006";
    /// A catalog constraint fails type checking against the combined
    /// schema.
    pub const DEP_TYPE: &str = "CB007";
    /// A failing lookup is not syntactically guarded; its safety is
    /// deferred to the backchase's chase-based prover.
    pub const LOOKUP_DEFERRED: &str = "CB010";
    /// A failing lookup has no binding in scope at all: no guard can
    /// exist, and the prover will reject it too.
    pub const LOOKUP_UNGUARDABLE: &str = "CB011";
    /// The dependency set has no static termination guarantee; the
    /// message carries the position-graph cycle witness.
    pub const CHASE_TERMINATION: &str = "CB020";
    /// A pipeline accessor reads a register before any operator writes
    /// it.
    pub const READ_BEFORE_WRITE: &str = "CB030";
    /// Register layout broken: out-of-range slot, double write, or a
    /// slot no operator ever writes.
    pub const SLOT_LAYOUT: &str = "CB031";
    /// A pipeline accessor references a variable the compiler could not
    /// resolve to any slot.
    pub const UNRESOLVED_VAR: &str = "CB032";
    /// A register is written but never read by a later operator or the
    /// output.
    pub const DEAD_SLOT: &str = "CB033";
    /// Hash-table arena layout broken: duplicate, out-of-range, or
    /// unused table index.
    pub const TABLE_LAYOUT: &str = "CB034";
    /// A hoisted ground filter is not environment-independent.
    pub const GROUND_NOT_GROUND: &str = "CB035";
    /// An interned root id is out of range or disagrees with the
    /// operator's root name.
    pub const ROOT_INTERN: &str = "CB036";
    /// Merge-join discipline broken: the probe key reads the join's own
    /// register, the build key reads an outer register, or the run
    /// arena has a duplicate, out-of-range, or unused run index.
    pub const MERGE_DISCIPLINE: &str = "CB037";
    /// Batch layout broken: the pipeline carries a zero batch size, so
    /// the batched driver could never make progress.
    pub const BATCH_LAYOUT: &str = "CB038";
    /// Fault-injection configuration (`CB04x`: runtime environment): a
    /// malformed `CB_FAULTS` schedule (error — it would arm nothing and
    /// a chaos sweep would pass vacuously), or a schedule armed while
    /// optimizing (warning — results may include injected faults).
    pub const FAULT_SPEC: &str = "CB040";
}

/// One finding of one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// A stable `CB0xx` code from [`codes`].
    pub code: &'static str,
    pub severity: Severity,
    pub message: String,
    pub anchor: Anchor,
}

impl Diagnostic {
    pub fn new(
        code: &'static str,
        severity: Severity,
        anchor: Anchor,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            anchor,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {}] {}: {}",
            self.code, self.severity, self.anchor, self.message
        )
    }
}

/// The machine-readable result of an analysis: every diagnostic, in pass
/// order, with severity queries and a rendered text form.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    pub fn new() -> Report {
        Report::default()
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends another report's findings.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Appends another report's findings with a context label prefixed to
    /// each message (e.g. which candidate plan a pipeline finding is
    /// about).
    pub fn merge_labeled(&mut self, label: &str, other: Report) {
        for mut d in other.diagnostics {
            d.message = format!("[{label}] {}", d.message);
            self.diagnostics.push(d);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// The findings at exactly `severity`.
    pub fn at(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }

    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.at(Severity::Error)
    }

    /// Does any finding have error severity? This is the deny-mode /
    /// CI-failure criterion.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// `(errors, warnings, infos)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        (
            self.at(Severity::Error).count(),
            self.at(Severity::Warning).count(),
            self.at(Severity::Info).count(),
        )
    }

    /// The rendered text report: one line per diagnostic plus a summary
    /// line, or a single "clean" line.
    pub fn render(&self) -> String {
        if self.diagnostics.is_empty() {
            return "no diagnostics\n".to_string();
        }
        let mut s = String::new();
        for d in &self.diagnostics {
            s.push_str(&d.to_string());
            s.push('\n');
        }
        let (e, w, i) = self.counts();
        s.push_str(&format!("{e} error(s), {w} warning(s), {i} info\n"));
        s
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_and_error_detection() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        let mut r = Report::new();
        assert!(!r.has_errors());
        r.push(Diagnostic::new(
            codes::DEAD_VAR,
            Severity::Warning,
            Anchor::Binding(2),
            "variable `x` is never read",
        ));
        assert!(!r.has_errors());
        r.push(Diagnostic::new(
            codes::QUERY_SCOPE,
            Severity::Error,
            Anchor::Query,
            "unbound variable `y`",
        ));
        assert!(r.has_errors());
        assert_eq!(r.counts(), (1, 1, 0));
    }

    #[test]
    fn render_mentions_code_anchor_and_summary() {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            codes::READ_BEFORE_WRITE,
            Severity::Error,
            Anchor::PipelineOp(3),
            "reads register 5 before any write",
        ));
        let text = r.render();
        assert!(text.contains("[CB030 error] pipeline op #3"), "{text}");
        assert!(text.contains("1 error(s)"), "{text}");
        assert_eq!(Report::new().render(), "no diagnostics\n");
    }

    #[test]
    fn labeled_merge_prefixes_messages() {
        let mut inner = Report::new();
        inner.push(Diagnostic::new(
            codes::DEAD_SLOT,
            Severity::Warning,
            Anchor::PipelineOp(0),
            "slot 0 never read",
        ));
        let mut outer = Report::new();
        outer.merge_labeled("plan #2", inner);
        assert!(outer.diagnostics[0].message.starts_with("[plan #2] "));
    }
}
