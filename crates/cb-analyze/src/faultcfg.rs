//! Pass 5: fault-injection configuration lint (CB040).
//!
//! The failpoint registry ([`cb_chase::faults`]) arms itself from the
//! `CB_FAULTS` environment variable. Two failure modes deserve a static
//! check rather than a runtime surprise:
//!
//! - a **malformed schedule** would arm nothing, so a chaos CI sweep
//!   would pass vacuously — every spec error is a CB040 *error*, and
//!   the optimizer's deny-mode pre-flight refuses to optimize under it;
//! - an **armed schedule** means every result produced by this process
//!   may include injected faults — worth a CB040 *warning* in the
//!   diagnostics (and therefore in EXPLAIN), so a chaos run can never
//!   be mistaken for a clean one.

use crate::diag::{codes, Anchor, Diagnostic, Report, Severity};

/// Validates one fault-schedule spec string (the `CB_FAULTS` syntax:
/// `seed=N;site=action[trigger];...`). A parseable spec yields one info
/// finding naming the targeted sites; each parse error yields a CB040
/// error.
pub fn check_fault_spec(spec: &str) -> Report {
    let mut report = Report::new();
    match cb_chase::faults::parse_spec(spec) {
        Ok(parsed) => {
            let sites = parsed.sites();
            report.push(Diagnostic::new(
                codes::FAULT_SPEC,
                Severity::Info,
                Anchor::Environment,
                format!(
                    "fault schedule targets {} site(s): {}",
                    sites.len(),
                    sites.join(", ")
                ),
            ));
        }
        Err(errors) => {
            for e in errors {
                report.push(Diagnostic::new(
                    codes::FAULT_SPEC,
                    Severity::Error,
                    Anchor::Environment,
                    format!("malformed fault schedule: {e}"),
                ));
            }
        }
    }
    report
}

/// Lints the process's *effective* fault configuration: the `CB_FAULTS`
/// environment variable (validated whether or not anything installed it
/// yet) plus any schedule already armed in the registry — including a
/// test-scoped one, which still injects into every worker the armed
/// thread spawns.
pub fn check_fault_config() -> Report {
    let mut report = Report::new();
    if let Ok(spec) = std::env::var("CB_FAULTS") {
        if !spec.trim().is_empty() {
            report.merge(check_fault_spec(&spec));
        }
    }
    if let Some(active) = cb_chase::faults::active_spec() {
        report.push(Diagnostic::new(
            codes::FAULT_SPEC,
            Severity::Warning,
            Anchor::Environment,
            format!(
                "fault injection armed in-process (`{active}`): results may include injected faults"
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_spec_names_its_sites() {
        let r = check_fault_spec("seed=42;parallel::pop=panic@2;exec::op=err");
        assert!(!r.has_errors(), "{r}");
        let info = &r.diagnostics[0];
        assert_eq!(info.code, codes::FAULT_SPEC);
        assert_eq!(info.severity, Severity::Info);
        assert!(info.message.contains("parallel::pop"), "{}", info.message);
        assert!(info.message.contains("exec::op"), "{}", info.message);
    }

    #[test]
    fn malformed_specs_are_errors_not_silence() {
        for bad in [
            "no_such::site=panic",
            "parallel::pop=frobnicate",
            "justtext",
            "seed=notanumber",
        ] {
            let r = check_fault_spec(bad);
            assert!(r.has_errors(), "`{bad}` should be rejected: {r}");
            assert!(r.errors().all(|d| d.code == codes::FAULT_SPEC));
        }
    }

    #[test]
    fn armed_schedule_is_surfaced() {
        // The mutation canary: the lint reads the live registry, so an
        // armed schedule — even a test-scoped one — must show up. If
        // this check were a stub, chaos CI would report clean runs
        // while injecting faults.
        let _guard = cb_chase::faults::ScopedFaults::install("parallel::pop=delay:1").unwrap();
        let r = check_fault_config();
        assert!(
            r.diagnostics.iter().any(|d| d.code == codes::FAULT_SPEC
                && d.severity == Severity::Warning
                && d.message.contains("parallel::pop")),
            "{r}"
        );
        drop(_guard);
        // Disarmed (and with no CB_FAULTS in the test environment):
        // nothing to report.
        assert!(cb_chase::faults::active_spec().is_none());
    }
}
