//! cb-analyze — a static verifier and lint layer for the chase & backchase
//! stack.
//!
//! The chase ([`cb-chase`](cb_chase)), the optimizer, and the slot-compiled
//! executor ([`cb-engine`](cb_engine)) all *assume* structural invariants
//! of their inputs: queries are well-scoped and well-typed against the
//! catalog, every catalog constraint passes
//! [`pcql::Dependency::check_scopes`], failing lookups are guarded,
//! dependency sets terminate, and compiled pipelines read registers only
//! after they are written. This crate checks those invariants *statically*
//! — before any chase step or pipeline run — and reports violations as
//! [`Diagnostic`]s with stable `CB0xx` codes.
//!
//! Four passes, one per layer of the stack:
//!
//! 1. **Well-formedness** ([`check_query_wellformed`],
//!    [`check_catalog_wellformed`]) — scoping, dead variables, unknown
//!    roots, type consistency of queries and of every constraint a
//!    catalog emits.
//! 2. **Static lookup-safety** ([`check_lookups`]) — the syntactic
//!    guardedness pre-pass of the backchase's lookup-safety prover
//!    ([`cb_chase::first_unsafe`]); static-safe implies prover-safe by
//!    construction, and the test suite checks that differentially.
//! 3. **Dependency-set analysis** ([`check_termination`]) — termination
//!    verdicts with *evidence*: an `Unknown` verdict carries the
//!    position-graph cycle witness and blames the dependencies on it.
//! 4. **Pipeline dataflow verification** ([`check_pipeline`]) — an
//!    abstract interpreter over compiled [`cb_engine::Pipeline`]s:
//!    def-before-use, accessor resolvability, slot/table layout, dead
//!    slots, groundedness of hoisted filters.
//!
//! The [`Analyzer`] bundles the catalog-aware passes behind one entry
//! point; `cb-optimizer` runs it as a pre-flight (warn or deny) and
//! verifies every candidate plan's compiled pipeline, and `cb-bench`
//! lints every builtin scenario in CI.

pub mod diag;
pub mod faultcfg;
pub mod lookups;
pub mod pipeline;
pub mod termination;
pub mod wellformed;

pub use diag::{codes, Anchor, Diagnostic, Report, Severity};
pub use faultcfg::{check_fault_config, check_fault_spec};
pub use lookups::{check_lookups, LookupFinding, LookupSummary, LookupVerdict};
pub use pipeline::check_pipeline;
pub use termination::check_termination;
pub use wellformed::{check_catalog_wellformed, check_dependencies, check_query_wellformed};

use cb_catalog::Catalog;
use cb_chase::TerminationVerdict;
use cb_engine::Pipeline;
use pcql::query::Query;

/// The catalog-aware analysis entry point: one value bundling every pass
/// so callers (the optimizer's pre-flight, the scenario linter) get the
/// full picture in one call.
pub struct Analyzer<'a> {
    catalog: &'a Catalog,
}

impl<'a> Analyzer<'a> {
    pub fn new(catalog: &'a Catalog) -> Analyzer<'a> {
        Analyzer { catalog }
    }

    /// Passes 1 + 3 over the catalog: every emitted constraint
    /// well-formed, plus the termination verdict with its evidence.
    pub fn check_catalog(&self) -> (TerminationVerdict, Report) {
        let mut report = check_catalog_wellformed(self.catalog);
        let (verdict, term) = check_termination(&self.catalog.all_constraints());
        report.merge(term);
        (verdict, report)
    }

    /// Passes 1 + 2 over one query against the catalog.
    pub fn check_query(&self, q: &Query) -> Report {
        let mut report = check_query_wellformed(self.catalog, q);
        let (lookups, _) = check_lookups(q);
        report.merge(lookups);
        report
    }

    /// The lookup-safety counters for one query (pass 2), for E17-style
    /// accounting of how much work the static pass discharges.
    pub fn lookup_summary(&self, q: &Query) -> LookupSummary {
        check_lookups(q).1
    }

    /// Pass 4 over one compiled pipeline. Catalog-independent; provided
    /// here so one `Analyzer` covers the whole stack.
    pub fn check_pipeline(&self, p: &Pipeline) -> Report {
        check_pipeline(p)
    }

    /// Pass 5 over the process environment: validates the `CB_FAULTS`
    /// fault schedule (a malformed one is an error — it would arm
    /// nothing and a chaos sweep would pass vacuously) and surfaces any
    /// armed schedule as a warning, so no result produced under fault
    /// injection can be mistaken for a clean one. Catalog-independent;
    /// the optimizer pre-flight runs it before every optimization.
    pub fn check_environment(&self) -> Report {
        check_fault_config()
    }

    /// The full lint: catalog and query passes merged, the way the
    /// optimizer pre-flight and the scenario linter consume it.
    pub fn lint(&self, q: &Query) -> Report {
        let (_, mut report) = self.check_catalog();
        report.merge(self.check_query(q));
        report
    }

    /// The load-time gate for deserialized plans: a plan coming off disk
    /// (or a wire) was optimized against *some* catalog at *some* time —
    /// possibly not this catalog, possibly hand-edited since. Before it
    /// may execute, its query must pass the well-formedness and
    /// lookup-safety passes against the *current* catalog, and its
    /// compiled pipeline the dataflow pass — in both compile modes, so
    /// every operator the executor could run is verified, mirroring the
    /// optimizer's own candidate pre-flight.
    pub fn verify_loaded_plan(&self, q: &Query) -> Report {
        let mut report = self.check_query(q);
        for joins in [false, true] {
            let pipeline = cb_engine::compile(
                q,
                cb_engine::CompileOptions {
                    hash_joins: joins,
                    merge_joins: joins,
                    ..Default::default()
                },
            );
            let label = if joins { "loaded+joins" } else { "loaded" };
            report.merge_labeled(label, self.check_pipeline(&pipeline));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcql::parser::parse_query;
    use pcql::Type;

    #[test]
    fn analyzer_bundles_all_passes() {
        let mut c = Catalog::new();
        c.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int)]);
        c.add_direct_mapping("R");
        let a = Analyzer::new(&c);
        let (verdict, cat_report) = a.check_catalog();
        assert_ne!(verdict, TerminationVerdict::Unknown);
        assert!(cat_report.is_empty(), "{cat_report}");

        let q = parse_query("select struct(A = r.A) from R r where r.B = 2").unwrap();
        assert!(a.lint(&q).is_empty());

        let bad = parse_query("select struct(X = r.Nope) from R r").unwrap();
        assert!(a.lint(&bad).has_errors());
    }

    #[test]
    fn lint_surfaces_catalog_termination_evidence() {
        let c = cb_catalog::scenarios::projdept::catalog();
        let a = Analyzer::new(&c);
        let q = parse_query("select struct(N = p.PName) from Proj p").unwrap();
        let report = a.lint(&q);
        // projdept's mapping constraints form a special-edge cycle:
        // warnings, never errors.
        assert!(!report.has_errors(), "{report}");
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == codes::CHASE_TERMINATION));
    }
}
