//! E15/E19 — the slot-compiled pipeline executor: compile-then-execute,
//! nested-loop vs hash-join vs merge-join pipelines, batched vs
//! row-at-a-time drivers, against the tree-walking interpreter as the
//! reference. Set `CRITERION_STUB_JSON` to land the medians in a
//! `BENCH_*.json` record.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cb_bench::prepared_views;
use cb_engine::exec::{compile, execute, execute_rows, CompileOptions};

fn compile_then_execute(c: &mut Criterion) {
    let p = prepared_views(400, 400, 0.05);
    let ev = p.evaluator();
    let nested = compile(
        &p.query,
        CompileOptions {
            hash_joins: false,
            ..Default::default()
        },
    );
    let hashed = compile(
        &p.query,
        CompileOptions {
            hash_joins: true,
            ..Default::default()
        },
    );
    let merged = compile(
        &p.query,
        CompileOptions {
            hash_joins: true,
            merge_joins: true,
            ..Default::default()
        },
    );
    let reference = ev.eval_query(&p.query).unwrap();
    assert_eq!(execute(&ev, &hashed).unwrap(), reference);
    assert_eq!(execute(&ev, &merged).unwrap(), reference);
    assert_eq!(execute_rows(&ev, &nested).unwrap(), reference);

    let mut group = c.benchmark_group("e15/pipeline");
    group.sample_size(10);
    group.bench_function("compile", |b| {
        b.iter(|| {
            compile(
                black_box(&p.query),
                CompileOptions {
                    hash_joins: true,
                    merge_joins: true,
                    ..Default::default()
                },
            )
        });
    });
    group.bench_function("execute/nested_loop", |b| {
        b.iter(|| execute(&ev, black_box(&nested)).unwrap());
    });
    group.bench_function("execute/hash_join", |b| {
        b.iter(|| execute(&ev, black_box(&hashed)).unwrap());
    });
    group.bench_function("evaluator/reference", |b| {
        b.iter(|| ev.eval_query(black_box(&p.query)).unwrap());
    });
    group.finish();

    // E19: the batched push-based driver vs the row-at-a-time machine on
    // the same pipelines, plus merge vs hash joins on ordered roots.
    let mut group = c.benchmark_group("e19/batched");
    group.sample_size(10);
    group.bench_function("nested_loop/batched", |b| {
        b.iter(|| execute(&ev, black_box(&nested)).unwrap());
    });
    group.bench_function("nested_loop/rows", |b| {
        b.iter(|| execute_rows(&ev, black_box(&nested)).unwrap());
    });
    group.bench_function("hash_join/batched", |b| {
        b.iter(|| execute(&ev, black_box(&hashed)).unwrap());
    });
    group.bench_function("hash_join/rows", |b| {
        b.iter(|| execute_rows(&ev, black_box(&hashed)).unwrap());
    });
    group.bench_function("merge_join/batched", |b| {
        b.iter(|| execute(&ev, black_box(&merged)).unwrap());
    });
    group.bench_function("merge_join/rows", |b| {
        b.iter(|| execute_rows(&ev, black_box(&merged)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, compile_then_execute);
criterion_main!(benches);
