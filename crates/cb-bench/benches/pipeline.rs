//! E15 — the slot-compiled pipeline executor: compile-then-execute,
//! nested-loop vs hash-join pipelines, against the tree-walking
//! interpreter as the reference.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cb_bench::prepared_views;
use cb_engine::exec::{compile, execute, CompileOptions};

fn compile_then_execute(c: &mut Criterion) {
    let p = prepared_views(400, 400, 0.05);
    let ev = p.evaluator();
    let nested = compile(&p.query, CompileOptions { hash_joins: false });
    let hashed = compile(&p.query, CompileOptions { hash_joins: true });
    assert_eq!(
        execute(&ev, &hashed).unwrap(),
        ev.eval_query(&p.query).unwrap()
    );

    let mut group = c.benchmark_group("e15/pipeline");
    group.sample_size(10);
    group.bench_function("compile", |b| {
        b.iter(|| compile(black_box(&p.query), CompileOptions { hash_joins: true }));
    });
    group.bench_function("execute/nested_loop", |b| {
        b.iter(|| execute(&ev, black_box(&nested)).unwrap());
    });
    group.bench_function("execute/hash_join", |b| {
        b.iter(|| execute(&ev, black_box(&hashed)).unwrap());
    });
    group.bench_function("evaluator/reference", |b| {
        b.iter(|| ev.eval_query(black_box(&p.query)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, compile_then_execute);
criterion_main!(benches);
