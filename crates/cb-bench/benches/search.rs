//! Frontier contention — the parallel backchase's shared data paths in
//! isolation: the mutexed priority frontier (pop + push) and the atomic
//! incumbent (`fetch_min` over the cost's bit pattern) under 1–4
//! workers, plus the sharded chase core driven by the real parallel
//! walk. A lock-granularity regression (coarser shard locks, a longer
//! critical section around the heap) shows up here before it shows up
//! as a flat E18 speedup curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BinaryHeap;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use cb_chase::{ChaseConfig, ParallelExploreAll, ParallelPlanSearch, SharedChaseContext};
use pcql::parser::{parse_dependency, parse_query};

/// One round of the frontier protocol: pop the cheapest entry, publish
/// an incumbent improvement, push the entry's children back. Entries are
/// (priority, seq) pairs — the shared-path cost, without the per-node
/// chase work that normally hides it.
fn frontier_rounds(workers: usize, rounds: usize) {
    let queue: Mutex<BinaryHeap<(u64, u64)>> = Mutex::new((0..64u64).map(|i| (i, i)).collect());
    let incumbent = AtomicU64::new(f64::INFINITY.to_bits());
    std::thread::scope(|scope| {
        for w in 0..workers {
            let queue = &queue;
            let incumbent = &incumbent;
            scope.spawn(move || {
                for r in 0..rounds {
                    let popped = queue.lock().unwrap().pop();
                    let (prio, seq) = popped.unwrap_or((w as u64, r as u64));
                    let cost = (prio as f64).mul_add(1e3, (w * rounds + r) as f64);
                    incumbent.fetch_min(cost.to_bits(), Ordering::SeqCst);
                    let mut q = queue.lock().unwrap();
                    q.push((prio + 1, seq + 1));
                    q.push((prio + 2, seq + 2));
                    if q.len() > 128 {
                        q.pop();
                    }
                }
            });
        }
    });
    black_box(f64::from_bits(incumbent.load(Ordering::SeqCst)));
}

fn frontier_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("search/frontier_rounds");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| frontier_rounds(black_box(w), 2_000));
        });
    }
    group.finish();
}

/// The real parallel walk over the §4 views lattice: frontier + sharded
/// memo traffic end to end, swept over worker counts.
fn parallel_walk(c: &mut Criterion) {
    let u = parse_query(
        "select struct(A = r.A) from R r, S s, V v \
         where r.B = s.B and v.A = r.A",
    )
    .unwrap();
    let deps = vec![
        parse_dependency(
            "c_V",
            "forall (r in R) (s in S) where r.B = s.B -> exists (v in V) where v.A = r.A",
        )
        .unwrap(),
        parse_dependency(
            "c'_V",
            "forall (v in V) -> exists (r in R) (s in S) where r.B = s.B and v.A = r.A",
        )
        .unwrap(),
    ];
    let mut group = c.benchmark_group("search/parallel_walk");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                let shared = SharedChaseContext::new(deps.clone(), ChaseConfig::default());
                let out = ParallelPlanSearch::new(black_box(&u), w)
                    .with_collect_visited(false)
                    .run(&shared, &ParallelExploreAll);
                assert!(out.complete);
                out.visited_count
            });
        });
    }
    group.finish();
}

criterion_group!(benches, frontier_contention, parallel_walk);
criterion_main!(benches);
