//! E1/E10 — the ProjDept running example: optimizer phases and the
//! execution cost of the paper's plans P1–P4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cb_bench::prepared_projdept;
use cb_chase::{backchase, chase, BackchaseConfig, ChaseConfig};

fn optimizer_phases(c: &mut Criterion) {
    let p = prepared_projdept(50, 10, 25);
    let deps = p.catalog.all_constraints();
    let q = &p.query;

    c.bench_function("e1/chase_to_universal_plan", |b| {
        b.iter(|| chase(black_box(q), &deps, &ChaseConfig::default()));
    });

    let u = chase(q, &deps, &ChaseConfig::default()).query;
    let mut group = c.benchmark_group("e1/backchase");
    group.sample_size(10);
    group.bench_function("enumerate_minimal_plans", |b| {
        b.iter(|| {
            backchase(
                black_box(&u),
                &deps,
                &BackchaseConfig {
                    max_visited: 4096,
                    ..Default::default()
                },
            )
        });
    });
    group.finish();

    let mut group = c.benchmark_group("e1/optimize_end_to_end");
    group.sample_size(10);
    group.bench_function("algorithm1", |b| {
        b.iter(|| p.optimizer().optimize(black_box(q)).unwrap());
    });
    group.finish();
}

fn plan_execution(c: &mut Criterion) {
    // E10: execution cost of P1–P4 at two selectivities.
    let mut group = c.benchmark_group("e10/plan_execution");
    group.sample_size(10);
    for n_customers in [5usize, 100] {
        let p = prepared_projdept(60, 10, n_customers);
        let plans = cb_catalog::scenarios::projdept::paper_plans();
        for (i, plan) in plans.iter().enumerate() {
            let ev = p.evaluator();
            group.bench_with_input(
                BenchmarkId::new(format!("P{}", i + 1), format!("sel=1/{n_customers}")),
                plan,
                |b, plan| b.iter(|| ev.eval_query(black_box(plan)).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, optimizer_phases, plan_execution);
criterion_main!(benches);
