//! E6 — §4 scenario 2: base join vs. the navigation-join plan over the
//! materialized view and the two secondary indexes, as |V| varies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cb_bench::prepared_views;

fn navigation_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6/view_navigation");
    group.sample_size(10);
    for frac in [0.02f64, 0.5] {
        let p = prepared_views(1_500, 1_500, frac);
        let v = p.instance.cardinality("V").unwrap();
        let outcome = p.optimizer().optimize(&p.query).unwrap();
        let ev = p.evaluator();
        group.bench_with_input(
            BenchmarkId::new("base_join", format!("|V|={v}")),
            &p.query,
            |b, q| b.iter(|| ev.eval_query(black_box(q)).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("chosen_plan", format!("|V|={v}")),
            &outcome.best.query,
            |b, q| b.iter(|| ev.eval_query(black_box(q)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, navigation_crossover);
criterion_main!(benches);
