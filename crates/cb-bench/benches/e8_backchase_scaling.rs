//! E8 — the exponential backchase: plan-space enumeration cost as
//! redundant access structures accumulate (paper §5: "there is little
//! hope to do better than exponential if we want a complete
//! enumeration").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cb_chase::{backchase, chase, BackchaseConfig, ChaseConfig};
use pcql::parser::parse_query;
use pcql::Type;

fn setup(k: usize) -> (Vec<pcql::Dependency>, pcql::Query) {
    let mut catalog = cb_catalog::Catalog::new();
    catalog.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int)]);
    catalog.add_logical_relation("S", [("B", Type::Int), ("C", Type::Int)]);
    catalog.add_direct_mapping("R");
    catalog.add_direct_mapping("S");
    for i in 0..k {
        catalog
            .add_materialized_view(
                &format!("V{i}"),
                parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
                    .unwrap(),
            )
            .unwrap();
    }
    let q = parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
    let deps = catalog.all_constraints();
    let u = chase(&q, &deps, &ChaseConfig::default()).query;
    (deps, u)
}

fn backchase_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8/backchase_vs_views");
    group.sample_size(10);
    for k in [1usize, 2, 3, 4] {
        let (deps, u) = setup(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &(), |b, _| {
            b.iter(|| {
                let out = backchase(
                    black_box(&u),
                    &deps,
                    &BackchaseConfig {
                        max_visited: 0,
                        ..Default::default()
                    },
                );
                assert_eq!(out.normal_forms.len(), k + 1);
                out
            });
        });
    }
    group.finish();
}

criterion_group!(benches, backchase_scaling);
criterion_main!(benches);
