//! E5 — §4 scenario 1: execution cost of the base scan vs. the
//! index-only access path across data scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cb_bench::prepared_indexes;

fn index_vs_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5/index_vs_scan");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        let p = prepared_indexes(n, n / 100, n / 250);
        let outcome = p.optimizer().optimize(&p.query).unwrap();
        let ev = p.evaluator();
        group.bench_with_input(BenchmarkId::new("base_scan", n), &p.query, |b, q| {
            b.iter(|| ev.eval_query(black_box(q)).unwrap());
        });
        group.bench_with_input(
            BenchmarkId::new("index_plan", n),
            &outcome.best.query,
            |b, q| b.iter(|| ev.eval_query(black_box(q)).unwrap()),
        );
    }
    group.finish();
}

fn optimization_itself(c: &mut Criterion) {
    let p = prepared_indexes(1_000, 20, 10);
    let mut group = c.benchmark_group("e5/optimize");
    group.sample_size(10);
    group.bench_function("algorithm1", |b| {
        b.iter(|| p.optimizer().optimize(black_box(&p.query)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, index_vs_scan, optimization_itself);
criterion_main!(benches);
