//! E4 — generalized tableau minimization: cost of minimizing redundant
//! self-join chains of growing length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cb_chase::{minimize, BackchaseConfig};
use pcql::parser::parse_query;

/// The paper's §3 pattern generalized: a chain of n R-bindings where only
/// the first two matter.
fn chain_query(n: usize) -> pcql::Query {
    let mut from = Vec::new();
    let mut conds = Vec::new();
    for i in 0..n {
        from.push(format!("R v{i}"));
        if i == 1 {
            conds.push("v0.B = v1.A".to_string());
        } else if i > 1 {
            conds.push(format!("v{}.B = v{}.B", i - 1, i));
        }
    }
    parse_query(&format!(
        "select struct(A = v0.A, B = v1.B) from {} where {}",
        from.join(", "),
        conds.join(" and ")
    ))
    .unwrap()
}

fn minimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4/minimize_chain");
    group.sample_size(10);
    for n in [3usize, 4, 5] {
        let q = chain_query(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &q, |b, q| {
            b.iter(|| {
                let m = minimize(black_box(q), &BackchaseConfig::default());
                assert_eq!(m.from.len(), 2);
                m
            });
        });
    }
    group.finish();
}

criterion_group!(benches, minimization);
criterion_main!(benches);
