//! E7 — Theorem 1: chase cost and output size as the number of
//! materialized views grows (full dependencies: polynomial).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cb_chase::{chase, ChaseConfig};
use pcql::parser::parse_query;
use pcql::Type;

fn catalog_with_views(k: usize) -> cb_catalog::Catalog {
    let mut catalog = cb_catalog::Catalog::new();
    catalog.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int)]);
    catalog.add_logical_relation("S", [("B", Type::Int), ("C", Type::Int)]);
    catalog.add_direct_mapping("R");
    catalog.add_direct_mapping("S");
    for i in 0..k {
        catalog
            .add_materialized_view(
                &format!("V{i}"),
                parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
                    .unwrap(),
            )
            .unwrap();
    }
    catalog
}

fn chase_scaling(c: &mut Criterion) {
    let q = parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
    let mut group = c.benchmark_group("e7/chase_vs_views");
    for k in [1usize, 2, 4, 8] {
        let catalog = catalog_with_views(k);
        let deps = catalog.all_constraints();
        group.bench_with_input(BenchmarkId::from_parameter(k), &deps, |b, deps| {
            b.iter(|| {
                let out = chase(black_box(&q), deps, &ChaseConfig::default());
                assert_eq!(out.query.from.len(), 2 + k);
                out
            });
        });
    }
    group.finish();
}

criterion_group!(benches, chase_scaling);
criterion_main!(benches);
