//! # cb-bench — experiment harness and benchmarks
//!
//! Shared setup code for the criterion benches, the `experiments` binary
//! that regenerates every example/figure of the paper, and the `lint`
//! binary that runs cb-analyze over every builtin scenario (CI fails on
//! error-severity findings). The experiment index E1–E19 and the
//! paper-vs-measured record live in `crates/cb-bench/EXPERIMENTS.md`;
//! machine-readable records come from
//! `experiments --json BENCH_experiments.json`.

use std::time::Instant;

use cb_catalog::Catalog;
use cb_engine::{Evaluator, Instance, Materializer};
use cb_optimizer::Optimizer;
use pcql::Query;

/// A ready-to-run scenario: catalog with statistics and a materialized
/// instance.
pub struct Prepared {
    pub catalog: Catalog,
    pub instance: Instance,
    pub query: Query,
}

/// Builds the ProjDept scenario at a given scale.
pub fn prepared_projdept(n_depts: usize, projs_per_dept: usize, n_customers: usize) -> Prepared {
    let mut catalog = cb_catalog::scenarios::projdept::catalog();
    let mut instance = cb_engine::projdept_instance(&cb_engine::ProjDeptParams {
        n_depts,
        projs_per_dept,
        n_customers,
        seed: 42,
    });
    Materializer::new(&catalog)
        .materialize(&mut instance)
        .expect("materialize");
    *catalog.stats_mut() = cb_engine::collect_stats(&instance);
    Prepared {
        catalog,
        instance,
        query: cb_catalog::scenarios::projdept::query(),
    }
}

/// Builds §4 scenario 1 (R(A,B,C) + SA + SB) at a given scale.
pub fn prepared_indexes(n_rows: usize, distinct_a: usize, distinct_b: usize) -> Prepared {
    let mut catalog = cb_catalog::scenarios::relational_indexes::catalog();
    let mut instance = cb_engine::rabc_instance(&cb_engine::RabcParams {
        n_rows,
        distinct_a,
        distinct_b,
        seed: 7,
    });
    Materializer::new(&catalog)
        .materialize(&mut instance)
        .expect("materialize");
    *catalog.stats_mut() = cb_engine::collect_stats(&instance);
    Prepared {
        catalog,
        instance,
        query: cb_catalog::scenarios::relational_indexes::query(),
    }
}

/// Builds §4 scenario 2 (R ⋈ S with V, IR, IS) at a given scale.
pub fn prepared_views(n_r: usize, n_s: usize, match_fraction: f64) -> Prepared {
    let mut catalog = cb_catalog::scenarios::relational_views::catalog();
    let mut instance = cb_engine::join_instance(&cb_engine::JoinParams {
        n_r,
        n_s,
        match_fraction,
        seed: 11,
    });
    Materializer::new(&catalog)
        .materialize(&mut instance)
        .expect("materialize");
    *catalog.stats_mut() = cb_engine::collect_stats(&instance);
    Prepared {
        catalog,
        instance,
        query: cb_catalog::scenarios::relational_views::query(),
    }
}

impl Prepared {
    pub fn evaluator(&self) -> Evaluator<'_> {
        Evaluator::for_catalog(&self.catalog, &self.instance)
    }

    pub fn optimizer(&self) -> Optimizer<'_> {
        Optimizer::new(&self.catalog)
    }

    /// Wall-clock time to evaluate a plan, and its row count.
    pub fn time_plan(&self, plan: &Query) -> (f64, usize) {
        let ev = self.evaluator();
        let t = Instant::now();
        let rows = ev.eval_query(plan).expect("plan evaluates");
        (t.elapsed().as_secs_f64() * 1e3, rows.len())
    }
}

/// One builtin scenario's full static-analysis result: the catalog +
/// query lint, the optimizer's own diagnostics (including the dataflow
/// verification of every candidate plan's compiled pipeline), and the
/// lookup-safety counters aggregated over the input query and every
/// candidate plan.
pub struct ScenarioLint {
    pub name: &'static str,
    pub report: cb_analyze::Report,
    pub lookups: cb_analyze::LookupSummary,
}

/// Lints every builtin scenario end to end: catalog well-formedness,
/// termination, query scoping/typing/lookups, then a full optimization
/// whose candidate pipelines are all dataflow-verified (the optimizer's
/// default warn-mode pre-flight). The scenario linter binary and CI fail
/// on any error-severity finding.
pub fn lint_builtin_scenarios() -> Vec<ScenarioLint> {
    let scenarios: Vec<(&'static str, Prepared)> = vec![
        ("projdept", prepared_projdept(20, 5, 8)),
        ("relational_indexes", prepared_indexes(200, 20, 10)),
        ("relational_views", prepared_views(100, 100, 0.3)),
    ];
    scenarios
        .into_iter()
        .map(|(name, p)| {
            let analyzer = cb_analyze::Analyzer::new(&p.catalog);
            let mut report = analyzer.lint(&p.query);
            let mut lookups = analyzer.lookup_summary(&p.query);
            // The optimizer's own pre-flight covers the same catalog and
            // query passes; run it with the lint off and verify the
            // candidate pipelines here, so each finding appears once.
            let config = cb_optimizer::OptimizerConfig {
                preflight: cb_optimizer::PreflightMode::Off,
                cost_visited: true,
                ..Default::default()
            };
            let out = Optimizer::with_config(&p.catalog, config)
                .optimize(&p.query)
                .expect("scenario optimizes");
            for (rank, c) in out.candidates.iter().enumerate() {
                for joins in [false, true] {
                    let pipeline = cb_engine::compile(
                        &c.query,
                        cb_engine::CompileOptions {
                            hash_joins: joins,
                            merge_joins: joins,
                            ..Default::default()
                        },
                    );
                    let label = format!(
                        "plan #{}{}",
                        rank + 1,
                        if joins { ", hash/merge joins" } else { "" }
                    );
                    report.merge_labeled(&label, analyzer.check_pipeline(&pipeline));
                }
                lookups.absorb(analyzer.lookup_summary(&c.query));
            }
            ScenarioLint {
                name,
                report,
                lookups,
            }
        })
        .collect()
}

/// Formats a simple aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        out.push('\n');
    };
    line(
        &headers.iter().map(ToString::to_string).collect::<Vec<_>>(),
        &widths,
        &mut out,
    );
    line(
        &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
        &widths,
        &mut out,
    );
    for row in rows {
        line(row, &widths, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_scenarios_build() {
        let p = prepared_projdept(5, 3, 3);
        assert_eq!(p.instance.cardinality("Proj"), Some(15));
        let p = prepared_indexes(50, 10, 5);
        assert_eq!(p.instance.cardinality("R"), Some(50));
        let p = prepared_views(30, 30, 0.5);
        assert!(p.instance.cardinality("V").unwrap() > 0);
    }

    #[test]
    fn builtin_scenarios_lint_clean() {
        for lint in lint_builtin_scenarios() {
            assert!(!lint.report.has_errors(), "{}: {}", lint.name, lint.report);
            // Every scenario exercises the lookup passes somewhere in its
            // plan space except the pure-relational ones; the counters
            // must at least be consistent.
            assert_eq!(
                lint.lookups.total,
                lint.lookups.static_safe + lint.lookups.deferred + lint.lookups.unguardable
            );
        }
    }

    #[test]
    fn table_rendering() {
        let t = render_table(
            &["plan", "cost"],
            &[
                vec!["P1".into(), "10".into()],
                vec!["P2".into(), "3".into()],
            ],
        );
        assert!(t.contains("plan"));
        assert!(t.lines().count() == 4);
    }
}
