//! Regenerates every example, figure and claim of the paper's evaluation
//! (experiment index E1–E20 and the paper-vs-measured record live in
//! `crates/cb-bench/EXPERIMENTS.md`).
//!
//! ```sh
//! cargo run --release --bin experiments            # all experiments
//! cargo run --release --bin experiments e1 e10     # a selection
//! cargo run --release --bin experiments -- --json BENCH_experiments.json
//! ```
//!
//! `--json <path>` runs the measurable experiments several times each and
//! writes a structured record (experiment id, median ns, chase-cache hit
//! rate) instead of the human-readable tables.

use std::collections::BTreeSet;
use std::time::Instant;

use cb_bench::{prepared_indexes, prepared_projdept, prepared_views, render_table};
use cb_chase::{
    backchase_in, chase_step, examine_removal_in, minimize, BackchaseConfig, CacheStats,
    ChaseConfig, ChaseContext, QueryGraph, RemovalJudgement,
};
use cb_engine::{Evaluator, Materializer};
use cb_optimizer::{explain, Optimizer};
use pcql::parser::{parse_dependency, parse_query};
use pcql::Type;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--json") {
        if i + 1 >= args.len() {
            eprintln!("usage: experiments --json <path> [e1 e2 …]");
            std::process::exit(2);
        }
        let path = args.remove(i + 1);
        args.remove(i);
        run_json(&path, &args);
        return;
    }
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);

    if want("e1") {
        e1_projdept_plan_space();
    }
    if want("e2") {
        e2_chase_step_with_cji();
    }
    if want("e3") {
        e3_universal_plan();
    }
    if want("e4") {
        e4_tableau_minimization();
    }
    if want("e5") {
        e5_index_only();
    }
    if want("e6") {
        e6_views_and_indexes();
    }
    if want("e7") {
        e7_chase_scaling();
    }
    if want("e8") {
        e8_backchase_scaling();
    }
    if want("e9") {
        e9_completeness();
    }
    if want("e10") {
        e10_plan_crossover();
    }
    if want("e11") {
        e11_structure_encodings();
    }
    if want("e12") {
        e12_semantic_optimization();
    }
    if want("e13") {
        e13_strategy_ablation();
    }
    if want("e14") {
        e14_cost_guided_pruning();
    }
    if want("e15") {
        e15_pipeline_execution();
    }
    if want("e16") {
        e16_must_remain_bound();
    }
    if want("e17") {
        e17_static_analysis();
    }
    if want("e18") {
        e18_parallel_search();
    }
    if want("e19") {
        e19_batched_execution();
    }
    if want("e20") {
        e20_resilience();
    }
    if want("e21") {
        e21_plan_service();
    }
}

/// One `--json` record: experiment id, median wall time over the runs,
/// and the chase-cache hit rate of the final run.
struct JsonRecord {
    id: &'static str,
    median_ns: u128,
    /// `None` for experiments that do not run through a `ChaseContext`
    /// (emitted as JSON `null`, not a fake 0.0).
    cache_hit_rate: Option<f64>,
    /// Additional experiment-specific integer fields appended to the
    /// record (E14 reports its pruning counters here).
    extra: Vec<(&'static str, u64)>,
}

/// Runs `f` `iters` times, recording wall time per run and the
/// [`CacheStats`] the run reports (if any).
fn measure(
    id: &'static str,
    iters: usize,
    mut f: impl FnMut() -> Option<CacheStats>,
) -> JsonRecord {
    let mut samples: Vec<u128> = Vec::with_capacity(iters);
    let mut rate = None;
    for _ in 0..iters {
        let t = Instant::now();
        let stats = f();
        samples.push(t.elapsed().as_nanos());
        rate = stats.map(|s| s.hit_rate());
    }
    samples.sort_unstable();
    JsonRecord {
        id,
        median_ns: samples[samples.len() / 2],
        cache_hit_rate: rate,
        extra: Vec::new(),
    }
}

/// `--json <path>`: timed runs of the measurable experiments, written as
/// a structured `BENCH_*.json` (this replaces the old manual
/// redirect-the-tables recipe from the README).
fn run_json(path: &str, selection: &[String]) {
    let all = selection.is_empty() || selection.iter().any(|a| a == "all");
    let want = |name: &str| all || selection.iter().any(|a| a == name);
    const ITERS: usize = 5;
    let mut records: Vec<JsonRecord> = Vec::new();

    if want("e1") {
        let p = prepared_projdept(50, 10, 25);
        records.push(measure("e1_projdept_optimize", ITERS, || {
            Some(p.optimizer().optimize(&p.query).unwrap().cache)
        }));
    }
    if want("e4") {
        let q = parse_query(
            "select struct(A = p.A, B = r.B) from R p, R q, R r \
             where p.B = q.A and q.B = r.B",
        )
        .unwrap();
        records.push(measure("e4_tableau_minimization", ITERS, || {
            minimize(&q, &BackchaseConfig::default());
            None // generalized minimization runs through the free-function API
        }));
    }
    if want("e5") {
        let p = prepared_indexes(5_000, 100, 50);
        records.push(measure("e5_index_only_optimize", ITERS, || {
            Some(p.optimizer().optimize(&p.query).unwrap().cache)
        }));
    }
    if want("e6") {
        let p = prepared_views(1_000, 1_000, 0.05);
        records.push(measure("e6_view_nav_optimize", ITERS, || {
            Some(p.optimizer().optimize(&p.query).unwrap().cache)
        }));
    }
    if want("e7") {
        let (catalog, q) = views_scenario(8);
        records.push(measure("e7_chase_8_views", ITERS, || {
            let mut ctx = ChaseContext::new(catalog.all_constraints(), ChaseConfig::default());
            ctx.chase(&q);
            ctx.chase(&q); // the memoized re-chase the counters attribute
            Some(ctx.stats())
        }));
    }
    if want("e8") {
        let (catalog, q) = views_scenario(4);
        let deps = catalog.all_constraints();
        records.push(measure("e8_backchase_4_views", ITERS, || {
            let mut ctx = ChaseContext::new(deps.clone(), ChaseConfig::default());
            let u = ctx.chase(&q).query;
            backchase_in(&mut ctx, &u, 0);
            Some(ctx.stats())
        }));
    }
    if want("e13") {
        use cb_optimizer::{OptimizerConfig, SearchStrategy};
        let p = prepared_projdept(50, 10, 25);
        let config = OptimizerConfig {
            strategy: SearchStrategy::Greedy,
            cost_visited: false,
            ..Default::default()
        };
        records.push(measure("e13_greedy_optimize", ITERS, || {
            Optimizer::with_config(&p.catalog, config.clone())
                .optimize(&p.query)
                .map(|o| o.cache)
                .ok()
        }));
    }
    if want("e14") {
        use cb_optimizer::{OptimizerConfig, SearchStrategy};
        let p = prepared_projdept(50, 10, 25);
        let config = OptimizerConfig {
            strategy: SearchStrategy::CostGuided,
            ..Default::default()
        };
        // The measured runs also supply the counters the record carries.
        let mut guided = (0u64, 0u64, f64::NAN);
        let mut rec = measure("e14_cost_guided_optimize", ITERS, || {
            let out = Optimizer::with_config(&p.catalog, config.clone())
                .optimize(&p.query)
                .ok()?;
            guided = (
                out.nodes_visited as u64,
                out.nodes_pruned_by_cost as u64,
                out.best.cost,
            );
            Some(out.cache)
        });
        let full = p.optimizer().optimize(&p.query).unwrap();
        assert!((guided.2 - full.best.cost).abs() < 1e-9);
        rec.extra = vec![
            ("nodes_visited", guided.0),
            ("nodes_pruned_by_cost", guided.1),
            ("exhaustive_nodes_visited", full.nodes_visited as u64),
        ];
        records.push(rec);
    }

    if want("e16") {
        use cb_optimizer::{CostBound, OptimizerConfig, SearchStrategy};
        let p = prepared_projdept(50, 10, 25);
        let must_cfg = OptimizerConfig {
            strategy: SearchStrategy::CostGuided,
            ..Default::default()
        };
        let floor_cfg = OptimizerConfig {
            bound: CostBound::AccessFloor,
            ..must_cfg.clone()
        };
        let mut counters = (0u64, 0u64, 0u64, 0u64, f64::NAN);
        let mut rec = measure("e16_must_remain_bound", ITERS, || {
            let out = Optimizer::with_config(&p.catalog, must_cfg.clone())
                .optimize(&p.query)
                .ok()?;
            counters = (
                out.nodes_visited as u64,
                out.nodes_pruned_by_cost as u64,
                out.nodes_pruned_at_gate as u64,
                out.nodes_pruned_at_visit as u64,
                out.best.cost,
            );
            Some(out.cache)
        });
        let floor = Optimizer::with_config(&p.catalog, floor_cfg)
            .optimize(&p.query)
            .unwrap();
        let full = p.optimizer().optimize(&p.query).unwrap();
        assert!((counters.4 - full.best.cost).abs() < 1e-9);
        assert!((floor.best.cost - full.best.cost).abs() < 1e-9);
        // The acceptance bar of the must-remain bound, enforced wherever
        // the record is produced (CI runs this on every push): at least
        // 3x the single-access-floor pruning on ProjDept.
        assert!(
            counters.1 >= 3 * (floor.nodes_pruned_by_cost as u64).max(1),
            "must-remain pruned {} < 3x access-floor pruned {}",
            counters.1,
            floor.nodes_pruned_by_cost
        );
        rec.extra = vec![
            ("nodes_visited", counters.0),
            ("nodes_pruned_by_cost", counters.1),
            ("nodes_pruned_at_gate", counters.2),
            ("nodes_pruned_at_visit", counters.3),
            ("access_floor_pruned", floor.nodes_pruned_by_cost as u64),
            ("exhaustive_nodes_visited", full.nodes_visited as u64),
            (
                // The CI regression guard reads this: pruned / visited,
                // in thousandths (the pre-must-remain baseline was ~21).
                "pruned_ratio_x1000",
                (1000.0 * counters.1 as f64 / counters.0.max(1) as f64) as u64,
            ),
        ];
        records.push(rec);
    }

    if want("e15") {
        use cb_engine::exec::{compile, execute, execute_with_stats, CompileOptions};
        let p = prepared_views(1_000, 1_000, 0.05);
        let ev = p.evaluator();
        let nested = compile(
            &p.query,
            CompileOptions {
                hash_joins: false,
                ..Default::default()
            },
        );
        let hashed = compile(
            &p.query,
            CompileOptions {
                hash_joins: true,
                ..Default::default()
            },
        );
        let r_eval = measure("e15_evaluator", ITERS, || {
            ev.eval_query(&p.query).unwrap();
            None
        });
        let r_nested = measure("e15_nested_pipeline", ITERS, || {
            execute(&ev, &nested).unwrap();
            None
        });
        let mut rec = measure("e15_pipeline_execution", ITERS, || {
            execute(&ev, &hashed).unwrap();
            None
        });
        let (rows, stats) = execute_with_stats(&ev, &hashed).unwrap();
        assert_eq!(rows, ev.eval_query(&p.query).unwrap());
        let rows_per_s = stats.rows_processed() as f64 / (rec.median_ns as f64 / 1e9);
        rec.extra = vec![
            ("evaluator_median_ns", r_eval.median_ns as u64),
            ("nested_pipeline_median_ns", r_nested.median_ns as u64),
            ("result_rows", rows.len() as u64),
            ("rows_processed", stats.rows_processed()),
            ("rows_per_s", rows_per_s as u64),
            ("tables_built", stats.tables_built),
            ("tables_skipped", stats.tables_skipped),
        ];
        records.push(rec);
    }

    if want("e19") {
        use cb_engine::exec::{
            compile, execute_rows_with_stats, execute_with_stats, CompileOptions,
        };
        let p = prepared_views(1_000, 1_000, 0.05);
        let ev = p.evaluator();
        let nested = compile(
            &p.query,
            CompileOptions {
                hash_joins: false,
                ..Default::default()
            },
        );
        let hashed = compile(
            &p.query,
            CompileOptions {
                hash_joins: true,
                ..Default::default()
            },
        );
        let merged = compile(
            &p.query,
            CompileOptions {
                hash_joins: true,
                merge_joins: true,
                ..Default::default()
            },
        );
        // The correctness bar first: batched ≡ row-at-a-time on every
        // pipeline of every builtin scenario at this scale.
        for prep in [
            &p,
            &prepared_projdept(50, 10, 25),
            &prepared_indexes(5_000, 100, 50),
        ] {
            let ev = prep.evaluator();
            for (hash_joins, merge_joins) in [(false, false), (true, false), (true, true)] {
                let pipe = compile(
                    &prep.query,
                    CompileOptions {
                        hash_joins,
                        merge_joins,
                        ..Default::default()
                    },
                );
                let (batched, _) = execute_with_stats(&ev, &pipe).unwrap();
                let (rowwise, _) = execute_rows_with_stats(&ev, &pipe).unwrap();
                assert_eq!(batched, rowwise, "drivers disagree on {pipe}");
                assert_eq!(batched, ev.eval_query(&prep.query).unwrap());
            }
        }
        let r_rows = measure("e19_rows_nested", ITERS, || {
            execute_rows_with_stats(&ev, &nested).unwrap();
            None
        });
        let mut rec = measure("e19_batched_execution", ITERS, || {
            execute_with_stats(&ev, &nested).unwrap();
            None
        });
        let r_hash = measure("e19_batched_hash", ITERS, || {
            execute_with_stats(&ev, &hashed).unwrap();
            None
        });
        let r_merge = measure("e19_batched_merge", ITERS, || {
            execute_with_stats(&ev, &merged).unwrap();
            None
        });
        let speedup = r_rows.median_ns as f64 / rec.median_ns.max(1) as f64;
        // The batched driver's fused scan+filter must clearly beat the
        // row machine on the nested-loop pipeline — but only assert
        // where the box is big enough for stable timings (E18's guard).
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        if cores >= 4 {
            assert!(
                speedup >= 3.0,
                "batched nested-loop speedup {speedup:.2}x (expected >= 3x on a >= 4-core box)"
            );
        }
        let (_, stats) = execute_with_stats(&ev, &nested).unwrap();
        let (_, mstats) = execute_with_stats(&ev, &merged).unwrap();
        rec.extra = vec![
            ("rows_driver_median_ns", r_rows.median_ns as u64),
            ("speedup_x1000", (1000.0 * speedup) as u64),
            ("hash_batched_median_ns", r_hash.median_ns as u64),
            ("merge_batched_median_ns", r_merge.median_ns as u64),
            (
                "merge_vs_hash_x1000",
                (1000.0 * r_hash.median_ns as f64 / r_merge.median_ns.max(1) as f64) as u64,
            ),
            ("batches", stats.batches),
            (
                "sel_fill_rate_x1000",
                (1000.0 * stats.sel_fill_rate()) as u64,
            ),
            ("merge_runs_built", mstats.runs_built),
            ("merge_runs_sorted", mstats.runs_sorted),
            ("cores", cores as u64),
        ];
        records.push(rec);
    }

    if want("e17") {
        let mut counters = (0u64, 0u64, 0u64, 0u64, 0u64);
        let mut rec = measure("e17_static_analysis", ITERS, || {
            let lints = cb_bench::lint_builtin_scenarios();
            counters = (0, 0, 0, 0, 0);
            for lint in &lints {
                let (e, _, _) = lint.report.counts();
                assert_eq!(e, 0, "{}: {}", lint.name, lint.report);
                counters.0 += lint.report.len() as u64;
                counters.1 += lint.lookups.total as u64;
                counters.2 += lint.lookups.static_safe as u64;
                counters.3 += lint.lookups.deferred as u64;
                counters.4 += lint.lookups.unguardable as u64;
            }
            None
        });
        rec.extra = vec![
            ("diagnostics", counters.0),
            ("lookups_total", counters.1),
            ("lookups_static_safe", counters.2),
            ("lookups_deferred", counters.3),
            ("lookups_unguardable", counters.4),
        ];
        records.push(rec);
    }

    if want("e18") {
        let p = prepared_projdept(50, 10, 25);
        let v = prepared_views(1_000, 1_000, 0.05);
        let pd_full = e18_exhaustive(&p.catalog, &p.query);
        let vw_full = e18_exhaustive(&v.catalog, &v.query);
        let (pd_t1, _) = e18_time_guided(&p.catalog, &p.query, 1, ITERS);
        let (pd_t2, _) = e18_time_guided(&p.catalog, &p.query, 2, ITERS);
        let (pd_t4, pd_out) = e18_time_guided(&p.catalog, &p.query, 4, ITERS);
        let (vw_t1, _) = e18_time_guided(&v.catalog, &v.query, 1, ITERS);
        let (vw_t2, _) = e18_time_guided(&v.catalog, &v.query, 2, ITERS);
        let (vw_t4, vw_out) = e18_time_guided(&v.catalog, &v.query, 4, ITERS);
        // The correctness bar: parallel CostGuided finds the exhaustive
        // best cost on both scenarios at every thread count.
        for threads in [1usize, 2, 4] {
            let (_, o) = e18_time_guided(&p.catalog, &p.query, threads, 1);
            assert!(
                (o.best.cost - pd_full.best.cost).abs() < 1e-9,
                "projdept @ {threads} threads: {} vs exhaustive {}",
                o.best.cost,
                pd_full.best.cost
            );
            let (_, o) = e18_time_guided(&v.catalog, &v.query, threads, 1);
            assert!(
                (o.best.cost - vw_full.best.cost).abs() < 1e-9,
                "views @ {threads} threads: {} vs exhaustive {}",
                o.best.cost,
                vw_full.best.cost
            );
        }
        let pd_speedup = pd_t1 as f64 / pd_t4.max(1) as f64;
        let vw_speedup = vw_t1 as f64 / vw_t4.max(1) as f64;
        // The speedup bar only makes sense where 4 workers actually get
        // 4 cores; on smaller boxes the honest numbers are still
        // recorded, just not asserted against.
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        if cores >= 4 {
            assert!(
                pd_speedup >= 1.8,
                "projdept speedup {pd_speedup:.2}x at 4 threads (expected >= 1.8x on a >= 4-core box)"
            );
        }
        // Shard traffic of the last 4-thread projdept run.
        let mut shards = CacheStats::default();
        for s in &pd_out.shard_cache {
            shards.absorb(s);
        }
        let trace = &pd_out.incumbent_trace;
        let mut rec = JsonRecord {
            id: "e18_parallel_search",
            median_ns: pd_t4,
            cache_hit_rate: Some(shards.hit_rate()),
            extra: Vec::new(),
        };
        rec.extra = vec![
            ("projdept_t1_ns", pd_t1 as u64),
            ("projdept_t2_ns", pd_t2 as u64),
            ("projdept_t4_ns", pd_t4 as u64),
            ("projdept_speedup_x1000", (1000.0 * pd_speedup) as u64),
            ("views_t1_ns", vw_t1 as u64),
            ("views_t2_ns", vw_t2 as u64),
            ("views_t4_ns", vw_t4 as u64),
            ("views_speedup_x1000", (1000.0 * vw_speedup) as u64),
            ("cores", cores as u64),
            ("shard_count", pd_out.shard_cache.len() as u64),
            ("shard_hit_rate_x1000", (1000.0 * shards.hit_rate()) as u64),
            ("incumbent_trace_points", trace.len() as u64),
            (
                // The quality-vs-time curve's endpoint: when the final
                // incumbent (the returned best) was first reached.
                "incumbent_time_to_best_ns",
                trace.last().map_or(0, |(d, _)| d.as_nanos() as u64),
            ),
            (
                "views_incumbent_trace_points",
                vw_out.incumbent_trace.len() as u64,
            ),
        ];
        records.push(rec);
    }

    if want("e20") {
        use cb_chase::faults::{self, ScopedFaults};
        use cb_optimizer::{OptimizerConfig, SearchStrategy};
        e20_quiet_injected_panics();
        let ns_per_hit = e20_disarmed_hit_ns();
        let p = prepared_projdept(50, 10, 25);
        let config = OptimizerConfig {
            strategy: SearchStrategy::CostGuided,
            threads: 4,
            ..Default::default()
        };
        let mut counters = (0u64, 0u64, 0u64);
        let mut rec = measure("e20_resilience_ladder", ITERS, || {
            let guard =
                ScopedFaults::install("seed=3;parallel::spawn=panic;context::contained_in=panic")
                    .unwrap();
            let out = Optimizer::with_config(&p.catalog, config.clone())
                .optimize(&p.query)
                .unwrap();
            let fs = faults::stats();
            drop(guard);
            assert_eq!(fs.injected, fs.acknowledged(), "{fs:?}");
            counters = (
                fs.injected,
                fs.acknowledged(),
                out.degradations.len() as u64,
            );
            None
        });
        rec.extra = vec![
            (
                "disarmed_hit_ns_x1000",
                (1000.0 * ns_per_hit.unwrap_or(0.0)) as u64,
            ),
            ("injected", counters.0),
            ("acknowledged", counters.1),
            ("degradation_rungs", counters.2),
        ];
        records.push(rec);
    }

    if want("e21") {
        use cb_optimizer::{OptimizerConfig, PlanService};
        // Cold vs cached preparation over a replayed workload: every
        // builtin scenario gets one service; the first preparation pays
        // the full chase & backchase, every replay must be a cache hit
        // that skips phase 2 entirely (`nodes_visited == 0` — the
        // acceptance property, asserted, not just measured).
        let scenarios = [
            prepared_projdept(50, 10, 25),
            prepared_indexes(5_000, 100, 50),
            prepared_views(1_000, 1_000, 0.05),
        ];
        let mut cold_ns: Vec<u128> = Vec::new();
        let mut warm_ns: Vec<u128> = Vec::new();
        let (mut hits, mut misses) = (0u64, 0u64);
        for p in &scenarios {
            let mut svc = PlanService::new(p.catalog.clone(), OptimizerConfig::default());
            let t = Instant::now();
            let cold = svc.prepare(&p.query).expect("cold preparation");
            cold_ns.push(t.elapsed().as_nanos());
            assert!(!cold.cache_hit && cold.nodes_visited > 0);
            for _ in 0..ITERS {
                let t = Instant::now();
                let warm = svc.prepare(&p.query).expect("warm preparation");
                warm_ns.push(t.elapsed().as_nanos());
                assert!(warm.cache_hit, "replay missed the plan cache");
                assert_eq!(warm.nodes_visited, 0, "a hit must skip phase-2 search");
            }
            let s = svc.stats();
            hits += s.hits;
            misses += s.misses;
        }
        cold_ns.sort_unstable();
        warm_ns.sort_unstable();
        let cold_median = cold_ns[cold_ns.len() / 2];
        let warm_median = warm_ns[warm_ns.len() / 2];
        let hit_rate = hits as f64 / (hits + misses) as f64;
        records.push(JsonRecord {
            id: "e21_plan_service",
            median_ns: warm_median,
            cache_hit_rate: Some(hit_rate),
            extra: vec![
                ("cold_median_ns", cold_median as u64),
                ("warm_median_ns", warm_median as u64),
                (
                    "cold_over_warm_x1000",
                    (1000.0 * cold_median as f64 / (warm_median as f64).max(1.0)) as u64,
                ),
                ("hit_rate_x1000", (1000.0 * hit_rate) as u64),
                ("workload_preparations", hits + misses),
            ],
        });
    }

    let mut out =
        String::from("{\n  \"suite\": \"universal-plans experiments\",\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let rate = match r.cache_hit_rate {
            Some(v) => format!("{v:.4}"),
            None => "null".to_string(),
        };
        let extra: String = r
            .extra
            .iter()
            .map(|(k, v)| format!(", \"{k}\": {v}"))
            .collect();
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"median_ns\": {}, \"cache_hit_rate\": {}{}}}{}\n",
            r.id,
            r.median_ns,
            rate,
            extra,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, &out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {} records to {path}", records.len());
}

/// The R ⋈ S + k-copies-of-V scenario used by the E7/E8 scaling sweeps.
fn views_scenario(k: usize) -> (cb_catalog::Catalog, pcql::Query) {
    let mut catalog = cb_catalog::Catalog::new();
    catalog.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int)]);
    catalog.add_logical_relation("S", [("B", Type::Int), ("C", Type::Int)]);
    catalog.add_direct_mapping("R");
    catalog.add_direct_mapping("S");
    for i in 0..k {
        catalog
            .add_materialized_view(
                &format!("V{i}"),
                parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
                    .unwrap(),
            )
            .unwrap();
    }
    let q = parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
    (catalog, q)
}

/// E13 — ablation: exhaustive backchase (Theorem 2) vs. the paper's §3
/// greedy "remove logical-only bindings first" strategy.
fn e13_strategy_ablation() {
    banner("E13", "exhaustive vs. greedy backchase (ablation)");
    use cb_optimizer::{OptimizerConfig, SearchStrategy};
    let mut rows = Vec::new();
    for (name, mk) in [("projdept", 0usize), ("§4 indexes", 1), ("§4 views", 2)] {
        let p = match mk {
            0 => prepared_projdept(50, 10, 25),
            1 => prepared_indexes(5_000, 100, 50),
            _ => prepared_views(1_000, 1_000, 0.05),
        };
        let t0 = Instant::now();
        let full = Optimizer::new(&p.catalog).optimize(&p.query).unwrap();
        let full_ms = t0.elapsed().as_secs_f64() * 1e3;
        let config = OptimizerConfig {
            strategy: SearchStrategy::Greedy,
            cost_visited: false,
            ..Default::default()
        };
        let t1 = Instant::now();
        let greedy = Optimizer::with_config(&p.catalog, config)
            .optimize(&p.query)
            .unwrap();
        let greedy_ms = t1.elapsed().as_secs_f64() * 1e3;
        rows.push(vec![
            name.to_string(),
            format!("{full_ms:.0}"),
            format!("{:.1}", full.best.cost),
            format!("{greedy_ms:.0}"),
            format!("{:.1}", greedy.best.cost),
            format!("{:.2}x", greedy.best.cost / full.best.cost.max(1e-9)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "scenario",
                "exhaustive ms",
                "best cost",
                "greedy ms",
                "greedy cost",
                "quality gap"
            ],
            &rows
        )
    );
}

/// E14 — cost-guided branch-and-bound vs. exhaustive enumerate-then-cost:
/// identical best cost (the bound is admissible), strictly fewer
/// subqueries costed wherever the bound bites.
fn e14_cost_guided_pruning() {
    banner(
        "E14",
        "cost-guided backchase: branch-and-bound pruning vs. exhaustive",
    );
    use cb_optimizer::{OptimizerConfig, SearchStrategy};
    let mut rows = Vec::new();
    for (name, mk) in [("projdept", 0usize), ("§4 indexes", 1), ("§4 views", 2)] {
        let p = match mk {
            0 => prepared_projdept(50, 10, 25),
            1 => prepared_indexes(5_000, 100, 50),
            _ => prepared_views(1_000, 1_000, 0.05),
        };
        let t0 = Instant::now();
        let full = Optimizer::new(&p.catalog).optimize(&p.query).unwrap();
        let full_ms = t0.elapsed().as_secs_f64() * 1e3;
        let config = OptimizerConfig {
            strategy: SearchStrategy::CostGuided,
            ..Default::default()
        };
        let t1 = Instant::now();
        let guided = Optimizer::with_config(&p.catalog, config)
            .optimize(&p.query)
            .unwrap();
        let guided_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert!(
            (guided.best.cost - full.best.cost).abs() < 1e-9,
            "{name}: guided best {} != exhaustive best {}",
            guided.best.cost,
            full.best.cost
        );
        rows.push(vec![
            name.to_string(),
            full.nodes_visited.to_string(),
            format!("{full_ms:.0}"),
            guided.nodes_visited.to_string(),
            guided.nodes_pruned_by_cost.to_string(),
            format!(
                "{:.0}%",
                100.0 * guided.nodes_pruned_by_cost as f64 / full.nodes_visited.max(1) as f64
            ),
            format!("{guided_ms:.0}"),
            format!("{:.1}", guided.best.cost),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "scenario",
                "exhaustive nodes",
                "ms",
                "guided nodes",
                "pruned",
                "ratio",
                "ms",
                "best cost"
            ],
            &rows
        )
    );
    println!(
        "(best costs are asserted identical — the lower bound is admissible;\n\
         pruned counts sublattices cut before being costed — gate cuts also\n\
         skip the equivalence checks entirely)"
    );
}

/// E15 — the slot-compiled pipeline executor vs. the tree-walking
/// interpreter: wall-clock and operator-rows/s on the §4 scenarios (plus
/// ProjDept) at the E13 scales, where the rows go per operator, and the
/// lazy-build guarantee.
fn e15_pipeline_execution() {
    banner("E15", "slot-compiled pipeline executor vs. the interpreter");
    use cb_engine::exec::{compile, execute_with_stats, CompileOptions};
    let mut rows = Vec::new();
    let mut views_report: Option<String> = None;
    for (name, mk) in [("projdept", 0usize), ("§4 indexes", 1), ("§4 views", 2)] {
        let p = match mk {
            0 => prepared_projdept(50, 10, 25),
            1 => prepared_indexes(5_000, 100, 50),
            _ => prepared_views(1_000, 1_000, 0.05),
        };
        let ev = p.evaluator();
        let t0 = Instant::now();
        let reference = ev.eval_query(&p.query).unwrap();
        let eval_ms = t0.elapsed().as_secs_f64() * 1e3;
        let nested = compile(
            &p.query,
            CompileOptions {
                hash_joins: false,
                ..Default::default()
            },
        );
        let hashed = compile(
            &p.query,
            CompileOptions {
                hash_joins: true,
                ..Default::default()
            },
        );
        let t1 = Instant::now();
        let (nl_rows, _) = execute_with_stats(&ev, &nested).unwrap();
        let nl_ms = t1.elapsed().as_secs_f64() * 1e3;
        let t2 = Instant::now();
        let (hj_rows, stats) = execute_with_stats(&ev, &hashed).unwrap();
        let hj_ms = t2.elapsed().as_secs_f64() * 1e3;
        assert_eq!(nl_rows, reference);
        assert_eq!(hj_rows, reference);
        let rows_per_s = stats.rows_processed() as f64 / (hj_ms / 1e3).max(1e-9);
        rows.push(vec![
            name.to_string(),
            format!("{eval_ms:.2}"),
            format!("{nl_ms:.2}"),
            format!("{hj_ms:.2}"),
            format!("{:.1}x", eval_ms / hj_ms.max(1e-9)),
            format!("{:.0}k", rows_per_s / 1e3),
            format!("{}/{}", stats.tables_built, stats.tables_skipped),
        ]);
        if mk == 2 {
            views_report = Some(format!("pipeline: {hashed}\n{}", stats.render(&hashed)));
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "scenario",
                "interp ms",
                "pipeline ms",
                "hash pipe ms",
                "speedup",
                "op-rows/s",
                "tables b/s"
            ],
            &rows
        )
    );
    println!("\nwhere the §4-views rows went (hash pipeline):");
    print!("{}", views_report.unwrap());

    // The lazy-build guarantee: a hash join below an empty outer stream
    // never pays for its table.
    let mut inst = cb_engine::Instance::new();
    inst.set("R", cb_engine::Value::Set(BTreeSet::new()));
    inst.set(
        "S",
        cb_engine::Value::set((0..100_000).map(|k| {
            cb_engine::Value::record([
                ("B", cb_engine::Value::Int(k % 100)),
                ("C", cb_engine::Value::Int(k)),
            ])
        })),
    );
    let q = parse_query("select struct(C = s.C) from R r, S s where r.B = s.B").unwrap();
    let hashed = compile(
        &q,
        CompileOptions {
            hash_joins: true,
            ..Default::default()
        },
    );
    let ev = Evaluator::new(&inst);
    let t = Instant::now();
    let (out, stats) = execute_with_stats(&ev, &hashed).unwrap();
    println!(
        "\nempty outer stream over |S| = 100000: {} rows in {:.3} ms, \
         tables built {} / skipped {} (the eager executor built the 100k-row table anyway)",
        out.len(),
        t.elapsed().as_secs_f64() * 1e3,
        stats.tables_built,
        stats.tables_skipped
    );
    assert_eq!(stats.tables_built, 0);
}

/// E19 — the batched push-based driver vs the row-at-a-time machine vs
/// the interpreter, on every builtin scenario at E13/E15 scales, plus
/// merge vs hash joins on ordered roots.
fn e19_batched_execution() {
    banner(
        "E19",
        "batch-vectorized execution: batched vs row-at-a-time vs interpreter",
    );
    use cb_engine::exec::{compile, execute_rows_with_stats, execute_with_stats, CompileOptions};
    let mut rows = Vec::new();
    for (name, mk) in [("projdept", 0usize), ("§4 indexes", 1), ("§4 views", 2)] {
        let p = match mk {
            0 => prepared_projdept(50, 10, 25),
            1 => prepared_indexes(5_000, 100, 50),
            _ => prepared_views(1_000, 1_000, 0.05),
        };
        let ev = p.evaluator();
        let t0 = Instant::now();
        let reference = ev.eval_query(&p.query).unwrap();
        let eval_ms = t0.elapsed().as_secs_f64() * 1e3;
        let nested = compile(
            &p.query,
            CompileOptions {
                hash_joins: false,
                ..Default::default()
            },
        );
        let t1 = Instant::now();
        let (row_rows, _) = execute_rows_with_stats(&ev, &nested).unwrap();
        let rows_ms = t1.elapsed().as_secs_f64() * 1e3;
        let t2 = Instant::now();
        let (batch_rows, stats) = execute_with_stats(&ev, &nested).unwrap();
        let batch_ms = t2.elapsed().as_secs_f64() * 1e3;
        assert_eq!(row_rows, reference);
        assert_eq!(batch_rows, reference);
        rows.push(vec![
            name.to_string(),
            format!("{eval_ms:.2}"),
            format!("{rows_ms:.2}"),
            format!("{batch_ms:.2}"),
            format!("{:.1}x", rows_ms / batch_ms.max(1e-9)),
            format!("{}", stats.batches),
            format!("{:.0}%", 100.0 * stats.sel_fill_rate()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "scenario",
                "interp ms",
                "rows ms",
                "batched ms",
                "speedup",
                "batches",
                "sel fill"
            ],
            &rows
        )
    );

    // Merge vs hash joins on ordered roots: the §4 views join key is the
    // first field of S's records, so the BTreeSet iteration order already
    // sorts the merge run — no sort is paid.
    let p = prepared_views(1_000, 1_000, 0.05);
    let ev = p.evaluator();
    let hashed = compile(
        &p.query,
        CompileOptions {
            hash_joins: true,
            ..Default::default()
        },
    );
    let merged = compile(
        &p.query,
        CompileOptions {
            hash_joins: true,
            merge_joins: true,
            ..Default::default()
        },
    );
    let t = Instant::now();
    let (h_rows, _) = execute_with_stats(&ev, &hashed).unwrap();
    let hash_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let (m_rows, mstats) = execute_with_stats(&ev, &merged).unwrap();
    let merge_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(h_rows, m_rows);
    println!(
        "\nordered-root join, §4 views: hash {hash_ms:.3} ms vs merge {merge_ms:.3} ms \
         ({} run(s) built, {} needed a sort)",
        mstats.runs_built, mstats.runs_sorted
    );
    println!("\nmerge pipeline:\n{merged}\n{}", mstats.render(&merged));
}

/// E16 — the must-remain cost bound: summing the access floors of the
/// bindings every output-preserving removal set keeps vs. the single
/// cheapest access floor (the PR-3 bound, kept as
/// `CostBound::AccessFloor`). Same best cost — both bounds are
/// admissible — with a multiplied pruning ratio.
fn e16_must_remain_bound() {
    banner(
        "E16",
        "must-remain cost bound: summed floors vs the single access floor",
    );
    use cb_optimizer::{CostBound, OptimizerConfig, SearchStrategy};
    let mut rows = Vec::new();
    let mut projdept_pruned = (0usize, 0usize);
    for (name, mk) in [("projdept", 0usize), ("§4 indexes", 1), ("§4 views", 2)] {
        let p = match mk {
            0 => prepared_projdept(50, 10, 25),
            1 => prepared_indexes(5_000, 100, 50),
            _ => prepared_views(1_000, 1_000, 0.05),
        };
        let full = Optimizer::new(&p.catalog).optimize(&p.query).unwrap();
        let must_cfg = OptimizerConfig {
            strategy: SearchStrategy::CostGuided,
            ..Default::default()
        };
        let floor_cfg = OptimizerConfig {
            bound: CostBound::AccessFloor,
            ..must_cfg.clone()
        };
        let floor = Optimizer::with_config(&p.catalog, floor_cfg)
            .optimize(&p.query)
            .unwrap();
        let must = Optimizer::with_config(&p.catalog, must_cfg)
            .optimize(&p.query)
            .unwrap();
        for (label, out) in [("access-floor", &floor), ("must-remain", &must)] {
            assert!(
                (out.best.cost - full.best.cost).abs() < 1e-9,
                "{name}: {label} best {} != exhaustive best {}",
                out.best.cost,
                full.best.cost
            );
        }
        if mk == 0 {
            projdept_pruned = (floor.nodes_pruned_by_cost, must.nodes_pruned_by_cost);
        }
        let ratio = |o: &cb_optimizer::OptimizeOutcome| {
            100.0 * o.nodes_pruned_by_cost as f64 / full.nodes_visited.max(1) as f64
        };
        rows.push(vec![
            name.to_string(),
            full.nodes_visited.to_string(),
            format!("{} ({:.0}%)", floor.nodes_pruned_by_cost, ratio(&floor)),
            format!("{} ({:.0}%)", must.nodes_pruned_by_cost, ratio(&must)),
            format!(
                "{}g+{}v",
                must.nodes_pruned_at_gate, must.nodes_pruned_at_visit
            ),
            format!(
                "{:.1}x",
                must.nodes_pruned_by_cost as f64 / floor.nodes_pruned_by_cost.max(1) as f64
            ),
            if must.must_remain.is_empty() {
                "-".to_string()
            } else {
                must.must_remain.join(",")
            },
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "scenario",
                "exhaustive nodes",
                "floor pruned",
                "must-remain pruned",
                "gate+visit",
                "improvement",
                "root must-remain"
            ],
            &rows
        )
    );
    println!(
        "(best costs asserted identical across exhaustive / access-floor /\n\
         must-remain — both bounds are admissible; the must-remain bound sums\n\
         the floors of every binding no output-preserving removal set can\n\
         drop, so cones forced through an expensive access are cut wholesale)"
    );
    assert!(
        projdept_pruned.1 >= 3 * projdept_pruned.0.max(1),
        "projdept: must-remain pruned {} < 3x access-floor pruned {}",
        projdept_pruned.1,
        projdept_pruned.0
    );
}

/// E17 — the static verifier over every builtin scenario: lint
/// wall-clock, diagnostic counts, and how much of the lookup-safety work
/// the syntactic pass discharges without the chase-based prover.
fn e17_static_analysis() {
    banner(
        "E17",
        "static analysis: scenario lint wall-clock and lookup-safety split",
    );
    let t = Instant::now();
    let lints = cb_bench::lint_builtin_scenarios();
    let total_ms = t.elapsed().as_secs_f64() * 1e3;
    let mut rows = Vec::new();
    for lint in &lints {
        let (e, w, i) = lint.report.counts();
        rows.push(vec![
            lint.name.to_string(),
            format!("{e}/{w}/{i}"),
            lint.lookups.total.to_string(),
            lint.lookups.static_safe.to_string(),
            lint.lookups.deferred.to_string(),
            lint.lookups.unguardable.to_string(),
        ]);
        assert!(!lint.report.has_errors(), "{}: {}", lint.name, lint.report);
    }
    println!(
        "{}",
        render_table(
            &[
                "scenario",
                "err/warn/info",
                "lookups",
                "static-safe",
                "deferred",
                "unguardable"
            ],
            &rows
        )
    );
    println!("lint wall-clock over all scenarios (incl. candidate enumeration): {total_ms:.1} ms");
    println!("no error-severity diagnostics — the builtin scenarios are certified clean");
}

/// E18's workload: one `CostGuided` optimization at a worker count.
/// Returns the median wall clock over `iters` runs and the last outcome.
fn e18_time_guided(
    catalog: &cb_catalog::Catalog,
    q: &pcql::Query,
    threads: usize,
    iters: usize,
) -> (u128, cb_optimizer::OptimizeOutcome) {
    use cb_optimizer::{OptimizerConfig, SearchStrategy};
    let config = OptimizerConfig {
        strategy: SearchStrategy::CostGuided,
        threads,
        ..Default::default()
    };
    let mut samples: Vec<u128> = Vec::with_capacity(iters);
    let mut last = None;
    for _ in 0..iters {
        let t = Instant::now();
        let out = Optimizer::with_config(catalog, config.clone())
            .optimize(q)
            .unwrap();
        samples.push(t.elapsed().as_nanos());
        last = Some(out);
    }
    samples.sort_unstable();
    (samples[samples.len() / 2], last.unwrap())
}

/// E18's baseline: the sequential exhaustive search (explicit config, so
/// the record is insensitive to `CB_SEARCH_THREADS` in the environment).
fn e18_exhaustive(catalog: &cb_catalog::Catalog, q: &pcql::Query) -> cb_optimizer::OptimizeOutcome {
    use cb_optimizer::OptimizerConfig;
    let config = OptimizerConfig {
        backchase: BackchaseConfig {
            max_visited: 4096,
            ..Default::default()
        },
        cost_visited: true,
        ..Default::default()
    };
    Optimizer::with_config(catalog, config).optimize(q).unwrap()
}

/// E18 — the parallel anytime frontier: wall clock at 1/2/4 workers on
/// ProjDept and the §4 views scenario, the incumbent-quality-vs-time
/// curve, and the shard traffic of the shared chase core.
fn e18_parallel_search() {
    banner(
        "E18",
        "parallel plan search: speedup, incumbent descent, shard traffic",
    );
    let scenarios = [
        ("projdept", prepared_projdept(50, 10, 25)),
        ("views §4", prepared_views(1_000, 1_000, 0.05)),
    ];
    let mut rows = Vec::new();
    for (name, p) in &scenarios {
        let full = e18_exhaustive(&p.catalog, &p.query);
        let (t1, _) = e18_time_guided(&p.catalog, &p.query, 1, 3);
        for threads in [1usize, 2, 4] {
            let (ns, out) = e18_time_guided(&p.catalog, &p.query, threads, 3);
            assert!(
                (out.best.cost - full.best.cost).abs() < 1e-9,
                "{name} @ {threads} threads: best {} vs exhaustive {}",
                out.best.cost,
                full.best.cost
            );
            let mut shards = CacheStats::default();
            for s in &out.shard_cache {
                shards.absorb(s);
            }
            rows.push(vec![
                name.to_string(),
                threads.to_string(),
                format!("{:.2}", ns as f64 / 1e6),
                format!("{:.2}x", t1 as f64 / ns.max(1) as f64),
                format!("{:.1}", out.best.cost),
                out.nodes_visited.to_string(),
                if threads > 1 {
                    format!("{:.0}%", 100.0 * shards.hit_rate())
                } else {
                    "-".to_string()
                },
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "scenario",
                "threads",
                "median ms",
                "speedup",
                "best cost",
                "visited",
                "shard hits"
            ],
            &rows
        )
    );
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!("available cores: {cores} (speedup is bounded by the box, not the frontier)");
    let (_, out) = e18_time_guided(&scenarios[0].1.catalog, &scenarios[0].1.query, 4, 1);
    println!("incumbent descent (projdept, 4 workers):");
    for (elapsed, cost) in &out.incumbent_trace {
        println!(
            "  {:>9.3} ms  cost {:.1}",
            elapsed.as_secs_f64() * 1e3,
            cost
        );
    }
    println!(
        "every thread count returns the exhaustive best cost; the anytime budget\n\
         (SearchBudget) can stop this search at any point and still return a\n\
         fully verified incumbent — see the parallel_search integration tests"
    );
}

/// E20 — the resilience layer: the disarmed failpoint cost and the
/// degradation ladder walked rung by rung under representative fault
/// schedules, with the no-silent-swallowing invariant asserted per run.
fn e20_resilience() {
    use cb_chase::faults::{self, ScopedFaults};
    use cb_optimizer::{Degradation, OptimizerConfig, SearchStrategy};
    banner("E20", "fault injection: the degradation ladder, end to end");
    match e20_disarmed_hit_ns() {
        Some(ns) => println!("disarmed failpoint hit: {ns:.2} ns (one relaxed atomic load)"),
        None => println!("disarmed failpoint hit: n/a (a fault schedule is armed)"),
    }

    e20_quiet_injected_panics();
    let p = prepared_projdept(50, 10, 25);
    let config = OptimizerConfig {
        strategy: SearchStrategy::CostGuided,
        threads: 4,
        ..Default::default()
    };
    let clean = Optimizer::with_config(&p.catalog, config.clone())
        .optimize(&p.query)
        .unwrap();
    let schedules = [
        ("armed, nothing fires", "seed=1"),
        ("one worker death", "parallel::pop=panic@4"),
        ("every spawn dies -> rung 2", "parallel::spawn=panic"),
        (
            "full ladder -> rung 3",
            "seed=3;parallel::spawn=panic;context::contained_in=panic",
        ),
        (
            "transient errors everywhere",
            "seed=7;chase::step=err%0.3;shared::checkout=err%0.3",
        ),
    ];
    let mut rows = Vec::new();
    for (label, spec) in schedules {
        let guard = ScopedFaults::install(spec).unwrap();
        let out = Optimizer::with_config(&p.catalog, config.clone())
            .optimize(&p.query)
            .unwrap();
        let fs = faults::stats();
        drop(guard);
        assert_eq!(fs.injected, fs.acknowledged(), "{label}: {fs:?}");
        let fell_back = out
            .degradations
            .iter()
            .any(|d| matches!(d, Degradation::UniversalFallback { .. }));
        if !fell_back {
            assert!(
                (out.best.cost - clean.best.cost).abs() < 1e-9,
                "{label}: best cost {} != fault-free {}",
                out.best.cost,
                clean.best.cost
            );
        }
        rows.push(vec![
            label.to_string(),
            spec.to_string(),
            fs.injected.to_string(),
            out.workers_died.to_string(),
            out.degradations.len().to_string(),
            if fell_back {
                "universal plan".to_string()
            } else {
                "fault-free best".to_string()
            },
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "schedule",
                "CB_FAULTS",
                "injected",
                "workers died",
                "rungs",
                "surviving answer"
            ],
            &rows
        )
    );
    println!(
        "every injected fault is acknowledged (recovered or reported); the\n\
         surviving answer is the fault-free best unless the ladder's last rung\n\
         was taken, where it is the verified universal plan — the chaos\n\
         differential harness (tests/chaos.rs) sweeps random schedules"
    );
}

/// Silences the default panic hook's backtrace spam for *injected*
/// panics (they are caught and recovered by design); genuine panics
/// still print through the previous hook. Process-wide and idempotent
/// enough for a benchmark binary.
fn e20_quiet_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with("cb-fault:"))
            || info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.starts_with("cb-fault:"));
        if !injected {
            previous(info);
        }
    }));
}

/// The disarmed-failpoint microbenchmark: ns per [`cb_chase::faults::hit`]
/// with no schedule armed (`None` if one is armed — e.g. `CB_FAULTS` in
/// the environment — since the measurement would be meaningless).
fn e20_disarmed_hit_ns() -> Option<f64> {
    if cb_chase::faults::armed() {
        return None;
    }
    const N: u32 = 1_000_000;
    let t = Instant::now();
    for _ in 0..N {
        let _ = std::hint::black_box(cb_chase::faults::hit(std::hint::black_box("parallel::pop")));
    }
    Some(t.elapsed().as_nanos() as f64 / f64::from(N))
}

/// E21 — the prepared-plan service: cold vs cached preparation over a
/// replayed workload, with the "a hit skips phase 2" property asserted.
fn e21_plan_service() {
    use cb_optimizer::{explain_prepared, OptimizerConfig, PlanService};
    banner("E21", "plan service: cold vs cached preparation");
    let scenarios = [
        ("projdept", prepared_projdept(50, 10, 25)),
        ("relational_indexes", prepared_indexes(5_000, 100, 50)),
        ("relational_views", prepared_views(1_000, 1_000, 0.05)),
    ];
    const REPLAYS: usize = 10;
    let mut rows = Vec::new();
    for (name, p) in &scenarios {
        let mut svc = PlanService::new(p.catalog.clone(), OptimizerConfig::default());
        let t = Instant::now();
        let cold = svc.prepare(&p.query).expect("cold preparation");
        let cold_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        for _ in 0..REPLAYS {
            let warm = svc.prepare(&p.query).expect("warm preparation");
            assert!(warm.cache_hit);
            assert_eq!(warm.nodes_visited, 0, "a hit must skip phase-2 search");
        }
        let warm_ms = t.elapsed().as_secs_f64() * 1e3 / REPLAYS as f64;
        // The serialized plan round-trips and re-verifies against the
        // service's own catalog.
        let repr = &cold.plan.repr;
        let reparsed = cb_optimizer::PlanRepr::parse(&repr.render()).expect("round trip");
        assert_eq!(&reparsed, repr);
        reparsed.load_verified(svc.catalog()).expect("load-verify");
        rows.push(vec![
            (*name).to_string(),
            format!("{cold_ms:.2}"),
            format!("{warm_ms:.4}"),
            format!("{:.0}x", cold_ms / warm_ms.max(1e-9)),
            format!("{:.2}", svc.stats().hit_rate()),
            cold.nodes_visited.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "scenario",
                "cold ms",
                "cached ms",
                "speedup",
                "hit rate",
                "cold nodes visited",
            ],
            &rows
        )
    );
    // One EXPLAIN of a serialized plan, for the record.
    let p = prepared_projdept(20, 5, 5);
    let mut svc = PlanService::new(p.catalog.clone(), OptimizerConfig::default());
    let prepared = svc.prepare(&p.query).expect("prepare");
    println!("{}", explain_prepared(&prepared.plan.repr));
}

fn banner(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

fn shape(q: &pcql::Query) -> String {
    let mut v: Vec<String> = q.from.iter().map(|b| b.src.to_string()).collect();
    v.sort();
    v.join(" × ")
}

/// E1 — §1's four plans from the two constraint regimes.
fn e1_projdept_plan_space() {
    banner("E1", "ProjDept plan space (paper §1, plans P1–P4)");
    let p = prepared_projdept(50, 10, 25);
    let q = &p.query;

    for (regime, catalog) in [
        ("D ∪ D' (semantic + mapping)", p.catalog.clone()),
        (
            "D' only (mapping)",
            p.catalog.without_semantic_constraints(),
        ),
    ] {
        let mut ctx = ChaseContext::new(catalog.all_constraints(), ChaseConfig::default());
        let u = ctx.chase(q).query;
        let out = backchase_in(&mut ctx, &u, 4096);
        println!("\nregime: {regime}");
        println!("  universal plan: {} bindings", u.from.len());
        println!("  equivalent subqueries visited: {}", out.visited.len());
        println!("  minimal plans:");
        for nf in &out.normal_forms {
            println!("    {}", shape(nf));
        }
    }
    println!(
        "\npaper: P1–P4 are all equivalent plans; P2/P3/P4 are minimal under D ∪ D',\n\
         P1 appears among the visited equivalents (and under D' alone it refines\n\
         further via PI2 — see EXPERIMENTS.md)."
    );
}

/// E2 — §3's single chase step with c_JI.
fn e2_chase_step_with_cji() {
    banner("E2", "one chase step with c_JI (paper §3)");
    let q = cb_catalog::scenarios::projdept::query();
    let c_ji = parse_dependency(
        "c_JI",
        "forall (d in depts) (s in d.DProjs) (p in Proj) where s = p.PName \
         -> exists (j in JI) where j.DOID = d and j.PN = p.PName",
    )
    .unwrap();
    println!("Q:  {q}");
    let stepped = chase_step(&q, &c_ji, &ChaseConfig::default()).expect("c_JI applies");
    println!("~>  {stepped}");
    assert!(chase_step(&stepped, &c_ji, &ChaseConfig::default()).is_none());
    println!("(a second application is refused: the constraint is satisfied)");
}

/// E3 — §3's universal plan.
fn e3_universal_plan() {
    banner("E3", "the universal plan U (paper §3)");
    let catalog = cb_catalog::scenarios::projdept::catalog();
    let q = cb_catalog::scenarios::projdept::query();
    let mut ctx = ChaseContext::new(catalog.all_constraints(), ChaseConfig::default());
    let out = ctx.chase(&q);
    println!("chase steps: {}", out.steps.len());
    for s in &out.steps {
        println!("  [{}]", s.dep);
    }
    println!("U = {}", out.query);
    println!("bindings: {} (paper: 9)", out.query.from.len());
}

/// E4 — §3's tableau-minimization example.
fn e4_tableau_minimization() {
    banner("E4", "generalized tableau minimization (paper §3)");
    let q = parse_query(
        "select struct(A = p.A, B = r.B) from R p, R q, R r \
         where p.B = q.A and q.B = r.B",
    )
    .unwrap();
    let m = minimize(&q, &BackchaseConfig::default());
    println!("query:     {q}");
    println!("minimized: {m}");
}

/// E5 — §4 scenario 1: index-only access paths, with measured speedups.
fn e5_index_only() {
    banner("E5", "index-only access paths (paper §4, scenario 1)");
    let p = prepared_indexes(50_000, 500, 200);
    let outcome = p.optimizer().optimize(&p.query).unwrap();
    println!("chosen plan: {}", outcome.best.query);
    let (scan_ms, n) = p.time_plan(&p.query);
    let (plan_ms, n2) = p.time_plan(&outcome.best.query);
    assert_eq!(n, n2);
    let rows = vec![
        vec![
            "base scan of R".to_string(),
            format!("{scan_ms:.2}"),
            n.to_string(),
        ],
        vec![
            "chosen index plan".to_string(),
            format!("{plan_ms:.2}"),
            n2.to_string(),
        ],
    ];
    println!("{}", render_table(&["plan", "time (ms)", "rows"], &rows));
    println!("speedup: {:.1}x", scan_ms / plan_ms.max(1e-9));
}

/// E6 — §4 scenario 2: views + indexes, navigation join, crossover in |V|.
fn e6_views_and_indexes() {
    banner("E6", "materialized view + indexes (paper §4, scenario 2)");
    let mut rows = Vec::new();
    for frac in [0.01, 0.05, 0.2, 0.5, 0.9] {
        let p = prepared_views(4000, 4000, frac);
        let outcome = p.optimizer().optimize(&p.query).unwrap();
        let (base_ms, _) = p.time_plan(&p.query);
        let (best_ms, _) = p.time_plan(&outcome.best.query);
        rows.push(vec![
            format!("{}", p.instance.cardinality("V").unwrap()),
            if outcome.best.query.to_string().contains('V') {
                "view nav"
            } else {
                "other"
            }
            .to_string(),
            format!("{base_ms:.1}"),
            format!("{best_ms:.1}"),
            format!("{:.1}x", base_ms / best_ms.max(1e-9)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["|V|", "chosen", "base join ms", "chosen ms", "speedup"],
            &rows
        )
    );
    // The derivation of the navigation plan itself:
    let p = prepared_views(400, 400, 0.05);
    let outcome = p.optimizer().optimize(&p.query).unwrap();
    println!("navigation plan: {}", outcome.best.query);
}

/// E7 — Theorem 1: chase size grows polynomially (here: linearly) with
/// the number of views. The cold/memoized columns attribute the speedup
/// the `ChaseContext` cache provides to repeated chases.
fn e7_chase_scaling() {
    banner("E7", "chase size vs. number of views (Theorem 1)");
    let mut rows = Vec::new();
    for k in 1..=8usize {
        let (catalog, q) = views_scenario(k);
        let mut ctx = ChaseContext::new(catalog.all_constraints(), ChaseConfig::default());
        let t = Instant::now();
        let out = ctx.chase(&q);
        let cold_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let _ = ctx.chase(&q);
        let memo_ms = t.elapsed().as_secs_f64() * 1e3;
        let s = ctx.stats();
        rows.push(vec![
            k.to_string(),
            out.query.from.len().to_string(),
            out.query.size().to_string(),
            out.steps.len().to_string(),
            format!("{cold_ms:.1}"),
            format!("{memo_ms:.3}"),
            format!("{}h/{}m", s.hits(), s.misses()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "#views",
                "U bindings",
                "U size",
                "steps",
                "cold chase ms",
                "memo chase ms",
                "cache"
            ],
            &rows
        )
    );
}

/// E8 — the exponential backchase (paper §5 complexity discussion). The
/// cache columns show how the shared `ChaseContext` absorbs the lattice:
/// the hit rate is what keeps the exponent affordable.
fn e8_backchase_scaling() {
    banner("E8", "backchase plan space vs. number of views (paper §5)");
    let mut rows = Vec::new();
    for k in 1..=5usize {
        let (catalog, q) = views_scenario(k);
        let mut ctx = ChaseContext::new(catalog.all_constraints(), ChaseConfig::default());
        let u = ctx.chase(&q).query;
        let t = Instant::now();
        let out = backchase_in(&mut ctx, &u, 0);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let s = ctx.stats();
        rows.push(vec![
            k.to_string(),
            u.from.len().to_string(),
            out.visited.len().to_string(),
            out.normal_forms.len().to_string(),
            format!("{ms:.1}"),
            format!("{}h/{}m", s.hits(), s.misses()),
            format!("{:.0}%", s.hit_rate() * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "#views",
                "U bindings",
                "visited",
                "minimal plans",
                "backchase ms",
                "cache",
                "hit rate"
            ],
            &rows
        )
    );
    println!("(minimal plans = k views + the base join: each view answers the query)");
}

/// E9 — Theorem 2: the backchase equals brute-force minimal-subquery
/// enumeration in the theorem's regime.
fn e9_completeness() {
    banner("E9", "complete backchase vs. brute force (Theorem 2)");
    let mut catalog = cb_catalog::Catalog::new();
    catalog.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int)]);
    catalog.add_logical_relation("S", [("B", Type::Int), ("C", Type::Int)]);
    catalog.add_logical_relation("T", [("C", Type::Int), ("D", Type::Int)]);
    catalog.add_direct_mapping("R");
    catalog.add_direct_mapping("S");
    catalog.add_direct_mapping("T");
    catalog
        .add_materialized_view(
            "V1",
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap(),
        )
        .unwrap();
    catalog
        .add_materialized_view(
            "V2",
            parse_query("select struct(C = t.C, D = t.D) from T t").unwrap(),
        )
        .unwrap();
    let q = parse_query(
        "select struct(A = r.A, D = t.D) from R r, S s, T t \
         where r.B = s.B and s.C = t.C",
    )
    .unwrap();
    let mut ctx = ChaseContext::new(catalog.all_constraints(), ChaseConfig::default());
    let u = ctx.chase(&q).query;
    let out = backchase_in(&mut ctx, &u, 0);

    // Brute force over all removal subsets — one shared context and one
    // canonical database across all 2^n judgements.
    let vars: Vec<String> = u.from.iter().map(|b| b.var.clone()).collect();
    let mut graph = QueryGraph::of_query(&u);
    let mut equivalents: Vec<(BTreeSet<String>, pcql::Query)> = Vec::new();
    for mask in 0..(1u32 << vars.len()) {
        let removed: BTreeSet<String> = (0..vars.len())
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| vars[i].clone())
            .collect();
        if let RemovalJudgement::Valid(qq) = examine_removal_in(&mut ctx, &u, &mut graph, &removed)
        {
            equivalents.push((removed, qq));
        }
    }
    let minimal: Vec<&pcql::Query> = equivalents
        .iter()
        .filter(|(r1, _)| {
            !equivalents
                .iter()
                .any(|(r2, _)| r2.len() > r1.len() && r2.is_superset(r1))
        })
        .map(|(_, qq)| qq)
        .collect();

    let bc_shapes: BTreeSet<String> = out.normal_forms.iter().map(shape).collect();
    let bf_shapes: BTreeSet<String> = minimal.iter().map(|qq| shape(qq)).collect();
    println!("backchase normal forms: {bc_shapes:?}");
    println!("brute-force minimal:    {bf_shapes:?}");
    println!("agree: {}", bc_shapes == bf_shapes);
    assert_eq!(bc_shapes, bf_shapes);
}

/// E10 — "depending on the cost model, either one of P2, P3 and P4 may be
/// cheaper": measured execution across selectivities.
fn e10_plan_crossover() {
    banner("E10", "P1–P4 measured cost across selectivity (paper §1)");
    let mut rows = Vec::new();
    for n_customers in [2usize, 10, 100, 1000] {
        let p = prepared_projdept(100, 20, n_customers);
        let plans = cb_catalog::scenarios::projdept::paper_plans();
        let mut cells = vec![format!("1/{n_customers}")];
        let reference = p.evaluator().eval_query(&p.query).unwrap();
        let mut times = Vec::new();
        for plan in &plans {
            let (ms, _) = p.time_plan(plan);
            let rows_match = p.evaluator().eval_query(plan).unwrap() == reference;
            assert!(rows_match);
            times.push(ms);
            cells.push(format!("{ms:.2}"));
        }
        let winner = ["P1", "P2", "P3", "P4"][times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0];
        cells.push(winner.to_string());
        let outcome = p.optimizer().optimize(&p.query).unwrap();
        cells.push(shape(&outcome.best.query).to_string());
        rows.push(cells);
    }
    println!(
        "{}",
        render_table(
            &[
                "selectivity",
                "P1 ms",
                "P2 ms",
                "P3 ms",
                "P4 ms",
                "measured winner",
                "optimizer pick"
            ],
            &rows
        )
    );
}

/// E11 — each §2 structure encoding admits its intended rewrite.
fn e11_structure_encodings() {
    banner("E11", "access-structure encodings (paper §2)");

    // Gmap.
    let mut catalog = cb_catalog::Catalog::new();
    catalog.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int)]);
    catalog.add_direct_mapping("R");
    catalog
        .add_gmap(
            "G",
            cb_catalog::GmapDef {
                from: vec![pcql::Binding::iter("r", pcql::Path::root("R"))],
                where_: vec![],
                key: vec![("A".into(), pcql::Path::var("r").field("A"))],
                value: vec![("B".into(), pcql::Path::var("r").field("B"))],
            },
        )
        .unwrap();
    let q = parse_query("select struct(B = r.B) from R r where r.A = 3").unwrap();
    let out = Optimizer::new(&catalog).optimize(&q).unwrap();
    let gmap_plan = out
        .candidates
        .iter()
        .find(|c| c.query.to_string().contains('G'));
    println!(
        "gmap rewrite:              {}",
        gmap_plan.map(|c| c.query.to_string()).unwrap_or_default()
    );

    // Hash table (same constraints as a secondary index).
    let mut catalog = cb_catalog::Catalog::new();
    catalog.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int)]);
    catalog.add_logical_relation("S", [("B", Type::Int), ("C", Type::Int)]);
    catalog.add_direct_mapping("R");
    catalog.add_direct_mapping("S");
    catalog.add_hash_table("HS", "S", "B").unwrap();
    let q = parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
    let out = Optimizer::new(&catalog).optimize(&q).unwrap();
    let hash_plan = out
        .candidates
        .iter()
        .find(|c| c.query.to_string().contains("HS"));
    println!(
        "hash-join-style rewrite:   {}",
        hash_plan.map(|c| c.query.to_string()).unwrap_or_default()
    );

    // Access support relation over the ProjDept path.
    let mut catalog = cb_catalog::scenarios::projdept::catalog();
    catalog
        .add_access_support_relation("ASR", "depts", &["DProjs"])
        .unwrap();
    let q = parse_query("select struct(DN = d.DName, PN = s) from depts d, d.DProjs s").unwrap();
    let out = Optimizer::new(&catalog).optimize(&q).unwrap();
    let asr_plan = out
        .candidates
        .iter()
        .find(|c| c.query.to_string().contains("ASR"));
    println!(
        "ASR rewrite:               {}",
        asr_plan.map(|c| c.query.to_string()).unwrap_or_default()
    );

    // Source capability: a dictionary from bound attribute to results.
    let mut catalog = cb_catalog::Catalog::new();
    catalog.add_logical_relation("Src", [("K", Type::Int), ("P", Type::Int)]);
    catalog
        .add_source_capability(
            "ByK",
            cb_catalog::GmapDef {
                from: vec![pcql::Binding::iter("r", pcql::Path::root("Src"))],
                where_: vec![],
                key: vec![("K".into(), pcql::Path::var("r").field("K"))],
                value: vec![("P".into(), pcql::Path::var("r").field("P"))],
            },
        )
        .unwrap();
    let q = parse_query("select struct(P = r.P) from Src r where r.K = 7").unwrap();
    let out = Optimizer::new(&catalog).optimize(&q).unwrap();
    println!("source-capability rewrite: {}", out.best.query);
}

/// E12 — semantic optimization through the same machinery.
fn e12_semantic_optimization() {
    banner("E12", "semantic optimization (RIC / INV / KEY)");
    let p = prepared_projdept(20, 5, 5);
    // P2's derivation relies on RIC2 + INV2 + INV1.
    let outcome = p.optimizer().optimize(&p.query).unwrap();
    let has_p2 = outcome
        .candidates
        .iter()
        .any(|c| c.raw.from.len() == 1 && c.raw.to_string().contains("from Proj"));
    println!("P2 derivable with semantic constraints: {has_p2}");
    let bare = p.catalog.without_semantic_constraints();
    let outcome2 = Optimizer::new(&bare).optimize(&p.query).unwrap();
    let has_p2_bare = outcome2
        .candidates
        .iter()
        .any(|c| c.raw.from.len() == 1 && c.raw.to_string().contains("from Proj"));
    println!("P2 derivable without them:              {has_p2_bare}");
    assert!(has_p2 && !has_p2_bare);

    // And the full explain for the curious.
    let ev: Evaluator<'_> = p.evaluator();
    let reference = ev.eval_query(&p.query).unwrap();
    let best = ev.eval_query(&outcome.best.query).unwrap();
    assert_eq!(reference, best);
    println!("\n{}", explain(&outcome));
    let _ = Materializer::new(&p.catalog);
}
