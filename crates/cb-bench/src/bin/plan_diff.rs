//! plan-diff — structural comparison and CI snapshotting of serialized
//! plans.
//!
//! The versioned plan format ([`cb_optimizer::PlanRepr`]) makes a plan a
//! diffable artifact. This binary puts that to work as a regression
//! gate: `plans/<scenario>.v1` snapshots (checked into the repo) pin the
//! optimizer's chosen plan, pipeline layout and search counters for
//! every builtin scenario, and CI fails when a change drifts them
//! without updating the snapshot in the same PR.
//!
//! ```sh
//! cargo run --release -p cb-bench --bin plan-diff -- --snapshot plans
//! cargo run --release -p cb-bench --bin plan-diff -- --check plans
//! cargo run --release -p cb-bench --bin plan-diff -- a.v1 b.v1
//! ```
//!
//! Snapshot generation is fully explicit about its configuration
//! (sequential search, default strategy) so the environment —
//! `CB_SEARCH_THREADS` in particular — can never make two runs disagree.

use cb_bench::{prepared_indexes, prepared_projdept, prepared_views, Prepared};
use cb_optimizer::plan_repr::{PlanRepr, PlanV1};
use cb_optimizer::{Optimizer, OptimizerConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match args.as_slice() {
        [flag, dir] if flag == "--snapshot" => snapshot(dir),
        [flag, dir] if flag == "--check" => check(dir),
        [a, b] => diff_files(a, b),
        _ => {
            eprintln!("usage: plan-diff --snapshot <dir> | --check <dir> | <a.v1> <b.v1>");
            std::process::exit(2);
        }
    };
    std::process::exit(outcome);
}

/// The builtin scenarios the gate covers, at fixed scales, with an
/// explicitly sequential optimizer — byte-stable across machines.
fn scenarios() -> Vec<(&'static str, Prepared)> {
    vec![
        ("projdept", prepared_projdept(50, 10, 25)),
        ("relational_indexes", prepared_indexes(5_000, 100, 50)),
        ("relational_views", prepared_views(1_000, 1_000, 0.05)),
    ]
}

fn render_scenario(p: &Prepared) -> String {
    let config = OptimizerConfig {
        threads: 1,
        ..Default::default()
    };
    let outcome = Optimizer::with_config(&p.catalog, config)
        .optimize(&p.query)
        .expect("builtin scenario optimizes");
    PlanRepr::from_outcome(&outcome).render()
}

fn snapshot(dir: &str) -> i32 {
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("creating {dir}: {e}"));
    for (name, p) in scenarios() {
        let path = format!("{dir}/{name}.v1");
        std::fs::write(&path, render_scenario(&p))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
    0
}

fn check(dir: &str) -> i32 {
    let mut drifted = false;
    for (name, p) in scenarios() {
        let path = format!("{dir}/{name}.v1");
        let recorded = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: unreadable ({e}) — run `plan-diff --snapshot {dir}`");
                drifted = true;
                continue;
            }
        };
        let current = render_scenario(&p);
        if recorded == current {
            println!("{name}: ok");
            continue;
        }
        drifted = true;
        eprintln!("{name}: plan drifted from {path}");
        match (PlanRepr::parse(&recorded), PlanRepr::parse(&current)) {
            (Ok(PlanRepr::V1(a)), Ok(PlanRepr::V1(b))) => {
                for line in structural_diff(&a, &b) {
                    eprintln!("  {line}");
                }
            }
            (Err(e), _) => eprintln!("  recorded snapshot does not parse: {e}"),
            (_, Err(e)) => eprintln!("  regenerated plan does not parse: {e}"),
        }
        eprintln!("  (if intended, refresh with `plan-diff --snapshot {dir}` and commit)");
    }
    i32::from(drifted)
}

fn diff_files(a_path: &str, b_path: &str) -> i32 {
    let read = |p: &str| {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| panic!("reading {p}: {e}"));
        match PlanRepr::parse(&text) {
            Ok(PlanRepr::V1(v)) => v,
            Err(e) => panic!("{p}: {e}"),
        }
    };
    let (a, b) = (read(a_path), read(b_path));
    let lines = structural_diff(&a, &b);
    if lines.is_empty() {
        println!("plans are structurally identical");
        return 0;
    }
    for line in &lines {
        println!("{line}");
    }
    1
}

/// Field-by-field comparison of two V1 plans, one human-readable line
/// per difference: plan-text changes, cost deltas, operator-level
/// pipeline changes, counter drift.
fn structural_diff(a: &PlanV1, b: &PlanV1) -> Vec<String> {
    let mut out = Vec::new();
    if a.input != b.input {
        out.push(format!("input query: `{}` -> `{}`", a.input, b.input));
    }
    if a.universal != b.universal {
        out.push(format!(
            "universal plan: `{}` -> `{}`",
            a.universal, b.universal
        ));
    }
    if a.best.query != b.best.query {
        out.push(format!(
            "chosen plan: `{}` -> `{}`",
            a.best.query, b.best.query
        ));
    }
    if a.best.cost != b.best.cost {
        out.push(format!(
            "chosen cost: {} -> {} (delta {:+.3})",
            a.best.cost,
            b.best.cost,
            b.best.cost - a.best.cost
        ));
    }
    if a.top_k.len() != b.top_k.len() {
        out.push(format!(
            "plan ladder length: {} -> {}",
            a.top_k.len(),
            b.top_k.len()
        ));
    }
    for (i, (ea, eb)) in a.top_k.iter().zip(&b.top_k).enumerate() {
        if ea.query != eb.query {
            out.push(format!(
                "ladder #{}: `{}` -> `{}`",
                i + 1,
                ea.query,
                eb.query
            ));
        } else if ea.cost != eb.cost {
            out.push(format!(
                "ladder #{} cost: {} -> {} (delta {:+.3})",
                i + 1,
                ea.cost,
                eb.cost,
                eb.cost - ea.cost
            ));
        }
    }
    let (pa, pb) = (&a.pipeline, &b.pipeline);
    for (label, va, vb) in [
        ("registers", pa.n_slots, pb.n_slots),
        ("hash tables", pa.n_tables, pb.n_tables),
        ("merge runs", pa.n_runs, pb.n_runs),
        ("batch size", pa.batch_size, pb.batch_size),
    ] {
        if va != vb {
            out.push(format!("pipeline {label}: {va} -> {vb}"));
        }
    }
    if pa.roots != pb.roots {
        out.push(format!(
            "pipeline roots: [{}] -> [{}]",
            pa.roots.join(", "),
            pb.roots.join(", ")
        ));
    }
    seq_diff(&mut out, "ground filter", &pa.ground, &pb.ground);
    seq_diff(&mut out, "operator", &pa.ops, &pb.ops);
    let (ca, cb) = (&a.counters, &b.counters);
    for (label, va, vb) in [
        ("nodes_visited", ca.nodes_visited, cb.nodes_visited),
        (
            "nodes_pruned_at_gate",
            ca.nodes_pruned_at_gate,
            cb.nodes_pruned_at_gate,
        ),
        (
            "nodes_pruned_at_visit",
            ca.nodes_pruned_at_visit,
            cb.nodes_pruned_at_visit,
        ),
        ("workers_died", ca.workers_died, cb.workers_died),
        ("cache_hits", ca.cache_hits, cb.cache_hits),
        ("cache_misses", ca.cache_misses, cb.cache_misses),
        ("deps_resets", ca.deps_resets, cb.deps_resets),
    ] {
        if va != vb {
            out.push(format!("counter {label}: {va} -> {vb}"));
        }
    }
    for (label, va, vb) in [
        ("complete", ca.complete, cb.complete),
        ("budget_expired", ca.budget_expired, cb.budget_expired),
    ] {
        if va != vb {
            out.push(format!("counter {label}: {va} -> {vb}"));
        }
    }
    if ca.degradations != cb.degradations {
        out.push(format!(
            "degradations: [{}] -> [{}]",
            ca.degradations.join(", "),
            cb.degradations.join(", ")
        ));
    }
    out
}

/// Positional diff of two operator/filter sequences.
fn seq_diff(out: &mut Vec<String>, what: &str, a: &[String], b: &[String]) {
    if a == b {
        return;
    }
    if a.len() != b.len() {
        out.push(format!("{what} count: {} -> {}", a.len(), b.len()));
    }
    for (i, (ia, ib)) in a.iter().zip(b).enumerate() {
        if ia != ib {
            out.push(format!("{what} #{}: {ia} -> {ib}", i + 1));
        }
    }
    for (i, extra) in a.iter().enumerate().skip(b.len()) {
        out.push(format!("{what} #{} removed: {extra}", i + 1));
    }
    for (i, extra) in b.iter().enumerate().skip(a.len()) {
        out.push(format!("{what} #{} added: {extra}", i + 1));
    }
}
