//! Scenario linter: runs cb-analyze over every builtin scenario — the
//! catalog's constraints, the scenario query, and every candidate plan's
//! compiled pipeline — and exits non-zero if any finding has error
//! severity. CI runs this as the static-analysis gate.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut failed = false;
    for lint in cb_bench::lint_builtin_scenarios() {
        let (e, w, i) = lint.report.counts();
        println!("== {} ==", lint.name);
        print!("{}", lint.report.render());
        println!(
            "lookups: {} total, {} static-safe, {} deferred to prover, {} unguardable",
            lint.lookups.total,
            lint.lookups.static_safe,
            lint.lookups.deferred,
            lint.lookups.unguardable
        );
        println!();
        let _ = (w, i);
        if e > 0 {
            failed = true;
        }
    }
    if failed {
        eprintln!("lint failed: error-severity diagnostics found");
        ExitCode::FAILURE
    } else {
        println!("all builtin scenarios lint clean (no error-severity diagnostics)");
        ExitCode::SUCCESS
    }
}
