//! Catalog errors.

use std::fmt;

use pcql::parser::ParseError;
use pcql::schema::SchemaConflict;
use pcql::typecheck::TypeError;

/// Errors raised while building or validating a catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// The named root does not exist in the relevant schema.
    UnknownRoot(String),
    /// The named root exists but is not a relation (set of records).
    NotARelation(String),
    /// The named class is not declared.
    UnknownClass(String),
    /// The relation has no such field.
    NoSuchField { relation: String, field: String },
    /// A name is already taken by another root or structure.
    DuplicateName(String),
    /// The field/key type is unusable for the requested structure.
    BadKeyType { field: String, ty: String },
    /// A view definition failed validation.
    BadViewDefinition { name: String, reason: String },
    /// Type checking of a constraint or definition failed.
    Type(TypeError),
    /// Parsing of a textual constraint failed.
    Parse(ParseError),
    /// Logical and physical schema disagree on a shared root.
    Conflict(SchemaConflict),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownRoot(r) => write!(f, "unknown schema root `{r}`"),
            CatalogError::NotARelation(r) => {
                write!(f, "root `{r}` is not a relation (set of records)")
            }
            CatalogError::UnknownClass(c) => write!(f, "unknown class `{c}`"),
            CatalogError::NoSuchField { relation, field } => {
                write!(f, "relation `{relation}` has no field `{field}`")
            }
            CatalogError::DuplicateName(n) => write!(f, "name `{n}` is already in use"),
            CatalogError::BadKeyType { field, ty } => {
                write!(
                    f,
                    "field `{field}` of type `{ty}` cannot be a dictionary key"
                )
            }
            CatalogError::BadViewDefinition { name, reason } => {
                write!(f, "bad definition for view `{name}`: {reason}")
            }
            CatalogError::Type(e) => write!(f, "type error: {e}"),
            CatalogError::Parse(e) => write!(f, "{e}"),
            CatalogError::Conflict(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<TypeError> for CatalogError {
    fn from(e: TypeError) -> Self {
        CatalogError::Type(e)
    }
}

impl From<ParseError> for CatalogError {
    fn from(e: ParseError) -> Self {
        CatalogError::Parse(e)
    }
}

impl From<SchemaConflict> for CatalogError {
    fn from(e: SchemaConflict) -> Self {
        CatalogError::Conflict(e)
    }
}
