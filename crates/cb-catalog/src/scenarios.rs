//! The paper's worked scenarios, ready to use in examples, tests and
//! benches.
//!
//! * [`projdept`] — the running example: Fig. 2 (logical ProjDept schema
//!   with RIC/INV/KEY constraints), Fig. 3 (physical schema with the class
//!   dictionary `Dept`, the primary index `I`, the secondary index `SI`
//!   and the join-index view `JI`), and the query `Q`.
//! * [`relational_indexes`] — §4's first scenario: `R(A,B,C)` with
//!   secondary indexes `SA`, `SB` and the index-only access-path query.
//! * [`relational_views`] — §4's second scenario: `R(A,B)`, `S(B,C)`,
//!   materialized view `V = π_A(R ⋈ S)` and secondary indexes `I_R`,
//!   `I_S`.

use pcql::parser::parse_query;
use pcql::query::Query;
use pcql::schema::ClassDecl;
use pcql::types::Type;

use crate::builtin;
use crate::stats::RootStats;
use crate::Catalog;

/// The paper's running ProjDept example.
pub mod projdept {
    use super::*;

    /// Builds the full catalog of Figs. 2–3: logical schema (class `Dept`
    /// with extent `depts`, relation `Proj`), semantic constraints
    /// RIC1/RIC2/INV1/INV2/KEY1/KEY2, and physical schema (`Proj` direct,
    /// class dictionary `Dept`, primary index `I` on `PName`, secondary
    /// index `SI` on `CustName`, join-index view `JI`).
    pub fn catalog() -> Catalog {
        let mut c = Catalog::new();
        // Logical schema (Fig. 2).
        c.declare_class(
            ClassDecl::new(
                "Dept",
                [
                    ("DName", Type::Str),
                    ("DProjs", Type::set(Type::Str)),
                    ("MgrName", Type::Str),
                ],
            ),
            "depts",
        );
        c.add_logical_relation(
            "Proj",
            [
                ("PName", Type::Str),
                ("CustName", Type::Str),
                ("PDept", Type::Str),
                ("Budg", Type::Int),
            ],
        );
        // Semantic constraints (the assertions below Fig. 2).
        c.add_semantic_constraint(builtin::member_foreign_key(
            "RIC1", "depts", "DProjs", "Proj", "PName",
        ))
        .unwrap();
        c.add_semantic_constraint(builtin::foreign_key(
            "RIC2", "Proj", "PDept", "depts", "DName",
        ))
        .unwrap();
        c.add_semantic_constraint(builtin::inverse_forward(
            "INV1", "depts", "DProjs", "Proj", "PName", "PDept", "DName",
        ))
        .unwrap();
        c.add_semantic_constraint(builtin::inverse_backward(
            "INV2", "depts", "DProjs", "Proj", "PName", "PDept", "DName",
        ))
        .unwrap();
        c.add_semantic_constraint(builtin::extent_key("KEY1", "depts", "DName"))
            .unwrap();
        c.add_semantic_constraint(builtin::key_constraint("KEY2", "Proj", "PName"))
            .unwrap();

        // Physical schema (Fig. 3).
        c.add_direct_mapping("Proj");
        c.add_class_dict("Dept", "depts", "Dept").unwrap();
        c.add_primary_index("I", "Proj", "PName").unwrap();
        c.add_secondary_index("SI", "Proj", "CustName").unwrap();
        c.add_join_index(
            "JI",
            parse_query(
                "select struct(DOID = d, PN = p.PName) \
                 from depts d, d.DProjs s, Proj p where s = p.PName",
            )
            .unwrap(),
        )
        .unwrap();
        c
    }

    /// The paper's query `Q`: project names with budgets and department
    /// names, for projects with customer CitiBank.
    pub fn query() -> Query {
        parse_query(
            r#"select struct(PN = s, PB = p.Budg, DN = d.DName)
               from depts d, d.DProjs s, Proj p
               where s = p.PName and p.CustName = "CitiBank""#,
        )
        .expect("paper query parses")
    }

    /// The four plans of paper §1 (P1–P4), as written there. P3 uses the
    /// non-failing lookup, exactly like the paper.
    pub fn paper_plans() -> Vec<Query> {
        vec![
            parse_query(
                r#"select struct(PN = s, PB = p.Budg, DN = Dept[d].DName)
                   from dom(Dept) d, Dept[d].DProjs s, Proj p
                   where s = p.PName and p.CustName = "CitiBank""#,
            )
            .unwrap(),
            parse_query(
                r#"select struct(PN = p.PName, PB = p.Budg, DN = p.PDept)
                   from Proj p where p.CustName = "CitiBank""#,
            )
            .unwrap(),
            parse_query(
                r#"select struct(PN = p.PName, PB = p.Budg, DN = p.PDept)
                   from SI{"CitiBank"} p"#,
            )
            .unwrap(),
            parse_query(
                r#"select struct(PN = j.PN, PB = I[j.PN].Budg, DN = Dept[j.DOID].DName)
                   from JI j
                   where I[j.PN].CustName = "CitiBank""#,
            )
            .unwrap(),
        ]
    }

    /// Reference statistics for a generated instance of the given scale
    /// (`n_depts` departments, `projs_per_dept` projects per department,
    /// `n_customers` distinct customers).
    pub fn stats_for(c: &mut Catalog, n_depts: u64, projs_per_dept: u64, n_customers: u64) {
        let n_proj = n_depts * projs_per_dept;
        let mut proj = RootStats::with_cardinality(n_proj);
        proj.distinct.insert("PName".into(), n_proj);
        proj.distinct
            .insert("CustName".into(), n_customers.min(n_proj));
        proj.distinct.insert("PDept".into(), n_depts);
        let mut depts = RootStats::with_cardinality(n_depts);
        depts
            .avg_fanout
            .insert("DProjs".into(), projs_per_dept as f64);
        depts.distinct.insert("DName".into(), n_depts);
        let mut dept_dict = RootStats::with_cardinality(n_depts);
        dept_dict
            .avg_fanout
            .insert("DProjs".into(), projs_per_dept as f64);
        let mut si = RootStats::with_cardinality(n_customers.min(n_proj));
        si.avg_fanout
            .insert("".into(), n_proj as f64 / n_customers.max(1) as f64);
        let i = RootStats::with_cardinality(n_proj);
        let ji = RootStats::with_cardinality(n_proj);
        let stats = c.stats_mut();
        stats.set("Proj", proj);
        stats.set("depts", depts);
        stats.set("Dept", dept_dict);
        stats.set("SI", si);
        stats.set("I", i);
        stats.set("JI", ji);
    }
}

/// §4 scenario 1: index-only access paths.
pub mod relational_indexes {
    use super::*;

    /// `R(A,B,C)` with secondary indexes `SA` on `A` and `SB` on `B`; `R`
    /// itself is also physical (direct mapping).
    pub fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int), ("C", Type::Int)]);
        c.add_direct_mapping("R");
        c.add_secondary_index("SA", "R", "A").unwrap();
        c.add_secondary_index("SB", "R", "B").unwrap();
        c
    }

    /// The paper's selection query
    /// `select r.C from R r where r.A = 5 and r.B = 7`.
    pub fn query() -> Query {
        parse_query("select struct(C = r.C) from R r where r.A = 5 and r.B = 7").unwrap()
    }

    /// Sets statistics for `n` rows with the given per-attribute distinct
    /// counts.
    pub fn stats_for(c: &mut Catalog, n: u64, distinct_a: u64, distinct_b: u64) {
        let mut r = RootStats::with_cardinality(n);
        r.distinct.insert("A".into(), distinct_a);
        r.distinct.insert("B".into(), distinct_b);
        let mut sa = RootStats::with_cardinality(distinct_a);
        sa.avg_fanout
            .insert("".into(), n as f64 / distinct_a.max(1) as f64);
        let mut sb = RootStats::with_cardinality(distinct_b);
        sb.avg_fanout
            .insert("".into(), n as f64 / distinct_b.max(1) as f64);
        let stats = c.stats_mut();
        stats.set("R", r);
        stats.set("SA", sa);
        stats.set("SB", sb);
    }
}

/// §4 scenario 2: materialized views + indexes and the navigation-join
/// plan.
pub mod relational_views {
    use super::*;

    /// `R(A,B)`, `S(B,C)`; physical: `R`, `S` (direct), view
    /// `V = select struct(A = r.A) from R r, S s where r.B = s.B`, and
    /// secondary indexes `IR` on `R.A` and `IS` on `S.B`.
    pub fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int)]);
        c.add_logical_relation("S", [("B", Type::Int), ("C", Type::Int)]);
        c.add_direct_mapping("R");
        c.add_direct_mapping("S");
        c.add_materialized_view(
            "V",
            parse_query("select struct(A = r.A) from R r, S s where r.B = s.B").unwrap(),
        )
        .unwrap();
        c.add_secondary_index("IR", "R", "A").unwrap();
        c.add_secondary_index("IS", "S", "B").unwrap();
        c
    }

    /// The logical query `Q = R ⋈ S`.
    pub fn query() -> Query {
        parse_query("select struct(A = r.A, B = s.B, C = s.C) from R r, S s where r.B = s.B")
            .unwrap()
    }

    /// Statistics: `|R|`, `|S|`, `|V|` and distinct counts.
    pub fn stats_for(c: &mut Catalog, n_r: u64, n_s: u64, n_v: u64) {
        let mut r = RootStats::with_cardinality(n_r);
        r.distinct.insert("A".into(), n_r);
        r.distinct.insert("B".into(), n_r.max(1));
        let mut s = RootStats::with_cardinality(n_s);
        s.distinct.insert("B".into(), n_s.max(1));
        let v = RootStats::with_cardinality(n_v);
        let mut ir = RootStats::with_cardinality(n_r);
        ir.avg_fanout.insert("".into(), 1.0);
        let mut is_ = RootStats::with_cardinality(n_s);
        is_.avg_fanout.insert("".into(), 1.0);
        let stats = c.stats_mut();
        stats.set("R", r);
        stats.set("S", s);
        stats.set("V", v);
        stats.set("IR", ir);
        stats.set("IS", is_);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcql::typecheck::{check_dependency, check_pc_query};

    #[test]
    fn projdept_catalog_is_well_formed() {
        let c = projdept::catalog();
        let schema = c.combined_schema();
        for d in c.all_constraints() {
            check_dependency(&schema, &d)
                .unwrap_or_else(|e| panic!("constraint {} ill-typed: {e}", d.name));
        }
        check_pc_query(&schema, &projdept::query()).unwrap();
        // 6 semantic constraints + key(Proj.PName) from the primary index.
        assert_eq!(c.semantic_constraints().len(), 7);
        // Constraint families present.
        let names: Vec<String> = c
            .mapping_constraints()
            .iter()
            .map(|d| d.name.clone())
            .collect();
        for expected in [
            "delta(Dept)",
            "delta(Dept.DProjs)",
            "deref(Dept.DName)",
            "PI1(I)",
            "SI1(SI)",
            "SI3(SI)",
            "c_V(JI)",
            "c'_V(JI)",
        ] {
            assert!(
                names.iter().any(|n| n == expected),
                "missing {expected}: {names:?}"
            );
        }
    }

    #[test]
    fn projdept_paper_plans_type_check_as_plans() {
        let c = projdept::catalog();
        let schema = c.combined_schema();
        for (i, p) in projdept::paper_plans().iter().enumerate() {
            pcql::typecheck::check_query(&schema, p)
                .unwrap_or_else(|e| panic!("paper plan P{} ill-typed: {e}", i + 1));
            assert!(c.is_physical_query(p), "P{} must be physical", i + 1);
        }
        // P1 is plain PC; P3 and P4 are plan-level (non-failing or
        // unguarded lookups).
        let plans = projdept::paper_plans();
        assert!(check_pc_query(&schema, &plans[0]).is_ok());
        assert!(check_pc_query(&schema, &plans[1]).is_ok());
        assert!(check_pc_query(&schema, &plans[2]).is_err());
        assert!(check_pc_query(&schema, &plans[3]).is_err());
    }

    #[test]
    fn relational_scenarios_well_formed() {
        for (c, q) in [
            (relational_indexes::catalog(), relational_indexes::query()),
            (relational_views::catalog(), relational_views::query()),
        ] {
            let schema = c.combined_schema();
            for d in c.all_constraints() {
                check_dependency(&schema, &d).unwrap();
            }
            check_pc_query(&schema, &q).unwrap();
        }
    }

    #[test]
    fn stats_builders_populate() {
        let mut c = projdept::catalog();
        projdept::stats_for(&mut c, 100, 10, 20);
        assert_eq!(c.stats().cardinality("Proj"), 1000.0);
        assert_eq!(c.stats().get("SI").unwrap().entry_fanout(), Some(50.0));

        let mut c = relational_indexes::catalog();
        relational_indexes::stats_for(&mut c, 10_000, 100, 50);
        assert_eq!(c.stats().cardinality("SA"), 100.0);

        let mut c = relational_views::catalog();
        relational_views::stats_for(&mut c, 1000, 1000, 10);
        assert_eq!(c.stats().cardinality("V"), 10.0);
    }
}
