//! Statistics used by the cost model.
//!
//! The paper leaves the cost model open ("we expect that the algorithm …
//! will be used in conjunction with good cost models"); we keep classic
//! System-R style statistics per schema root: cardinalities, per-field
//! distinct counts and average fanouts of set-valued fields/entries.

use std::collections::BTreeMap;

/// Statistics for one schema root.
#[derive(Debug, Clone, PartialEq)]
pub struct RootStats {
    /// `|R|` for relations/extents; `|dom(M)|` for dictionaries.
    pub cardinality: u64,
    /// Distinct values per (record) field of the element/entry type.
    pub distinct: BTreeMap<String, u64>,
    /// Average cardinality of set-valued fields of elements; for
    /// dictionaries with set-valued entries, the key `""` holds the
    /// average entry-set size.
    pub avg_fanout: BTreeMap<String, f64>,
}

impl RootStats {
    pub fn with_cardinality(cardinality: u64) -> RootStats {
        RootStats {
            cardinality,
            distinct: BTreeMap::new(),
            avg_fanout: BTreeMap::new(),
        }
    }

    pub fn distinct_of(&self, field: &str) -> Option<u64> {
        self.distinct.get(field).copied()
    }

    pub fn fanout_of(&self, field: &str) -> Option<f64> {
        self.avg_fanout.get(field).copied()
    }

    /// Average entry-set size for a dictionary with set-valued entries.
    pub fn entry_fanout(&self) -> Option<f64> {
        self.fanout_of("")
    }
}

/// Statistics for a whole catalog, keyed by root name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    pub roots: BTreeMap<String, RootStats>,
}

impl Stats {
    pub fn new() -> Stats {
        Stats::default()
    }

    pub fn set(&mut self, root: impl Into<String>, stats: RootStats) -> &mut Self {
        self.roots.insert(root.into(), stats);
        self
    }

    pub fn get(&self, root: &str) -> Option<&RootStats> {
        self.roots.get(root)
    }

    /// Cardinality of a root, with a pessimistic default for roots without
    /// statistics (unknown sources are assumed big, so plans that avoid
    /// them win ties).
    pub fn cardinality(&self, root: &str) -> f64 {
        self.get(root)
            .map(|s| s.cardinality as f64)
            .unwrap_or(DEFAULT_CARDINALITY)
    }
}

/// Assumed cardinality for roots with no recorded statistics.
pub const DEFAULT_CARDINALITY: f64 = 1000.0;

/// Assumed fanout for set-valued fields with no recorded statistics.
pub const DEFAULT_FANOUT: f64 = 10.0;

/// Assumed selectivity of an equality predicate with no statistics.
pub const DEFAULT_EQ_SELECTIVITY: f64 = 0.1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_pessimistic() {
        let s = Stats::new();
        assert_eq!(s.cardinality("unknown"), DEFAULT_CARDINALITY);
    }

    #[test]
    fn stored_stats_round_trip() {
        let mut s = Stats::new();
        let mut rs = RootStats::with_cardinality(500);
        rs.distinct.insert("CustName".into(), 50);
        rs.avg_fanout.insert("DProjs".into(), 4.0);
        s.set("Proj", rs);
        assert_eq!(s.cardinality("Proj"), 500.0);
        assert_eq!(s.get("Proj").unwrap().distinct_of("CustName"), Some(50));
        assert_eq!(s.get("Proj").unwrap().fanout_of("DProjs"), Some(4.0));
        assert_eq!(s.get("Proj").unwrap().entry_fanout(), None);
    }
}
