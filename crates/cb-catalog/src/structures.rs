//! Physical access structures and their characterization by constraints
//! (paper §2).
//!
//! Every structure is *fully characterized* by a small set of EPCDs
//! relating it to the logical schema; the optimizer never special-cases a
//! structure kind — it only ever sees the constraints:
//!
//! * primary index `I` on key `A` of relation `R`: `PI1`, `PI2`;
//! * secondary index / hash table `SI` on attribute `A` of `R`:
//!   `SI1`, `SI2`, `SI3` (non-emptiness);
//! * class-extent dictionary `D` for class `C` with extent `E`:
//!   `δ`/`δ'` pairs per set-valued attribute, membership coupling of the
//!   extent, and per-attribute dereference EGDs `o.F = D[o].F`;
//! * materialized view `V` with PC definition: `c_V`, `c'_V`;
//! * join indexes and access support relations: materialized views over
//!   the appropriate path joins (plus the participating indexes and class
//!   dictionaries, which are separate structures);
//! * gmaps / source capabilities: dictionary versions of views with
//!   `G1`, `G2`, `G3`.

use std::collections::BTreeMap;

use pcql::idgen::VarGen;
use pcql::path::Path;
use pcql::query::{Binding, Equality, Output, Query};
use pcql::types::Type;
use pcql::Dependency;

/// Every emitter validates its constraints' variable scoping at
/// construction — a malformed characterizing constraint is a bug in the
/// emitter itself, and must surface here rather than deep inside a chase.
fn scope_checked(deps: Vec<Dependency>) -> Vec<Dependency> {
    for d in &deps {
        if let Err(e) = d.check_scopes() {
            panic!("structure emitter produced malformed [{}]: {e}", d.name);
        }
    }
    deps
}

/// What a materialized view is playing the role of (purely informational;
/// the constraints are identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewKind {
    /// Plain materialized PC view (also: cached query result).
    View,
    /// Join index in the sense of Valduriez: a binary relation of keys /
    /// surrogates, used together with primary indexes on both relations.
    JoinIndex,
    /// Access support relation: the OIDs along a class path.
    AccessSupportRelation,
}

/// What a gmap-style dictionary is playing the role of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DictKind {
    /// A (generalized) gmap: `dict z in Q1 | Q2(z)`.
    Gmap,
    /// A source capability: the binding patterns of a restricted source,
    /// modeled as a dictionary from input bindings to result sets.
    SourceCapability,
}

/// A gmap definition: one scan/filter body shared by the key and value
/// outputs. This captures (and generalizes) the gmap definition language:
/// `dict z in (select K(x) from P(x) where B(x)) |
///            (select V(x) from P(x) where B(x) and K(x) = z)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GmapDef {
    pub from: Vec<Binding>,
    pub where_: Vec<Equality>,
    /// Key output fields; a single field makes the key type the bare field
    /// type, several make it a flat record.
    pub key: Vec<(String, Path)>,
    /// Entry output fields (entries are sets of these).
    pub value: Vec<(String, Path)>,
}

/// A physical access structure registered in the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessStructure {
    PrimaryIndex {
        name: String,
        relation: String,
        key_field: String,
    },
    SecondaryIndex {
        name: String,
        relation: String,
        key_field: String,
        /// `false` for hash tables: same constraints, but the structure is
        /// built on the fly by a hash-join-style plan rather than stored.
        materialized: bool,
    },
    ClassDict {
        class: String,
        extent: String,
        dict: String,
    },
    MaterializedView {
        name: String,
        def: Query,
        kind: ViewKind,
    },
    GmapDict {
        name: String,
        def: GmapDef,
        kind: DictKind,
    },
}

impl AccessStructure {
    /// The physical root this structure materializes.
    pub fn root_name(&self) -> &str {
        match self {
            AccessStructure::PrimaryIndex { name, .. }
            | AccessStructure::SecondaryIndex { name, .. }
            | AccessStructure::MaterializedView { name, .. }
            | AccessStructure::GmapDict { name, .. } => name,
            AccessStructure::ClassDict { dict, .. } => dict,
        }
    }
}

/// `PI1`, `PI2` for a primary index `I` on key `A` of relation `R`:
///
/// ```text
/// PI1: forall (p in R) -> exists (i in dom(I)) where i = p.A and I[i] = p
/// PI2: forall (i in dom(I)) -> exists (p in R) where i = p.A and I[i] = p
/// ```
pub fn primary_index_constraints(name: &str, relation: &str, key_field: &str) -> Vec<Dependency> {
    let i = Path::var("i");
    let p = Path::var("p");
    let lookup = Path::root(name).get(i.clone());
    scope_checked(vec![
        Dependency::new(
            format!("PI1({name})"),
            vec![Binding::iter("p", Path::root(relation))],
            vec![],
            vec![Binding::iter("i", Path::root(name).dom())],
            vec![
                Equality(i.clone(), p.clone().field(key_field)),
                Equality(lookup.clone(), p.clone()),
            ],
        ),
        Dependency::new(
            format!("PI2({name})"),
            vec![Binding::iter("i", Path::root(name).dom())],
            vec![],
            vec![Binding::iter("p", Path::root(relation))],
            vec![Equality(i, p.clone().field(key_field)), Equality(lookup, p)],
        ),
    ])
}

/// `SI1`, `SI2`, `SI3` for a secondary index `SI` on attribute `A` of `R`:
///
/// ```text
/// SI1: forall (p in R) -> exists (k in dom(SI)) (t in SI[k])
///      where k = p.A and p = t
/// SI2: forall (k in dom(SI)) (t in SI[k]) -> exists (p in R)
///      where k = p.A and p = t
/// SI3: forall (k in dom(SI)) -> exists (t in SI[k])
/// ```
pub fn secondary_index_constraints(name: &str, relation: &str, key_field: &str) -> Vec<Dependency> {
    let k = Path::var("k");
    let t = Path::var("t");
    let p = Path::var("p");
    let entry = Path::root(name).get(k.clone());
    scope_checked(vec![
        Dependency::new(
            format!("SI1({name})"),
            vec![Binding::iter("p", Path::root(relation))],
            vec![],
            vec![
                Binding::iter("k", Path::root(name).dom()),
                Binding::iter("t", entry.clone()),
            ],
            vec![
                Equality(k.clone(), p.clone().field(key_field)),
                Equality(p.clone(), t.clone()),
            ],
        ),
        Dependency::new(
            format!("SI2({name})"),
            vec![
                Binding::iter("k", Path::root(name).dom()),
                Binding::iter("t", entry.clone()),
            ],
            vec![],
            vec![Binding::iter("p", Path::root(relation))],
            vec![Equality(k, p.clone().field(key_field)), Equality(p, t)],
        ),
        Dependency::new(
            format!("SI3({name})"),
            vec![Binding::iter("k", Path::root(name).dom())],
            vec![],
            vec![Binding::iter("t", entry)],
            vec![],
        ),
    ])
}

/// Constraints tying class `C`'s extent `E` (a set of OIDs in the logical
/// schema) to its implementing dictionary `D` (paper §2 "Indexes and
/// classes", with `δ_Dept` as the running example):
///
/// * `delta(D)` / `delta'(D)` — extent membership coupling;
/// * `delta(D.F)` / `delta'(D.F)` — per set-valued attribute `F`, the
///   coupled membership constraints the paper writes for `DProjs`;
/// * `deref(D.F)` — per collection-free attribute `F`, the dereference
///   EGD `forall (o in dom(D)) -> o.F = D[o].F`, which lets the backchase
///   re-express implicit ODMG dereferences as explicit lookups.
pub fn class_dict_constraints(
    extent: &str,
    dict: &str,
    attrs: &BTreeMap<String, Type>,
) -> Vec<Dependency> {
    let mut out = Vec::new();
    let o = Path::var("o");
    let o2 = Path::var("o2");
    // Attribute-coupled deltas come first: when they fire they also
    // witness the extent-level deltas (appended below), so the chase
    // doesn't materialize a second, congruent dom/extent binding.
    for (attr, ty) in attrs {
        match ty {
            Type::Set(elem) if elem.is_collection_free() => {
                let member = |v: &str, base: Path| Binding::iter(v, base.field(attr));
                out.push(Dependency::new(
                    format!("delta({dict}.{attr})"),
                    vec![
                        Binding::iter("o", Path::root(extent)),
                        member("s", o.clone()),
                    ],
                    vec![],
                    vec![
                        Binding::iter("o2", Path::root(dict).dom()),
                        member("s2", Path::root(dict).get(o2.clone())),
                    ],
                    vec![
                        Equality(o.clone(), o2.clone()),
                        Equality(Path::var("s"), Path::var("s2")),
                    ],
                ));
                out.push(Dependency::new(
                    format!("delta'({dict}.{attr})"),
                    vec![
                        Binding::iter("o2", Path::root(dict).dom()),
                        member("s2", Path::root(dict).get(o2.clone())),
                    ],
                    vec![],
                    vec![
                        Binding::iter("o", Path::root(extent)),
                        member("s", o.clone()),
                    ],
                    vec![
                        Equality(o.clone(), o2.clone()),
                        Equality(Path::var("s"), Path::var("s2")),
                    ],
                ));
            }
            ty if ty.is_collection_free() => {
                out.push(Dependency::new(
                    format!("deref({dict}.{attr})"),
                    vec![Binding::iter("o", Path::root(dict).dom())],
                    vec![],
                    vec![],
                    vec![Equality(
                        o.clone().field(attr),
                        Path::root(dict).get(o.clone()).field(attr),
                    )],
                ));
            }
            // Nested collections of collections can't be related by PC
            // equalities; such attributes are only reachable through the
            // deref EGDs of their parents (none here), so we skip them.
            _ => {}
        }
    }
    out.push(Dependency::new(
        format!("delta({dict})"),
        vec![Binding::iter("o", Path::root(extent))],
        vec![],
        vec![Binding::iter("o2", Path::root(dict).dom())],
        vec![Equality(o.clone(), o2.clone())],
    ));
    out.push(Dependency::new(
        format!("delta'({dict})"),
        vec![Binding::iter("o2", Path::root(dict).dom())],
        vec![],
        vec![Binding::iter("o", Path::root(extent))],
        vec![Equality(o, o2)],
    ));
    scope_checked(out)
}

/// `c_V`, `c'_V` for a materialized PC view `V` with definition
/// `select O(x) from P(x) where B(x)` (paper §2 "Materialized views"):
///
/// ```text
/// c_V : forall (x in P) where B(x) -> exists (v in V) where O(x) = v
/// c'_V: forall (v in V) -> exists (x in P) where B(x) and O(x) = v
/// ```
pub fn view_constraints(name: &str, def: &Query) -> Vec<Dependency> {
    let mut gen = VarGen::avoiding(def.from.iter().map(|b| b.var.clone()));
    let v = gen.fresh("v");
    let vpath = Path::var(&v);
    let out_eqs: Vec<Equality> = match &def.output {
        Output::Struct(fields) => fields
            .iter()
            .map(|(field, p)| Equality(vpath.clone().field(field), p.clone()))
            .collect(),
        Output::Path(p) => vec![Equality(vpath.clone(), p.clone())],
    };
    let mut c_v_prime_conclusion = def.where_.clone();
    c_v_prime_conclusion.extend(out_eqs.iter().cloned());
    scope_checked(vec![
        Dependency::new(
            format!("c_V({name})"),
            def.from.clone(),
            def.where_.clone(),
            vec![Binding::iter(v.clone(), Path::root(name))],
            out_eqs,
        ),
        Dependency::new(
            format!("c'_V({name})"),
            vec![Binding::iter(v, Path::root(name))],
            vec![],
            def.from.clone(),
            c_v_prime_conclusion,
        ),
    ])
}

/// The key path equalities for a gmap: componentwise for record keys,
/// direct for single-field keys.
fn gmap_side_eqs(var: &Path, fields: &[(String, Path)]) -> Vec<Equality> {
    if fields.len() == 1 {
        vec![Equality(var.clone(), fields[0].1.clone())]
    } else {
        fields
            .iter()
            .map(|(f, p)| Equality(var.clone().field(f), p.clone()))
            .collect()
    }
}

/// `G1`, `G2`, `G3` for a gmap-style dictionary `G`:
///
/// ```text
/// G1: forall (x in P) where B -> exists (k in dom(G)) (t in G[k])
///     where k = K(x) and t = V(x)
/// G2: forall (k in dom(G)) (t in G[k]) -> exists (x in P)
///     where B and k = K(x) and t = V(x)
/// G3: forall (k in dom(G)) -> exists (t in G[k])
/// ```
pub fn gmap_constraints(name: &str, def: &GmapDef) -> Vec<Dependency> {
    let mut gen = VarGen::avoiding(def.from.iter().map(|b| b.var.clone()));
    let k = gen.fresh("k");
    let t = gen.fresh("t");
    let kp = Path::var(&k);
    let tp = Path::var(&t);
    let mut eqs = gmap_side_eqs(&kp, &def.key);
    eqs.extend(gmap_side_eqs(&tp, &def.value));
    let dict_bindings = vec![
        Binding::iter(k.clone(), Path::root(name).dom()),
        Binding::iter(t.clone(), Path::root(name).get(kp.clone())),
    ];
    let mut g2_conclusion = def.where_.clone();
    g2_conclusion.extend(eqs.clone());
    scope_checked(vec![
        Dependency::new(
            format!("G1({name})"),
            def.from.clone(),
            def.where_.clone(),
            dict_bindings.clone(),
            eqs,
        ),
        Dependency::new(
            format!("G2({name})"),
            dict_bindings,
            vec![],
            def.from.clone(),
            g2_conclusion,
        ),
        Dependency::new(
            format!("G3({name})"),
            vec![Binding::iter(k, Path::root(name).dom())],
            vec![],
            vec![Binding::iter(t, Path::root(name).get(kp))],
            vec![],
        ),
    ])
}

/// The gmap's dictionary type, given the typed key/value output fields.
pub fn gmap_dict_type(key: &[(String, Type)], value: &[(String, Type)]) -> Type {
    let side = |fields: &[(String, Type)]| -> Type {
        if fields.len() == 1 {
            fields[0].1.clone()
        } else {
            Type::record(fields.iter().map(|(f, t)| (f.clone(), t.clone())))
        }
    };
    Type::dict(side(key), Type::set(side(value)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_index_constraint_shapes() {
        let cs = primary_index_constraints("I", "Proj", "PName");
        assert_eq!(cs.len(), 2);
        assert_eq!(
            cs[0].to_string(),
            "[PI1(I)] forall (p in Proj) -> exists (i in dom(I)) \
             where i = p.PName and I[i] = p"
        );
        assert!(cs.iter().all(|d| d.check_scopes().is_ok()));
        // PI1/PI2 are full: `i` is determined by the key path `p.PName`
        // and `p` by the lookup `I[i]`.
        assert!(cs[0].is_full());
        assert!(cs[1].is_full());
        assert!(cs[1].determined_existentials().contains("p"));
    }

    #[test]
    fn secondary_index_constraint_shapes() {
        let cs = secondary_index_constraints("SI", "Proj", "CustName");
        assert_eq!(cs.len(), 3);
        assert_eq!(
            cs[0].to_string(),
            "[SI1(SI)] forall (p in Proj) -> exists (k in dom(SI)) (t in SI[k]) \
             where k = p.CustName and p = t"
        );
        // SI3 is pure non-emptiness.
        assert!(cs[2].conclusion.is_empty());
        assert!(!cs[2].is_egd());
        assert!(cs.iter().all(|d| d.check_scopes().is_ok()));
    }

    #[test]
    fn class_dict_constraints_cover_attr_kinds() {
        let attrs: BTreeMap<String, Type> = [
            ("DName".to_string(), Type::Str),
            ("DProjs".to_string(), Type::set(Type::Str)),
            ("MgrName".to_string(), Type::Str),
        ]
        .into();
        let cs = class_dict_constraints("depts", "Dept", &attrs);
        let names: Vec<&str> = cs.iter().map(|d| d.name.as_str()).collect();
        assert!(names.contains(&"delta(Dept)"));
        assert!(names.contains(&"delta'(Dept)"));
        assert!(names.contains(&"delta(Dept.DProjs)"));
        assert!(names.contains(&"delta'(Dept.DProjs)"));
        assert!(names.contains(&"deref(Dept.DName)"));
        assert!(names.contains(&"deref(Dept.MgrName)"));
        assert_eq!(cs.len(), 6);
        // The deref constraints are EGDs.
        let deref = cs.iter().find(|d| d.name == "deref(Dept.DName)").unwrap();
        assert!(deref.is_egd());
        let eq = &deref.conclusion[0];
        assert_eq!(format!("{} = {}", eq.0, eq.1), "o.DName = Dept[o].DName");
        // The paper's δ_Dept is our delta(Dept.DProjs).
        let delta = cs.iter().find(|d| d.name == "delta(Dept.DProjs)").unwrap();
        assert_eq!(delta.forall.len(), 2);
        assert_eq!(delta.exists.len(), 2);
    }

    #[test]
    fn view_constraints_for_ji() {
        // JI from the paper.
        let def = pcql::parser::parse_query(
            "select struct(DOID = d, PN = p.PName) \
             from depts d, d.DProjs s, Proj p where s = p.PName",
        )
        .unwrap();
        let cs = view_constraints("JI", &def);
        assert_eq!(cs.len(), 2);
        let c_ji = &cs[0];
        assert_eq!(c_ji.name, "c_V(JI)");
        assert_eq!(c_ji.forall.len(), 3);
        assert_eq!(c_ji.exists.len(), 1);
        // Conclusion equates the view tuple's fields with the outputs.
        assert_eq!(c_ji.conclusion.len(), 2);
        let c_ji_inv = &cs[1];
        assert_eq!(c_ji_inv.forall.len(), 1);
        assert_eq!(c_ji_inv.exists.len(), 3);
        // c'_V restates the body conditions in its conclusion.
        assert!(c_ji_inv.conclusion.len() >= 3);
        assert!(cs.iter().all(|d| d.check_scopes().is_ok()));
    }

    #[test]
    fn view_constraint_fresh_var_avoids_clash() {
        let def = pcql::parser::parse_query("select struct(A = v.A) from R v").unwrap();
        let cs = view_constraints("V", &def);
        // The view variable must not be the definition's own `v`.
        assert_ne!(cs[0].exists[0].var, "v");
    }

    #[test]
    fn gmap_constraints_single_and_multi_key() {
        let def = GmapDef {
            from: vec![Binding::iter("r", Path::root("R"))],
            where_: vec![],
            key: vec![("A".into(), Path::var("r").field("A"))],
            value: vec![("B".into(), Path::var("r").field("B"))],
        };
        let cs = gmap_constraints("G", &def);
        assert_eq!(cs.len(), 3);
        // Single-field key: direct equality `k = r.A`.
        assert!(cs[0].conclusion.iter().any(|e| format!("{}", e.0) == "k0"));
        assert!(cs.iter().all(|d| d.check_scopes().is_ok()));

        let def2 = GmapDef {
            key: vec![
                ("A".into(), Path::var("r").field("A")),
                ("B".into(), Path::var("r").field("B")),
            ],
            ..def
        };
        let cs2 = gmap_constraints("G2", &def2);
        // Multi-field key: componentwise equalities `k.A = r.A`, `k.B = r.B`.
        assert!(cs2[0]
            .conclusion
            .iter()
            .any(|e| format!("{}", e.0).ends_with(".A")));
    }

    #[test]
    fn gmap_type_shapes() {
        let t = gmap_dict_type(
            &[("A".into(), Type::Int)],
            &[("B".into(), Type::Str), ("C".into(), Type::Int)],
        );
        let (k, v) = t.dict_parts().unwrap();
        assert_eq!(k, &Type::Int);
        assert_eq!(
            v.set_elem().unwrap(),
            &Type::record([("B", Type::Str), ("C", Type::Int)])
        );
    }
}
