//! Builders for the classical semantic constraints of the logical schema:
//! keys, foreign keys / referential integrity, and inverse relationships
//! (the `RIC`, `INV`, `KEY` assertions of paper Fig. 2).

use pcql::path::Path;
use pcql::query::{Binding, Equality};
use pcql::Dependency;

/// Every builder validates its constraint's variable scoping at
/// construction — a malformed constraint is a bug in the builder itself,
/// and must surface here rather than deep inside a chase.
fn scope_checked(d: Dependency) -> Dependency {
    if let Err(e) = d.check_scopes() {
        panic!("constraint builder produced malformed [{}]: {e}", d.name);
    }
    d
}

/// `KEY`: `forall (p in R) (q in R) where p.F = q.F -> p = q`.
pub fn key_constraint(name: impl Into<String>, relation: &str, field: &str) -> Dependency {
    scope_checked(Dependency::new(
        name,
        vec![
            Binding::iter("p", Path::root(relation)),
            Binding::iter("q", Path::root(relation)),
        ],
        vec![Equality(
            Path::var("p").field(field),
            Path::var("q").field(field),
        )],
        vec![],
        vec![Equality(Path::var("p"), Path::var("q"))],
    ))
}

/// `RIC` (row-to-row): `forall (p in R) -> exists (q in S) where p.F = q.G`.
pub fn foreign_key(
    name: impl Into<String>,
    relation: &str,
    field: &str,
    target: &str,
    target_field: &str,
) -> Dependency {
    scope_checked(Dependency::new(
        name,
        vec![Binding::iter("p", Path::root(relation))],
        vec![],
        vec![Binding::iter("q", Path::root(target))],
        vec![Equality(
            Path::var("p").field(field),
            Path::var("q").field(target_field),
        )],
    ))
}

/// `RIC` (member-to-row): every member of the set-valued attribute `attr`
/// of an object in `extent` references a row of `target` through
/// `target_field`:
/// `forall (d in E) (s in d.attr) -> exists (p in T) where s = p.G`.
pub fn member_foreign_key(
    name: impl Into<String>,
    extent: &str,
    attr: &str,
    target: &str,
    target_field: &str,
) -> Dependency {
    scope_checked(Dependency::new(
        name,
        vec![
            Binding::iter("d", Path::root(extent)),
            Binding::iter("s", Path::var("d").field(attr)),
        ],
        vec![],
        vec![Binding::iter("p", Path::root(target))],
        vec![Equality(Path::var("s"), Path::var("p").field(target_field))],
    ))
}

/// One direction of an inverse relationship between a set-valued attribute
/// and a back-reference field (paper's `INV1`):
/// `forall (d in E) (s in d.attr) (p in T) where s = p.KeyF
///  -> p.BackF = d.NameF`.
pub fn inverse_forward(
    name: impl Into<String>,
    extent: &str,
    attr: &str,
    target: &str,
    target_key: &str,
    target_back: &str,
    class_name_field: &str,
) -> Dependency {
    scope_checked(Dependency::new(
        name,
        vec![
            Binding::iter("d", Path::root(extent)),
            Binding::iter("s", Path::var("d").field(attr)),
            Binding::iter("p", Path::root(target)),
        ],
        vec![Equality(Path::var("s"), Path::var("p").field(target_key))],
        vec![],
        vec![Equality(
            Path::var("p").field(target_back),
            Path::var("d").field(class_name_field),
        )],
    ))
}

/// The other direction (paper's `INV2`):
/// `forall (p in T) (d in E) where p.BackF = d.NameF
///  -> exists (s in d.attr) where p.KeyF = s`.
pub fn inverse_backward(
    name: impl Into<String>,
    extent: &str,
    attr: &str,
    target: &str,
    target_key: &str,
    target_back: &str,
    class_name_field: &str,
) -> Dependency {
    scope_checked(Dependency::new(
        name,
        vec![
            Binding::iter("p", Path::root(target)),
            Binding::iter("d", Path::root(extent)),
        ],
        vec![Equality(
            Path::var("p").field(target_back),
            Path::var("d").field(class_name_field),
        )],
        vec![Binding::iter("s", Path::var("d").field(attr))],
        vec![Equality(Path::var("p").field(target_key), Path::var("s"))],
    ))
}

/// `KEY` over an extent attribute (paper's `KEY1` for `depts`/`DName`):
/// `forall (d in E) (e in E) where d.F = e.F -> d = e`.
pub fn extent_key(name: impl Into<String>, extent: &str, field: &str) -> Dependency {
    key_constraint(name, extent, field)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_shape() {
        let d = key_constraint("KEY2", "Proj", "PName");
        assert!(d.is_egd());
        assert_eq!(
            d.to_string(),
            "[KEY2] forall (p in Proj) (q in Proj) where p.PName = q.PName -> p = q"
        );
    }

    #[test]
    fn foreign_key_shape() {
        let d = foreign_key("RIC2", "Proj", "PDept", "depts", "DName");
        assert!(!d.is_egd());
        assert_eq!(d.exists.len(), 1);
        assert!(d.to_string().contains("p.PDept = q.DName"));
    }

    #[test]
    fn member_fk_matches_paper_ric1() {
        let d = member_foreign_key("RIC1", "depts", "DProjs", "Proj", "PName");
        assert_eq!(
            d.to_string(),
            "[RIC1] forall (d in depts) (s in d.DProjs) -> exists (p in Proj) \
             where s = p.PName"
        );
    }

    #[test]
    fn inverse_pair_matches_paper() {
        let f = inverse_forward("INV1", "depts", "DProjs", "Proj", "PName", "PDept", "DName");
        assert!(f.is_egd());
        assert!(f.to_string().contains("-> p.PDept = d.DName"));
        let b = inverse_backward("INV2", "depts", "DProjs", "Proj", "PName", "PDept", "DName");
        assert!(!b.is_egd());
        assert!(b.to_string().contains("exists (s in d.DProjs)"));
        assert!(f.check_scopes().is_ok());
        assert!(b.check_scopes().is_ok());
    }
}
