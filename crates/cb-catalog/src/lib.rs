//! # cb-catalog — schemas, access structures and constraints
//!
//! The catalog holds everything Algorithm 1 of the paper takes as input
//! besides the query itself:
//!
//! * the **logical schema** Λ with its semantic constraints `D`
//!   (referential integrity, inverse relationships, keys, …);
//! * the **physical schema** Φ;
//! * the **implementation mapping** between them, expressed *uniformly as
//!   constraints* `D'` generated from declared access structures: primary
//!   and secondary indexes, class-extent dictionaries, materialized views,
//!   join indexes, access support relations, gmaps, hash tables, source
//!   capabilities (paper §2);
//! * **statistics** for the cost model.
//!
//! Adding a structure updates the physical schema with the structure's
//! root and appends its characterizing dependencies to `D'`. The chase /
//! backchase engines never see structure kinds, only `D ∪ D'`.

pub mod builtin;
pub mod error;
pub mod scenarios;
pub mod stats;
pub mod structures;

pub use error::CatalogError;
pub use stats::{RootStats, Stats};
pub use structures::{AccessStructure, DictKind, GmapDef, ViewKind};

use std::collections::BTreeMap;

use pcql::parser::parse_dependency;
use pcql::path::Path;
use pcql::query::Query;
use pcql::schema::{ClassDecl, Schema};
use pcql::typecheck::{check_dependency, check_query};
use pcql::types::Type;
use pcql::Dependency;

/// The catalog: schemas, structures, constraints and statistics.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    logical: Schema,
    physical: Schema,
    semantic: Vec<Dependency>,
    mapping: Vec<Dependency>,
    structures: Vec<AccessStructure>,
    stats: Stats,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    // ---- schema building ----

    /// Adds a logical relation `name : Set<Struct{fields}>`.
    pub fn add_logical_relation<I, S>(&mut self, name: impl Into<String>, fields: I) -> &mut Self
    where
        I: IntoIterator<Item = (S, Type)>,
        S: Into<String>,
    {
        self.logical.add_root(name, Type::set(Type::record(fields)));
        self
    }

    /// Adds an arbitrary logical root.
    pub fn add_logical_root(&mut self, name: impl Into<String>, ty: Type) -> &mut Self {
        self.logical.add_root(name, ty);
        self
    }

    /// Declares a class with its extent root `extent : Set<Oid<C>>` in the
    /// logical schema.
    pub fn declare_class(&mut self, decl: ClassDecl, extent: impl Into<String>) -> &mut Self {
        let extent = extent.into();
        self.logical.add_root(extent, decl.extent_type());
        // Class declarations are needed for typing on both sides.
        self.physical.declare_class(decl.clone());
        self.logical.declare_class(decl);
        self
    }

    /// Makes a logical root directly available in the physical schema (the
    /// "direct mapping" situation: same name, same contents, no
    /// constraints needed).
    pub fn add_direct_mapping(&mut self, root: &str) -> &mut Self {
        if let Some(ty) = self.logical.root(root).cloned() {
            self.physical.add_root(root, ty);
        } else {
            panic!("add_direct_mapping: unknown logical root `{root}`");
        }
        self
    }

    // ---- access structures (paper §2) ----

    fn check_fresh(&self, name: &str) -> Result<(), CatalogError> {
        if self.logical.root(name).is_some() || self.physical.root(name).is_some() {
            return Err(CatalogError::DuplicateName(name.to_string()));
        }
        Ok(())
    }

    /// The element record type of a relation-typed root.
    fn relation_row(&self, relation: &str) -> Result<(Type, BTreeMap<String, Type>), CatalogError> {
        let schema = self.combined_schema();
        let ty = schema
            .root(relation)
            .ok_or_else(|| CatalogError::UnknownRoot(relation.to_string()))?;
        match ty {
            Type::Set(elem) => match elem.as_ref() {
                Type::Struct(fields) => Ok((elem.as_ref().clone(), fields.clone())),
                _ => Err(CatalogError::NotARelation(relation.to_string())),
            },
            _ => Err(CatalogError::NotARelation(relation.to_string())),
        }
    }

    fn key_field_type(&self, relation: &str, field: &str) -> Result<(Type, Type), CatalogError> {
        let (row, fields) = self.relation_row(relation)?;
        let key_ty = fields
            .get(field)
            .cloned()
            .ok_or_else(|| CatalogError::NoSuchField {
                relation: relation.to_string(),
                field: field.to_string(),
            })?;
        if !key_ty.is_base() {
            return Err(CatalogError::BadKeyType {
                field: field.to_string(),
                ty: key_ty.to_string(),
            });
        }
        Ok((row, key_ty))
    }

    /// Adds a primary index `name : Dict<keyT, Row>` on the key `field` of
    /// `relation`; also records the key EGD in the semantic constraints if
    /// not already present (a primary index only exists on a key).
    pub fn add_primary_index(
        &mut self,
        name: &str,
        relation: &str,
        field: &str,
    ) -> Result<&mut Self, CatalogError> {
        self.check_fresh(name)?;
        let (row, key_ty) = self.key_field_type(relation, field)?;
        self.physical.add_root(name, Type::dict(key_ty, row));
        self.mapping
            .extend(structures::primary_index_constraints(name, relation, field));
        let key_name = format!("key({relation}.{field})");
        if !self.semantic.iter().any(|d| d.name == key_name) {
            self.semantic
                .push(builtin::key_constraint(key_name, relation, field));
        }
        self.structures.push(AccessStructure::PrimaryIndex {
            name: name.to_string(),
            relation: relation.to_string(),
            key_field: field.to_string(),
        });
        Ok(self)
    }

    /// Adds a secondary index `name : Dict<keyT, Set<Row>>` on `field` of
    /// `relation`.
    pub fn add_secondary_index(
        &mut self,
        name: &str,
        relation: &str,
        field: &str,
    ) -> Result<&mut Self, CatalogError> {
        self.add_secondary_index_impl(name, relation, field, true)
    }

    /// Adds a hash table: same shape and constraints as a secondary index,
    /// but not materialized — a plan that uses it must build it on the fly
    /// (hash join). The cost model charges the build.
    pub fn add_hash_table(
        &mut self,
        name: &str,
        relation: &str,
        field: &str,
    ) -> Result<&mut Self, CatalogError> {
        self.add_secondary_index_impl(name, relation, field, false)
    }

    fn add_secondary_index_impl(
        &mut self,
        name: &str,
        relation: &str,
        field: &str,
        materialized: bool,
    ) -> Result<&mut Self, CatalogError> {
        self.check_fresh(name)?;
        let (row, key_ty) = self.key_field_type(relation, field)?;
        self.physical
            .add_root(name, Type::dict(key_ty, Type::set(row)));
        self.mapping.extend(structures::secondary_index_constraints(
            name, relation, field,
        ));
        self.structures.push(AccessStructure::SecondaryIndex {
            name: name.to_string(),
            relation: relation.to_string(),
            key_field: field.to_string(),
            materialized,
        });
        Ok(self)
    }

    /// Adds the implementing dictionary `dict : Dict<Oid<C>, Struct{attrs}>`
    /// for class `class` with extent `extent`, generating the δ/deref
    /// constraints.
    pub fn add_class_dict(
        &mut self,
        class: &str,
        extent: &str,
        dict: &str,
    ) -> Result<&mut Self, CatalogError> {
        self.check_fresh(dict)?;
        let decl = self
            .logical
            .class(class)
            .cloned()
            .ok_or_else(|| CatalogError::UnknownClass(class.to_string()))?;
        if self.logical.root(extent) != Some(&decl.extent_type()) {
            return Err(CatalogError::UnknownRoot(extent.to_string()));
        }
        self.physical.add_root(dict, decl.dict_type());
        self.mapping.extend(structures::class_dict_constraints(
            extent,
            dict,
            &decl.attrs,
        ));
        self.structures.push(AccessStructure::ClassDict {
            class: class.to_string(),
            extent: extent.to_string(),
            dict: dict.to_string(),
        });
        Ok(self)
    }

    /// Adds a materialized PC view `name` with definition `def`, deriving
    /// `c_V` and `c'_V`.
    pub fn add_materialized_view(
        &mut self,
        name: &str,
        def: Query,
    ) -> Result<&mut Self, CatalogError> {
        self.add_view_impl(name, def, ViewKind::View)
    }

    /// Adds a join index: a materialized binary view of the join keys /
    /// surrogates of two relations (Valduriez). The participating primary
    /// indexes must be declared separately — a join index is the *triple*
    /// (view, index, index) (paper §2).
    pub fn add_join_index(&mut self, name: &str, def: Query) -> Result<&mut Self, CatalogError> {
        match &def.output {
            pcql::Output::Struct(fields) if fields.len() == 2 => {}
            _ => {
                return Err(CatalogError::BadViewDefinition {
                    name: name.to_string(),
                    reason: "a join index stores exactly two key/surrogate columns".into(),
                })
            }
        }
        self.add_view_impl(name, def, ViewKind::JoinIndex)
    }

    /// Adds an access support relation for the class path
    /// `extent.attr1.attr2…`: the materialized relation of OIDs along the
    /// path (Kemper–Moerkotte), generalized as a view. Each `attr` must be
    /// a set-valued attribute leading to the next object/value on the
    /// path.
    pub fn add_access_support_relation(
        &mut self,
        name: &str,
        extent: &str,
        attrs: &[&str],
    ) -> Result<&mut Self, CatalogError> {
        let mut from = vec![pcql::Binding::iter("x0", Path::root(extent))];
        let mut outputs = vec![("O0".to_string(), Path::var("x0"))];
        for (i, attr) in attrs.iter().enumerate() {
            let prev = format!("x{i}");
            let var = format!("x{}", i + 1);
            from.push(pcql::Binding::iter(&var, Path::var(&prev).field(*attr)));
            outputs.push((format!("O{}", i + 1), Path::var(&var)));
        }
        let def = Query::new(pcql::Output::record(outputs), from, vec![]);
        self.add_view_impl(name, def, ViewKind::AccessSupportRelation)
    }

    fn add_view_impl(
        &mut self,
        name: &str,
        def: Query,
        kind: ViewKind,
    ) -> Result<&mut Self, CatalogError> {
        self.check_fresh(name)?;
        let schema = self.combined_schema();
        let typing = check_query(&schema, &def)?;
        if !typing.output.is_collection_free() {
            return Err(CatalogError::BadViewDefinition {
                name: name.to_string(),
                reason: format!("output type `{}` is not collection-free", typing.output),
            });
        }
        self.physical.add_root(name, Type::set(typing.output));
        self.mapping
            .extend(structures::view_constraints(name, &def));
        self.structures.push(AccessStructure::MaterializedView {
            name: name.to_string(),
            def,
            kind,
        });
        Ok(self)
    }

    /// Adds a generalized gmap (a dictionary defined by a key query and a
    /// value query over the same body).
    pub fn add_gmap(&mut self, name: &str, def: GmapDef) -> Result<&mut Self, CatalogError> {
        self.add_gmap_impl(name, def, DictKind::Gmap)
    }

    /// Adds a source capability: a dictionary from binding patterns to
    /// result sets, constraint-wise identical to a gmap.
    pub fn add_source_capability(
        &mut self,
        name: &str,
        def: GmapDef,
    ) -> Result<&mut Self, CatalogError> {
        self.add_gmap_impl(name, def, DictKind::SourceCapability)
    }

    fn add_gmap_impl(
        &mut self,
        name: &str,
        def: GmapDef,
        kind: DictKind,
    ) -> Result<&mut Self, CatalogError> {
        self.check_fresh(name)?;
        if def.key.is_empty() || def.value.is_empty() {
            return Err(CatalogError::BadViewDefinition {
                name: name.to_string(),
                reason: "gmap needs at least one key and one value field".into(),
            });
        }
        // Type the body once, then the key/value outputs.
        let schema = self.combined_schema();
        let body = Query::new(
            pcql::Output::record(
                def.key
                    .iter()
                    .chain(&def.value)
                    .map(|(f, p)| (f.clone(), p.clone())),
            ),
            def.from.clone(),
            def.where_.clone(),
        );
        let typing = check_query(&schema, &body)?;
        let field_ty = |f: &str| match &typing.output {
            Type::Struct(m) => m[f].clone(),
            _ => unreachable!("body output is a struct"),
        };
        let key_tys: Vec<(String, Type)> = def
            .key
            .iter()
            .map(|(f, _)| (f.clone(), field_ty(f)))
            .collect();
        let val_tys: Vec<(String, Type)> = def
            .value
            .iter()
            .map(|(f, _)| (f.clone(), field_ty(f)))
            .collect();
        for (f, t) in key_tys.iter().chain(&val_tys) {
            if !t.is_collection_free() {
                return Err(CatalogError::BadKeyType {
                    field: f.clone(),
                    ty: t.to_string(),
                });
            }
        }
        self.physical
            .add_root(name, structures::gmap_dict_type(&key_tys, &val_tys));
        self.mapping
            .extend(structures::gmap_constraints(name, &def));
        self.structures.push(AccessStructure::GmapDict {
            name: name.to_string(),
            def,
            kind,
        });
        Ok(self)
    }

    // ---- semantic constraints (D) ----

    /// Adds a semantic constraint of the logical schema, type checking it
    /// against the combined schema.
    pub fn add_semantic_constraint(&mut self, dep: Dependency) -> Result<&mut Self, CatalogError> {
        check_dependency(&self.combined_schema(), &dep)?;
        self.semantic.push(dep);
        Ok(self)
    }

    /// Adds a semantic constraint from concrete syntax.
    pub fn add_semantic_constraint_text(
        &mut self,
        name: &str,
        text: &str,
    ) -> Result<&mut Self, CatalogError> {
        let dep = parse_dependency(name, text)?;
        self.add_semantic_constraint(dep)
    }

    // ---- views of the catalog ----

    pub fn logical(&self) -> &Schema {
        &self.logical
    }

    pub fn physical(&self) -> &Schema {
        &self.physical
    }

    /// Λ ∪ Φ — the schema universal plans are typed against.
    pub fn combined_schema(&self) -> Schema {
        self.logical
            .merged(&self.physical)
            .expect("catalog keeps logical and physical schemas compatible")
    }

    /// The semantic constraints `D` of the logical schema.
    pub fn semantic_constraints(&self) -> &[Dependency] {
        &self.semantic
    }

    /// The implementation-mapping constraints `D'`.
    pub fn mapping_constraints(&self) -> &[Dependency] {
        &self.mapping
    }

    /// `D ∪ D'` in a stable order (semantic first).
    pub fn all_constraints(&self) -> Vec<Dependency> {
        let mut out = self.semantic.clone();
        out.extend(self.mapping.iter().cloned());
        out
    }

    /// A copy of this catalog with the semantic constraints dropped —
    /// the regime of the completeness theorems ("Λ contains no
    /// dependencies") and of implementation-mapping-only optimization.
    pub fn without_semantic_constraints(&self) -> Catalog {
        let mut c = self.clone();
        c.semantic.clear();
        c
    }

    pub fn structures(&self) -> &[AccessStructure] {
        &self.structures
    }

    pub fn structure(&self, name: &str) -> Option<&AccessStructure> {
        self.structures.iter().find(|s| s.root_name() == name)
    }

    /// Is `name` available in the physical schema (executable by plans)?
    pub fn is_physical_root(&self, name: &str) -> bool {
        self.physical.root(name).is_some()
    }

    /// Does the query mention only physical roots (i.e. is it a plan)?
    pub fn is_physical_query(&self, q: &Query) -> bool {
        q.roots().iter().all(|r| self.is_physical_root(r))
    }

    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcql::parser::parse_query;

    fn base_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int), ("C", Type::Int)]);
        c.add_logical_relation("S", [("B", Type::Int), ("C", Type::Int)]);
        c.add_direct_mapping("R");
        c.add_direct_mapping("S");
        c
    }

    #[test]
    fn secondary_index_updates_schema_and_constraints() {
        let mut c = base_catalog();
        c.add_secondary_index("SA", "R", "A").unwrap();
        let ty = c.physical().root("SA").unwrap();
        let (k, v) = ty.dict_parts().unwrap();
        assert_eq!(k, &Type::Int);
        assert!(matches!(v, Type::Set(_)));
        assert_eq!(c.mapping_constraints().len(), 3);
        assert!(c.is_physical_root("SA"));
        assert!(!c.is_physical_root("nope"));
        // All generated constraints type check against the combined schema.
        let schema = c.combined_schema();
        for d in c.all_constraints() {
            check_dependency(&schema, &d).unwrap();
        }
    }

    #[test]
    fn primary_index_adds_key_constraint_once() {
        let mut c = base_catalog();
        c.add_primary_index("IA", "R", "A").unwrap();
        assert_eq!(c.semantic_constraints().len(), 1);
        assert!(c.semantic_constraints()[0].name.contains("key(R.A)"));
        // A second index on the same key reuses the key constraint.
        c.add_primary_index("IA2", "R", "A").unwrap();
        assert_eq!(c.semantic_constraints().len(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = base_catalog();
        c.add_secondary_index("SA", "R", "A").unwrap();
        assert!(matches!(
            c.add_secondary_index("SA", "R", "B"),
            Err(CatalogError::DuplicateName(_))
        ));
        assert!(matches!(
            c.add_primary_index("R", "S", "B"),
            Err(CatalogError::DuplicateName(_))
        ));
    }

    #[test]
    fn bad_fields_rejected() {
        let mut c = base_catalog();
        assert!(matches!(
            c.add_secondary_index("SX", "R", "X"),
            Err(CatalogError::NoSuchField { .. })
        ));
        assert!(matches!(
            c.add_secondary_index("SX", "Nope", "A"),
            Err(CatalogError::UnknownRoot(_))
        ));
    }

    #[test]
    fn materialized_view_roundtrip() {
        let mut c = base_catalog();
        let def = parse_query("select struct(A = r.A) from R r, S s where r.B = s.B").unwrap();
        c.add_materialized_view("V", def).unwrap();
        assert_eq!(
            c.physical().root("V"),
            Some(&Type::set(Type::record([("A", Type::Int)])))
        );
        let names: Vec<&str> = c
            .mapping_constraints()
            .iter()
            .map(|d| d.name.as_str())
            .collect();
        assert_eq!(names, vec!["c_V(V)", "c'_V(V)"]);
        let schema = c.combined_schema();
        for d in c.all_constraints() {
            check_dependency(&schema, &d).unwrap();
        }
    }

    #[test]
    fn join_index_requires_two_columns() {
        let mut c = base_catalog();
        let bad = parse_query("select struct(A = r.A) from R r").unwrap();
        assert!(matches!(
            c.add_join_index("J", bad),
            Err(CatalogError::BadViewDefinition { .. })
        ));
        let good =
            parse_query("select struct(RA = r.A, SB = s.B) from R r, S s where r.B = s.B").unwrap();
        c.add_join_index("J", good).unwrap();
        assert!(matches!(
            c.structure("J"),
            Some(AccessStructure::MaterializedView {
                kind: ViewKind::JoinIndex,
                ..
            })
        ));
    }

    #[test]
    fn gmap_catalog_integration() {
        let mut c = base_catalog();
        let def = GmapDef {
            from: vec![pcql::Binding::iter("r", Path::root("R"))],
            where_: vec![],
            key: vec![("A".into(), Path::var("r").field("A"))],
            value: vec![
                ("B".into(), Path::var("r").field("B")),
                ("C".into(), Path::var("r").field("C")),
            ],
        };
        c.add_gmap("G", def).unwrap();
        let ty = c.physical().root("G").unwrap();
        let (k, _) = ty.dict_parts().unwrap();
        assert_eq!(k, &Type::Int);
        assert_eq!(c.mapping_constraints().len(), 3);
        let schema = c.combined_schema();
        for d in c.all_constraints() {
            check_dependency(&schema, &d).unwrap();
        }
    }

    #[test]
    fn semantic_constraint_text() {
        let mut c = base_catalog();
        c.add_semantic_constraint_text(
            "fk(R.B)",
            "forall (r in R) -> exists (s in S) where r.B = s.B",
        )
        .unwrap();
        assert_eq!(c.semantic_constraints().len(), 1);
        assert!(c
            .add_semantic_constraint_text("bad", "forall (r in Nope) -> r = r")
            .is_err());
        // Dropping semantics keeps the mapping.
        c.add_secondary_index("SA", "R", "A").unwrap();
        let bare = c.without_semantic_constraints();
        assert!(bare.semantic_constraints().is_empty());
        assert_eq!(bare.mapping_constraints().len(), 3);
    }

    #[test]
    fn physical_query_detection() {
        let mut c = base_catalog();
        c.add_logical_relation("L", [("X", Type::Int)]);
        let q_phys = parse_query("select struct(A = r.A) from R r").unwrap();
        let q_log = parse_query("select struct(X = l.X) from L l").unwrap();
        assert!(c.is_physical_query(&q_phys));
        assert!(!c.is_physical_query(&q_log));
    }

    #[test]
    fn asr_definition_built_from_path() {
        let mut c = Catalog::new();
        c.declare_class(
            ClassDecl::new("Dept", [("DProjs", Type::set(Type::Str))]),
            "depts",
        );
        c.add_access_support_relation("ASR", "depts", &["DProjs"])
            .unwrap();
        match c.structure("ASR") {
            Some(AccessStructure::MaterializedView {
                def,
                kind: ViewKind::AccessSupportRelation,
                ..
            }) => {
                assert_eq!(def.from.len(), 2);
                assert_eq!(def.from[1].src.to_string(), "x0.DProjs");
            }
            other => panic!("unexpected structure: {other:?}"),
        }
    }
}
