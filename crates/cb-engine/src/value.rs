//! Runtime values of the complex-object data model.

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use pcql::path::Constant;
use pcql::types::Type;

/// A maybe-borrowed value: the currency of the zero-clone execution
/// paths. Rows iterated out of instance-owned collections travel as
/// `Cow::Borrowed(&'a Value)` (the pipeline executor's register file is
/// a `Vec<CowValue<'a>>`); only genuinely computed values are `Owned`.
///
/// Because `Cow<'a, Value>: Borrow<Value>` and [`Value`] is totally
/// ordered, maps keyed by `CowValue` (the on-the-fly hash-join tables)
/// can be probed with a plain `&Value` — borrowed build keys and
/// borrowed probe keys compare without a single clone.
pub type CowValue<'a> = Cow<'a, Value>;

/// A runtime value. `BTreeMap`/`BTreeSet` keep everything totally ordered,
/// which gives us set semantics, deterministic iteration and hashable
/// results for free.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    Bool(bool),
    Int(i64),
    Str(String),
    /// An OID: the class name plus a numeric identity. OIDs are abstract —
    /// queries can only compare them — but the engine needs an identity to
    /// key class dictionaries.
    Oid(String, u64),
    Struct(BTreeMap<String, Value>),
    Set(BTreeSet<Value>),
    Dict(BTreeMap<Value, Value>),
}

impl Value {
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    pub fn record<I, S>(fields: I) -> Value
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<String>,
    {
        Value::Struct(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    pub fn set<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::Set(items.into_iter().collect())
    }

    pub fn dict<I: IntoIterator<Item = (Value, Value)>>(items: I) -> Value {
        Value::Dict(items.into_iter().collect())
    }

    pub fn as_set(&self) -> Option<&BTreeSet<Value>> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_dict(&self) -> Option<&BTreeMap<Value, Value>> {
        match self {
            Value::Dict(d) => Some(d),
            _ => None,
        }
    }

    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Struct(fields) => fields.get(name),
            _ => None,
        }
    }

    /// Does the value inhabit the type? (Structural check; used by tests
    /// and the materializer's sanity assertions.)
    pub fn has_type(&self, ty: &Type) -> bool {
        match (self, ty) {
            (Value::Bool(_), Type::Bool) => true,
            (Value::Int(_), Type::Int) => true,
            (Value::Str(_), Type::Str) => true,
            (Value::Oid(class, _), Type::Oid(want)) => class == want,
            (Value::Struct(fields), Type::Struct(tys)) => {
                fields.len() == tys.len()
                    && fields
                        .iter()
                        .all(|(k, v)| tys.get(k).is_some_and(|t| v.has_type(t)))
            }
            (Value::Set(items), Type::Set(elem)) => items.iter().all(|v| v.has_type(elem)),
            (Value::Dict(map), Type::Dict(k, v)) => map
                .iter()
                .all(|(key, val)| key.has_type(k) && val.has_type(v)),
            _ => false,
        }
    }
}

/// The placeholder occupying never-written registers and dead batch
/// cells — the same seed value the row-at-a-time register file uses, so
/// reading an unbound slot behaves identically in both executors.
static UNBOUND: CowValue<'static> = Cow::Owned(Value::Bool(false));

/// A selection vector: one liveness bit per batch row, with the live
/// count maintained incrementally. Filters *mark* rows dead here instead
/// of compacting the batch, so upstream columns never shift.
#[derive(Debug, Clone, Default)]
pub struct SelVec {
    bits: Vec<bool>,
    live: usize,
}

impl SelVec {
    /// Number of rows (live and dead).
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of live rows.
    pub fn live(&self) -> usize {
        self.live
    }

    pub fn is_live(&self, row: usize) -> bool {
        self.bits[row]
    }

    /// Appends one live row.
    pub fn push_live(&mut self) {
        self.bits.push(true);
        self.live += 1;
    }

    /// Marks a row dead (idempotent).
    pub fn kill(&mut self, row: usize) {
        if self.bits[row] {
            self.bits[row] = false;
            self.live -= 1;
        }
    }

    pub fn clear(&mut self) {
        self.bits.clear();
        self.live = 0;
    }
}

/// A batch of rows over the pipeline executor's slot layout: one column
/// of maybe-borrowed values per register plus a [`SelVec`]. Columns for
/// slots no operator has written yet stay unbound — reading one yields
/// the same `false` placeholder the row-at-a-time register file is
/// seeded with.
#[derive(Debug, Clone)]
pub struct Batch<'a> {
    cols: Vec<Vec<CowValue<'a>>>,
    bound: Vec<bool>,
    sel: SelVec,
}

impl<'a> Batch<'a> {
    /// The pipeline's seed batch: one live row, every slot unbound —
    /// the batched counterpart of invoking the row machine once.
    pub fn seed(n_slots: usize) -> Batch<'a> {
        let mut sel = SelVec::default();
        sel.push_live();
        Batch {
            cols: vec![Vec::new(); n_slots],
            bound: vec![false; n_slots],
            sel,
        }
    }

    /// An empty output batch for an expanding operator: inherits the
    /// source batch's bound columns plus the operator's own `slot`.
    pub fn expanded_from(src: &Batch<'a>, slot: usize) -> Batch<'a> {
        let mut bound = src.bound.clone();
        if let Some(b) = bound.get_mut(slot) {
            *b = true;
        }
        Batch {
            cols: vec![Vec::new(); src.cols.len()],
            bound,
            sel: SelVec::default(),
        }
    }

    /// Rows in the batch, dead ones included.
    pub fn rows(&self) -> usize {
        self.sel.len()
    }

    /// Live rows in the batch.
    pub fn live(&self) -> usize {
        self.sel.live()
    }

    pub fn is_live(&self, row: usize) -> bool {
        self.sel.is_live(row)
    }

    /// Marks a row dead.
    pub fn kill(&mut self, row: usize) {
        self.sel.kill(row);
    }

    /// Reads register `slot` of `row`; unbound slots read the placeholder.
    pub fn reg(&self, slot: usize, row: usize) -> &CowValue<'a> {
        if self.bound.get(slot).copied().unwrap_or(false) {
            &self.cols[slot][row]
        } else {
            &UNBOUND
        }
    }

    /// Materializes `slot`'s column (placeholder-filled) so a scalar
    /// binding operator can write it in place, row by row.
    pub fn bind_col(&mut self, slot: usize) {
        if !self.bound[slot] {
            self.bound[slot] = true;
            self.cols[slot] = vec![UNBOUND.clone(); self.sel.len()];
        }
    }

    /// Writes register `slot` of `row` (the column must be bound).
    pub fn set(&mut self, slot: usize, row: usize, v: CowValue<'a>) {
        self.cols[slot][row] = v;
    }

    /// Appends one live row: `src`'s bound registers at `row` are
    /// replicated and the expanding operator's own `slot` is set to `v`.
    pub fn push_row(&mut self, src: &Batch<'a>, row: usize, slot: usize, v: CowValue<'a>) {
        for s in 0..self.cols.len() {
            if s != slot && src.bound[s] {
                let cell = src.cols[s][row].clone();
                self.cols[s].push(cell);
            }
        }
        self.cols[slot].push(v);
        self.sel.push_live();
    }

    /// Drops every row (bound columns stay bound) so the batch can be
    /// refilled without reallocating.
    pub fn clear_rows(&mut self) {
        for c in &mut self.cols {
            c.clear();
        }
        self.sel.clear();
    }
}

impl From<&Constant> for Value {
    fn from(c: &Constant) -> Value {
        match c {
            Constant::Bool(b) => Value::Bool(*b),
            Constant::Int(i) => Value::Int(*i),
            Constant::Str(s) => Value::Str(s.clone()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Oid(class, n) => write!(f, "&{class}#{n}"),
            Value::Struct(fields) => {
                write!(f, "struct(")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} = {v}")?;
                }
                write!(f, ")")
            }
            Value::Set(items) => {
                write!(f, "{{")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Value::Dict(map) => {
                write!(f, "dict{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} -> {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_semantics_dedup() {
        let s = Value::set([Value::Int(1), Value::Int(1), Value::Int(2)]);
        assert_eq!(s.as_set().unwrap().len(), 2);
    }

    #[test]
    fn typing_check() {
        let row = Value::record([("A", Value::Int(1)), ("B", Value::str("x"))]);
        let ty = Type::record([("A", Type::Int), ("B", Type::Str)]);
        assert!(row.has_type(&ty));
        assert!(!row.has_type(&Type::record([("A", Type::Int)])));
        assert!(!Value::Int(1).has_type(&Type::Str));
        let oid = Value::Oid("Dept".into(), 3);
        assert!(oid.has_type(&Type::Oid("Dept".into())));
        assert!(!oid.has_type(&Type::Oid("Proj".into())));
        let d = Value::dict([(Value::Int(1), Value::str("a"))]);
        assert!(d.has_type(&Type::dict(Type::Int, Type::Str)));
        assert!(!d.has_type(&Type::dict(Type::Str, Type::Str)));
    }

    #[test]
    fn display_forms() {
        let v = Value::record([("A", Value::Int(1))]);
        assert_eq!(v.to_string(), "struct(A = 1)");
        assert_eq!(Value::Oid("Dept".into(), 7).to_string(), "&Dept#7");
        assert_eq!(
            Value::set([Value::Int(2), Value::Int(1)]).to_string(),
            "{1, 2}"
        );
    }

    #[test]
    fn batch_selection_and_columns() {
        let row = Value::record([("A", Value::Int(1))]);
        let seed: Batch<'_> = Batch::seed(2);
        assert_eq!((seed.rows(), seed.live()), (1, 1));
        // Unbound slots read the row machine's seed placeholder.
        assert_eq!(seed.reg(0, 0).as_ref(), &Value::Bool(false));

        let mut out = Batch::expanded_from(&seed, 0);
        out.push_row(&seed, 0, 0, Cow::Borrowed(&row));
        out.push_row(&seed, 0, 0, Cow::Owned(Value::Int(9)));
        assert_eq!((out.rows(), out.live()), (2, 2));
        assert_eq!(out.reg(0, 0).as_ref(), &row);
        assert_eq!(out.reg(1, 1).as_ref(), &Value::Bool(false));

        // Kill marks rows dead without shifting columns; idempotent.
        out.kill(0);
        out.kill(0);
        assert_eq!((out.rows(), out.live()), (2, 1));
        assert!(!out.is_live(0));
        assert_eq!(out.reg(0, 0).as_ref(), &row);

        // A bound scalar column writes in place.
        out.bind_col(1);
        out.set(1, 1, Cow::Owned(Value::Int(5)));
        assert_eq!(out.reg(1, 1).as_ref(), &Value::Int(5));

        out.clear_rows();
        assert_eq!((out.rows(), out.live()), (0, 0));
    }

    #[test]
    fn field_access() {
        let v = Value::record([("A", Value::Int(1))]);
        assert_eq!(v.field("A"), Some(&Value::Int(1)));
        assert_eq!(v.field("B"), None);
        assert_eq!(Value::Int(1).field("A"), None);
    }
}
