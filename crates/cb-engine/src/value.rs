//! Runtime values of the complex-object data model.

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use pcql::path::Constant;
use pcql::types::Type;

/// A maybe-borrowed value: the currency of the zero-clone execution
/// paths. Rows iterated out of instance-owned collections travel as
/// `Cow::Borrowed(&'a Value)` (the pipeline executor's register file is
/// a `Vec<CowValue<'a>>`); only genuinely computed values are `Owned`.
///
/// Because `Cow<'a, Value>: Borrow<Value>` and [`Value`] is totally
/// ordered, maps keyed by `CowValue` (the on-the-fly hash-join tables)
/// can be probed with a plain `&Value` — borrowed build keys and
/// borrowed probe keys compare without a single clone.
pub type CowValue<'a> = Cow<'a, Value>;

/// A runtime value. `BTreeMap`/`BTreeSet` keep everything totally ordered,
/// which gives us set semantics, deterministic iteration and hashable
/// results for free.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    Bool(bool),
    Int(i64),
    Str(String),
    /// An OID: the class name plus a numeric identity. OIDs are abstract —
    /// queries can only compare them — but the engine needs an identity to
    /// key class dictionaries.
    Oid(String, u64),
    Struct(BTreeMap<String, Value>),
    Set(BTreeSet<Value>),
    Dict(BTreeMap<Value, Value>),
}

impl Value {
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    pub fn record<I, S>(fields: I) -> Value
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<String>,
    {
        Value::Struct(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    pub fn set<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::Set(items.into_iter().collect())
    }

    pub fn dict<I: IntoIterator<Item = (Value, Value)>>(items: I) -> Value {
        Value::Dict(items.into_iter().collect())
    }

    pub fn as_set(&self) -> Option<&BTreeSet<Value>> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_dict(&self) -> Option<&BTreeMap<Value, Value>> {
        match self {
            Value::Dict(d) => Some(d),
            _ => None,
        }
    }

    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Struct(fields) => fields.get(name),
            _ => None,
        }
    }

    /// Does the value inhabit the type? (Structural check; used by tests
    /// and the materializer's sanity assertions.)
    pub fn has_type(&self, ty: &Type) -> bool {
        match (self, ty) {
            (Value::Bool(_), Type::Bool) => true,
            (Value::Int(_), Type::Int) => true,
            (Value::Str(_), Type::Str) => true,
            (Value::Oid(class, _), Type::Oid(want)) => class == want,
            (Value::Struct(fields), Type::Struct(tys)) => {
                fields.len() == tys.len()
                    && fields
                        .iter()
                        .all(|(k, v)| tys.get(k).is_some_and(|t| v.has_type(t)))
            }
            (Value::Set(items), Type::Set(elem)) => items.iter().all(|v| v.has_type(elem)),
            (Value::Dict(map), Type::Dict(k, v)) => map
                .iter()
                .all(|(key, val)| key.has_type(k) && val.has_type(v)),
            _ => false,
        }
    }
}

impl From<&Constant> for Value {
    fn from(c: &Constant) -> Value {
        match c {
            Constant::Bool(b) => Value::Bool(*b),
            Constant::Int(i) => Value::Int(*i),
            Constant::Str(s) => Value::Str(s.clone()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Oid(class, n) => write!(f, "&{class}#{n}"),
            Value::Struct(fields) => {
                write!(f, "struct(")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} = {v}")?;
                }
                write!(f, ")")
            }
            Value::Set(items) => {
                write!(f, "{{")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Value::Dict(map) => {
                write!(f, "dict{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} -> {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_semantics_dedup() {
        let s = Value::set([Value::Int(1), Value::Int(1), Value::Int(2)]);
        assert_eq!(s.as_set().unwrap().len(), 2);
    }

    #[test]
    fn typing_check() {
        let row = Value::record([("A", Value::Int(1)), ("B", Value::str("x"))]);
        let ty = Type::record([("A", Type::Int), ("B", Type::Str)]);
        assert!(row.has_type(&ty));
        assert!(!row.has_type(&Type::record([("A", Type::Int)])));
        assert!(!Value::Int(1).has_type(&Type::Str));
        let oid = Value::Oid("Dept".into(), 3);
        assert!(oid.has_type(&Type::Oid("Dept".into())));
        assert!(!oid.has_type(&Type::Oid("Proj".into())));
        let d = Value::dict([(Value::Int(1), Value::str("a"))]);
        assert!(d.has_type(&Type::dict(Type::Int, Type::Str)));
        assert!(!d.has_type(&Type::dict(Type::Str, Type::Str)));
    }

    #[test]
    fn display_forms() {
        let v = Value::record([("A", Value::Int(1))]);
        assert_eq!(v.to_string(), "struct(A = 1)");
        assert_eq!(Value::Oid("Dept".into(), 7).to_string(), "&Dept#7");
        assert_eq!(
            Value::set([Value::Int(2), Value::Int(1)]).to_string(),
            "{1, 2}"
        );
    }

    #[test]
    fn field_access() {
        let v = Value::record([("A", Value::Int(1))]);
        assert_eq!(v.field("A"), Some(&Value::Int(1)));
        assert_eq!(v.field("B"), None);
        assert_eq!(Value::Int(1).field("A"), None);
    }
}
