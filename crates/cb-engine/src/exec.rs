//! Slot-compiled physical operator pipelines.
//!
//! Algorithm 1's step 3 includes "mapping into physical operators
//! different than those (index-based)". The [`Evaluator`] interprets plan
//! *syntax* directly; this module **compiles** a plan once and then runs
//! it against a flat register file:
//!
//! * every variable is resolved to a fixed `usize` **slot** at compile
//!   time — `execute` never touches a string-keyed environment;
//! * every path is pre-resolved to an [`Access`]: a base (slot, interned
//!   root, constant, or lookup) plus a flattened field chain, so the
//!   per-row work is an array index and a few map lookups;
//! * the register file is a `Vec<CowValue<'a>>` — rows iterated out of
//!   instance-owned collections bind as `Cow::Borrowed(&'a Value)`
//!   (the same anchoring discipline as the interpreter's Cow
//!   environment), so instance-anchored bindings cost **zero clones
//!   per row**;
//! * ground (environment-independent) `where` conjuncts are hoisted out
//!   of the row loop entirely: they run once, before the pipeline, and
//!   short-circuit to the empty result;
//! * hash-join tables key `CowValue<'a>` to `Vec<&'a Value>` — borrowed
//!   keys over borrowed rows — and are built **lazily** on first probe,
//!   so a join below an empty outer stream never pays its build.
//!
//! The operator family threads a stream of register bindings:
//!
//! ```text
//! Scan{slot, root}         emit one binding per element of a root set
//! IterDependent{slot, src} nested iteration over a path (index entries,
//!                          set-valued fields, non-failing lookups)
//! Bind{slot, src}          scalar (let) binding
//! Filter{l, r}             keep rows where the accessors evaluate equal
//! HashJoin{...}            equi-join through an on-the-fly hash table,
//!                          realizing §2's "a hash-join algorithm would
//!                          have to compute [the table] on the fly"
//! MergeJoin{...}           equi-join through a lazily materialized,
//!                          key-sorted run — the sort elided when the
//!                          root's BTreeSet order already sorts the key
//! ```
//!
//! # Batched, push-based execution
//!
//! The default driver ([`execute`]/[`execute_with_stats`]) is **batch
//! vectorized**: operators consume and emit [`Batch`]es — fixed-capacity
//! row batches laid out as one `CowValue` column per register slot
//! ([`CompileOptions::batch_size`] rows, default 1024) with a selection
//! vector. Execution is **push-based**: each operator processes a whole
//! batch, then pushes the result at its successor, so the engine recurses
//! once per *batch* per operator instead of once per *row* — the per-row
//! call/dispatch overhead of the row-at-a-time driver disappears from
//! the hot loop.
//!
//! * `Scan` fills output batches directly from the root collection,
//!   replicating the (cheap, usually borrowed) outer registers per row;
//! * `Filter` marks failing rows dead in the selection vector instead of
//!   compacting, so upstream columns never shift;
//! * `HashJoin` probes a whole batch per pass over its lazily built
//!   table; `MergeJoin` (below) probes a sorted run;
//! * the final projection drains the survivors of each arriving batch.
//!
//! The row-at-a-time recursive driver is retained as
//! [`execute_rows`]/[`execute_rows_with_stats`] — it is the differential
//! baseline the proptest corpus and experiment E19 compare against, and
//! both drivers produce identical results *and byte-identical
//! `EvalError`s*. The batched driver preserves the row machine's
//! depth-first error order with a truncate-on-error discipline: when an
//! operator fails at live row *i*, rows ≥ *i* are killed, the surviving
//! prefix is flushed downstream (any downstream error necessarily
//! belongs to an earlier row and wins), and the pending error surfaces
//! only if the flush returns cleanly.
//!
//! # Merge joins over ordered roots
//!
//! Roots are `BTreeSet`s, so their iteration order is already sorted —
//! a struct set orders by its alphabetically-first field. When
//! [`CompileOptions::merge_joins`] is on, `compile` turns an equi-join
//! whose two sides are single-field accesses on root-scanned bindings
//! (the *ordered-root* access shape) into a [`Operator::MergeJoin`]: the
//! inner side is materialized once as a key-sorted run — the sort is
//! **skipped** when the keys already arrive non-decreasing from the
//! `BTreeSet`, which the run build detects in its single pass — and each
//! probe binary-searches the equal-key range. Runs build lazily on first
//! probe, exactly like hash tables.
//!
//! [`execute_with_stats`] additionally returns [`PipelineStats`]: rows
//! in/out per operator, rows emitted, batches pushed, selection-vector
//! fill, hash tables and merge runs built vs skipped — the observability
//! layer EXPLAIN and experiments E15/E19 report from.
//!
//! Without hash or merge joins the pipeline is *fully* identical to the
//! interpreter — same rows, and the same `EvalError` at the same point
//! (the proptest corpus asserts `Result` equality). With hash or merge
//! joins on, results are still identical, but the join applies its
//! equality before the other same-level conjuncts (that is what a hash
//! or merge join *is*), so on erroring queries a different conjunct's
//! error — or none, if the join filters the offending rows away — may
//! surface, exactly as condition reordering implies.

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use pcql::path::Path;
use pcql::query::{BindKind, Equality, Output, Query};

use crate::eval::{EvalError, Evaluator};
use crate::value::{Batch, CowValue, Value};

/// The base of a pre-resolved accessor: where evaluation starts before
/// the flattened field chain is applied.
#[derive(Debug, Clone, PartialEq)]
enum AccessBase {
    /// A register of the pipeline's register file.
    Slot(usize),
    /// A variable the query never binds — evaluates to `UnknownVar`,
    /// exactly like the interpreter.
    UnknownVar(String),
    /// An interned schema root (index into [`Pipeline::roots`]).
    Root { id: usize, name: String },
    /// A constant, pre-converted to a runtime value.
    Const(Value),
    /// `dom(P)` — computed per evaluation (owned).
    Dom(Box<Access>),
    /// `P[k]` — failing dictionary lookup.
    Get(Box<Access>, Box<Access>),
    /// `P{k}` — non-failing dictionary lookup (empty set when absent).
    GetOrEmpty(Box<Access>, Box<Access>),
}

/// A compiled path: a base plus a pre-resolved field chain. Evaluating
/// one never consults variable names — slots index straight into the
/// register file.
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    base: AccessBase,
    /// Trailing field projections, applied in order (ODMG implicit
    /// dereferencing included, as in the interpreter).
    fields: Vec<String>,
    /// Display of the source path's base, for diagnostics that must
    /// match the interpreter's byte for byte.
    base_display: String,
}

/// A borrowed view of an [`Access`] base for external inspection —
/// static verifiers (cb-analyze's pipeline dataflow pass) walk compiled
/// accessors through this without the concrete representation becoming
/// part of the public surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessKind<'a> {
    /// Reads a register of the pipeline's register file.
    Slot(usize),
    /// A variable the compiler could not resolve to any slot; evaluating
    /// it is the canonical `UnknownVar` error.
    UnknownVar(&'a str),
    /// Reads an interned schema root.
    Root { id: usize, name: &'a str },
    /// A pre-converted constant.
    Const,
    /// `dom(P)`.
    Dom(&'a Access),
    /// `P[k]` — failing dictionary lookup.
    Get { dict: &'a Access, key: &'a Access },
    /// `P{k}` — non-failing dictionary lookup.
    GetOrEmpty { dict: &'a Access, key: &'a Access },
}

impl Access {
    /// The register this accessor reads, when it is a plain (possibly
    /// field-projected) variable reference.
    pub fn slot(&self) -> Option<usize> {
        match self.base {
            AccessBase::Slot(i) => Some(i),
            _ => None,
        }
    }

    /// The base this accessor evaluates from, as an inspectable view.
    pub fn kind(&self) -> AccessKind<'_> {
        match &self.base {
            AccessBase::Slot(i) => AccessKind::Slot(*i),
            AccessBase::UnknownVar(v) => AccessKind::UnknownVar(v),
            AccessBase::Root { id, name } => AccessKind::Root { id: *id, name },
            AccessBase::Const(_) => AccessKind::Const,
            AccessBase::Dom(inner) => AccessKind::Dom(inner),
            AccessBase::Get(m, k) => AccessKind::Get { dict: m, key: k },
            AccessBase::GetOrEmpty(m, k) => AccessKind::GetOrEmpty { dict: m, key: k },
        }
    }

    /// The trailing field projections applied after the base.
    pub fn fields(&self) -> &[String] {
        &self.fields
    }

    /// Does evaluating this accessor read register `slot` — through its
    /// base, including the dictionary and key of lookup bases?
    fn reads_slot(&self, slot: usize) -> bool {
        match &self.base {
            AccessBase::Slot(i) => *i == slot,
            AccessBase::UnknownVar(_) | AccessBase::Root { .. } | AccessBase::Const(_) => false,
            AccessBase::Dom(inner) => inner.reads_slot(slot),
            AccessBase::Get(m, k) | AccessBase::GetOrEmpty(m, k) => {
                m.reads_slot(slot) || k.reads_slot(slot)
            }
        }
    }

    /// Display of the path prefix before field step `idx` — the
    /// interpreter reports `NoSuchField` against exactly this prefix.
    fn prefix_display(&self, idx: usize) -> String {
        let mut s = self.base_display.clone();
        for f in &self.fields[..idx] {
            s.push('.');
            s.push_str(f);
        }
        s
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.prefix_display(self.fields.len()))
    }
}

/// One pipeline operator, slot-annotated.
#[derive(Debug, Clone, PartialEq)]
pub enum Operator {
    /// Iterate a schema root (a set) into a register.
    Scan {
        var: String,
        slot: usize,
        root: String,
        root_id: usize,
    },
    /// Iterate a dependent collection (set-valued accessor under the
    /// current registers).
    IterDependent {
        var: String,
        slot: usize,
        src: Access,
    },
    /// Scalar binding.
    Bind {
        var: String,
        slot: usize,
        src: Access,
    },
    /// Equality filter.
    Filter { left: Access, right: Access },
    /// On-the-fly hash join: lazily build a table over `root` keyed by
    /// `build_key` (evaluated with the root's row in `slot`), then emit
    /// one binding per row matching `probe_key` under the current
    /// registers.
    HashJoin {
        row_var: String,
        slot: usize,
        root: String,
        root_id: usize,
        build_key: Access,
        probe_key: Access,
        /// Index into the executor's table arena.
        table: usize,
    },
    /// Sort-merge join over an ordered root: lazily materialize `root`
    /// as a run sorted by `build_key` (the sort elided when the root's
    /// `BTreeSet` order already sorts the key), then emit one binding
    /// per row in the equal-key range of `probe_key`.
    MergeJoin {
        row_var: String,
        slot: usize,
        root: String,
        root_id: usize,
        build_key: Access,
        probe_key: Access,
        /// Index into the executor's merge-run arena.
        run: usize,
    },
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operator::Scan {
                var, slot, root, ..
            } => write!(f, "Scan({root} as {var}@{slot})"),
            Operator::IterDependent { var, slot, src } => {
                write!(f, "Iter({src} as {var}@{slot})")
            }
            Operator::Bind { var, slot, src } => write!(f, "Bind({var}@{slot} := {src})"),
            Operator::Filter { left, right } => write!(f, "Filter({left} = {right})"),
            Operator::HashJoin {
                row_var,
                slot,
                root,
                build_key,
                probe_key,
                ..
            } => write!(
                f,
                "HashJoin({root} as {row_var}@{slot} on {build_key} = {probe_key})"
            ),
            Operator::MergeJoin {
                row_var,
                slot,
                root,
                build_key,
                probe_key,
                ..
            } => write!(
                f,
                "MergeJoin({root} as {row_var}@{slot} on {build_key} = {probe_key})"
            ),
        }
    }
}

/// A hoisted ground filter: both sides are environment-independent, so
/// it is evaluated once, before the pipeline runs.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundFilter {
    pub left: Access,
    pub right: Access,
}

/// The compiled projection.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledOutput {
    /// `select struct(...)` — field name plus accessor, sorted by name.
    Struct(Vec<(String, Access)>),
    /// `select P`.
    Path(Access),
}

/// A compiled plan: hoisted ground filters, the operator pipeline, the
/// final projection, and the register/table/root layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    /// Environment-independent filters, evaluated once up front.
    pub ground: Vec<GroundFilter>,
    pub ops: Vec<Operator>,
    pub output: CompiledOutput,
    /// Register-file size (one slot per `from` binding, shadowed names
    /// included — each binding owns a distinct slot).
    pub n_slots: usize,
    /// Number of hash-join tables.
    pub n_tables: usize,
    /// Number of merge-join runs.
    pub n_runs: usize,
    /// Interned schema roots, resolved once per execution.
    pub roots: Vec<String>,
    /// Rows per batch for the batched driver (always ≥ 1).
    pub batch_size: usize,
}

/// A structural snapshot of a compiled [`Pipeline`]: the register/
/// table/root layout plus display-stable renderings of the ground
/// filters and operators. This is what plan serialization records and
/// what `plan-diff` compares — two pipelines with equal layouts execute
/// the same operator sequence over the same registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineLayout {
    pub n_slots: usize,
    pub n_tables: usize,
    pub n_runs: usize,
    pub batch_size: usize,
    pub roots: Vec<String>,
    /// `"left = right"` per hoisted ground filter.
    pub ground: Vec<String>,
    /// One [`Operator`] `Display` rendering per pipeline step.
    pub ops: Vec<String>,
}

impl Pipeline {
    /// The serializable [`PipelineLayout`] of this pipeline.
    pub fn layout(&self) -> PipelineLayout {
        PipelineLayout {
            n_slots: self.n_slots,
            n_tables: self.n_tables,
            n_runs: self.n_runs,
            batch_size: self.batch_size,
            roots: self.roots.clone(),
            ground: self
                .ground
                .iter()
                .map(|g| format!("{} = {}", g.left, g.right))
                .collect(),
            ops: self.ops.iter().map(ToString::to_string).collect(),
        }
    }
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, g) in self.ground.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "Ground({} = {})", g.left, g.right)?;
        }
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 || !self.ground.is_empty() {
                write!(f, " -> ")?;
            }
            write!(f, "{op}")?;
        }
        if !self.ops.is_empty() || !self.ground.is_empty() {
            write!(f, " -> ")?;
        }
        write!(f, "Project")
    }
}

/// Compilation options.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Turn `Scan + Filter(equi-join)` pairs into on-the-fly hash joins.
    pub hash_joins: bool,
    /// Turn equi-joins whose both sides have the ordered-root access
    /// shape (a single-field projection off a root-scanned binding) into
    /// sort-merge joins; preferred over `hash_joins` when both apply.
    pub merge_joins: bool,
    /// Rows per batch for the batched driver (clamped to ≥ 1).
    pub batch_size: usize,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            hash_joins: false,
            merge_joins: false,
            batch_size: 1024,
        }
    }
}

/// Per-operator row counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Rows arriving at the operator: invocations for scans/iterations/
    /// binds, rows tested for filters, probes for hash joins.
    pub input: u64,
    /// Rows the operator passed downstream.
    pub output: u64,
}

/// Execution counters for one pipeline run — the "where did the rows
/// go" record EXPLAIN-style reporting and experiment E15 print.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Parallel to [`Pipeline::ops`].
    pub per_op: Vec<OpStats>,
    /// Rows reaching the final projection (before set-semantics dedup).
    pub rows_emitted: u64,
    /// Hoisted ground filters evaluated.
    pub ground_filters: u64,
    /// A ground filter was false: the pipeline never ran.
    pub short_circuited: bool,
    /// Hash-join tables actually built (on first probe).
    pub tables_built: u64,
    /// Hash-join tables never built because no probe reached them.
    pub tables_skipped: u64,
    /// Merge-join runs actually materialized (on first probe).
    pub runs_built: u64,
    /// Runs whose keys needed an explicit sort — 0 means every run's
    /// `BTreeSet` iteration order already sorted the join key.
    pub runs_sorted: u64,
    /// Merge-join runs never materialized because no probe reached them.
    pub runs_skipped: u64,
    /// Batches pushed between operators (batched driver only; 0 for the
    /// row-at-a-time driver).
    pub batches: u64,
    /// Live rows across all pushed batches (selection-vector numerator).
    pub sel_rows_live: u64,
    /// Total rows (dead included) across all pushed batches.
    pub sel_rows_total: u64,
}

impl PipelineStats {
    fn for_pipeline(p: &Pipeline) -> PipelineStats {
        PipelineStats {
            per_op: vec![OpStats::default(); p.ops.len()],
            ..Default::default()
        }
    }

    /// Total rows that flowed between operators (sum of per-operator
    /// outputs plus emitted rows) — the throughput numerator E15 uses.
    pub fn rows_processed(&self) -> u64 {
        self.per_op.iter().map(|o| o.output).sum::<u64>() + self.rows_emitted
    }

    /// Fraction of batch rows still live when pushed (1.0 when nothing
    /// was batched): the selection-vector fill rate.
    pub fn sel_fill_rate(&self) -> f64 {
        if self.sel_rows_total == 0 {
            1.0
        } else {
            self.sel_rows_live as f64 / self.sel_rows_total as f64
        }
    }

    /// Renders the per-operator counters next to the pipeline.
    pub fn render(&self, pipeline: &Pipeline) -> String {
        let mut s = String::new();
        if self.ground_filters > 0 {
            s.push_str(&format!(
                "ground filters: {} evaluated once{}\n",
                self.ground_filters,
                if self.short_circuited {
                    " (short-circuited: empty result)"
                } else {
                    ""
                }
            ));
        }
        let ops: Vec<String> = pipeline.ops.iter().map(ToString::to_string).collect();
        let width = ops.iter().map(String::len).max().unwrap_or(0);
        for (op, st) in ops.iter().zip(&self.per_op) {
            s.push_str(&format!(
                "{op:<width$}  in {:>9}  out {:>9}\n",
                st.input, st.output
            ));
        }
        s.push_str(&format!(
            "{:<width$}  in {:>9}\n",
            "Project", self.rows_emitted
        ));
        s.push_str(&format!(
            "hash tables: {} built, {} skipped (lazy)\n",
            self.tables_built, self.tables_skipped
        ));
        if pipeline.n_runs > 0 {
            s.push_str(&format!(
                "merge runs: {} built ({} needed a sort), {} skipped (lazy)\n",
                self.runs_built, self.runs_sorted, self.runs_skipped
            ));
        }
        let n_hash = pipeline
            .ops
            .iter()
            .filter(|op| matches!(op, Operator::HashJoin { .. }))
            .count();
        let n_merge = pipeline
            .ops
            .iter()
            .filter(|op| matches!(op, Operator::MergeJoin { .. }))
            .count();
        s.push_str(&format!(
            "join algorithms: {n_hash} hash, {n_merge} merge\n"
        ));
        s.push_str(&format!(
            "batches: {} pushed ({} rows/batch), selection fill {}/{} rows ({:.0}%)\n",
            self.batches,
            pipeline.batch_size,
            self.sel_rows_live,
            self.sel_rows_total,
            self.sel_fill_rate() * 100.0
        ));
        s
    }
}

fn intern_root(roots: &mut Vec<String>, name: &str) -> usize {
    match roots.iter().position(|r| r == name) {
        Some(i) => i,
        None => {
            roots.push(name.to_string());
            roots.len() - 1
        }
    }
}

/// Resolves a path to an [`Access`] under the current variable→slot map.
fn compile_access(p: &Path, slots: &BTreeMap<String, usize>, roots: &mut Vec<String>) -> Access {
    let (base_path, fields) = p.split_fields();
    let base = match base_path {
        Path::Var(v) => match slots.get(v) {
            Some(&i) => AccessBase::Slot(i),
            None => AccessBase::UnknownVar(v.clone()),
        },
        Path::Root(r) => AccessBase::Root {
            id: intern_root(roots, r),
            name: r.clone(),
        },
        Path::Const(c) => AccessBase::Const(Value::from(c)),
        Path::Dom(q) => AccessBase::Dom(Box::new(compile_access(q, slots, roots))),
        Path::Get(m, k) => AccessBase::Get(
            Box::new(compile_access(m, slots, roots)),
            Box::new(compile_access(k, slots, roots)),
        ),
        Path::GetOrEmpty(m, k) => AccessBase::GetOrEmpty(
            Box::new(compile_access(m, slots, roots)),
            Box::new(compile_access(k, slots, roots)),
        ),
        // `split_fields` peeled every trailing projection.
        Path::Field(..) => unreachable!("split_fields returned a Field base"),
    };
    Access {
        base,
        fields: fields.into_iter().map(str::to_string).collect(),
        base_display: base_path.to_string(),
    }
}

/// Compiles a plan into a slot-resolved pipeline: bindings become
/// scans/iterations over fixed registers, each condition is placed at
/// the earliest point where all its variables hold their final binding
/// (the interpreter's placement, so results and error behavior agree),
/// ground conditions are hoisted ahead of the row loop, and (optionally)
/// root scans joined by equality to earlier registers become lazy hash
/// joins.
pub fn compile(q: &Query, options: CompileOptions) -> Pipeline {
    // The *last* binding level of each variable: conditions attach after
    // it, exactly as in `Evaluator::eval_query`.
    let mut last_level: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, b) in q.from.iter().enumerate() {
        last_level.insert(&b.var, i);
    }
    // Condition indices per level, in `where` order. Level 0 = ground.
    let mut conds_at: Vec<Vec<usize>> = vec![Vec::new(); q.from.len() + 1];
    for (ci, eq) in q.where_.iter().enumerate() {
        let level = eq
            .free_vars()
            .iter()
            .map(|v| last_level.get(v.as_str()).map_or(0, |i| i + 1))
            .max()
            .unwrap_or(0);
        conds_at[level].push(ci);
    }

    let mut slots: BTreeMap<String, usize> = BTreeMap::new();
    let mut roots: Vec<String> = Vec::new();
    let mut ops: Vec<Operator> = Vec::new();
    let mut n_tables = 0usize;
    let mut n_runs = 0usize;

    let ground: Vec<GroundFilter> = conds_at[0]
        .iter()
        .map(|&ci| {
            let eq = &q.where_[ci];
            GroundFilter {
                left: compile_access(&eq.0, &slots, &mut roots),
                right: compile_access(&eq.1, &slots, &mut roots),
            }
        })
        .collect();

    for (i, b) in q.from.iter().enumerate() {
        let slot = i;
        let mut level_conds: Vec<usize> = conds_at[i + 1].clone();

        // Join candidacy: an Iter over a root, some earlier binding to
        // probe from, and an equi-join condition at this level linking
        // this binding's rows (alone on one side) to earlier registers.
        // A candidate becomes a MergeJoin when merge joins are on and
        // both key paths have the ordered-root access shape (at most one
        // field projected off a root-scanned binding — the shape whose
        // `BTreeSet` iteration order can already sort the key), a
        // HashJoin otherwise (when hash joins are on).
        let mut join: Option<(Equality, bool)> = None;
        if (options.hash_joins || options.merge_joins)
            && i > 0
            && b.kind == BindKind::Iter
            && matches!(b.src, Path::Root(_))
            && last_level.get(b.var.as_str()) == Some(&i)
        {
            let ordered_root_shape = |p: &Path| {
                let (base, fields) = p.split_fields();
                if fields.len() > 1 {
                    return false;
                }
                match base {
                    Path::Var(v) => last_level.get(v.as_str()).is_some_and(|&lvl| {
                        let src = &q.from[lvl];
                        src.kind == BindKind::Iter && matches!(src.src, Path::Root(_))
                    }),
                    _ => false,
                }
            };
            let is_candidate = |eq: &Equality| {
                let lv = eq.0.free_vars();
                let rv = eq.1.free_vars();
                let this = |vs: &BTreeSet<String>| vs.len() == 1 && vs.contains(&b.var);
                let other = |vs: &BTreeSet<String>| !vs.contains(&b.var);
                (this(&lv) && other(&rv)) || (this(&rv) && other(&lv))
            };
            if let Some(pos) = level_conds
                .iter()
                .position(|&ci| is_candidate(&q.where_[ci]))
            {
                let eq = &q.where_[level_conds[pos]];
                let oriented = if eq.0.mentions_var(&b.var) {
                    eq.clone()
                } else {
                    Equality(eq.1.clone(), eq.0.clone())
                };
                let merge = options.merge_joins
                    && ordered_root_shape(&oriented.0)
                    && ordered_root_shape(&oriented.1);
                if merge || options.hash_joins {
                    level_conds.remove(pos);
                    join = Some((oriented, merge));
                }
            }
        }

        match join {
            Some((Equality(build, probe), merge)) => {
                let Path::Root(root) = &b.src else {
                    unreachable!("join candidacy requires a root scan")
                };
                // Probe side resolves against the *outer* registers; the
                // build side sees this binding's fresh slot.
                let probe_key = compile_access(&probe, &slots, &mut roots);
                slots.insert(b.var.clone(), slot);
                let build_key = compile_access(&build, &slots, &mut roots);
                let root_id = intern_root(&mut roots, root);
                if merge {
                    ops.push(Operator::MergeJoin {
                        row_var: b.var.clone(),
                        slot,
                        root: root.clone(),
                        root_id,
                        build_key,
                        probe_key,
                        run: n_runs,
                    });
                    n_runs += 1;
                } else {
                    ops.push(Operator::HashJoin {
                        row_var: b.var.clone(),
                        slot,
                        root: root.clone(),
                        root_id,
                        build_key,
                        probe_key,
                        table: n_tables,
                    });
                    n_tables += 1;
                }
            }
            None => {
                let op = match (&b.kind, &b.src) {
                    (BindKind::Iter, Path::Root(root)) => Operator::Scan {
                        var: b.var.clone(),
                        slot,
                        root: root.clone(),
                        root_id: intern_root(&mut roots, root),
                    },
                    (BindKind::Iter, src) => Operator::IterDependent {
                        var: b.var.clone(),
                        slot,
                        src: compile_access(src, &slots, &mut roots),
                    },
                    (BindKind::Let, src) => Operator::Bind {
                        var: b.var.clone(),
                        slot,
                        src: compile_access(src, &slots, &mut roots),
                    },
                };
                slots.insert(b.var.clone(), slot);
                ops.push(op);
            }
        }

        for &ci in &level_conds {
            let eq = &q.where_[ci];
            ops.push(Operator::Filter {
                left: compile_access(&eq.0, &slots, &mut roots),
                right: compile_access(&eq.1, &slots, &mut roots),
            });
        }
    }

    let output = match &q.output {
        Output::Struct(fields) => CompiledOutput::Struct(
            fields
                .iter()
                .map(|(name, p)| (name.clone(), compile_access(p, &slots, &mut roots)))
                .collect(),
        ),
        Output::Path(p) => CompiledOutput::Path(compile_access(p, &slots, &mut roots)),
    };

    Pipeline {
        ground,
        ops,
        output,
        n_slots: q.from.len(),
        n_tables,
        n_runs,
        roots,
        batch_size: options.batch_size.max(1),
    }
}

/// A lazily built hash-join table: borrowed keys over borrowed rows.
type JoinTable<'a> = BTreeMap<CowValue<'a>, Vec<&'a Value>>;

/// A lazily materialized merge-join run: the inner root's rows paired
/// with their join keys, sorted by key (stably, so rows with equal keys
/// keep their `BTreeSet` order — the hash join's emission order).
type MergeRun<'a> = Vec<(CowValue<'a>, &'a Value)>;

/// A read-only view of a register file: the row machine's `Vec` of
/// registers or one row of a [`Batch`]. The shared evaluation core is
/// generic over this, so both drivers run the exact same accessor code.
trait Regs<'a> {
    fn reg(&self, slot: usize) -> &CowValue<'a>;
}

impl<'a> Regs<'a> for Vec<CowValue<'a>> {
    fn reg(&self, slot: usize) -> &CowValue<'a> {
        &self[slot]
    }
}

/// One row of a batch, viewed as a register file.
struct BatchRow<'b, 'a> {
    batch: &'b Batch<'a>,
    row: usize,
}

impl<'a> Regs<'a> for BatchRow<'_, 'a> {
    fn reg(&self, slot: usize) -> &CowValue<'a> {
        self.batch.reg(slot, self.row)
    }
}

/// The single-slot scratch register file join builds evaluate their
/// build key against: build keys read only the join's own slot (the
/// compiler guarantees it, cb-analyze verifies it), so neither driver
/// needs its full register file to materialize a table or run.
struct OneSlot<'a> {
    slot: usize,
    val: CowValue<'a>,
}

impl<'a> Regs<'a> for OneSlot<'a> {
    fn reg(&self, slot: usize) -> &CowValue<'a> {
        debug_assert_eq!(slot, self.slot, "build key read an outer register");
        &self.val
    }
}

/// A batch row with one register overlaid by a not-yet-materialized
/// value — how the fused scan+filter evaluates filter sides against a
/// scanned item without writing it into a batch first.
struct SlotOverlay<'r, 'a> {
    batch: &'r Batch<'a>,
    row: usize,
    slot: usize,
    val: CowValue<'a>,
}

impl<'a> Regs<'a> for SlotOverlay<'_, 'a> {
    fn reg(&self, slot: usize) -> &CowValue<'a> {
        if slot == self.slot {
            &self.val
        } else {
            self.batch.reg(slot, self.row)
        }
    }
}

/// The shared executor core: lazily resolved roots, lazily built join
/// tables and merge runs, counters, and the result accumulator. The two
/// drivers — the recursive row machine and the push-based batch
/// machine — wrap this with their own control flow.
struct Exec<'a, 'p> {
    ev: &'p Evaluator<'a>,
    pipeline: &'p Pipeline,
    /// Interned roots resolved once per execution (`None` = absent root;
    /// the error only surfaces if an operator actually reads it).
    root_vals: Vec<Option<&'a Value>>,
    tables: Vec<Option<JoinTable<'a>>>,
    runs: Vec<Option<MergeRun<'a>>>,
    stats: PipelineStats,
    out: BTreeSet<Value>,
}

impl<'a> Exec<'a, '_> {
    fn root(&self, id: usize, name: &str) -> Result<&'a Value, EvalError> {
        self.root_vals[id].ok_or_else(|| EvalError::UnknownRoot(name.to_string()))
    }

    /// Resolves an accessor to a value owned by the *instance* when it
    /// never passes through a computed (owned) register: the compiled
    /// mirror of the interpreter's `instance_value`. `None` both when
    /// the value is not instance-anchored and when resolution would
    /// fail — the caller falls back to [`Self::eval_access`], which
    /// computes the value or produces the canonical error.
    fn anchored<R: Regs<'a>>(&self, regs: &R, a: &Access) -> Option<&'a Value> {
        let mut cur: &'a Value = match &a.base {
            AccessBase::Slot(i) => match regs.reg(*i) {
                Cow::Borrowed(v) => v,
                Cow::Owned(_) => return None,
            },
            AccessBase::Root { id, .. } => self.root_vals[*id]?,
            AccessBase::Const(_) | AccessBase::Dom(_) | AccessBase::UnknownVar(_) => return None,
            AccessBase::Get(m, k) | AccessBase::GetOrEmpty(m, k) => {
                // Resolve the dictionary first: if it is not anchored,
                // the key must not be evaluated here (the fallback would
                // evaluate it a second time).
                let map = self.anchored(regs, m)?.as_dict()?;
                let key = self.eval_access(regs, k).ok()?;
                map.get(key.as_ref())?
            }
        };
        for name in &a.fields {
            cur = match cur {
                Value::Struct(fields) => fields.get(name)?,
                oid @ Value::Oid(..) => self.ev.oid_field(oid, name).ok()?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Anchored-or-owned evaluation: a borrow with the full instance
    /// lifetime when the accessor is instance-anchored, an owned value
    /// (or the canonical error) otherwise. This is what binds registers
    /// and join keys.
    fn eval_detached<R: Regs<'a>>(&self, regs: &R, a: &Access) -> Result<CowValue<'a>, EvalError> {
        match self.anchored(regs, a) {
            Some(v) => Ok(Cow::Borrowed(v)),
            None => Ok(Cow::Owned(self.eval_access(regs, a)?.into_owned())),
        }
    }

    /// Reference-preserving accessor evaluation — the compiled mirror of
    /// the interpreter's `eval_ref`, producing identical values and
    /// identical errors.
    fn eval_access<'r, R: Regs<'a>>(
        &'r self,
        regs: &'r R,
        a: &'r Access,
    ) -> Result<Cow<'r, Value>, EvalError> {
        let mut cur = self.eval_base(regs, a)?;
        for (idx, name) in a.fields.iter().enumerate() {
            cur = match cur {
                Cow::Borrowed(Value::Struct(fields)) => fields
                    .get(name)
                    .map(Cow::Borrowed)
                    .ok_or_else(|| EvalError::NoSuchField {
                        value: a.prefix_display(idx),
                        field: name.clone(),
                    })?,
                Cow::Owned(Value::Struct(mut fields)) => fields
                    .remove(name)
                    .map(Cow::Owned)
                    .ok_or_else(|| EvalError::NoSuchField {
                        value: a.prefix_display(idx),
                        field: name.clone(),
                    })?,
                // ODMG implicit dereferencing (or NoSuchField).
                base => self.ev.oid_field(base.as_ref(), name).map(Cow::Borrowed)?,
            };
        }
        Ok(cur)
    }

    fn eval_base<'r, R: Regs<'a>>(
        &'r self,
        regs: &'r R,
        a: &'r Access,
    ) -> Result<Cow<'r, Value>, EvalError> {
        match &a.base {
            AccessBase::Slot(i) => Ok(Cow::Borrowed(regs.reg(*i).as_ref())),
            AccessBase::UnknownVar(v) => Err(EvalError::UnknownVar(v.clone())),
            AccessBase::Root { id, name } => self.root(*id, name).map(Cow::Borrowed),
            AccessBase::Const(v) => Ok(Cow::Borrowed(v)),
            // The dom/lookup cores are shared with the interpreter's
            // `eval_ref` (eval.rs), so results and error text cannot
            // drift apart between the two engines.
            AccessBase::Dom(inner) => {
                let base = self.eval_access(regs, inner)?;
                crate::eval::dict_dom(base.as_ref(), || inner.to_string()).map(Cow::Owned)
            }
            AccessBase::Get(m, k) => {
                let key = self.eval_access(regs, k)?.into_owned();
                let dict = self.eval_access(regs, m)?;
                crate::eval::dict_get(dict, &key, || m.to_string())
            }
            AccessBase::GetOrEmpty(m, k) => {
                let key = self.eval_access(regs, k)?.into_owned();
                let dict = self.eval_access(regs, m)?;
                crate::eval::dict_get_or_empty(dict, &key, || m.to_string())
            }
        }
    }

    /// Builds the hash table of the `HashJoin` at `op_idx` if this is
    /// its first probe. One pass over the root: rows bind by reference
    /// into a single-slot scratch register, keys stay borrowed whenever
    /// the key path is instance-anchored.
    fn ensure_table(&mut self, op_idx: usize) -> Result<(), EvalError> {
        let pipeline = self.pipeline;
        let Operator::HashJoin {
            slot,
            root,
            root_id,
            build_key,
            table,
            ..
        } = &pipeline.ops[op_idx]
        else {
            unreachable!("ensure_table on a non-join operator")
        };
        if self.tables[*table].is_some() {
            return Ok(());
        }
        let set = self.root(*root_id, root)?;
        let rows = set
            .as_set()
            .ok_or_else(|| EvalError::NotASet(format!("{root} = {set}")))?;
        let mut t: JoinTable<'a> = BTreeMap::new();
        let mut scratch = OneSlot {
            slot: *slot,
            val: Cow::Owned(Value::Bool(false)),
        };
        for row in rows {
            scratch.val = Cow::Borrowed(row);
            let key = self.eval_detached(&scratch, build_key)?;
            t.entry(key).or_default().push(row);
        }
        self.stats.tables_built += 1;
        self.tables[*table] = Some(t);
        Ok(())
    }

    /// Materializes the merge run of the `MergeJoin` at `op_idx` if this
    /// is its first probe: one pass over the root evaluating the build
    /// key per row, detecting en route whether the keys already arrive
    /// non-decreasing from the `BTreeSet` — only when they do not is a
    /// (stable) sort paid.
    fn ensure_run(&mut self, op_idx: usize) -> Result<(), EvalError> {
        let pipeline = self.pipeline;
        let Operator::MergeJoin {
            slot,
            root,
            root_id,
            build_key,
            run,
            ..
        } = &pipeline.ops[op_idx]
        else {
            unreachable!("ensure_run on a non-merge operator")
        };
        if self.runs[*run].is_some() {
            return Ok(());
        }
        let set = self.root(*root_id, root)?;
        let rows = set
            .as_set()
            .ok_or_else(|| EvalError::NotASet(format!("{root} = {set}")))?;
        let mut entries: MergeRun<'a> = Vec::with_capacity(rows.len());
        let mut sorted = true;
        let mut scratch = OneSlot {
            slot: *slot,
            val: Cow::Owned(Value::Bool(false)),
        };
        for row in rows {
            scratch.val = Cow::Borrowed(row);
            let key = self.eval_detached(&scratch, build_key)?;
            if let Some((prev, _)) = entries.last() {
                sorted &= prev.as_ref() <= key.as_ref();
            }
            entries.push((key, row));
        }
        if !sorted {
            entries.sort_by(|x, y| x.0.cmp(&y.0));
            self.stats.runs_sorted += 1;
        }
        self.stats.runs_built += 1;
        self.runs[*run] = Some(entries);
        Ok(())
    }

    fn emit<R: Regs<'a>>(&mut self, regs: &R) -> Result<(), EvalError> {
        let pipeline = self.pipeline;
        let row = match &pipeline.output {
            CompiledOutput::Struct(fields) => {
                let mut m = BTreeMap::new();
                for (name, a) in fields {
                    m.insert(name.clone(), self.eval_access(regs, a)?.into_owned());
                }
                Value::Struct(m)
            }
            CompiledOutput::Path(a) => self.eval_access(regs, a)?.into_owned(),
        };
        self.stats.rows_emitted += 1;
        self.out.insert(row);
        Ok(())
    }

    /// Runs the hoisted ground filters once, against an all-placeholder
    /// register file; `Ok(true)` means one was false and the pipeline
    /// short-circuits to the empty result.
    fn ground_short_circuits(&mut self) -> Result<bool, EvalError> {
        let pipeline = self.pipeline;
        let regs: Vec<CowValue<'a>> = vec![Cow::Owned(Value::Bool(false)); pipeline.n_slots];
        for g in &pipeline.ground {
            self.stats.ground_filters += 1;
            let pass = {
                let l = self.eval_access(&regs, &g.left)?;
                let r = self.eval_access(&regs, &g.right)?;
                l.as_ref() == r.as_ref()
            };
            if !pass {
                self.stats.short_circuited = true;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Final lazy-build accounting, then the result and its counters.
    fn finish(mut self) -> (BTreeSet<Value>, PipelineStats) {
        self.stats.tables_skipped = self.pipeline.n_tables as u64 - self.stats.tables_built;
        self.stats.runs_skipped = self.pipeline.n_runs as u64 - self.stats.runs_built;
        (self.out, self.stats)
    }
}

/// The recursive row-at-a-time driver: one call per row, the
/// differential baseline the batched driver is proven against.
/// Failpoint: the driver is about to execute an operator. An injected
/// transient error surfaces as a typed [`EvalError::Injected`]
/// (reported — the caller sees exactly what fired); a memory-pressure
/// signal is meaningless to the stateless driver and recovers by
/// proceeding. Disarmed cost: one relaxed atomic load.
fn op_failpoint() -> Result<(), EvalError> {
    match cb_chase::faults::hit("exec::op") {
        Ok(()) => Ok(()),
        Err(f) if f.kind == cb_chase::faults::FaultKind::Error => {
            cb_chase::faults::note_reported();
            Err(EvalError::Injected(f.site.to_string()))
        }
        Err(_) => {
            cb_chase::faults::note_recovered();
            Ok(())
        }
    }
}

struct RowMachine<'a, 'p> {
    x: Exec<'a, 'p>,
    regs: Vec<CowValue<'a>>,
}

impl<'a> RowMachine<'a, '_> {
    fn run(&mut self, op_idx: usize) -> Result<(), EvalError> {
        op_failpoint()?;
        let pipeline = self.x.pipeline;
        if op_idx == pipeline.ops.len() {
            return self.x.emit(&self.regs);
        }
        self.x.stats.per_op[op_idx].input += 1;
        match &pipeline.ops[op_idx] {
            Operator::Scan {
                slot,
                root,
                root_id,
                ..
            } => {
                let set = self.x.root(*root_id, root)?;
                let items = set
                    .as_set()
                    .ok_or_else(|| EvalError::NotASet(format!("{root} = {set}")))?;
                for item in items {
                    self.regs[*slot] = Cow::Borrowed(item);
                    self.x.stats.per_op[op_idx].output += 1;
                    self.run(op_idx + 1)?;
                }
            }
            Operator::IterDependent { slot, src, .. } => {
                // Items of an instance-owned collection outlive the
                // register file, so they bind by reference — zero clones
                // per row. Derived collections (dom sets, collections
                // reached through owned registers) clone their items,
                // one at a time, exactly like the interpreter.
                if let Some(items) = self.x.anchored(&self.regs, src).and_then(|v| v.as_set()) {
                    for item in items {
                        self.regs[*slot] = Cow::Borrowed(item);
                        self.x.stats.per_op[op_idx].output += 1;
                        self.run(op_idx + 1)?;
                    }
                } else {
                    let items: Vec<Value> = match self.x.eval_access(&self.regs, src)? {
                        Cow::Borrowed(Value::Set(items)) => items.iter().cloned().collect(),
                        Cow::Owned(Value::Set(items)) => items.into_iter().collect(),
                        other => {
                            return Err(EvalError::NotASet(format!("{} = {}", src, other.as_ref())))
                        }
                    };
                    for item in items {
                        self.regs[*slot] = Cow::Owned(item);
                        self.x.stats.per_op[op_idx].output += 1;
                        self.run(op_idx + 1)?;
                    }
                }
            }
            Operator::Bind { slot, src, .. } => {
                self.regs[*slot] = self.x.eval_detached(&self.regs, src)?;
                self.x.stats.per_op[op_idx].output += 1;
                self.run(op_idx + 1)?;
            }
            Operator::Filter { left, right } => {
                let pass = {
                    let l = self.x.eval_access(&self.regs, left)?;
                    let r = self.x.eval_access(&self.regs, right)?;
                    l.as_ref() == r.as_ref()
                };
                if pass {
                    self.x.stats.per_op[op_idx].output += 1;
                    self.run(op_idx + 1)?;
                }
            }
            Operator::HashJoin {
                slot,
                probe_key,
                table,
                ..
            } => {
                // Build (or reuse) the table first: when the joined root
                // is empty the interpreter's inner loop never evaluates
                // the join condition, so the probe key must not be
                // evaluated against an empty table either.
                self.x.ensure_table(op_idx)?;
                // Move the table out while descending so the registers
                // stay mutable; each join owns a distinct table index,
                // so no downstream operator can observe the gap.
                let t = self.x.tables[*table].take().expect("table built");
                let mut result = Ok(());
                if !t.is_empty() {
                    match self.x.eval_detached(&self.regs, probe_key) {
                        Err(e) => result = Err(e),
                        Ok(key) => {
                            if let Some(matches) = t.get(key.as_ref()) {
                                for &row in matches {
                                    self.regs[*slot] = Cow::Borrowed(row);
                                    self.x.stats.per_op[op_idx].output += 1;
                                    result = self.run(op_idx + 1);
                                    if result.is_err() {
                                        break;
                                    }
                                }
                            }
                        }
                    }
                }
                self.x.tables[*table] = Some(t);
                result?;
            }
            Operator::MergeJoin {
                slot,
                probe_key,
                run,
                ..
            } => {
                // Same lazy discipline as the hash join: an empty run
                // never evaluates the probe key.
                self.x.ensure_run(op_idx)?;
                let r = self.x.runs[*run].take().expect("run built");
                let mut result = Ok(());
                if !r.is_empty() {
                    match self.x.eval_detached(&self.regs, probe_key) {
                        Err(e) => result = Err(e),
                        Ok(key) => {
                            let lo = r.partition_point(|(k, _)| k.as_ref() < key.as_ref());
                            for (k, m) in &r[lo..] {
                                if k.as_ref() != key.as_ref() {
                                    break;
                                }
                                self.regs[*slot] = Cow::Borrowed(m);
                                self.x.stats.per_op[op_idx].output += 1;
                                result = self.run(op_idx + 1);
                                if result.is_err() {
                                    break;
                                }
                            }
                        }
                    }
                }
                self.x.runs[*run] = Some(r);
                result?;
            }
        }
        Ok(())
    }
}

/// The push-based batch driver: each operator consumes a whole batch
/// and pushes its output at the next operator, recursing once per
/// *batch* per operator — never per row. Errors preserve the row
/// machine's depth-first order by truncation: an error at live row `i`
/// kills rows ≥ `i`, the surviving prefix is flushed downstream (a
/// downstream error belongs to an earlier row and wins), and the
/// pending error surfaces only if the flush returns cleanly.
struct BatchMachine<'a, 'p> {
    x: Exec<'a, 'p>,
    cap: usize,
}

impl<'a> BatchMachine<'a, '_> {
    fn push(&mut self, op_idx: usize, batch: &mut Batch<'a>) -> Result<(), EvalError> {
        // An all-dead (or empty) batch carries no rows: no operator may
        // observe it — exactly like the row machine never invoking an
        // operator no row reaches.
        if batch.live() == 0 {
            return Ok(());
        }
        op_failpoint()?;
        self.x.stats.batches += 1;
        self.x.stats.sel_rows_live += batch.live() as u64;
        self.x.stats.sel_rows_total += batch.rows() as u64;
        let pipeline = self.x.pipeline;
        if op_idx == pipeline.ops.len() {
            return self.project(batch);
        }
        self.x.stats.per_op[op_idx].input += batch.live() as u64;
        match &pipeline.ops[op_idx] {
            Operator::Scan {
                slot,
                root,
                root_id,
                ..
            } => {
                let set = self.x.root(*root_id, root)?;
                let items = set
                    .as_set()
                    .ok_or_else(|| EvalError::NotASet(format!("{root} = {set}")))?;
                // A filter directly after the scan is applied while
                // filling: rows it rejects are never materialized at
                // all — the batch driver's main win over row-at-a-time.
                if let Some(Operator::Filter { left, right }) = pipeline.ops.get(op_idx + 1) {
                    return self.scan_filter(op_idx, batch, *slot, items, left, right);
                }
                let mut out = Batch::expanded_from(batch, *slot);
                for row in 0..batch.rows() {
                    if !batch.is_live(row) {
                        continue;
                    }
                    for item in items {
                        out.push_row(batch, row, *slot, Cow::Borrowed(item));
                        self.x.stats.per_op[op_idx].output += 1;
                        if out.rows() == self.cap {
                            self.push(op_idx + 1, &mut out)?;
                            out.clear_rows();
                        }
                    }
                }
                self.push(op_idx + 1, &mut out)?;
            }
            Operator::IterDependent { slot, src, .. } => {
                let mut out = Batch::expanded_from(batch, *slot);
                let mut pending = None;
                'rows: for row in 0..batch.rows() {
                    if !batch.is_live(row) {
                        continue;
                    }
                    let rv = BatchRow { batch, row };
                    if let Some(items) = self.x.anchored(&rv, src).and_then(|v| v.as_set()) {
                        for item in items {
                            out.push_row(batch, row, *slot, Cow::Borrowed(item));
                            self.x.stats.per_op[op_idx].output += 1;
                            if out.rows() == self.cap {
                                self.push(op_idx + 1, &mut out)?;
                                out.clear_rows();
                            }
                        }
                    } else {
                        let items: Vec<Value> = match self.x.eval_access(&rv, src) {
                            Ok(Cow::Borrowed(Value::Set(items))) => items.iter().cloned().collect(),
                            Ok(Cow::Owned(Value::Set(items))) => items.into_iter().collect(),
                            Ok(other) => {
                                pending = Some(EvalError::NotASet(format!(
                                    "{} = {}",
                                    src,
                                    other.as_ref()
                                )));
                                break 'rows;
                            }
                            Err(e) => {
                                pending = Some(e);
                                break 'rows;
                            }
                        };
                        for item in items {
                            out.push_row(batch, row, *slot, Cow::Owned(item));
                            self.x.stats.per_op[op_idx].output += 1;
                            if out.rows() == self.cap {
                                self.push(op_idx + 1, &mut out)?;
                                out.clear_rows();
                            }
                        }
                    }
                }
                self.push(op_idx + 1, &mut out)?;
                if let Some(e) = pending {
                    return Err(e);
                }
            }
            Operator::Bind { slot, src, .. } => {
                batch.bind_col(*slot);
                let mut pending = None;
                for row in 0..batch.rows() {
                    if !batch.is_live(row) {
                        continue;
                    }
                    if pending.is_some() {
                        batch.kill(row);
                        continue;
                    }
                    let bound = self.x.eval_detached(&BatchRow { batch, row }, src);
                    match bound {
                        Ok(v) => {
                            batch.set(*slot, row, v);
                            self.x.stats.per_op[op_idx].output += 1;
                        }
                        Err(e) => {
                            pending = Some(e);
                            batch.kill(row);
                        }
                    }
                }
                self.push(op_idx + 1, batch)?;
                if let Some(e) = pending {
                    return Err(e);
                }
            }
            Operator::Filter { left, right } => {
                let mut pending = None;
                for row in 0..batch.rows() {
                    if !batch.is_live(row) {
                        continue;
                    }
                    if pending.is_some() {
                        batch.kill(row);
                        continue;
                    }
                    let verdict: Result<bool, EvalError> = (|| {
                        let rv = BatchRow { batch, row };
                        let l = self.x.eval_access(&rv, left)?;
                        let r = self.x.eval_access(&rv, right)?;
                        Ok(l.as_ref() == r.as_ref())
                    })();
                    match verdict {
                        Ok(true) => self.x.stats.per_op[op_idx].output += 1,
                        Ok(false) => batch.kill(row),
                        Err(e) => {
                            pending = Some(e);
                            batch.kill(row);
                        }
                    }
                }
                self.push(op_idx + 1, batch)?;
                if let Some(e) = pending {
                    return Err(e);
                }
            }
            Operator::HashJoin {
                slot,
                probe_key,
                table,
                ..
            } => {
                // Build (or reuse) the table on the batch's first live
                // row; an empty root's table stays unbuilt forever.
                self.x.ensure_table(op_idx)?;
                let t = self.x.tables[*table].take().expect("table built");
                let mut pending = None;
                let mut down = Ok(());
                if !t.is_empty() {
                    let mut out = Batch::expanded_from(batch, *slot);
                    'rows: for row in 0..batch.rows() {
                        if !batch.is_live(row) {
                            continue;
                        }
                        match self.x.eval_detached(&BatchRow { batch, row }, probe_key) {
                            Err(e) => {
                                pending = Some(e);
                                break 'rows;
                            }
                            Ok(key) => {
                                if let Some(matches) = t.get(key.as_ref()) {
                                    for &m in matches {
                                        out.push_row(batch, row, *slot, Cow::Borrowed(m));
                                        self.x.stats.per_op[op_idx].output += 1;
                                        if out.rows() == self.cap {
                                            down = self.push(op_idx + 1, &mut out);
                                            if down.is_err() {
                                                break 'rows;
                                            }
                                            out.clear_rows();
                                        }
                                    }
                                }
                            }
                        }
                    }
                    if down.is_ok() {
                        down = self.push(op_idx + 1, &mut out);
                    }
                }
                self.x.tables[*table] = Some(t);
                down?;
                if let Some(e) = pending {
                    return Err(e);
                }
            }
            Operator::MergeJoin {
                slot,
                probe_key,
                run,
                ..
            } => {
                self.x.ensure_run(op_idx)?;
                let r = self.x.runs[*run].take().expect("run built");
                let mut pending = None;
                let mut down = Ok(());
                if !r.is_empty() {
                    let mut out = Batch::expanded_from(batch, *slot);
                    'rows: for row in 0..batch.rows() {
                        if !batch.is_live(row) {
                            continue;
                        }
                        match self.x.eval_detached(&BatchRow { batch, row }, probe_key) {
                            Err(e) => {
                                pending = Some(e);
                                break 'rows;
                            }
                            Ok(key) => {
                                let lo = r.partition_point(|(k, _)| k.as_ref() < key.as_ref());
                                for (k, m) in &r[lo..] {
                                    if k.as_ref() != key.as_ref() {
                                        break;
                                    }
                                    out.push_row(batch, row, *slot, Cow::Borrowed(m));
                                    self.x.stats.per_op[op_idx].output += 1;
                                    if out.rows() == self.cap {
                                        down = self.push(op_idx + 1, &mut out);
                                        if down.is_err() {
                                            break 'rows;
                                        }
                                        out.clear_rows();
                                    }
                                }
                            }
                        }
                    }
                    if down.is_ok() {
                        down = self.push(op_idx + 1, &mut out);
                    }
                }
                self.x.runs[*run] = Some(r);
                down?;
                if let Some(e) = pending {
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// The fused scan+filter kernel: scans `items` into register `slot`
    /// with the following filter applied in place, so rejected rows
    /// never touch a batch. Filter sides that do not read the scanned
    /// register are row-constants, evaluated once per input row (at the
    /// first item, in the row machine's left-then-right order, so the
    /// first error is the same error); a side that is a single field off
    /// the scanned item skips the generic evaluator entirely. The
    /// filter's rows are accounted as if they rode full batches, which
    /// is exactly what the unfused pipeline would push.
    fn scan_filter(
        &mut self,
        op_idx: usize,
        batch: &Batch<'a>,
        slot: usize,
        items: &'a BTreeSet<Value>,
        left: &Access,
        right: &Access,
    ) -> Result<(), EvalError> {
        let left_varies = left.reads_slot(slot);
        let right_varies = right.reads_slot(slot);
        let lf =
            (left.slot() == Some(slot) && left.fields.len() == 1).then(|| left.fields[0].as_str());
        let rf = (right.slot() == Some(slot) && right.fields.len() == 1)
            .then(|| right.fields[0].as_str());
        let mut out = Batch::expanded_from(batch, slot);
        let mut pending = None;
        let mut down = Ok(());
        let mut scanned = 0u64;
        let mut passed = 0u64;
        'rows: for row in 0..batch.rows() {
            if !batch.is_live(row) {
                continue;
            }
            let mut inv_left: Option<CowValue<'a>> = None;
            let mut inv_right: Option<CowValue<'a>> = None;
            for item in items {
                scanned += 1;
                let verdict: Result<bool, EvalError> = (|| {
                    if !left_varies && inv_left.is_none() {
                        inv_left = Some(self.x.eval_detached(&BatchRow { batch, row }, left)?);
                    }
                    let l: Cow<'_, Value> = match &inv_left {
                        Some(v) => Cow::Borrowed(v.as_ref()),
                        None => match (lf, item) {
                            (Some(f), Value::Struct(m)) => {
                                Cow::Borrowed(m.get(f).ok_or_else(|| EvalError::NoSuchField {
                                    value: left.prefix_display(0),
                                    field: f.to_string(),
                                })?)
                            }
                            _ => {
                                let rv = SlotOverlay {
                                    batch,
                                    row,
                                    slot,
                                    val: Cow::Borrowed(item),
                                };
                                Cow::Owned(self.x.eval_access(&rv, left)?.into_owned())
                            }
                        },
                    };
                    if !right_varies && inv_right.is_none() {
                        inv_right = Some(self.x.eval_detached(&BatchRow { batch, row }, right)?);
                    }
                    let r: Cow<'_, Value> = match &inv_right {
                        Some(v) => Cow::Borrowed(v.as_ref()),
                        None => match (rf, item) {
                            (Some(f), Value::Struct(m)) => {
                                Cow::Borrowed(m.get(f).ok_or_else(|| EvalError::NoSuchField {
                                    value: right.prefix_display(0),
                                    field: f.to_string(),
                                })?)
                            }
                            _ => {
                                let rv = SlotOverlay {
                                    batch,
                                    row,
                                    slot,
                                    val: Cow::Borrowed(item),
                                };
                                Cow::Owned(self.x.eval_access(&rv, right)?.into_owned())
                            }
                        },
                    };
                    Ok(l.as_ref() == r.as_ref())
                })();
                match verdict {
                    Ok(true) => {
                        passed += 1;
                        out.push_row(batch, row, slot, Cow::Borrowed(item));
                        if out.rows() == self.cap {
                            down = self.push(op_idx + 2, &mut out);
                            if down.is_err() {
                                break 'rows;
                            }
                            out.clear_rows();
                        }
                    }
                    Ok(false) => {}
                    Err(e) => {
                        pending = Some(e);
                        break 'rows;
                    }
                }
            }
        }
        self.x.stats.per_op[op_idx].output += scanned;
        self.x.stats.per_op[op_idx + 1].input += scanned;
        self.x.stats.per_op[op_idx + 1].output += passed;
        self.x.stats.batches += scanned.div_ceil(self.cap as u64);
        self.x.stats.sel_rows_live += scanned;
        self.x.stats.sel_rows_total += scanned;
        if down.is_ok() {
            down = self.push(op_idx + 2, &mut out);
        }
        down?;
        if let Some(e) = pending {
            return Err(e);
        }
        Ok(())
    }

    /// Drains a batch's surviving rows through the final projection.
    fn project(&mut self, batch: &Batch<'a>) -> Result<(), EvalError> {
        for row in 0..batch.rows() {
            if !batch.is_live(row) {
                continue;
            }
            self.x.emit(&BatchRow { batch, row })?;
        }
        Ok(())
    }
}

fn new_exec<'a, 'p>(ev: &'p Evaluator<'a>, pipeline: &'p Pipeline) -> Exec<'a, 'p> {
    let instance = ev.instance();
    Exec {
        ev,
        pipeline,
        root_vals: pipeline.roots.iter().map(|r| instance.get(r)).collect(),
        tables: (0..pipeline.n_tables).map(|_| None).collect(),
        runs: (0..pipeline.n_runs).map(|_| None).collect(),
        stats: PipelineStats::for_pipeline(pipeline),
        out: BTreeSet::new(),
    }
}

/// Executes a pipeline against the evaluator's instance with the
/// batched, push-based driver.
pub fn execute(ev: &Evaluator<'_>, pipeline: &Pipeline) -> Result<BTreeSet<Value>, EvalError> {
    execute_with_stats(ev, pipeline).map(|(rows, _)| rows)
}

/// Executes a pipeline with the batched driver and reports per-operator
/// row and batch counters alongside the result.
pub fn execute_with_stats(
    ev: &Evaluator<'_>,
    pipeline: &Pipeline,
) -> Result<(BTreeSet<Value>, PipelineStats), EvalError> {
    let mut m = BatchMachine {
        x: new_exec(ev, pipeline),
        cap: pipeline.batch_size.max(1),
    };
    // Hoisted ground filters: once, before any row is touched.
    if m.x.ground_short_circuits()? {
        return Ok(m.x.finish());
    }
    // The seed batch: one live row, every register unbound — the batched
    // counterpart of invoking the row machine once at operator 0.
    let mut seed = Batch::seed(pipeline.n_slots);
    m.push(0, &mut seed)?;
    Ok(m.x.finish())
}

/// Executes a pipeline with the recursive row-at-a-time driver — the
/// differential baseline the batched driver is proven identical to
/// (results and errors).
pub fn execute_rows(ev: &Evaluator<'_>, pipeline: &Pipeline) -> Result<BTreeSet<Value>, EvalError> {
    execute_rows_with_stats(ev, pipeline).map(|(rows, _)| rows)
}

/// Row-at-a-time execution with per-operator row counters.
pub fn execute_rows_with_stats(
    ev: &Evaluator<'_>,
    pipeline: &Pipeline,
) -> Result<(BTreeSet<Value>, PipelineStats), EvalError> {
    let mut m = RowMachine {
        x: new_exec(ev, pipeline),
        regs: vec![Cow::Owned(Value::Bool(false)); pipeline.n_slots],
    };
    if m.x.ground_short_circuits()? {
        return Ok(m.x.finish());
    }
    m.run(0)?;
    Ok(m.x.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use pcql::parser::parse_query;
    use pcql::Binding;

    fn rs_instance(n: i64) -> Instance {
        let mut i = Instance::new();
        i.set(
            "R",
            Value::set(
                (0..n).map(|k| Value::record([("A", Value::Int(k)), ("B", Value::Int(k % 5))])),
            ),
        );
        i.set(
            "S",
            Value::set(
                (0..n).map(|k| Value::record([("B", Value::Int(k % 7)), ("C", Value::Int(k))])),
            ),
        );
        i
    }

    #[test]
    fn pipeline_matches_interpreter() {
        let inst = rs_instance(40);
        let ev = Evaluator::new(&inst);
        for src in [
            "select struct(A = r.A) from R r where r.B = 2",
            "select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B",
            "select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B and s.C = 3",
        ] {
            let q = parse_query(src).unwrap();
            let reference = ev.eval_query(&q).unwrap();
            for options in [
                CompileOptions {
                    hash_joins: false,
                    ..Default::default()
                },
                CompileOptions {
                    hash_joins: true,
                    ..Default::default()
                },
            ] {
                let pipeline = compile(&q, options);
                let rows = execute(&ev, &pipeline).unwrap();
                assert_eq!(rows, reference, "{src} with {options:?}");
            }
        }
    }

    #[test]
    fn injected_op_faults_surface_as_typed_errors() {
        use cb_chase::faults;
        let inst = rs_instance(8);
        let ev = Evaluator::new(&inst);
        let q = parse_query("select struct(A = r.A) from R r where r.B = 2").unwrap();
        let pipeline = compile(&q, CompileOptions::default());
        {
            let _guard = faults::ScopedFaults::install("exec::op=err").unwrap();
            let err = execute(&ev, &pipeline).unwrap_err();
            assert_eq!(err, EvalError::Injected("exec::op".to_string()));
            assert!(err.to_string().contains("injected fault at exec::op"));
            let err = execute_rows(&ev, &pipeline).unwrap_err();
            assert_eq!(err, EvalError::Injected("exec::op".to_string()));
            let fs = faults::stats();
            assert_eq!(fs.injected, 2);
            assert_eq!(fs.reported, 2, "surfaced errors are reported, {fs:?}");
        }
        // Disarmed again: both drivers run clean.
        assert_eq!(execute(&ev, &pipeline).unwrap(), ev.eval_query(&q).unwrap());
    }

    #[test]
    fn hash_join_operator_is_used() {
        let q =
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
        let nl = compile(
            &q,
            CompileOptions {
                hash_joins: false,
                ..Default::default()
            },
        );
        assert!(nl
            .ops
            .iter()
            .all(|op| !matches!(op, Operator::HashJoin { .. })));
        let hj = compile(
            &q,
            CompileOptions {
                hash_joins: true,
                ..Default::default()
            },
        );
        assert!(
            hj.ops
                .iter()
                .any(|op| matches!(op, Operator::HashJoin { .. })),
            "pipeline: {hj}"
        );
        // The first binding can't be hash-joined (nothing bound yet).
        assert!(matches!(hj.ops[0], Operator::Scan { .. }));
    }

    #[test]
    fn filters_are_placed_earliest() {
        let q = parse_query(
            "select struct(A = r.A, C = s.C) from R r, S s where r.B = 2 and s.C = r.A",
        )
        .unwrap();
        let p = compile(&q, CompileOptions::default());
        // r.B = 2 must come before the S scan.
        let filter_pos = p
            .ops
            .iter()
            .position(|op| matches!(op, Operator::Filter { left, .. } if left.to_string() == "r.B"))
            .unwrap();
        let s_pos = p
            .ops
            .iter()
            .position(|op| matches!(op, Operator::Scan { root, .. } if root == "S"))
            .unwrap();
        assert!(filter_pos < s_pos, "pipeline: {p}");
    }

    #[test]
    fn ground_filters_are_hoisted_and_short_circuit() {
        let inst = rs_instance(20);
        let ev = Evaluator::new(&inst);
        // `1 = 2` is ground: it must run once, before the scan, and
        // short-circuit the whole pipeline.
        let q = parse_query("select struct(A = r.A) from R r where 1 = 2").unwrap();
        let p = compile(&q, CompileOptions::default());
        assert_eq!(p.ground.len(), 1, "pipeline: {p}");
        assert!(p
            .ops
            .iter()
            .all(|op| !matches!(op, Operator::Filter { .. })));
        let (rows, stats) = execute_with_stats(&ev, &p).unwrap();
        assert!(rows.is_empty());
        assert!(stats.short_circuited);
        assert_eq!(stats.per_op[0].input, 0, "scan ran despite ground false");
        assert_eq!(ev.eval_query(&q).unwrap(), rows);

        // A true ground filter evaluates once and lets the rows through.
        let q = parse_query("select struct(A = r.A) from R r where 2 = 2").unwrap();
        let p = compile(&q, CompileOptions::default());
        let (rows, stats) = execute_with_stats(&ev, &p).unwrap();
        assert_eq!(rows, ev.eval_query(&q).unwrap());
        assert_eq!(stats.ground_filters, 1);
        assert!(!stats.short_circuited);
    }

    #[test]
    fn hash_tables_build_lazily() {
        let mut inst = rs_instance(10);
        inst.set("Empty", Value::Set(BTreeSet::new()));
        let ev = Evaluator::new(&inst);
        // The outer stream is empty: the join table must never be built.
        let q = Query::new(
            Output::record([("C", Path::var("s").field("C"))]),
            vec![
                Binding::iter("e", Path::root("Empty")),
                Binding::iter("s", Path::root("S")),
            ],
            vec![Equality(
                Path::var("e").field("B"),
                Path::var("s").field("B"),
            )],
        );
        let p = compile(
            &q,
            CompileOptions {
                hash_joins: true,
                ..Default::default()
            },
        );
        assert_eq!(p.n_tables, 1, "pipeline: {p}");
        let (rows, stats) = execute_with_stats(&ev, &p).unwrap();
        assert!(rows.is_empty());
        assert_eq!(stats.tables_built, 0);
        assert_eq!(stats.tables_skipped, 1);

        // With a non-empty outer stream the same pipeline builds once.
        let q2 =
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
        let p2 = compile(
            &q2,
            CompileOptions {
                hash_joins: true,
                ..Default::default()
            },
        );
        let (rows2, stats2) = execute_with_stats(&ev, &p2).unwrap();
        assert_eq!(rows2, ev.eval_query(&q2).unwrap());
        assert_eq!(stats2.tables_built, 1);
        assert_eq!(stats2.tables_skipped, 0);
    }

    #[test]
    fn probe_key_errors_do_not_surface_when_join_is_empty() {
        // S is empty, so the interpreter's inner loop never evaluates
        // the join condition — the bad probe path r.MISSING must not
        // error in the pipeline either.
        let mut inst = Instance::new();
        inst.set("R", Value::set([Value::record([("A", Value::Int(1))])]));
        inst.set("S", Value::Set(BTreeSet::new()));
        let ev = Evaluator::new(&inst);
        let q = parse_query("select struct(X = r.A) from R r, S s where r.MISSING = s.B").unwrap();
        assert_eq!(ev.eval_query(&q), Ok(BTreeSet::new()));
        for options in [
            CompileOptions {
                hash_joins: false,
                ..Default::default()
            },
            CompileOptions {
                hash_joins: true,
                ..Default::default()
            },
        ] {
            let p = compile(&q, options);
            assert_eq!(execute(&ev, &p), Ok(BTreeSet::new()), "pipeline: {p}");
        }
    }

    #[test]
    fn not_a_set_error_matches_the_interpreter() {
        // Scanning a dictionary root must report the interpreter's
        // `NotASet("<root> = <value>")`, not a bare root name.
        let mut inst = Instance::new();
        inst.set("D", Value::dict([(Value::Int(1), Value::Int(2))]));
        let ev = Evaluator::new(&inst);
        let q = parse_query("select struct(X = d.A) from D d").unwrap();
        let want = ev.eval_query(&q).unwrap_err();
        let p = compile(&q, CompileOptions::default());
        assert_eq!(execute(&ev, &p).unwrap_err(), want);
    }

    #[test]
    fn slot_layout_gives_every_binding_its_own_register() {
        let q =
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
        let p = compile(&q, CompileOptions::default());
        assert_eq!(p.n_slots, 2);
        let slots: Vec<usize> = p
            .ops
            .iter()
            .filter_map(|op| match op {
                Operator::Scan { slot, .. } => Some(*slot),
                _ => None,
            })
            .collect();
        assert_eq!(slots, vec![0, 1]);
        // The filter reads both registers.
        let Some(Operator::Filter { left, right }) = p
            .ops
            .iter()
            .find(|op| matches!(op, Operator::Filter { .. }))
        else {
            panic!("no filter in {p}")
        };
        assert_eq!(left.slot(), Some(0));
        assert_eq!(right.slot(), Some(1));
    }

    #[test]
    fn shadowed_variable_names_get_fresh_slots() {
        // `from R x, S x`: the inner binding shadows the outer; the
        // output must read the *inner* register, as the interpreter does.
        let inst = rs_instance(12);
        let ev = Evaluator::new(&inst);
        let q = Query::new(
            Output::record([("C", Path::var("x").field("C"))]),
            vec![
                Binding::iter("x", Path::root("R")),
                Binding::iter("x", Path::root("S")),
            ],
            vec![],
        );
        let p = compile(&q, CompileOptions::default());
        assert_eq!(p.n_slots, 2);
        let CompiledOutput::Struct(fields) = &p.output else {
            panic!("struct output expected")
        };
        assert_eq!(fields[0].1.slot(), Some(1), "output must read the inner x");
        assert_eq!(execute(&ev, &p).unwrap(), ev.eval_query(&q).unwrap());
    }

    #[test]
    fn conditions_on_shadowed_names_follow_the_last_binding() {
        let inst = rs_instance(12);
        let ev = Evaluator::new(&inst);
        // `x.B = 1` mentions the re-bound x: like the interpreter, it
        // must be placed after the *last* binding of x and read slot 1.
        let q = Query::new(
            Output::record([("C", Path::var("x").field("C"))]),
            vec![
                Binding::iter("x", Path::root("R")),
                Binding::iter("x", Path::root("S")),
            ],
            vec![Equality(Path::var("x").field("B"), Path::int(1))],
        );
        for options in [
            CompileOptions {
                hash_joins: false,
                ..Default::default()
            },
            CompileOptions {
                hash_joins: true,
                ..Default::default()
            },
        ] {
            let p = compile(&q, options);
            if let Some(Operator::Filter { left, .. }) = p
                .ops
                .iter()
                .find(|op| matches!(op, Operator::Filter { .. }))
            {
                assert_eq!(left.slot(), Some(1), "filter reads the outer x: {p}");
            }
            assert_eq!(
                execute(&ev, &p).unwrap(),
                ev.eval_query(&q).unwrap(),
                "pipeline: {p}"
            );
        }
    }

    #[test]
    fn dependent_iterations_and_lookups() {
        let mut inst = Instance::new();
        inst.set(
            "SI",
            Value::dict([(
                Value::Int(1),
                Value::set([Value::record([("C", Value::Int(10))])]),
            )]),
        );
        let ev = Evaluator::new(&inst);
        let q = parse_query("select struct(C = t.C) from SI{1} t").unwrap();
        let p = compile(&q, CompileOptions::default());
        assert!(matches!(p.ops[0], Operator::IterDependent { .. }));
        assert_eq!(execute(&ev, &p).unwrap().len(), 1);
        // Missing key: empty, not an error.
        let q2 = parse_query("select struct(C = t.C) from SI{9} t").unwrap();
        let p2 = compile(&q2, CompileOptions::default());
        assert!(execute(&ev, &p2).unwrap().is_empty());
    }

    #[test]
    fn let_bindings_compile() {
        let mut inst = Instance::new();
        inst.set(
            "I",
            Value::dict([(Value::Int(1), Value::record([("C", Value::Int(7))]))]),
        );
        let ev = Evaluator::new(&inst);
        let q = parse_query("select struct(C = x.C) from let x := I[1]").unwrap();
        let p = compile(&q, CompileOptions::default());
        assert!(matches!(p.ops[0], Operator::Bind { .. }));
        assert_eq!(execute(&ev, &p).unwrap().len(), 1);
    }

    #[test]
    fn multiple_hash_joins() {
        let mut inst = rs_instance(30);
        inst.set(
            "T",
            Value::set(
                (0..30).map(|k| Value::record([("C", Value::Int(k)), ("D", Value::Int(k * 2))])),
            ),
        );
        let ev = Evaluator::new(&inst);
        let q = parse_query(
            "select struct(A = r.A, D = t.D) from R r, S s, T t \
             where r.B = s.B and s.C = t.C",
        )
        .unwrap();
        let p = compile(
            &q,
            CompileOptions {
                hash_joins: true,
                ..Default::default()
            },
        );
        let n_hash = p
            .ops
            .iter()
            .filter(|op| matches!(op, Operator::HashJoin { .. }))
            .count();
        assert_eq!(n_hash, 2, "pipeline: {p}");
        assert_eq!(p.n_tables, 2);
        let (rows, stats) = execute_with_stats(&ev, &p).unwrap();
        assert_eq!(rows, ev.eval_query(&q).unwrap());
        assert_eq!(stats.tables_built, 2);
    }

    #[test]
    fn stats_count_rows_per_operator() {
        let inst = rs_instance(10);
        let ev = Evaluator::new(&inst);
        let q = parse_query("select struct(A = r.A) from R r where r.B = 2").unwrap();
        let p = compile(&q, CompileOptions::default());
        let (rows, stats) = execute_with_stats(&ev, &p).unwrap();
        // Scan: one invocation, 10 rows out; filter: 10 in, 2 out (B = 2
        // hits k = 2, 7); project: 2 rows.
        assert_eq!(
            stats.per_op[0],
            OpStats {
                input: 1,
                output: 10
            }
        );
        assert_eq!(stats.per_op[1].input, 10);
        assert_eq!(stats.per_op[1].output, stats.rows_emitted);
        assert_eq!(stats.rows_emitted as usize, rows.len());
        let rendered = stats.render(&p);
        assert!(rendered.contains("Scan(R as r@0)"), "{rendered}");
        assert!(rendered.contains("Project"), "{rendered}");
    }

    #[test]
    fn display_is_readable() {
        let q =
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
        let p = compile(
            &q,
            CompileOptions {
                hash_joins: true,
                ..Default::default()
            },
        );
        let text = p.to_string();
        assert!(text.contains("Scan(R as r@0)"), "{text}");
        assert!(text.contains("HashJoin(S as s@1"), "{text}");
        assert!(text.ends_with("Project"));
    }

    #[test]
    fn merge_join_is_chosen_for_ordered_roots() {
        // Both sides are plain root scans whose BTreeSet iteration sorts
        // the join key: the compiler must pick MergeJoin over HashJoin
        // when both algorithms are allowed, and the results must match
        // both the interpreter and the hash-join pipeline.
        let inst = rs_instance(40);
        let ev = Evaluator::new(&inst);
        let q =
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where s.B = r.B").unwrap();
        let mj = compile(
            &q,
            CompileOptions {
                hash_joins: true,
                merge_joins: true,
                ..Default::default()
            },
        );
        assert!(
            mj.ops
                .iter()
                .any(|op| matches!(op, Operator::MergeJoin { .. })),
            "pipeline: {mj}"
        );
        assert_eq!(mj.n_runs, 1);
        assert_eq!(mj.n_tables, 0);
        let hj = compile(
            &q,
            CompileOptions {
                hash_joins: true,
                ..Default::default()
            },
        );
        let reference = ev.eval_query(&q).unwrap();
        assert_eq!(execute(&ev, &mj).unwrap(), reference);
        assert_eq!(execute(&ev, &hj).unwrap(), reference);
        assert_eq!(execute_rows(&ev, &mj).unwrap(), reference);
    }

    #[test]
    fn merge_runs_avoid_sorting_on_first_field_keys() {
        // R's records sort by their alphabetically-first field (A for R,
        // B for S). Joining on s.B means the S-side run comes out of the
        // BTreeSet already key-ordered: no sort. Joining on s.C (the
        // second field) must detect disorder and sort.
        let inst = rs_instance(40);
        let ev = Evaluator::new(&inst);
        let sorted_free =
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where s.B = r.B").unwrap();
        let needs_sort =
            parse_query("select struct(A = r.A, B = s.B) from R r, S s where s.C = r.A").unwrap();
        let options = CompileOptions {
            hash_joins: true,
            merge_joins: true,
            ..Default::default()
        };
        let p1 = compile(&sorted_free, options);
        let (rows1, stats1) = execute_with_stats(&ev, &p1).unwrap();
        assert_eq!(rows1, ev.eval_query(&sorted_free).unwrap());
        assert_eq!(stats1.runs_built, 1);
        assert_eq!(stats1.runs_sorted, 0, "B-keys arrive sorted: {p1}");

        let p2 = compile(&needs_sort, options);
        assert!(p2
            .ops
            .iter()
            .any(|op| matches!(op, Operator::MergeJoin { .. })));
        let (rows2, stats2) = execute_with_stats(&ev, &p2).unwrap();
        assert_eq!(rows2, ev.eval_query(&needs_sort).unwrap());
        assert_eq!(stats2.runs_built, 1);
        assert_eq!(stats2.runs_sorted, 1, "C-keys need a sort: {p2}");
    }

    #[test]
    fn merge_runs_build_lazily() {
        let mut inst = rs_instance(10);
        inst.set("Empty", Value::Set(BTreeSet::new()));
        let ev = Evaluator::new(&inst);
        let q = Query::new(
            Output::record([("C", Path::var("s").field("C"))]),
            vec![
                Binding::iter("e", Path::root("Empty")),
                Binding::iter("s", Path::root("S")),
            ],
            vec![Equality(
                Path::var("s").field("B"),
                Path::var("e").field("B"),
            )],
        );
        let p = compile(
            &q,
            CompileOptions {
                hash_joins: true,
                merge_joins: true,
                ..Default::default()
            },
        );
        assert_eq!(p.n_runs, 1, "pipeline: {p}");
        let (rows, stats) = execute_with_stats(&ev, &p).unwrap();
        assert!(rows.is_empty());
        assert_eq!(stats.runs_built, 0);
        assert_eq!(stats.runs_skipped, 1);
    }

    #[test]
    fn batch_sizes_do_not_change_results() {
        let inst = rs_instance(40);
        let ev = Evaluator::new(&inst);
        for src in [
            "select struct(A = r.A) from R r where r.B = 2",
            "select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B",
            "select struct(A = r.A, C = s.C) from R r, S s where s.B = r.B and s.C = 3",
        ] {
            let q = parse_query(src).unwrap();
            let reference = ev.eval_query(&q).unwrap();
            for (hash_joins, merge_joins) in [(false, false), (true, false), (true, true)] {
                for batch_size in [1, 2, 1024] {
                    let p = compile(
                        &q,
                        CompileOptions {
                            hash_joins,
                            merge_joins,
                            batch_size,
                        },
                    );
                    assert_eq!(
                        execute(&ev, &p).unwrap(),
                        reference,
                        "{src} at batch {batch_size} with {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_errors_match_the_row_machine() {
        // A filter whose path fails on some rows: the batched driver's
        // truncate-on-error discipline must surface exactly the error the
        // row-at-a-time machine reports, for every batch size.
        let mut inst = Instance::new();
        inst.set(
            "M",
            Value::set([
                Value::record([("A", Value::Int(1)), ("B", Value::Int(1))]),
                Value::record([("A", Value::Int(2))]),
                Value::record([("A", Value::Int(3)), ("B", Value::Int(3))]),
            ]),
        );
        let ev = Evaluator::new(&inst);
        let q = parse_query("select struct(A = m.A) from M m where m.B = 1").unwrap();
        for batch_size in [1, 2, 1024] {
            let p = compile(
                &q,
                CompileOptions {
                    batch_size,
                    ..Default::default()
                },
            );
            assert_eq!(
                execute(&ev, &p),
                execute_rows(&ev, &p),
                "batch {batch_size}: {p}"
            );
            assert_eq!(execute(&ev, &p), ev.eval_query(&q), "batch {batch_size}");
        }
    }

    #[test]
    fn batch_stats_reconcile_with_row_counts() {
        let inst = rs_instance(30);
        let ev = Evaluator::new(&inst);
        let q = parse_query(
            "select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B and s.C = 3",
        )
        .unwrap();
        for (hash_joins, merge_joins) in [(false, false), (true, false), (true, true)] {
            for batch_size in [1, 7, 1024] {
                let p = compile(
                    &q,
                    CompileOptions {
                        hash_joins,
                        merge_joins,
                        batch_size,
                    },
                );
                let (rows, stats) = execute_with_stats(&ev, &p).unwrap();
                assert_eq!(rows, ev.eval_query(&q).unwrap());
                // Every live row in a pushed batch is consumed by exactly
                // one operator or the final projection.
                let consumed: u64 =
                    stats.per_op.iter().map(|o| o.input).sum::<u64>() + stats.rows_emitted;
                assert_eq!(
                    stats.sel_rows_live, consumed,
                    "batch {batch_size}, joins {hash_joins}/{merge_joins}: {p}"
                );
                assert!(stats.sel_rows_live <= stats.sel_rows_total);
                assert!(stats.batches > 0);
                assert!(stats.sel_fill_rate() > 0.0);
                // Arena accounting: every table/run is built or skipped.
                assert_eq!(stats.tables_built + stats.tables_skipped, p.n_tables as u64);
                assert_eq!(stats.runs_built + stats.runs_skipped, p.n_runs as u64);
                // The batched per-op counts equal the row machine's.
                let (_, row_stats) = execute_rows_with_stats(&ev, &p).unwrap();
                assert_eq!(stats.per_op, row_stats.per_op, "batch {batch_size}: {p}");
            }
        }
    }

    #[test]
    fn render_reports_batches_and_join_algorithms() {
        let inst = rs_instance(20);
        let ev = Evaluator::new(&inst);
        let q =
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where s.B = r.B").unwrap();
        let p = compile(
            &q,
            CompileOptions {
                hash_joins: true,
                merge_joins: true,
                ..Default::default()
            },
        );
        let (_, stats) = execute_with_stats(&ev, &p).unwrap();
        let rendered = stats.render(&p);
        assert!(rendered.contains("join algorithms:"), "{rendered}");
        assert!(rendered.contains("1 merge"), "{rendered}");
        assert!(rendered.contains("batches:"), "{rendered}");
        assert!(rendered.contains("merge runs:"), "{rendered}");
        assert!(rendered.contains("selection fill"), "{rendered}");
    }
}
