//! Physical operator pipelines.
//!
//! Algorithm 1's step 3 includes "mapping into physical operators
//! different than those (index-based)". The [`Evaluator`] interprets plan
//! *syntax* directly; this module compiles a plan into an explicit
//! operator pipeline and adds the one operator family the syntax cannot
//! express: **hash joins**, which realize the paper's §2 remark that "a
//! hash-join algorithm would have to compute [the hash table] on the fly
//! … we can rewrite join queries into queries that correspond to
//! hash-join plans".
//!
//! A pipeline is a sequence of operators threading a stream of variable
//! environments:
//!
//! ```text
//! Scan{var, root}          emit one env per element of a root set
//! IterDependent{var, src}  nested iteration over a path (index entries,
//!                          set-valued fields, non-failing lookups)
//! Bind{var, src}           scalar (let) binding
//! Filter{l, r}             keep envs where the paths evaluate equal
//! HashBuild{...}/HashProbe reorder an equi-join through an on-the-fly
//!                          hash table
//! ```

use std::collections::BTreeMap;
use std::fmt;

use pcql::path::Path;
use pcql::query::{BindKind, Equality, Output, Query};

use crate::eval::{EvalError, Evaluator};
use crate::value::Value;

/// One pipeline operator.
#[derive(Debug, Clone, PartialEq)]
pub enum Operator {
    /// Iterate a schema root (a set).
    Scan { var: String, root: String },
    /// Iterate a dependent collection (set-valued path under the current
    /// environment).
    IterDependent { var: String, src: Path },
    /// Scalar binding.
    Bind { var: String, src: Path },
    /// Equality filter.
    Filter { left: Path, right: Path },
    /// On-the-fly hash join: build a table over `root` keyed by
    /// `build_key` (a path over the root's row bound to `row_var`), then
    /// emit one env per row matching `probe_key` evaluated in the current
    /// environment.
    HashJoin {
        row_var: String,
        root: String,
        build_key: Path,
        probe_key: Path,
    },
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operator::Scan { var, root } => write!(f, "Scan({root} as {var})"),
            Operator::IterDependent { var, src } => write!(f, "Iter({src} as {var})"),
            Operator::Bind { var, src } => write!(f, "Bind({var} := {src})"),
            Operator::Filter { left, right } => write!(f, "Filter({left} = {right})"),
            Operator::HashJoin {
                row_var,
                root,
                build_key,
                probe_key,
            } => write!(
                f,
                "HashJoin({root} as {row_var} on {build_key} = {probe_key})"
            ),
        }
    }
}

/// A compiled plan: a pipeline plus the final projection.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    pub ops: Vec<Operator>,
    pub output: Output,
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{op}")?;
        }
        write!(f, " -> Project")
    }
}

/// Compilation options.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileOptions {
    /// Turn `Scan + Filter(equi-join)` pairs into on-the-fly hash joins.
    pub hash_joins: bool,
}

/// Compiles a plan into a pipeline: bindings become scans/iterations,
/// each condition becomes a filter at the earliest point where its
/// variables are bound, and (optionally) root scans joined by equality to
/// earlier variables become hash joins.
pub fn compile(q: &Query, options: CompileOptions) -> Pipeline {
    let mut ops: Vec<Operator> = Vec::new();
    let mut bound: Vec<String> = Vec::new();
    // Conditions not yet emitted.
    let mut pending: Vec<Equality> = q.where_.clone();

    let flush_filters = |bound: &[String], ops: &mut Vec<Operator>, pending: &mut Vec<Equality>| {
        let mut i = 0;
        while i < pending.len() {
            let ready = pending[i]
                .free_vars()
                .iter()
                .all(|v| bound.iter().any(|b| b == v));
            if ready {
                let eq = pending.remove(i);
                ops.push(Operator::Filter {
                    left: eq.0,
                    right: eq.1,
                });
            } else {
                i += 1;
            }
        }
    };

    for b in &q.from {
        match (&b.kind, &b.src) {
            (BindKind::Iter, Path::Root(root)) => {
                // Hash-join candidacy: an equi-join condition linking this
                // root's rows to already-bound variables.
                let candidate = if options.hash_joins && !bound.is_empty() {
                    pending.iter().position(|eq| {
                        let lv = eq.0.free_vars();
                        let rv = eq.1.free_vars();
                        let this = |vs: &std::collections::BTreeSet<String>| {
                            vs.len() == 1 && vs.contains(&b.var)
                        };
                        let earlier = |vs: &std::collections::BTreeSet<String>| {
                            !vs.contains(&b.var) && vs.iter().all(|v| bound.iter().any(|x| x == v))
                        };
                        (this(&lv) && earlier(&rv)) || (this(&rv) && earlier(&lv))
                    })
                } else {
                    None
                };
                match candidate {
                    Some(pos) => {
                        let eq = pending.remove(pos);
                        let (build_key, probe_key) = if eq.0.mentions_var(&b.var) {
                            (eq.0, eq.1)
                        } else {
                            (eq.1, eq.0)
                        };
                        ops.push(Operator::HashJoin {
                            row_var: b.var.clone(),
                            root: root.clone(),
                            build_key,
                            probe_key,
                        });
                    }
                    None => ops.push(Operator::Scan {
                        var: b.var.clone(),
                        root: root.clone(),
                    }),
                }
            }
            (BindKind::Iter, src) => ops.push(Operator::IterDependent {
                var: b.var.clone(),
                src: src.clone(),
            }),
            (BindKind::Let, src) => ops.push(Operator::Bind {
                var: b.var.clone(),
                src: src.clone(),
            }),
        }
        bound.push(b.var.clone());
        flush_filters(&bound, &mut ops, &mut pending);
    }
    // Anything left (e.g. ground conditions) becomes trailing filters.
    for eq in pending {
        ops.push(Operator::Filter {
            left: eq.0,
            right: eq.1,
        });
    }
    Pipeline {
        ops,
        output: q.output.clone(),
    }
}

/// Executes a pipeline against the evaluator's instance.
pub fn execute(
    ev: &Evaluator<'_>,
    pipeline: &Pipeline,
) -> Result<std::collections::BTreeSet<Value>, EvalError> {
    // Pre-build hash tables (one pass over each joined root).
    let mut tables: Vec<BTreeMap<Value, Vec<Value>>> = Vec::new();
    let empty_env: BTreeMap<String, Value> = BTreeMap::new();
    for op in &pipeline.ops {
        if let Operator::HashJoin {
            row_var,
            root,
            build_key,
            ..
        } = op
        {
            let rows = ev.eval_path(&empty_env, &Path::Root(root.clone()))?;
            let rows = rows
                .as_set()
                .ok_or_else(|| EvalError::NotASet(root.clone()))?;
            let mut table: BTreeMap<Value, Vec<Value>> = BTreeMap::new();
            let mut env = BTreeMap::new();
            for row in rows {
                env.insert(row_var.clone(), row.clone());
                let key = ev.eval_path(&env, build_key)?;
                table.entry(key).or_default().push(row.clone());
            }
            tables.push(table);
        }
    }

    let mut out = std::collections::BTreeSet::new();
    let mut env: BTreeMap<String, Value> = BTreeMap::new();
    run_level(ev, pipeline, &tables, 0, 0, &mut env, &mut out)?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn run_level(
    ev: &Evaluator<'_>,
    pipeline: &Pipeline,
    tables: &[BTreeMap<Value, Vec<Value>>],
    op_idx: usize,
    table_idx: usize,
    env: &mut BTreeMap<String, Value>,
    out: &mut std::collections::BTreeSet<Value>,
) -> Result<(), EvalError> {
    if op_idx == pipeline.ops.len() {
        let row = match &pipeline.output {
            Output::Struct(fields) => {
                let mut m = BTreeMap::new();
                for (name, p) in fields {
                    m.insert(name.clone(), ev.eval_path(env, p)?);
                }
                Value::Struct(m)
            }
            Output::Path(p) => ev.eval_path(env, p)?,
        };
        out.insert(row);
        return Ok(());
    }
    match &pipeline.ops[op_idx] {
        Operator::Scan { var, root } => {
            let set = ev.eval_path(env, &Path::Root(root.clone()))?;
            let items = set
                .as_set()
                .cloned()
                .ok_or_else(|| EvalError::NotASet(root.clone()))?;
            for item in items {
                env.insert(var.clone(), item);
                run_level(ev, pipeline, tables, op_idx + 1, table_idx, env, out)?;
            }
            env.remove(var);
        }
        Operator::IterDependent { var, src } => {
            let set = ev.eval_path(env, src)?;
            let items = set
                .as_set()
                .cloned()
                .ok_or_else(|| EvalError::NotASet(src.to_string()))?;
            for item in items {
                env.insert(var.clone(), item);
                run_level(ev, pipeline, tables, op_idx + 1, table_idx, env, out)?;
            }
            env.remove(var);
        }
        Operator::Bind { var, src } => {
            let v = ev.eval_path(env, src)?;
            env.insert(var.clone(), v);
            run_level(ev, pipeline, tables, op_idx + 1, table_idx, env, out)?;
            env.remove(var);
        }
        Operator::Filter { left, right } => {
            if ev.eval_path(env, left)? == ev.eval_path(env, right)? {
                run_level(ev, pipeline, tables, op_idx + 1, table_idx, env, out)?;
            }
        }
        Operator::HashJoin {
            row_var, probe_key, ..
        } => {
            let key = ev.eval_path(env, probe_key)?;
            if let Some(matches) = tables[table_idx].get(&key) {
                for row in matches.clone() {
                    env.insert(row_var.clone(), row);
                    run_level(ev, pipeline, tables, op_idx + 1, table_idx + 1, env, out)?;
                }
                env.remove(row_var);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use pcql::parser::parse_query;

    fn rs_instance(n: i64) -> Instance {
        let mut i = Instance::new();
        i.set(
            "R",
            Value::set(
                (0..n).map(|k| Value::record([("A", Value::Int(k)), ("B", Value::Int(k % 5))])),
            ),
        );
        i.set(
            "S",
            Value::set(
                (0..n).map(|k| Value::record([("B", Value::Int(k % 7)), ("C", Value::Int(k))])),
            ),
        );
        i
    }

    #[test]
    fn pipeline_matches_interpreter() {
        let inst = rs_instance(40);
        let ev = Evaluator::new(&inst);
        for src in [
            "select struct(A = r.A) from R r where r.B = 2",
            "select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B",
            "select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B and s.C = 3",
        ] {
            let q = parse_query(src).unwrap();
            let reference = ev.eval_query(&q).unwrap();
            for options in [
                CompileOptions { hash_joins: false },
                CompileOptions { hash_joins: true },
            ] {
                let pipeline = compile(&q, options);
                let rows = execute(&ev, &pipeline).unwrap();
                assert_eq!(rows, reference, "{src} with {options:?}");
            }
        }
    }

    #[test]
    fn hash_join_operator_is_used() {
        let q =
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
        let nl = compile(&q, CompileOptions { hash_joins: false });
        assert!(nl
            .ops
            .iter()
            .all(|op| !matches!(op, Operator::HashJoin { .. })));
        let hj = compile(&q, CompileOptions { hash_joins: true });
        assert!(
            hj.ops
                .iter()
                .any(|op| matches!(op, Operator::HashJoin { .. })),
            "pipeline: {hj}"
        );
        // The first binding can't be hash-joined (nothing bound yet).
        assert!(matches!(hj.ops[0], Operator::Scan { .. }));
    }

    #[test]
    fn filters_are_placed_earliest() {
        let q = parse_query(
            "select struct(A = r.A, C = s.C) from R r, S s where r.B = 2 and s.C = r.A",
        )
        .unwrap();
        let p = compile(&q, CompileOptions::default());
        // r.B = 2 must come before the S scan.
        let filter_pos = p
            .ops
            .iter()
            .position(|op| matches!(op, Operator::Filter { left, .. } if left.to_string() == "r.B"))
            .unwrap();
        let s_pos = p
            .ops
            .iter()
            .position(|op| matches!(op, Operator::Scan { root, .. } if root == "S"))
            .unwrap();
        assert!(filter_pos < s_pos, "pipeline: {p}");
    }

    #[test]
    fn dependent_iterations_and_lookups() {
        let mut inst = Instance::new();
        inst.set(
            "SI",
            Value::dict([(
                Value::Int(1),
                Value::set([Value::record([("C", Value::Int(10))])]),
            )]),
        );
        let ev = Evaluator::new(&inst);
        let q = parse_query("select struct(C = t.C) from SI{1} t").unwrap();
        let p = compile(&q, CompileOptions::default());
        assert!(matches!(p.ops[0], Operator::IterDependent { .. }));
        assert_eq!(execute(&ev, &p).unwrap().len(), 1);
        // Missing key: empty, not an error.
        let q2 = parse_query("select struct(C = t.C) from SI{9} t").unwrap();
        let p2 = compile(&q2, CompileOptions::default());
        assert!(execute(&ev, &p2).unwrap().is_empty());
    }

    #[test]
    fn let_bindings_compile() {
        let mut inst = Instance::new();
        inst.set(
            "I",
            Value::dict([(Value::Int(1), Value::record([("C", Value::Int(7))]))]),
        );
        let ev = Evaluator::new(&inst);
        let q = parse_query("select struct(C = x.C) from let x := I[1]").unwrap();
        let p = compile(&q, CompileOptions::default());
        assert!(matches!(p.ops[0], Operator::Bind { .. }));
        assert_eq!(execute(&ev, &p).unwrap().len(), 1);
    }

    #[test]
    fn multiple_hash_joins() {
        let mut inst = rs_instance(30);
        inst.set(
            "T",
            Value::set(
                (0..30).map(|k| Value::record([("C", Value::Int(k)), ("D", Value::Int(k * 2))])),
            ),
        );
        let ev = Evaluator::new(&inst);
        let q = parse_query(
            "select struct(A = r.A, D = t.D) from R r, S s, T t \
             where r.B = s.B and s.C = t.C",
        )
        .unwrap();
        let p = compile(&q, CompileOptions { hash_joins: true });
        let n_hash = p
            .ops
            .iter()
            .filter(|op| matches!(op, Operator::HashJoin { .. }))
            .count();
        assert_eq!(n_hash, 2, "pipeline: {p}");
        assert_eq!(execute(&ev, &p).unwrap(), ev.eval_query(&q).unwrap());
    }

    #[test]
    fn display_is_readable() {
        let q =
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
        let p = compile(&q, CompileOptions { hash_joins: true });
        let text = p.to_string();
        assert!(text.contains("Scan(R as r)"));
        assert!(text.contains("HashJoin(S as s"));
        assert!(text.ends_with("Project"));
    }
}
