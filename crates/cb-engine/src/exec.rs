//! Slot-compiled physical operator pipelines.
//!
//! Algorithm 1's step 3 includes "mapping into physical operators
//! different than those (index-based)". The [`Evaluator`] interprets plan
//! *syntax* directly; this module **compiles** a plan once and then runs
//! it against a flat register file:
//!
//! * every variable is resolved to a fixed `usize` **slot** at compile
//!   time — `execute` never touches a string-keyed environment;
//! * every path is pre-resolved to an [`Access`]: a base (slot, interned
//!   root, constant, or lookup) plus a flattened field chain, so the
//!   per-row work is an array index and a few map lookups;
//! * the register file is a `Vec<CowValue<'a>>` — rows iterated out of
//!   instance-owned collections bind as `Cow::Borrowed(&'a Value)`
//!   (the same anchoring discipline as the interpreter's Cow
//!   environment), so instance-anchored bindings cost **zero clones
//!   per row**;
//! * ground (environment-independent) `where` conjuncts are hoisted out
//!   of the row loop entirely: they run once, before the pipeline, and
//!   short-circuit to the empty result;
//! * hash-join tables key `CowValue<'a>` to `Vec<&'a Value>` — borrowed
//!   keys over borrowed rows — and are built **lazily** on first probe,
//!   so a join below an empty outer stream never pays its build.
//!
//! The operator family threads a stream of register bindings:
//!
//! ```text
//! Scan{slot, root}         emit one binding per element of a root set
//! IterDependent{slot, src} nested iteration over a path (index entries,
//!                          set-valued fields, non-failing lookups)
//! Bind{slot, src}          scalar (let) binding
//! Filter{l, r}             keep rows where the accessors evaluate equal
//! HashJoin{...}            equi-join through an on-the-fly hash table,
//!                          realizing §2's "a hash-join algorithm would
//!                          have to compute [the table] on the fly"
//! ```
//!
//! [`execute_with_stats`] additionally returns [`PipelineStats`]: rows
//! in/out per operator, rows emitted, and hash tables built vs skipped —
//! the observability layer EXPLAIN and experiment E15 report from.
//!
//! Without hash joins the pipeline is *fully* identical to the
//! interpreter — same rows, and the same `EvalError` at the same point
//! (the proptest corpus asserts `Result` equality). With hash joins on,
//! results are still identical, but the join applies its equality before
//! the other same-level conjuncts (that is what a hash join *is*), so on
//! erroring queries a different conjunct's error — or none, if the join
//! filters the offending rows away — may surface, exactly as condition
//! reordering implies.

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use pcql::path::Path;
use pcql::query::{BindKind, Equality, Output, Query};

use crate::eval::{EvalError, Evaluator};
use crate::value::{CowValue, Value};

/// The base of a pre-resolved accessor: where evaluation starts before
/// the flattened field chain is applied.
#[derive(Debug, Clone, PartialEq)]
enum AccessBase {
    /// A register of the pipeline's register file.
    Slot(usize),
    /// A variable the query never binds — evaluates to `UnknownVar`,
    /// exactly like the interpreter.
    UnknownVar(String),
    /// An interned schema root (index into [`Pipeline::roots`]).
    Root { id: usize, name: String },
    /// A constant, pre-converted to a runtime value.
    Const(Value),
    /// `dom(P)` — computed per evaluation (owned).
    Dom(Box<Access>),
    /// `P[k]` — failing dictionary lookup.
    Get(Box<Access>, Box<Access>),
    /// `P{k}` — non-failing dictionary lookup (empty set when absent).
    GetOrEmpty(Box<Access>, Box<Access>),
}

/// A compiled path: a base plus a pre-resolved field chain. Evaluating
/// one never consults variable names — slots index straight into the
/// register file.
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    base: AccessBase,
    /// Trailing field projections, applied in order (ODMG implicit
    /// dereferencing included, as in the interpreter).
    fields: Vec<String>,
    /// Display of the source path's base, for diagnostics that must
    /// match the interpreter's byte for byte.
    base_display: String,
}

/// A borrowed view of an [`Access`] base for external inspection —
/// static verifiers (cb-analyze's pipeline dataflow pass) walk compiled
/// accessors through this without the concrete representation becoming
/// part of the public surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessKind<'a> {
    /// Reads a register of the pipeline's register file.
    Slot(usize),
    /// A variable the compiler could not resolve to any slot; evaluating
    /// it is the canonical `UnknownVar` error.
    UnknownVar(&'a str),
    /// Reads an interned schema root.
    Root { id: usize, name: &'a str },
    /// A pre-converted constant.
    Const,
    /// `dom(P)`.
    Dom(&'a Access),
    /// `P[k]` — failing dictionary lookup.
    Get { dict: &'a Access, key: &'a Access },
    /// `P{k}` — non-failing dictionary lookup.
    GetOrEmpty { dict: &'a Access, key: &'a Access },
}

impl Access {
    /// The register this accessor reads, when it is a plain (possibly
    /// field-projected) variable reference.
    pub fn slot(&self) -> Option<usize> {
        match self.base {
            AccessBase::Slot(i) => Some(i),
            _ => None,
        }
    }

    /// The base this accessor evaluates from, as an inspectable view.
    pub fn kind(&self) -> AccessKind<'_> {
        match &self.base {
            AccessBase::Slot(i) => AccessKind::Slot(*i),
            AccessBase::UnknownVar(v) => AccessKind::UnknownVar(v),
            AccessBase::Root { id, name } => AccessKind::Root { id: *id, name },
            AccessBase::Const(_) => AccessKind::Const,
            AccessBase::Dom(inner) => AccessKind::Dom(inner),
            AccessBase::Get(m, k) => AccessKind::Get { dict: m, key: k },
            AccessBase::GetOrEmpty(m, k) => AccessKind::GetOrEmpty { dict: m, key: k },
        }
    }

    /// The trailing field projections applied after the base.
    pub fn fields(&self) -> &[String] {
        &self.fields
    }

    /// Display of the path prefix before field step `idx` — the
    /// interpreter reports `NoSuchField` against exactly this prefix.
    fn prefix_display(&self, idx: usize) -> String {
        let mut s = self.base_display.clone();
        for f in &self.fields[..idx] {
            s.push('.');
            s.push_str(f);
        }
        s
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.prefix_display(self.fields.len()))
    }
}

/// One pipeline operator, slot-annotated.
#[derive(Debug, Clone, PartialEq)]
pub enum Operator {
    /// Iterate a schema root (a set) into a register.
    Scan {
        var: String,
        slot: usize,
        root: String,
        root_id: usize,
    },
    /// Iterate a dependent collection (set-valued accessor under the
    /// current registers).
    IterDependent {
        var: String,
        slot: usize,
        src: Access,
    },
    /// Scalar binding.
    Bind {
        var: String,
        slot: usize,
        src: Access,
    },
    /// Equality filter.
    Filter { left: Access, right: Access },
    /// On-the-fly hash join: lazily build a table over `root` keyed by
    /// `build_key` (evaluated with the root's row in `slot`), then emit
    /// one binding per row matching `probe_key` under the current
    /// registers.
    HashJoin {
        row_var: String,
        slot: usize,
        root: String,
        root_id: usize,
        build_key: Access,
        probe_key: Access,
        /// Index into the executor's table arena.
        table: usize,
    },
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operator::Scan {
                var, slot, root, ..
            } => write!(f, "Scan({root} as {var}@{slot})"),
            Operator::IterDependent { var, slot, src } => {
                write!(f, "Iter({src} as {var}@{slot})")
            }
            Operator::Bind { var, slot, src } => write!(f, "Bind({var}@{slot} := {src})"),
            Operator::Filter { left, right } => write!(f, "Filter({left} = {right})"),
            Operator::HashJoin {
                row_var,
                slot,
                root,
                build_key,
                probe_key,
                ..
            } => write!(
                f,
                "HashJoin({root} as {row_var}@{slot} on {build_key} = {probe_key})"
            ),
        }
    }
}

/// A hoisted ground filter: both sides are environment-independent, so
/// it is evaluated once, before the pipeline runs.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundFilter {
    pub left: Access,
    pub right: Access,
}

/// The compiled projection.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledOutput {
    /// `select struct(...)` — field name plus accessor, sorted by name.
    Struct(Vec<(String, Access)>),
    /// `select P`.
    Path(Access),
}

/// A compiled plan: hoisted ground filters, the operator pipeline, the
/// final projection, and the register/table/root layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    /// Environment-independent filters, evaluated once up front.
    pub ground: Vec<GroundFilter>,
    pub ops: Vec<Operator>,
    pub output: CompiledOutput,
    /// Register-file size (one slot per `from` binding, shadowed names
    /// included — each binding owns a distinct slot).
    pub n_slots: usize,
    /// Number of hash-join tables.
    pub n_tables: usize,
    /// Interned schema roots, resolved once per execution.
    pub roots: Vec<String>,
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, g) in self.ground.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "Ground({} = {})", g.left, g.right)?;
        }
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 || !self.ground.is_empty() {
                write!(f, " -> ")?;
            }
            write!(f, "{op}")?;
        }
        if !self.ops.is_empty() || !self.ground.is_empty() {
            write!(f, " -> ")?;
        }
        write!(f, "Project")
    }
}

/// Compilation options.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileOptions {
    /// Turn `Scan + Filter(equi-join)` pairs into on-the-fly hash joins.
    pub hash_joins: bool,
}

/// Per-operator row counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Rows arriving at the operator: invocations for scans/iterations/
    /// binds, rows tested for filters, probes for hash joins.
    pub input: u64,
    /// Rows the operator passed downstream.
    pub output: u64,
}

/// Execution counters for one pipeline run — the "where did the rows
/// go" record EXPLAIN-style reporting and experiment E15 print.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Parallel to [`Pipeline::ops`].
    pub per_op: Vec<OpStats>,
    /// Rows reaching the final projection (before set-semantics dedup).
    pub rows_emitted: u64,
    /// Hoisted ground filters evaluated.
    pub ground_filters: u64,
    /// A ground filter was false: the pipeline never ran.
    pub short_circuited: bool,
    /// Hash-join tables actually built (on first probe).
    pub tables_built: u64,
    /// Hash-join tables never built because no probe reached them.
    pub tables_skipped: u64,
}

impl PipelineStats {
    fn for_pipeline(p: &Pipeline) -> PipelineStats {
        PipelineStats {
            per_op: vec![OpStats::default(); p.ops.len()],
            ..Default::default()
        }
    }

    /// Total rows that flowed between operators (sum of per-operator
    /// outputs plus emitted rows) — the throughput numerator E15 uses.
    pub fn rows_processed(&self) -> u64 {
        self.per_op.iter().map(|o| o.output).sum::<u64>() + self.rows_emitted
    }

    /// Renders the per-operator counters next to the pipeline.
    pub fn render(&self, pipeline: &Pipeline) -> String {
        let mut s = String::new();
        if self.ground_filters > 0 {
            s.push_str(&format!(
                "ground filters: {} evaluated once{}\n",
                self.ground_filters,
                if self.short_circuited {
                    " (short-circuited: empty result)"
                } else {
                    ""
                }
            ));
        }
        let ops: Vec<String> = pipeline.ops.iter().map(ToString::to_string).collect();
        let width = ops.iter().map(String::len).max().unwrap_or(0);
        for (op, st) in ops.iter().zip(&self.per_op) {
            s.push_str(&format!(
                "{op:<width$}  in {:>9}  out {:>9}\n",
                st.input, st.output
            ));
        }
        s.push_str(&format!(
            "{:<width$}  in {:>9}\n",
            "Project", self.rows_emitted
        ));
        s.push_str(&format!(
            "hash tables: {} built, {} skipped (lazy)\n",
            self.tables_built, self.tables_skipped
        ));
        s
    }
}

fn intern_root(roots: &mut Vec<String>, name: &str) -> usize {
    match roots.iter().position(|r| r == name) {
        Some(i) => i,
        None => {
            roots.push(name.to_string());
            roots.len() - 1
        }
    }
}

/// Resolves a path to an [`Access`] under the current variable→slot map.
fn compile_access(p: &Path, slots: &BTreeMap<String, usize>, roots: &mut Vec<String>) -> Access {
    let (base_path, fields) = p.split_fields();
    let base = match base_path {
        Path::Var(v) => match slots.get(v) {
            Some(&i) => AccessBase::Slot(i),
            None => AccessBase::UnknownVar(v.clone()),
        },
        Path::Root(r) => AccessBase::Root {
            id: intern_root(roots, r),
            name: r.clone(),
        },
        Path::Const(c) => AccessBase::Const(Value::from(c)),
        Path::Dom(q) => AccessBase::Dom(Box::new(compile_access(q, slots, roots))),
        Path::Get(m, k) => AccessBase::Get(
            Box::new(compile_access(m, slots, roots)),
            Box::new(compile_access(k, slots, roots)),
        ),
        Path::GetOrEmpty(m, k) => AccessBase::GetOrEmpty(
            Box::new(compile_access(m, slots, roots)),
            Box::new(compile_access(k, slots, roots)),
        ),
        // `split_fields` peeled every trailing projection.
        Path::Field(..) => unreachable!("split_fields returned a Field base"),
    };
    Access {
        base,
        fields: fields.into_iter().map(str::to_string).collect(),
        base_display: base_path.to_string(),
    }
}

/// Compiles a plan into a slot-resolved pipeline: bindings become
/// scans/iterations over fixed registers, each condition is placed at
/// the earliest point where all its variables hold their final binding
/// (the interpreter's placement, so results and error behavior agree),
/// ground conditions are hoisted ahead of the row loop, and (optionally)
/// root scans joined by equality to earlier registers become lazy hash
/// joins.
pub fn compile(q: &Query, options: CompileOptions) -> Pipeline {
    // The *last* binding level of each variable: conditions attach after
    // it, exactly as in `Evaluator::eval_query`.
    let mut last_level: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, b) in q.from.iter().enumerate() {
        last_level.insert(&b.var, i);
    }
    // Condition indices per level, in `where` order. Level 0 = ground.
    let mut conds_at: Vec<Vec<usize>> = vec![Vec::new(); q.from.len() + 1];
    for (ci, eq) in q.where_.iter().enumerate() {
        let level = eq
            .free_vars()
            .iter()
            .map(|v| last_level.get(v.as_str()).map_or(0, |i| i + 1))
            .max()
            .unwrap_or(0);
        conds_at[level].push(ci);
    }

    let mut slots: BTreeMap<String, usize> = BTreeMap::new();
    let mut roots: Vec<String> = Vec::new();
    let mut ops: Vec<Operator> = Vec::new();
    let mut n_tables = 0usize;

    let ground: Vec<GroundFilter> = conds_at[0]
        .iter()
        .map(|&ci| {
            let eq = &q.where_[ci];
            GroundFilter {
                left: compile_access(&eq.0, &slots, &mut roots),
                right: compile_access(&eq.1, &slots, &mut roots),
            }
        })
        .collect();

    for (i, b) in q.from.iter().enumerate() {
        let slot = i;
        let mut level_conds: Vec<usize> = conds_at[i + 1].clone();

        // Hash-join candidacy: an Iter over a root, some earlier binding
        // to probe from, and an equi-join condition at this level linking
        // this binding's rows (alone on one side) to earlier registers.
        let mut hash: Option<Equality> = None;
        if options.hash_joins
            && i > 0
            && b.kind == BindKind::Iter
            && matches!(b.src, Path::Root(_))
            && last_level.get(b.var.as_str()) == Some(&i)
        {
            let is_candidate = |eq: &Equality| {
                let lv = eq.0.free_vars();
                let rv = eq.1.free_vars();
                let this = |vs: &BTreeSet<String>| vs.len() == 1 && vs.contains(&b.var);
                let other = |vs: &BTreeSet<String>| !vs.contains(&b.var);
                (this(&lv) && other(&rv)) || (this(&rv) && other(&lv))
            };
            if let Some(pos) = level_conds
                .iter()
                .position(|&ci| is_candidate(&q.where_[ci]))
            {
                let ci = level_conds.remove(pos);
                let eq = &q.where_[ci];
                hash = Some(if eq.0.mentions_var(&b.var) {
                    eq.clone()
                } else {
                    Equality(eq.1.clone(), eq.0.clone())
                });
            }
        }

        match hash {
            Some(Equality(build, probe)) => {
                let Path::Root(root) = &b.src else {
                    unreachable!("hash-join candidacy requires a root scan")
                };
                // Probe side resolves against the *outer* registers; the
                // build side sees this binding's fresh slot.
                let probe_key = compile_access(&probe, &slots, &mut roots);
                slots.insert(b.var.clone(), slot);
                let build_key = compile_access(&build, &slots, &mut roots);
                let root_id = intern_root(&mut roots, root);
                ops.push(Operator::HashJoin {
                    row_var: b.var.clone(),
                    slot,
                    root: root.clone(),
                    root_id,
                    build_key,
                    probe_key,
                    table: n_tables,
                });
                n_tables += 1;
            }
            None => {
                let op = match (&b.kind, &b.src) {
                    (BindKind::Iter, Path::Root(root)) => Operator::Scan {
                        var: b.var.clone(),
                        slot,
                        root: root.clone(),
                        root_id: intern_root(&mut roots, root),
                    },
                    (BindKind::Iter, src) => Operator::IterDependent {
                        var: b.var.clone(),
                        slot,
                        src: compile_access(src, &slots, &mut roots),
                    },
                    (BindKind::Let, src) => Operator::Bind {
                        var: b.var.clone(),
                        slot,
                        src: compile_access(src, &slots, &mut roots),
                    },
                };
                slots.insert(b.var.clone(), slot);
                ops.push(op);
            }
        }

        for &ci in &level_conds {
            let eq = &q.where_[ci];
            ops.push(Operator::Filter {
                left: compile_access(&eq.0, &slots, &mut roots),
                right: compile_access(&eq.1, &slots, &mut roots),
            });
        }
    }

    let output = match &q.output {
        Output::Struct(fields) => CompiledOutput::Struct(
            fields
                .iter()
                .map(|(name, p)| (name.clone(), compile_access(p, &slots, &mut roots)))
                .collect(),
        ),
        Output::Path(p) => CompiledOutput::Path(compile_access(p, &slots, &mut roots)),
    };

    Pipeline {
        ground,
        ops,
        output,
        n_slots: q.from.len(),
        n_tables,
        roots,
    }
}

/// A lazily built hash-join table: borrowed keys over borrowed rows.
type JoinTable<'a> = BTreeMap<CowValue<'a>, Vec<&'a Value>>;

/// The executor state: the register file, lazily resolved roots, lazily
/// built join tables, counters, and the result accumulator.
struct Machine<'a, 'p> {
    ev: &'p Evaluator<'a>,
    pipeline: &'p Pipeline,
    /// Interned roots resolved once per execution (`None` = absent root;
    /// the error only surfaces if an operator actually reads it).
    root_vals: Vec<Option<&'a Value>>,
    regs: Vec<CowValue<'a>>,
    tables: Vec<Option<JoinTable<'a>>>,
    stats: PipelineStats,
    out: BTreeSet<Value>,
}

impl<'a> Machine<'a, '_> {
    fn root(&self, id: usize, name: &str) -> Result<&'a Value, EvalError> {
        self.root_vals[id].ok_or_else(|| EvalError::UnknownRoot(name.to_string()))
    }

    /// Resolves an accessor to a value owned by the *instance* when it
    /// never passes through a computed (owned) register: the compiled
    /// mirror of the interpreter's `instance_value`. `None` both when
    /// the value is not instance-anchored and when resolution would
    /// fail — the caller falls back to [`Self::eval_access`], which
    /// computes the value or produces the canonical error.
    fn anchored(&self, a: &Access) -> Option<&'a Value> {
        let mut cur: &'a Value = match &a.base {
            AccessBase::Slot(i) => match &self.regs[*i] {
                Cow::Borrowed(v) => v,
                Cow::Owned(_) => return None,
            },
            AccessBase::Root { id, .. } => self.root_vals[*id]?,
            AccessBase::Const(_) | AccessBase::Dom(_) | AccessBase::UnknownVar(_) => return None,
            AccessBase::Get(m, k) | AccessBase::GetOrEmpty(m, k) => {
                // Resolve the dictionary first: if it is not anchored,
                // the key must not be evaluated here (the fallback would
                // evaluate it a second time).
                let map = self.anchored(m)?.as_dict()?;
                let key = self.eval_access(k).ok()?;
                map.get(key.as_ref())?
            }
        };
        for name in &a.fields {
            cur = match cur {
                Value::Struct(fields) => fields.get(name)?,
                oid @ Value::Oid(..) => self.ev.oid_field(oid, name).ok()?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Anchored-or-owned evaluation: a borrow with the full instance
    /// lifetime when the accessor is instance-anchored, an owned value
    /// (or the canonical error) otherwise. This is what binds registers
    /// and join keys.
    fn eval_detached(&self, a: &Access) -> Result<CowValue<'a>, EvalError> {
        match self.anchored(a) {
            Some(v) => Ok(Cow::Borrowed(v)),
            None => Ok(Cow::Owned(self.eval_access(a)?.into_owned())),
        }
    }

    /// Reference-preserving accessor evaluation — the compiled mirror of
    /// the interpreter's `eval_ref`, producing identical values and
    /// identical errors.
    fn eval_access<'r>(&'r self, a: &'r Access) -> Result<Cow<'r, Value>, EvalError> {
        let mut cur = self.eval_base(a)?;
        for (idx, name) in a.fields.iter().enumerate() {
            cur = match cur {
                Cow::Borrowed(Value::Struct(fields)) => fields
                    .get(name)
                    .map(Cow::Borrowed)
                    .ok_or_else(|| EvalError::NoSuchField {
                        value: a.prefix_display(idx),
                        field: name.clone(),
                    })?,
                Cow::Owned(Value::Struct(mut fields)) => fields
                    .remove(name)
                    .map(Cow::Owned)
                    .ok_or_else(|| EvalError::NoSuchField {
                        value: a.prefix_display(idx),
                        field: name.clone(),
                    })?,
                // ODMG implicit dereferencing (or NoSuchField).
                base => self.ev.oid_field(base.as_ref(), name).map(Cow::Borrowed)?,
            };
        }
        Ok(cur)
    }

    fn eval_base<'r>(&'r self, a: &'r Access) -> Result<Cow<'r, Value>, EvalError> {
        match &a.base {
            AccessBase::Slot(i) => Ok(Cow::Borrowed(self.regs[*i].as_ref())),
            AccessBase::UnknownVar(v) => Err(EvalError::UnknownVar(v.clone())),
            AccessBase::Root { id, name } => self.root(*id, name).map(Cow::Borrowed),
            AccessBase::Const(v) => Ok(Cow::Borrowed(v)),
            // The dom/lookup cores are shared with the interpreter's
            // `eval_ref` (eval.rs), so results and error text cannot
            // drift apart between the two engines.
            AccessBase::Dom(inner) => {
                let base = self.eval_access(inner)?;
                crate::eval::dict_dom(base.as_ref(), || inner.to_string()).map(Cow::Owned)
            }
            AccessBase::Get(m, k) => {
                let key = self.eval_access(k)?.into_owned();
                let dict = self.eval_access(m)?;
                crate::eval::dict_get(dict, &key, || m.to_string())
            }
            AccessBase::GetOrEmpty(m, k) => {
                let key = self.eval_access(k)?.into_owned();
                let dict = self.eval_access(m)?;
                crate::eval::dict_get_or_empty(dict, &key, || m.to_string())
            }
        }
    }

    /// Builds the hash table of the `HashJoin` at `op_idx` if this is
    /// its first probe. One pass over the root: rows bind by reference
    /// into the join's own slot, keys stay borrowed whenever the key
    /// path is instance-anchored.
    fn ensure_table(&mut self, op_idx: usize) -> Result<(), EvalError> {
        let pipeline = self.pipeline;
        let Operator::HashJoin {
            slot,
            root,
            root_id,
            build_key,
            table,
            ..
        } = &pipeline.ops[op_idx]
        else {
            unreachable!("ensure_table on a non-join operator")
        };
        if self.tables[*table].is_some() {
            return Ok(());
        }
        let set = self.root(*root_id, root)?;
        let rows = set
            .as_set()
            .ok_or_else(|| EvalError::NotASet(format!("{root} = {set}")))?;
        let mut t: JoinTable<'a> = BTreeMap::new();
        for row in rows {
            self.regs[*slot] = Cow::Borrowed(row);
            let key = self.eval_detached(build_key)?;
            t.entry(key).or_default().push(row);
        }
        self.stats.tables_built += 1;
        self.tables[*table] = Some(t);
        Ok(())
    }

    fn emit(&mut self) -> Result<(), EvalError> {
        let pipeline = self.pipeline;
        let row = match &pipeline.output {
            CompiledOutput::Struct(fields) => {
                let mut m = BTreeMap::new();
                for (name, a) in fields {
                    m.insert(name.clone(), self.eval_access(a)?.into_owned());
                }
                Value::Struct(m)
            }
            CompiledOutput::Path(a) => self.eval_access(a)?.into_owned(),
        };
        self.stats.rows_emitted += 1;
        self.out.insert(row);
        Ok(())
    }

    fn run(&mut self, op_idx: usize) -> Result<(), EvalError> {
        let pipeline = self.pipeline;
        if op_idx == pipeline.ops.len() {
            return self.emit();
        }
        self.stats.per_op[op_idx].input += 1;
        match &pipeline.ops[op_idx] {
            Operator::Scan {
                slot,
                root,
                root_id,
                ..
            } => {
                let set = self.root(*root_id, root)?;
                let items = set
                    .as_set()
                    .ok_or_else(|| EvalError::NotASet(format!("{root} = {set}")))?;
                for item in items {
                    self.regs[*slot] = Cow::Borrowed(item);
                    self.stats.per_op[op_idx].output += 1;
                    self.run(op_idx + 1)?;
                }
            }
            Operator::IterDependent { slot, src, .. } => {
                // Items of an instance-owned collection outlive the
                // register file, so they bind by reference — zero clones
                // per row. Derived collections (dom sets, collections
                // reached through owned registers) clone their items,
                // one at a time, exactly like the interpreter.
                if let Some(items) = self.anchored(src).and_then(|v| v.as_set()) {
                    for item in items {
                        self.regs[*slot] = Cow::Borrowed(item);
                        self.stats.per_op[op_idx].output += 1;
                        self.run(op_idx + 1)?;
                    }
                } else {
                    let items: Vec<Value> = match self.eval_access(src)? {
                        Cow::Borrowed(Value::Set(items)) => items.iter().cloned().collect(),
                        Cow::Owned(Value::Set(items)) => items.into_iter().collect(),
                        other => {
                            return Err(EvalError::NotASet(format!("{} = {}", src, other.as_ref())))
                        }
                    };
                    for item in items {
                        self.regs[*slot] = Cow::Owned(item);
                        self.stats.per_op[op_idx].output += 1;
                        self.run(op_idx + 1)?;
                    }
                }
            }
            Operator::Bind { slot, src, .. } => {
                self.regs[*slot] = self.eval_detached(src)?;
                self.stats.per_op[op_idx].output += 1;
                self.run(op_idx + 1)?;
            }
            Operator::Filter { left, right } => {
                let pass = {
                    let l = self.eval_access(left)?;
                    let r = self.eval_access(right)?;
                    l.as_ref() == r.as_ref()
                };
                if pass {
                    self.stats.per_op[op_idx].output += 1;
                    self.run(op_idx + 1)?;
                }
            }
            Operator::HashJoin {
                slot,
                probe_key,
                table,
                ..
            } => {
                // Build (or reuse) the table first: when the joined root
                // is empty the interpreter's inner loop never evaluates
                // the join condition, so the probe key must not be
                // evaluated against an empty table either.
                self.ensure_table(op_idx)?;
                // Move the table out while descending so the registers
                // stay mutable; each join owns a distinct table index,
                // so no downstream operator can observe the gap.
                let t = self.tables[*table].take().expect("table built");
                let mut result = Ok(());
                if !t.is_empty() {
                    match self.eval_detached(probe_key) {
                        Err(e) => result = Err(e),
                        Ok(key) => {
                            if let Some(matches) = t.get(key.as_ref()) {
                                for &row in matches {
                                    self.regs[*slot] = Cow::Borrowed(row);
                                    self.stats.per_op[op_idx].output += 1;
                                    result = self.run(op_idx + 1);
                                    if result.is_err() {
                                        break;
                                    }
                                }
                            }
                        }
                    }
                }
                self.tables[*table] = Some(t);
                result?;
            }
        }
        Ok(())
    }
}

/// Executes a pipeline against the evaluator's instance.
pub fn execute(ev: &Evaluator<'_>, pipeline: &Pipeline) -> Result<BTreeSet<Value>, EvalError> {
    execute_with_stats(ev, pipeline).map(|(rows, _)| rows)
}

/// Executes a pipeline and reports per-operator row counters alongside
/// the result.
pub fn execute_with_stats(
    ev: &Evaluator<'_>,
    pipeline: &Pipeline,
) -> Result<(BTreeSet<Value>, PipelineStats), EvalError> {
    let instance = ev.instance();
    let mut m = Machine {
        ev,
        pipeline,
        root_vals: pipeline.roots.iter().map(|r| instance.get(r)).collect(),
        regs: vec![Cow::Owned(Value::Bool(false)); pipeline.n_slots],
        tables: (0..pipeline.n_tables).map(|_| None).collect(),
        stats: PipelineStats::for_pipeline(pipeline),
        out: BTreeSet::new(),
    };
    // Hoisted ground filters: once, before any row is touched.
    for g in &pipeline.ground {
        m.stats.ground_filters += 1;
        let pass = {
            let l = m.eval_access(&g.left)?;
            let r = m.eval_access(&g.right)?;
            l.as_ref() == r.as_ref()
        };
        if !pass {
            m.stats.short_circuited = true;
            m.stats.tables_skipped = pipeline.n_tables as u64;
            return Ok((m.out, m.stats));
        }
    }
    m.run(0)?;
    m.stats.tables_skipped = pipeline.n_tables as u64 - m.stats.tables_built;
    Ok((m.out, m.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use pcql::parser::parse_query;
    use pcql::Binding;

    fn rs_instance(n: i64) -> Instance {
        let mut i = Instance::new();
        i.set(
            "R",
            Value::set(
                (0..n).map(|k| Value::record([("A", Value::Int(k)), ("B", Value::Int(k % 5))])),
            ),
        );
        i.set(
            "S",
            Value::set(
                (0..n).map(|k| Value::record([("B", Value::Int(k % 7)), ("C", Value::Int(k))])),
            ),
        );
        i
    }

    #[test]
    fn pipeline_matches_interpreter() {
        let inst = rs_instance(40);
        let ev = Evaluator::new(&inst);
        for src in [
            "select struct(A = r.A) from R r where r.B = 2",
            "select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B",
            "select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B and s.C = 3",
        ] {
            let q = parse_query(src).unwrap();
            let reference = ev.eval_query(&q).unwrap();
            for options in [
                CompileOptions { hash_joins: false },
                CompileOptions { hash_joins: true },
            ] {
                let pipeline = compile(&q, options);
                let rows = execute(&ev, &pipeline).unwrap();
                assert_eq!(rows, reference, "{src} with {options:?}");
            }
        }
    }

    #[test]
    fn hash_join_operator_is_used() {
        let q =
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
        let nl = compile(&q, CompileOptions { hash_joins: false });
        assert!(nl
            .ops
            .iter()
            .all(|op| !matches!(op, Operator::HashJoin { .. })));
        let hj = compile(&q, CompileOptions { hash_joins: true });
        assert!(
            hj.ops
                .iter()
                .any(|op| matches!(op, Operator::HashJoin { .. })),
            "pipeline: {hj}"
        );
        // The first binding can't be hash-joined (nothing bound yet).
        assert!(matches!(hj.ops[0], Operator::Scan { .. }));
    }

    #[test]
    fn filters_are_placed_earliest() {
        let q = parse_query(
            "select struct(A = r.A, C = s.C) from R r, S s where r.B = 2 and s.C = r.A",
        )
        .unwrap();
        let p = compile(&q, CompileOptions::default());
        // r.B = 2 must come before the S scan.
        let filter_pos = p
            .ops
            .iter()
            .position(|op| matches!(op, Operator::Filter { left, .. } if left.to_string() == "r.B"))
            .unwrap();
        let s_pos = p
            .ops
            .iter()
            .position(|op| matches!(op, Operator::Scan { root, .. } if root == "S"))
            .unwrap();
        assert!(filter_pos < s_pos, "pipeline: {p}");
    }

    #[test]
    fn ground_filters_are_hoisted_and_short_circuit() {
        let inst = rs_instance(20);
        let ev = Evaluator::new(&inst);
        // `1 = 2` is ground: it must run once, before the scan, and
        // short-circuit the whole pipeline.
        let q = parse_query("select struct(A = r.A) from R r where 1 = 2").unwrap();
        let p = compile(&q, CompileOptions::default());
        assert_eq!(p.ground.len(), 1, "pipeline: {p}");
        assert!(p
            .ops
            .iter()
            .all(|op| !matches!(op, Operator::Filter { .. })));
        let (rows, stats) = execute_with_stats(&ev, &p).unwrap();
        assert!(rows.is_empty());
        assert!(stats.short_circuited);
        assert_eq!(stats.per_op[0].input, 0, "scan ran despite ground false");
        assert_eq!(ev.eval_query(&q).unwrap(), rows);

        // A true ground filter evaluates once and lets the rows through.
        let q = parse_query("select struct(A = r.A) from R r where 2 = 2").unwrap();
        let p = compile(&q, CompileOptions::default());
        let (rows, stats) = execute_with_stats(&ev, &p).unwrap();
        assert_eq!(rows, ev.eval_query(&q).unwrap());
        assert_eq!(stats.ground_filters, 1);
        assert!(!stats.short_circuited);
    }

    #[test]
    fn hash_tables_build_lazily() {
        let mut inst = rs_instance(10);
        inst.set("Empty", Value::Set(BTreeSet::new()));
        let ev = Evaluator::new(&inst);
        // The outer stream is empty: the join table must never be built.
        let q = Query::new(
            Output::record([("C", Path::var("s").field("C"))]),
            vec![
                Binding::iter("e", Path::root("Empty")),
                Binding::iter("s", Path::root("S")),
            ],
            vec![Equality(
                Path::var("e").field("B"),
                Path::var("s").field("B"),
            )],
        );
        let p = compile(&q, CompileOptions { hash_joins: true });
        assert_eq!(p.n_tables, 1, "pipeline: {p}");
        let (rows, stats) = execute_with_stats(&ev, &p).unwrap();
        assert!(rows.is_empty());
        assert_eq!(stats.tables_built, 0);
        assert_eq!(stats.tables_skipped, 1);

        // With a non-empty outer stream the same pipeline builds once.
        let q2 =
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
        let p2 = compile(&q2, CompileOptions { hash_joins: true });
        let (rows2, stats2) = execute_with_stats(&ev, &p2).unwrap();
        assert_eq!(rows2, ev.eval_query(&q2).unwrap());
        assert_eq!(stats2.tables_built, 1);
        assert_eq!(stats2.tables_skipped, 0);
    }

    #[test]
    fn probe_key_errors_do_not_surface_when_join_is_empty() {
        // S is empty, so the interpreter's inner loop never evaluates
        // the join condition — the bad probe path r.MISSING must not
        // error in the pipeline either.
        let mut inst = Instance::new();
        inst.set("R", Value::set([Value::record([("A", Value::Int(1))])]));
        inst.set("S", Value::Set(BTreeSet::new()));
        let ev = Evaluator::new(&inst);
        let q = parse_query("select struct(X = r.A) from R r, S s where r.MISSING = s.B").unwrap();
        assert_eq!(ev.eval_query(&q), Ok(BTreeSet::new()));
        for options in [
            CompileOptions { hash_joins: false },
            CompileOptions { hash_joins: true },
        ] {
            let p = compile(&q, options);
            assert_eq!(execute(&ev, &p), Ok(BTreeSet::new()), "pipeline: {p}");
        }
    }

    #[test]
    fn not_a_set_error_matches_the_interpreter() {
        // Scanning a dictionary root must report the interpreter's
        // `NotASet("<root> = <value>")`, not a bare root name.
        let mut inst = Instance::new();
        inst.set("D", Value::dict([(Value::Int(1), Value::Int(2))]));
        let ev = Evaluator::new(&inst);
        let q = parse_query("select struct(X = d.A) from D d").unwrap();
        let want = ev.eval_query(&q).unwrap_err();
        let p = compile(&q, CompileOptions::default());
        assert_eq!(execute(&ev, &p).unwrap_err(), want);
    }

    #[test]
    fn slot_layout_gives_every_binding_its_own_register() {
        let q =
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
        let p = compile(&q, CompileOptions::default());
        assert_eq!(p.n_slots, 2);
        let slots: Vec<usize> = p
            .ops
            .iter()
            .filter_map(|op| match op {
                Operator::Scan { slot, .. } => Some(*slot),
                _ => None,
            })
            .collect();
        assert_eq!(slots, vec![0, 1]);
        // The filter reads both registers.
        let Some(Operator::Filter { left, right }) = p
            .ops
            .iter()
            .find(|op| matches!(op, Operator::Filter { .. }))
        else {
            panic!("no filter in {p}")
        };
        assert_eq!(left.slot(), Some(0));
        assert_eq!(right.slot(), Some(1));
    }

    #[test]
    fn shadowed_variable_names_get_fresh_slots() {
        // `from R x, S x`: the inner binding shadows the outer; the
        // output must read the *inner* register, as the interpreter does.
        let inst = rs_instance(12);
        let ev = Evaluator::new(&inst);
        let q = Query::new(
            Output::record([("C", Path::var("x").field("C"))]),
            vec![
                Binding::iter("x", Path::root("R")),
                Binding::iter("x", Path::root("S")),
            ],
            vec![],
        );
        let p = compile(&q, CompileOptions::default());
        assert_eq!(p.n_slots, 2);
        let CompiledOutput::Struct(fields) = &p.output else {
            panic!("struct output expected")
        };
        assert_eq!(fields[0].1.slot(), Some(1), "output must read the inner x");
        assert_eq!(execute(&ev, &p).unwrap(), ev.eval_query(&q).unwrap());
    }

    #[test]
    fn conditions_on_shadowed_names_follow_the_last_binding() {
        let inst = rs_instance(12);
        let ev = Evaluator::new(&inst);
        // `x.B = 1` mentions the re-bound x: like the interpreter, it
        // must be placed after the *last* binding of x and read slot 1.
        let q = Query::new(
            Output::record([("C", Path::var("x").field("C"))]),
            vec![
                Binding::iter("x", Path::root("R")),
                Binding::iter("x", Path::root("S")),
            ],
            vec![Equality(Path::var("x").field("B"), Path::int(1))],
        );
        for options in [
            CompileOptions { hash_joins: false },
            CompileOptions { hash_joins: true },
        ] {
            let p = compile(&q, options);
            if let Some(Operator::Filter { left, .. }) = p
                .ops
                .iter()
                .find(|op| matches!(op, Operator::Filter { .. }))
            {
                assert_eq!(left.slot(), Some(1), "filter reads the outer x: {p}");
            }
            assert_eq!(
                execute(&ev, &p).unwrap(),
                ev.eval_query(&q).unwrap(),
                "pipeline: {p}"
            );
        }
    }

    #[test]
    fn dependent_iterations_and_lookups() {
        let mut inst = Instance::new();
        inst.set(
            "SI",
            Value::dict([(
                Value::Int(1),
                Value::set([Value::record([("C", Value::Int(10))])]),
            )]),
        );
        let ev = Evaluator::new(&inst);
        let q = parse_query("select struct(C = t.C) from SI{1} t").unwrap();
        let p = compile(&q, CompileOptions::default());
        assert!(matches!(p.ops[0], Operator::IterDependent { .. }));
        assert_eq!(execute(&ev, &p).unwrap().len(), 1);
        // Missing key: empty, not an error.
        let q2 = parse_query("select struct(C = t.C) from SI{9} t").unwrap();
        let p2 = compile(&q2, CompileOptions::default());
        assert!(execute(&ev, &p2).unwrap().is_empty());
    }

    #[test]
    fn let_bindings_compile() {
        let mut inst = Instance::new();
        inst.set(
            "I",
            Value::dict([(Value::Int(1), Value::record([("C", Value::Int(7))]))]),
        );
        let ev = Evaluator::new(&inst);
        let q = parse_query("select struct(C = x.C) from let x := I[1]").unwrap();
        let p = compile(&q, CompileOptions::default());
        assert!(matches!(p.ops[0], Operator::Bind { .. }));
        assert_eq!(execute(&ev, &p).unwrap().len(), 1);
    }

    #[test]
    fn multiple_hash_joins() {
        let mut inst = rs_instance(30);
        inst.set(
            "T",
            Value::set(
                (0..30).map(|k| Value::record([("C", Value::Int(k)), ("D", Value::Int(k * 2))])),
            ),
        );
        let ev = Evaluator::new(&inst);
        let q = parse_query(
            "select struct(A = r.A, D = t.D) from R r, S s, T t \
             where r.B = s.B and s.C = t.C",
        )
        .unwrap();
        let p = compile(&q, CompileOptions { hash_joins: true });
        let n_hash = p
            .ops
            .iter()
            .filter(|op| matches!(op, Operator::HashJoin { .. }))
            .count();
        assert_eq!(n_hash, 2, "pipeline: {p}");
        assert_eq!(p.n_tables, 2);
        let (rows, stats) = execute_with_stats(&ev, &p).unwrap();
        assert_eq!(rows, ev.eval_query(&q).unwrap());
        assert_eq!(stats.tables_built, 2);
    }

    #[test]
    fn stats_count_rows_per_operator() {
        let inst = rs_instance(10);
        let ev = Evaluator::new(&inst);
        let q = parse_query("select struct(A = r.A) from R r where r.B = 2").unwrap();
        let p = compile(&q, CompileOptions::default());
        let (rows, stats) = execute_with_stats(&ev, &p).unwrap();
        // Scan: one invocation, 10 rows out; filter: 10 in, 2 out (B = 2
        // hits k = 2, 7); project: 2 rows.
        assert_eq!(
            stats.per_op[0],
            OpStats {
                input: 1,
                output: 10
            }
        );
        assert_eq!(stats.per_op[1].input, 10);
        assert_eq!(stats.per_op[1].output, stats.rows_emitted);
        assert_eq!(stats.rows_emitted as usize, rows.len());
        let rendered = stats.render(&p);
        assert!(rendered.contains("Scan(R as r@0)"), "{rendered}");
        assert!(rendered.contains("Project"), "{rendered}");
    }

    #[test]
    fn display_is_readable() {
        let q =
            parse_query("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B").unwrap();
        let p = compile(&q, CompileOptions { hash_joins: true });
        let text = p.to_string();
        assert!(text.contains("Scan(R as r@0)"), "{text}");
        assert!(text.contains("HashJoin(S as s@1"), "{text}");
        assert!(text.ends_with("Project"));
    }
}
