//! Database instances: named root values.

use std::collections::BTreeMap;

use crate::value::Value;

/// An instance: a value for every (populated) schema root.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Instance {
    pub roots: BTreeMap<String, Value>,
}

impl Instance {
    pub fn new() -> Instance {
        Instance::default()
    }

    pub fn set(&mut self, root: impl Into<String>, value: Value) -> &mut Self {
        self.roots.insert(root.into(), value);
        self
    }

    pub fn get(&self, root: &str) -> Option<&Value> {
        self.roots.get(root)
    }

    /// Cardinality of a root: `|set|` or `|dom(dict)|`.
    pub fn cardinality(&self, root: &str) -> Option<usize> {
        match self.roots.get(root)? {
            Value::Set(s) => Some(s.len()),
            Value::Dict(d) => Some(d.len()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_round_trip() {
        let mut i = Instance::new();
        i.set("R", Value::set([Value::Int(1), Value::Int(2)]));
        i.set("M", Value::dict([(Value::Int(1), Value::str("a"))]));
        assert_eq!(i.cardinality("R"), Some(2));
        assert_eq!(i.cardinality("M"), Some(1));
        assert_eq!(i.cardinality("missing"), None);
        assert!(i.get("R").is_some());
    }
}
