//! Constraint checking: does an instance satisfy an EPCD?
//!
//! Used by tests to validate that (a) generated instances satisfy the
//! declared semantic constraints and (b) materialized access structures
//! satisfy their own characterizing constraints — the ground truth that
//! makes chase/backchase rewrites sound on these instances.

use std::collections::BTreeMap;

use pcql::query::{Binding, Equality};
use pcql::Dependency;

use crate::eval::{EvalError, Evaluator};
use crate::value::Value;

/// Does the instance behind `ev` satisfy `dep`?
pub fn satisfies(ev: &Evaluator<'_>, dep: &Dependency) -> Result<bool, EvalError> {
    let mut env = BTreeMap::new();
    all_universal(ev, dep, &dep.forall, &mut env)
}

fn all_universal(
    ev: &Evaluator<'_>,
    dep: &Dependency,
    rest: &[Binding],
    env: &mut BTreeMap<String, Value>,
) -> Result<bool, EvalError> {
    match rest.split_first() {
        None => {
            if !eqs_hold(ev, &dep.premise, env)? {
                return Ok(true); // premise false: vacuously satisfied
            }
            some_existential(ev, dep, &dep.exists, env)
        }
        Some((b, tail)) => {
            let src = ev.eval_path(env, &b.src)?;
            let Value::Set(items) = src else {
                return Err(EvalError::NotASet(b.src.to_string()));
            };
            for item in items {
                env.insert(b.var.clone(), item);
                // A premise equality whose variables are all bound and
                // which already fails makes every extension vacuously
                // satisfied — prune the subtree instead of enumerating
                // the remaining cross product.
                if !bound_eqs_hold(ev, &dep.premise, env)? {
                    continue;
                }
                if !all_universal(ev, dep, tail, env)? {
                    env.remove(&b.var);
                    return Ok(false);
                }
            }
            env.remove(&b.var);
            Ok(true)
        }
    }
}

fn some_existential(
    ev: &Evaluator<'_>,
    dep: &Dependency,
    rest: &[Binding],
    env: &mut BTreeMap<String, Value>,
) -> Result<bool, EvalError> {
    match rest.split_first() {
        None => eqs_hold(ev, &dep.conclusion, env),
        Some((b, tail)) => {
            let src = ev.eval_path(env, &b.src)?;
            let Value::Set(items) = src else {
                return Err(EvalError::NotASet(b.src.to_string()));
            };
            for item in items {
                env.insert(b.var.clone(), item);
                // A conclusion equality whose variables are all bound and
                // fails rules this witness candidate out immediately.
                if !bound_eqs_hold(ev, &dep.conclusion, env)? {
                    continue;
                }
                if some_existential(ev, dep, tail, env)? {
                    env.remove(&b.var);
                    return Ok(true);
                }
            }
            env.remove(&b.var);
            Ok(false)
        }
    }
}

fn eqs_hold(
    ev: &Evaluator<'_>,
    eqs: &[Equality],
    env: &BTreeMap<String, Value>,
) -> Result<bool, EvalError> {
    for Equality(l, r) in eqs {
        if ev.eval_path(env, l)? != ev.eval_path(env, r)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// [`eqs_hold`] restricted to the equalities whose variables are all in
/// `env`; unbound equalities are deferred, not failed. Early checking
/// turns the naive full-cross-product descent into a join-like search.
fn bound_eqs_hold(
    ev: &Evaluator<'_>,
    eqs: &[Equality],
    env: &BTreeMap<String, Value>,
) -> Result<bool, EvalError> {
    for eq @ Equality(l, r) in eqs {
        if eq.free_vars().iter().any(|v| !env.contains_key(v)) {
            continue;
        }
        if ev.eval_path(env, l)? != ev.eval_path(env, r)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Checks a whole set of constraints, returning the names of violated
/// ones.
pub fn violations(ev: &Evaluator<'_>, deps: &[Dependency]) -> Result<Vec<String>, EvalError> {
    let mut out = Vec::new();
    for d in deps {
        if !satisfies(ev, d)? {
            out.push(d.name.clone());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use pcql::parser::parse_dependency;

    fn instance() -> Instance {
        let row = |a: i64, b: i64| Value::record([("A", Value::Int(a)), ("B", Value::Int(b))]);
        let srow = |b: i64| Value::record([("B", Value::Int(b))]);
        let mut i = Instance::new();
        i.set("R", Value::set([row(1, 10), row(2, 20)]));
        i.set("S", Value::set([srow(10), srow(20), srow(99)]));
        i
    }

    #[test]
    fn tgd_satisfaction() {
        let i = instance();
        let ev = Evaluator::new(&i);
        let ric =
            parse_dependency("ric", "forall (r in R) -> exists (s in S) where r.B = s.B").unwrap();
        assert!(satisfies(&ev, &ric).unwrap());
        // The reverse direction fails (S has B = 99 unmatched).
        let ric_rev = parse_dependency(
            "ric_rev",
            "forall (s in S) -> exists (r in R) where r.B = s.B",
        )
        .unwrap();
        assert!(!satisfies(&ev, &ric_rev).unwrap());
    }

    #[test]
    fn egd_satisfaction() {
        let i = instance();
        let ev = Evaluator::new(&i);
        let key =
            parse_dependency("key", "forall (p in R) (q in R) where p.A = q.A -> p = q").unwrap();
        assert!(satisfies(&ev, &key).unwrap());
        let not_key =
            parse_dependency("nk", "forall (p in R) (q in R) where p.B = p.B -> p = q").unwrap();
        assert!(!satisfies(&ev, &not_key).unwrap());
    }

    #[test]
    fn violations_lists_names() {
        let i = instance();
        let ev = Evaluator::new(&i);
        let good =
            parse_dependency("good", "forall (r in R) -> exists (s in S) where r.B = s.B").unwrap();
        let bad =
            parse_dependency("bad", "forall (s in S) -> exists (r in R) where r.B = s.B").unwrap();
        assert_eq!(
            violations(&ev, &[good, bad]).unwrap(),
            vec!["bad".to_string()]
        );
    }
}
