//! Set-semantics evaluation of queries and plans.
//!
//! The evaluator is deliberately a *plan interpreter*, not an optimizer:
//! it executes the `from` clause as nested loops in the given order,
//! applies each `where` conjunct as soon as all its variables are bound
//! (the standard early-filter discipline the paper's plans rely on), and
//! performs dictionary lookups as constant-time map accesses. The cost
//! differences between plans P1–P4 therefore come out of the plan
//! *shapes*, exactly as in the paper.
//!
//! Failing lookups `M[k]` raise [`EvalError::LookupFailed`]; non-failing
//! lookups `M{k}` produce the empty set. ODMG implicit dereferencing on
//! OIDs resolves through the registered class dictionaries.
//!
//! The loop's environment is Cow-valued: rows iterated out of
//! instance-owned collections (base scans, index entry sets) are bound
//! *by reference*, so the nested loops clone nothing per iteration —
//! only genuinely computed values (`dom` sets, items of collections
//! reached through owned bindings) are owned. The cost-model narrative
//! is untouched: plan shape still decides the operation count, each
//! operation just stopped paying an accidental deep copy.

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use pcql::path::Path;
use pcql::query::{BindKind, Output, Query};

use crate::instance::Instance;
use crate::value::Value;

/// Evaluation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    UnknownRoot(String),
    UnknownVar(String),
    NoSuchField {
        value: String,
        field: String,
    },
    /// Failing lookup on an absent key.
    LookupFailed {
        dict: String,
        key: String,
    },
    NotASet(String),
    NotADict(String),
    /// OID dereference with no registered class dictionary.
    NoClassDict(String),
    /// OID not present in its class dictionary.
    DanglingOid(String),
    /// A fault injected at the named failpoint site (see
    /// `cb_chase::faults`) surfaced as a typed error instead of
    /// corrupting the run. Only ever produced while a `CB_FAULTS`
    /// schedule is armed.
    Injected(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownRoot(r) => write!(f, "unknown root `{r}`"),
            EvalError::UnknownVar(v) => write!(f, "unknown variable `{v}`"),
            EvalError::NoSuchField { value, field } => {
                write!(f, "no field `{field}` on {value}")
            }
            EvalError::LookupFailed { dict, key } => {
                write!(f, "lookup failed: key {key} not in dom({dict})")
            }
            EvalError::NotASet(p) => write!(f, "`{p}` is not a set"),
            EvalError::NotADict(p) => write!(f, "`{p}` is not a dictionary"),
            EvalError::NoClassDict(c) => {
                write!(f, "no class dictionary registered for class `{c}`")
            }
            EvalError::DanglingOid(o) => write!(f, "dangling OID {o}"),
            EvalError::Injected(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Read-only view of a variable environment, so one path evaluator
/// serves both plain owned environments (the public [`Evaluator::eval_path`]
/// entry point, pipelines, the constraint checker) and the Cow-valued
/// environment of the query loop.
pub trait EnvRead {
    fn lookup(&self, var: &str) -> Option<&Value>;
}

impl EnvRead for BTreeMap<String, Value> {
    fn lookup(&self, var: &str) -> Option<&Value> {
        self.get(var)
    }
}

impl EnvRead for BTreeMap<String, Cow<'_, Value>> {
    fn lookup(&self, var: &str) -> Option<&Value> {
        self.get(var).map(AsRef::as_ref)
    }
}

/// The query loop's environment: values iterated out of instance-owned
/// collections are *borrowed* into the bindings, not cloned per
/// iteration — only values that genuinely had to be computed (constants,
/// `dom` sets, items of derived collections) are owned.
type Env<'a> = BTreeMap<String, Cow<'a, Value>>;

/// The query/plan interpreter.
#[derive(Debug, Clone)]
pub struct Evaluator<'a> {
    instance: &'a Instance,
    /// class name -> dictionary root implementing it (for implicit
    /// dereferencing).
    class_dicts: BTreeMap<String, String>,
}

impl<'a> Evaluator<'a> {
    pub fn new(instance: &'a Instance) -> Evaluator<'a> {
        Evaluator {
            instance,
            class_dicts: BTreeMap::new(),
        }
    }

    /// Registers `dict_root` as the implementing dictionary of `class`.
    pub fn with_class_dict(
        mut self,
        class: impl Into<String>,
        dict_root: impl Into<String>,
    ) -> Self {
        self.class_dicts.insert(class.into(), dict_root.into());
        self
    }

    /// Builds an evaluator with every class dictionary registered in the
    /// catalog.
    pub fn for_catalog(catalog: &cb_catalog::Catalog, instance: &'a Instance) -> Evaluator<'a> {
        let mut e = Evaluator::new(instance);
        for s in catalog.structures() {
            if let cb_catalog::AccessStructure::ClassDict { class, dict, .. } = s {
                e.class_dicts.insert(class.clone(), dict.clone());
            }
        }
        e
    }

    /// Evaluates a path under an environment (any [`EnvRead`] map).
    pub fn eval_path<E: EnvRead>(&self, env: &E, p: &Path) -> Result<Value, EvalError> {
        Ok(self.eval_ref(env, p)?.into_owned())
    }

    /// The instance this evaluator reads. The returned reference carries
    /// the full instance lifetime, so callers (the pipeline executor) can
    /// hold rows across their own environment mutations.
    pub(crate) fn instance(&self) -> &'a Instance {
        self.instance
    }

    /// ODMG implicit dereferencing, shared between the interpreter and
    /// the compiled pipeline: resolve `oid.name` through the registered
    /// class dictionary to an instance-anchored value. Non-OID inputs
    /// report the same `NoSuchField` the direct field access would.
    pub(crate) fn oid_field(&self, oid_val: &Value, name: &str) -> Result<&'a Value, EvalError> {
        let Value::Oid(class, _) = oid_val else {
            return Err(EvalError::NoSuchField {
                value: oid_val.to_string(),
                field: name.to_string(),
            });
        };
        let dict_root = self
            .class_dicts
            .get(class)
            .ok_or_else(|| EvalError::NoClassDict(class.clone()))?;
        let dict = self
            .instance
            .get(dict_root)
            .ok_or_else(|| EvalError::UnknownRoot(dict_root.clone()))?;
        let map = dict
            .as_dict()
            .ok_or_else(|| EvalError::NotADict(dict_root.clone()))?;
        let entry = map
            .get(oid_val)
            .ok_or_else(|| EvalError::DanglingOid(oid_val.to_string()))?;
        entry.field(name).ok_or_else(|| EvalError::NoSuchField {
            value: entry.to_string(),
            field: name.to_string(),
        })
    }

    /// Reference-preserving evaluation: roots, dictionary entries and
    /// record fields are *borrowed*, not cloned. This is what keeps
    /// lookup-heavy plans (P3, P4, navigation joins) from accidentally
    /// copying whole dictionaries per row.
    fn eval_ref<'v, E: EnvRead>(
        &'v self,
        env: &'v E,
        p: &Path,
    ) -> Result<Cow<'v, Value>, EvalError> {
        match p {
            Path::Var(v) => env
                .lookup(v)
                .map(Cow::Borrowed)
                .ok_or_else(|| EvalError::UnknownVar(v.clone())),
            Path::Const(c) => Ok(Cow::Owned(Value::from(c))),
            Path::Root(r) => self
                .instance
                .get(r)
                .map(Cow::Borrowed)
                .ok_or_else(|| EvalError::UnknownRoot(r.clone())),
            Path::Field(q, name) => {
                let base = self.eval_ref(env, q)?;
                match base {
                    Cow::Borrowed(Value::Struct(fields)) => fields
                        .get(name)
                        .map(Cow::Borrowed)
                        .ok_or_else(|| EvalError::NoSuchField {
                            value: format!("{q}"),
                            field: name.clone(),
                        }),
                    Cow::Owned(Value::Struct(mut fields)) => fields
                        .remove(name)
                        .map(Cow::Owned)
                        .ok_or_else(|| EvalError::NoSuchField {
                            value: format!("{q}"),
                            field: name.clone(),
                        }),
                    // ODMG implicit dereferencing (or a NoSuchField error
                    // when the base is neither a struct nor an OID).
                    base => self.oid_field(base.as_ref(), name).map(Cow::Borrowed),
                }
            }
            Path::Dom(q) => {
                let base = self.eval_ref(env, q)?;
                dict_dom(base.as_ref(), || q.to_string()).map(Cow::Owned)
            }
            Path::Get(m, k) => {
                let key = self.eval_ref(env, k)?.into_owned();
                let dict = self.eval_ref(env, m)?;
                dict_get(dict, &key, || m.to_string())
            }
            Path::GetOrEmpty(m, k) => {
                let key = self.eval_ref(env, k)?.into_owned();
                let dict = self.eval_ref(env, m)?;
                dict_get_or_empty(dict, &key, || m.to_string())
            }
        }
    }

    /// Resolves `p` to a value owned by the *instance* when the path
    /// never passes through a computed (owned) environment value: roots,
    /// fields and dictionary entries of instance values, OID
    /// dereferences, and variables bound by reference. Returns `None`
    /// both when the value is not instance-anchored (constants, `dom`
    /// sets, owned bindings, absent lookups) *and* whenever resolution
    /// would fail — the caller falls back to the [`Self::eval_ref`]
    /// route, which computes the value or produces the error with its
    /// canonical operand order, so this fast path can never change what
    /// a query returns or reports.
    fn instance_value(&self, env: &Env<'a>, p: &Path) -> Option<&'a Value> {
        match p {
            Path::Var(v) => match env.get(v)? {
                Cow::Borrowed(r) => Some(*r),
                Cow::Owned(_) => None,
            },
            Path::Const(_) | Path::Dom(_) => None,
            Path::Root(r) => self.instance.get(r),
            Path::Field(base, name) => match self.instance_value(env, base)? {
                Value::Struct(fields) => fields.get(name),
                // ODMG implicit dereferencing, all instance-anchored.
                oid @ Value::Oid(..) => self.oid_field(oid, name).ok(),
                _ => None,
            },
            Path::Get(m, k) | Path::GetOrEmpty(m, k) => {
                // Resolve the dictionary first: if it is not anchored,
                // the key must not be evaluated here (the fallback would
                // evaluate it a second time).
                let map = self.instance_value(env, m)?.as_dict()?;
                let key = self.eval_ref(env, k).ok()?.into_owned();
                map.get(&key)
            }
        }
    }

    /// Evaluates a query or plan, returning its (set-semantics) result.
    pub fn eval_query(&self, q: &Query) -> Result<BTreeSet<Value>, EvalError> {
        // Assign each condition to the earliest loop level at which all
        // its variables are bound.
        let mut level_of_var: BTreeMap<&str, usize> = BTreeMap::new();
        for (i, b) in q.from.iter().enumerate() {
            level_of_var.insert(&b.var, i);
        }
        let mut conds_at: Vec<Vec<&pcql::Equality>> = vec![Vec::new(); q.from.len() + 1];
        for eq in &q.where_ {
            let level = eq
                .free_vars()
                .iter()
                .map(|v| level_of_var.get(v.as_str()).map_or(0, |i| i + 1))
                .max()
                .unwrap_or(0);
            conds_at[level].push(eq);
        }

        let mut out = BTreeSet::new();
        let mut env: Env<'a> = BTreeMap::new();
        self.loop_level(q, &conds_at, 0, &mut env, &mut out)?;
        Ok(out)
    }

    fn loop_level(
        &self,
        q: &Query,
        conds_at: &[Vec<&pcql::Equality>],
        level: usize,
        env: &mut Env<'a>,
        out: &mut BTreeSet<Value>,
    ) -> Result<(), EvalError> {
        for eq in &conds_at[level] {
            let l = self.eval_ref(env, &eq.0)?;
            let r = self.eval_ref(env, &eq.1)?;
            if l.as_ref() != r.as_ref() {
                return Ok(());
            }
        }
        if level == q.from.len() {
            let row = match &q.output {
                Output::Struct(fields) => {
                    let mut m = BTreeMap::new();
                    for (name, p) in fields {
                        m.insert(name.clone(), self.eval_path(env, p)?);
                    }
                    Value::Struct(m)
                }
                Output::Path(p) => self.eval_path(env, p)?,
            };
            out.insert(row);
            return Ok(());
        }
        let b = &q.from[level];
        match b.kind {
            BindKind::Iter => {
                // Items of an instance-owned collection outlive the
                // environment, so they are borrowed straight into the
                // binding — no per-item clone per outer row (this is what
                // keeps the deliberately-naive nested-loop joins from
                // copying every scanned row once per iteration).
                if let Some(items) = self.instance_value(env, &b.src).and_then(|v| v.as_set()) {
                    for item in items {
                        env.insert(b.var.clone(), Cow::Borrowed(item));
                        self.loop_level(q, conds_at, level + 1, env, out)?;
                    }
                    env.remove(&b.var);
                } else {
                    // Derived collection (dom sets, collections reached
                    // through owned bindings): borrowing it while the
                    // environment is mutated below would alias, so clone
                    // the items, one at a time.
                    let items: Vec<Value> = match self.eval_ref(env, &b.src)? {
                        Cow::Borrowed(Value::Set(items)) => items.iter().cloned().collect(),
                        Cow::Owned(Value::Set(items)) => items.into_iter().collect(),
                        other => {
                            return Err(EvalError::NotASet(format!(
                                "{} = {}",
                                b.src,
                                other.as_ref()
                            )))
                        }
                    };
                    for item in items {
                        env.insert(b.var.clone(), Cow::Owned(item));
                        self.loop_level(q, conds_at, level + 1, env, out)?;
                    }
                    env.remove(&b.var);
                }
            }
            BindKind::Let => {
                let v = match self.instance_value(env, &b.src) {
                    Some(v) => Cow::Borrowed(v),
                    None => Cow::Owned(self.eval_path(env, &b.src)?),
                };
                env.insert(b.var.clone(), v);
                self.loop_level(q, conds_at, level + 1, env, out)?;
                env.remove(&b.var);
            }
        }
        Ok(())
    }
}

/// Shared core of `dom(M)`. Both engines — the interpreter's `eval_ref`
/// and the pipeline's compiled accessors — evaluate the dictionary
/// expression themselves and defer here, so results and error text
/// cannot drift apart (`display` renders the dictionary's source path).
pub(crate) fn dict_dom(dict: &Value, display: impl Fn() -> String) -> Result<Value, EvalError> {
    let map = dict
        .as_dict()
        .ok_or_else(|| EvalError::NotADict(display()))?;
    Ok(Value::Set(map.keys().cloned().collect()))
}

/// Shared core of the failing lookup `M[k]`: reference-preserving on
/// borrowed dictionaries, consuming on owned ones.
pub(crate) fn dict_get<'v>(
    dict: Cow<'v, Value>,
    key: &Value,
    display: impl Fn() -> String,
) -> Result<Cow<'v, Value>, EvalError> {
    let fail = |display: &dyn Fn() -> String| EvalError::LookupFailed {
        dict: display(),
        key: key.to_string(),
    };
    match dict {
        Cow::Borrowed(d) => {
            let map = d.as_dict().ok_or_else(|| EvalError::NotADict(display()))?;
            map.get(key)
                .map(Cow::Borrowed)
                .ok_or_else(|| fail(&display))
        }
        Cow::Owned(Value::Dict(mut map)) => map
            .remove(key)
            .map(Cow::Owned)
            .ok_or_else(|| fail(&display)),
        _ => Err(EvalError::NotADict(display())),
    }
}

/// Shared core of the non-failing lookup `M{k}`: the empty set on an
/// absent key, an error only when `M` is not a dictionary.
pub(crate) fn dict_get_or_empty<'v>(
    dict: Cow<'v, Value>,
    key: &Value,
    display: impl Fn() -> String,
) -> Result<Cow<'v, Value>, EvalError> {
    let empty = || Cow::Owned(Value::Set(BTreeSet::new()));
    match dict {
        Cow::Borrowed(d) => {
            let map = d.as_dict().ok_or_else(|| EvalError::NotADict(display()))?;
            Ok(map.get(key).map(Cow::Borrowed).unwrap_or_else(empty))
        }
        Cow::Owned(Value::Dict(mut map)) => {
            Ok(map.remove(key).map(Cow::Owned).unwrap_or_else(empty))
        }
        _ => Err(EvalError::NotADict(display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcql::parser::parse_query;

    fn sample_instance() -> Instance {
        let row = |a: i64, b: i64, c: i64| {
            Value::record([
                ("A", Value::Int(a)),
                ("B", Value::Int(b)),
                ("C", Value::Int(c)),
            ])
        };
        let mut i = Instance::new();
        i.set(
            "R",
            Value::set([row(1, 10, 100), row(2, 20, 200), row(2, 21, 201)]),
        );
        i.set(
            "SA",
            Value::dict([
                (Value::Int(1), Value::set([row(1, 10, 100)])),
                (
                    Value::Int(2),
                    Value::set([row(2, 20, 200), row(2, 21, 201)]),
                ),
            ]),
        );
        i
    }

    #[test]
    fn scan_filter_project() {
        let i = sample_instance();
        let e = Evaluator::new(&i);
        let q = parse_query("select struct(C = r.C) from R r where r.A = 2").unwrap();
        let rows = e.eval_query(&q).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&Value::record([("C", Value::Int(200))])));
    }

    #[test]
    fn dict_operations() {
        let i = sample_instance();
        let e = Evaluator::new(&i);
        // dom + guarded lookup.
        let q = parse_query("select struct(C = t.C) from dom(SA) x, SA[x] t where x = 2").unwrap();
        let rows = e.eval_query(&q).unwrap();
        assert_eq!(rows.len(), 2);

        // Failing lookup on an absent key errors…
        let bad = parse_query("select struct(C = t.C) from SA[9] t").unwrap();
        assert!(matches!(
            e.eval_query(&bad),
            Err(EvalError::LookupFailed { .. })
        ));
        // …while the non-failing lookup yields the empty set.
        let ok = parse_query("select struct(C = t.C) from SA{9} t").unwrap();
        assert!(e.eval_query(&ok).unwrap().is_empty());
    }

    #[test]
    fn let_bindings() {
        let i = sample_instance();
        let e = Evaluator::new(&i);
        let q = parse_query("select struct(N = one.C) from SA[1] grp, let one := grp");
        // `SA[1] grp` iterates the entry set; `let one := grp` aliases it.
        let q = q.unwrap();
        let rows = e.eval_query(&q).unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn oid_dereferencing() {
        let d1 = Value::Oid("Dept".into(), 1);
        let mut i = Instance::new();
        i.set("depts", Value::set([d1.clone()]));
        i.set(
            "Dept",
            Value::dict([(
                d1,
                Value::record([
                    ("DName", Value::str("CS")),
                    ("DProjs", Value::set([Value::str("p1")])),
                ]),
            )]),
        );
        let e = Evaluator::new(&i).with_class_dict("Dept", "Dept");
        let q =
            parse_query("select struct(DN = d.DName, PN = s) from depts d, d.DProjs s").unwrap();
        let rows = e.eval_query(&q).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows.contains(&Value::record([
            ("DN", Value::str("CS")),
            ("PN", Value::str("p1"))
        ])));

        // Without the class dictionary registered, dereferencing fails.
        let e2 = Evaluator::new(&i);
        assert!(matches!(e2.eval_query(&q), Err(EvalError::NoClassDict(_))));
    }

    #[test]
    fn early_filters_do_not_change_results() {
        // A cross product with a selective condition gives the same rows
        // regardless of filter placement (we only check the result here;
        // the placement is what the benches measure).
        let i = sample_instance();
        let e = Evaluator::new(&i);
        let q =
            parse_query("select struct(A = r.A, B = t.B) from R r, R t where r.A = 1 and t.A = 2")
                .unwrap();
        let rows = e.eval_query(&q).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn output_path_form() {
        let i = sample_instance();
        let e = Evaluator::new(&i);
        let q = parse_query("select r.A from R r").unwrap();
        let rows = e.eval_query(&q).unwrap();
        // Set semantics: A = 2 appears once.
        assert_eq!(rows, BTreeSet::from([Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn error_paths() {
        let i = sample_instance();
        let e = Evaluator::new(&i);
        for (src, want_err) in [
            ("select x.A from Nope x", "unknown root"),
            ("select r.Nope from R r", "no field"),
            ("select x from R[1] x", "not a dict"),
        ] {
            let q = parse_query(src).unwrap();
            let err = e.eval_query(&q).unwrap_err().to_string();
            assert!(err.contains(want_err), "{src}: {err}");
        }
    }
}
