//! Set-semantics evaluation of queries and plans.
//!
//! The evaluator is deliberately a *plan interpreter*, not an optimizer:
//! it executes the `from` clause as nested loops in the given order,
//! applies each `where` conjunct as soon as all its variables are bound
//! (the standard early-filter discipline the paper's plans rely on), and
//! performs dictionary lookups as constant-time map accesses. The cost
//! differences between plans P1–P4 therefore come out of the plan
//! *shapes*, exactly as in the paper.
//!
//! Failing lookups `M[k]` raise [`EvalError::LookupFailed`]; non-failing
//! lookups `M{k}` produce the empty set. ODMG implicit dereferencing on
//! OIDs resolves through the registered class dictionaries.

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use pcql::path::Path;
use pcql::query::{BindKind, Output, Query};

use crate::instance::Instance;
use crate::value::Value;

/// Evaluation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    UnknownRoot(String),
    UnknownVar(String),
    NoSuchField {
        value: String,
        field: String,
    },
    /// Failing lookup on an absent key.
    LookupFailed {
        dict: String,
        key: String,
    },
    NotASet(String),
    NotADict(String),
    /// OID dereference with no registered class dictionary.
    NoClassDict(String),
    /// OID not present in its class dictionary.
    DanglingOid(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownRoot(r) => write!(f, "unknown root `{r}`"),
            EvalError::UnknownVar(v) => write!(f, "unknown variable `{v}`"),
            EvalError::NoSuchField { value, field } => {
                write!(f, "no field `{field}` on {value}")
            }
            EvalError::LookupFailed { dict, key } => {
                write!(f, "lookup failed: key {key} not in dom({dict})")
            }
            EvalError::NotASet(p) => write!(f, "`{p}` is not a set"),
            EvalError::NotADict(p) => write!(f, "`{p}` is not a dictionary"),
            EvalError::NoClassDict(c) => {
                write!(f, "no class dictionary registered for class `{c}`")
            }
            EvalError::DanglingOid(o) => write!(f, "dangling OID {o}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The query/plan interpreter.
#[derive(Debug, Clone)]
pub struct Evaluator<'a> {
    instance: &'a Instance,
    /// class name -> dictionary root implementing it (for implicit
    /// dereferencing).
    class_dicts: BTreeMap<String, String>,
}

impl<'a> Evaluator<'a> {
    pub fn new(instance: &'a Instance) -> Evaluator<'a> {
        Evaluator {
            instance,
            class_dicts: BTreeMap::new(),
        }
    }

    /// Registers `dict_root` as the implementing dictionary of `class`.
    pub fn with_class_dict(
        mut self,
        class: impl Into<String>,
        dict_root: impl Into<String>,
    ) -> Self {
        self.class_dicts.insert(class.into(), dict_root.into());
        self
    }

    /// Builds an evaluator with every class dictionary registered in the
    /// catalog.
    pub fn for_catalog(catalog: &cb_catalog::Catalog, instance: &'a Instance) -> Evaluator<'a> {
        let mut e = Evaluator::new(instance);
        for s in catalog.structures() {
            if let cb_catalog::AccessStructure::ClassDict { class, dict, .. } = s {
                e.class_dicts.insert(class.clone(), dict.clone());
            }
        }
        e
    }

    /// Evaluates a path under an environment.
    pub fn eval_path(&self, env: &BTreeMap<String, Value>, p: &Path) -> Result<Value, EvalError> {
        Ok(self.eval_ref(env, p)?.into_owned())
    }

    /// Reference-preserving evaluation: roots, dictionary entries and
    /// record fields are *borrowed*, not cloned. This is what keeps
    /// lookup-heavy plans (P3, P4, navigation joins) from accidentally
    /// copying whole dictionaries per row.
    fn eval_ref<'v>(
        &'v self,
        env: &'v BTreeMap<String, Value>,
        p: &Path,
    ) -> Result<Cow<'v, Value>, EvalError> {
        match p {
            Path::Var(v) => env
                .get(v)
                .map(Cow::Borrowed)
                .ok_or_else(|| EvalError::UnknownVar(v.clone())),
            Path::Const(c) => Ok(Cow::Owned(Value::from(c))),
            Path::Root(r) => self
                .instance
                .get(r)
                .map(Cow::Borrowed)
                .ok_or_else(|| EvalError::UnknownRoot(r.clone())),
            Path::Field(q, name) => {
                let base = self.eval_ref(env, q)?;
                match base {
                    Cow::Borrowed(Value::Struct(fields)) => fields
                        .get(name)
                        .map(Cow::Borrowed)
                        .ok_or_else(|| EvalError::NoSuchField {
                            value: format!("{q}"),
                            field: name.clone(),
                        }),
                    Cow::Owned(Value::Struct(mut fields)) => fields
                        .remove(name)
                        .map(Cow::Owned)
                        .ok_or_else(|| EvalError::NoSuchField {
                            value: format!("{q}"),
                            field: name.clone(),
                        }),
                    base => {
                        let oid = match base.as_ref() {
                            Value::Oid(class, _) => (class.clone(), base.as_ref().clone()),
                            other => {
                                return Err(EvalError::NoSuchField {
                                    value: other.to_string(),
                                    field: name.clone(),
                                })
                            }
                        };
                        // ODMG implicit dereferencing.
                        let (class, oid_val) = oid;
                        let dict_root = self
                            .class_dicts
                            .get(&class)
                            .ok_or_else(|| EvalError::NoClassDict(class.clone()))?;
                        let dict = self
                            .instance
                            .get(dict_root)
                            .ok_or_else(|| EvalError::UnknownRoot(dict_root.clone()))?;
                        let map = dict
                            .as_dict()
                            .ok_or_else(|| EvalError::NotADict(dict_root.clone()))?;
                        let entry = map
                            .get(&oid_val)
                            .ok_or_else(|| EvalError::DanglingOid(oid_val.to_string()))?;
                        entry
                            .field(name)
                            .map(Cow::Borrowed)
                            .ok_or_else(|| EvalError::NoSuchField {
                                value: entry.to_string(),
                                field: name.clone(),
                            })
                    }
                }
            }
            Path::Dom(q) => {
                let base = self.eval_ref(env, q)?;
                let map = base
                    .as_dict()
                    .ok_or_else(|| EvalError::NotADict(q.to_string()))?;
                Ok(Cow::Owned(Value::Set(map.keys().cloned().collect())))
            }
            Path::Get(m, k) => {
                let key = self.eval_ref(env, k)?.into_owned();
                let dict = self.eval_ref(env, m)?;
                match dict {
                    Cow::Borrowed(d) => {
                        let map = d
                            .as_dict()
                            .ok_or_else(|| EvalError::NotADict(m.to_string()))?;
                        map.get(&key)
                            .map(Cow::Borrowed)
                            .ok_or_else(|| EvalError::LookupFailed {
                                dict: m.to_string(),
                                key: key.to_string(),
                            })
                    }
                    Cow::Owned(Value::Dict(mut map)) => map
                        .remove(&key)
                        .map(Cow::Owned)
                        .ok_or_else(|| EvalError::LookupFailed {
                            dict: m.to_string(),
                            key: key.to_string(),
                        }),
                    _ => Err(EvalError::NotADict(m.to_string())),
                }
            }
            Path::GetOrEmpty(m, k) => {
                let key = self.eval_ref(env, k)?.into_owned();
                let dict = self.eval_ref(env, m)?;
                let empty = || Cow::Owned(Value::Set(BTreeSet::new()));
                match dict {
                    Cow::Borrowed(d) => {
                        let map = d
                            .as_dict()
                            .ok_or_else(|| EvalError::NotADict(m.to_string()))?;
                        Ok(map.get(&key).map(Cow::Borrowed).unwrap_or_else(empty))
                    }
                    Cow::Owned(Value::Dict(mut map)) => {
                        Ok(map.remove(&key).map(Cow::Owned).unwrap_or_else(empty))
                    }
                    _ => Err(EvalError::NotADict(m.to_string())),
                }
            }
        }
    }

    /// Evaluates a query or plan, returning its (set-semantics) result.
    pub fn eval_query(&self, q: &Query) -> Result<BTreeSet<Value>, EvalError> {
        // Assign each condition to the earliest loop level at which all
        // its variables are bound.
        let mut level_of_var: BTreeMap<&str, usize> = BTreeMap::new();
        for (i, b) in q.from.iter().enumerate() {
            level_of_var.insert(&b.var, i);
        }
        let mut conds_at: Vec<Vec<&pcql::Equality>> = vec![Vec::new(); q.from.len() + 1];
        for eq in &q.where_ {
            let level = eq
                .free_vars()
                .iter()
                .map(|v| level_of_var.get(v.as_str()).map_or(0, |i| i + 1))
                .max()
                .unwrap_or(0);
            conds_at[level].push(eq);
        }

        let mut out = BTreeSet::new();
        let mut env: BTreeMap<String, Value> = BTreeMap::new();
        self.loop_level(q, &conds_at, 0, &mut env, &mut out)?;
        Ok(out)
    }

    fn loop_level(
        &self,
        q: &Query,
        conds_at: &[Vec<&pcql::Equality>],
        level: usize,
        env: &mut BTreeMap<String, Value>,
        out: &mut BTreeSet<Value>,
    ) -> Result<(), EvalError> {
        for eq in &conds_at[level] {
            let l = self.eval_ref(env, &eq.0)?;
            let r = self.eval_ref(env, &eq.1)?;
            if l.as_ref() != r.as_ref() {
                return Ok(());
            }
        }
        if level == q.from.len() {
            let row = match &q.output {
                Output::Struct(fields) => {
                    let mut m = BTreeMap::new();
                    for (name, p) in fields {
                        m.insert(name.clone(), self.eval_path(env, p)?);
                    }
                    Value::Struct(m)
                }
                Output::Path(p) => self.eval_path(env, p)?,
            };
            out.insert(row);
            return Ok(());
        }
        let b = &q.from[level];
        match b.kind {
            BindKind::Iter => {
                // Borrowing the collection while the environment is
                // mutated below would alias; clone only the *items*, one
                // at a time, never the whole collection when it is a
                // borrowed root.
                let items: Vec<Value> = match self.eval_ref(env, &b.src)? {
                    Cow::Borrowed(Value::Set(items)) => items.iter().cloned().collect(),
                    Cow::Owned(Value::Set(items)) => items.into_iter().collect(),
                    other => {
                        return Err(EvalError::NotASet(format!(
                            "{} = {}",
                            b.src,
                            other.as_ref()
                        )))
                    }
                };
                for item in items {
                    env.insert(b.var.clone(), item);
                    self.loop_level(q, conds_at, level + 1, env, out)?;
                }
                env.remove(&b.var);
            }
            BindKind::Let => {
                let v = self.eval_path(env, &b.src)?;
                env.insert(b.var.clone(), v);
                self.loop_level(q, conds_at, level + 1, env, out)?;
                env.remove(&b.var);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcql::parser::parse_query;

    fn sample_instance() -> Instance {
        let row = |a: i64, b: i64, c: i64| {
            Value::record([
                ("A", Value::Int(a)),
                ("B", Value::Int(b)),
                ("C", Value::Int(c)),
            ])
        };
        let mut i = Instance::new();
        i.set(
            "R",
            Value::set([row(1, 10, 100), row(2, 20, 200), row(2, 21, 201)]),
        );
        i.set(
            "SA",
            Value::dict([
                (Value::Int(1), Value::set([row(1, 10, 100)])),
                (
                    Value::Int(2),
                    Value::set([row(2, 20, 200), row(2, 21, 201)]),
                ),
            ]),
        );
        i
    }

    #[test]
    fn scan_filter_project() {
        let i = sample_instance();
        let e = Evaluator::new(&i);
        let q = parse_query("select struct(C = r.C) from R r where r.A = 2").unwrap();
        let rows = e.eval_query(&q).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&Value::record([("C", Value::Int(200))])));
    }

    #[test]
    fn dict_operations() {
        let i = sample_instance();
        let e = Evaluator::new(&i);
        // dom + guarded lookup.
        let q = parse_query("select struct(C = t.C) from dom(SA) x, SA[x] t where x = 2").unwrap();
        let rows = e.eval_query(&q).unwrap();
        assert_eq!(rows.len(), 2);

        // Failing lookup on an absent key errors…
        let bad = parse_query("select struct(C = t.C) from SA[9] t").unwrap();
        assert!(matches!(
            e.eval_query(&bad),
            Err(EvalError::LookupFailed { .. })
        ));
        // …while the non-failing lookup yields the empty set.
        let ok = parse_query("select struct(C = t.C) from SA{9} t").unwrap();
        assert!(e.eval_query(&ok).unwrap().is_empty());
    }

    #[test]
    fn let_bindings() {
        let i = sample_instance();
        let e = Evaluator::new(&i);
        let q = parse_query("select struct(N = one.C) from SA[1] grp, let one := grp");
        // `SA[1] grp` iterates the entry set; `let one := grp` aliases it.
        let q = q.unwrap();
        let rows = e.eval_query(&q).unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn oid_dereferencing() {
        let d1 = Value::Oid("Dept".into(), 1);
        let mut i = Instance::new();
        i.set("depts", Value::set([d1.clone()]));
        i.set(
            "Dept",
            Value::dict([(
                d1,
                Value::record([
                    ("DName", Value::str("CS")),
                    ("DProjs", Value::set([Value::str("p1")])),
                ]),
            )]),
        );
        let e = Evaluator::new(&i).with_class_dict("Dept", "Dept");
        let q =
            parse_query("select struct(DN = d.DName, PN = s) from depts d, d.DProjs s").unwrap();
        let rows = e.eval_query(&q).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows.contains(&Value::record([
            ("DN", Value::str("CS")),
            ("PN", Value::str("p1"))
        ])));

        // Without the class dictionary registered, dereferencing fails.
        let e2 = Evaluator::new(&i);
        assert!(matches!(e2.eval_query(&q), Err(EvalError::NoClassDict(_))));
    }

    #[test]
    fn early_filters_do_not_change_results() {
        // A cross product with a selective condition gives the same rows
        // regardless of filter placement (we only check the result here;
        // the placement is what the benches measure).
        let i = sample_instance();
        let e = Evaluator::new(&i);
        let q =
            parse_query("select struct(A = r.A, B = t.B) from R r, R t where r.A = 1 and t.A = 2")
                .unwrap();
        let rows = e.eval_query(&q).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn output_path_form() {
        let i = sample_instance();
        let e = Evaluator::new(&i);
        let q = parse_query("select r.A from R r").unwrap();
        let rows = e.eval_query(&q).unwrap();
        // Set semantics: A = 2 appears once.
        assert_eq!(rows, BTreeSet::from([Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn error_paths() {
        let i = sample_instance();
        let e = Evaluator::new(&i);
        for (src, want_err) in [
            ("select x.A from Nope x", "unknown root"),
            ("select r.Nope from R r", "no field"),
            ("select x from R[1] x", "not a dict"),
        ] {
            let q = parse_query(src).unwrap();
            let err = e.eval_query(&q).unwrap_err().to_string();
            assert!(err.contains(want_err), "{src}: {err}");
        }
    }
}
