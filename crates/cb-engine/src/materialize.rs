//! Materialization of physical access structures from base data.
//!
//! Given an instance of the logical roots, the materializer builds every
//! structure registered in the catalog — indexes, class extents,
//! materialized views, join indexes, ASRs, gmaps — by *executing their
//! definitions* (the `dict x in Q1 | Q2` constructions of paper §2 are
//! realized as grouped query evaluation). The result is an instance that
//! satisfies the implementation-mapping constraints `D'` by construction,
//! which the tests verify with the constraint checker.

use std::collections::BTreeMap;
use std::fmt;

use cb_catalog::{AccessStructure, Catalog, GmapDef};
use pcql::query::{Output, Query};

use crate::eval::{EvalError, Evaluator};
use crate::instance::Instance;
use crate::value::Value;

/// Materialization errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaterializeError {
    Eval(EvalError),
    MissingBase(String),
    NotASet(String),
    /// Primary index build found two rows with the same key.
    DuplicateKey {
        index: String,
        key: String,
    },
    /// A class dictionary must be populated by the data generator (it *is*
    /// the storage of the objects); only the extent can be derived.
    MissingClassDict {
        class: String,
        dict: String,
    },
}

impl fmt::Display for MaterializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaterializeError::Eval(e) => write!(f, "{e}"),
            MaterializeError::MissingBase(r) => write!(f, "missing base root `{r}`"),
            MaterializeError::NotASet(r) => write!(f, "root `{r}` is not a set"),
            MaterializeError::DuplicateKey { index, key } => {
                write!(
                    f,
                    "duplicate key {key} while building primary index `{index}`"
                )
            }
            MaterializeError::MissingClassDict { class, dict } => {
                write!(
                    f,
                    "class `{class}`: dictionary `{dict}` must be provided by the generator"
                )
            }
        }
    }
}

impl std::error::Error for MaterializeError {}

impl From<EvalError> for MaterializeError {
    fn from(e: EvalError) -> Self {
        MaterializeError::Eval(e)
    }
}

/// Builds physical structures into an instance.
#[derive(Debug, Clone, Copy)]
pub struct Materializer<'a> {
    catalog: &'a Catalog,
}

impl<'a> Materializer<'a> {
    pub fn new(catalog: &'a Catalog) -> Materializer<'a> {
        Materializer { catalog }
    }

    /// Materializes every registered structure, in declaration order
    /// (views over earlier structures therefore work).
    pub fn materialize(&self, instance: &mut Instance) -> Result<(), MaterializeError> {
        for s in self.catalog.structures() {
            self.materialize_one(instance, s)?;
        }
        Ok(())
    }

    fn rows_of(&self, instance: &Instance, relation: &str) -> Result<Vec<Value>, MaterializeError> {
        let v = instance
            .get(relation)
            .ok_or_else(|| MaterializeError::MissingBase(relation.to_string()))?;
        v.as_set()
            .map(|s| s.iter().cloned().collect())
            .ok_or_else(|| MaterializeError::NotASet(relation.to_string()))
    }

    fn materialize_one(
        &self,
        instance: &mut Instance,
        s: &AccessStructure,
    ) -> Result<(), MaterializeError> {
        match s {
            AccessStructure::PrimaryIndex {
                name,
                relation,
                key_field,
            } => {
                let mut dict: BTreeMap<Value, Value> = BTreeMap::new();
                for row in self.rows_of(instance, relation)? {
                    let key = row.field(key_field).cloned().ok_or_else(|| {
                        MaterializeError::Eval(EvalError::NoSuchField {
                            value: row.to_string(),
                            field: key_field.clone(),
                        })
                    })?;
                    if dict.insert(key.clone(), row).is_some() {
                        return Err(MaterializeError::DuplicateKey {
                            index: name.clone(),
                            key: key.to_string(),
                        });
                    }
                }
                instance.set(name.clone(), Value::Dict(dict));
            }
            AccessStructure::SecondaryIndex {
                name,
                relation,
                key_field,
                ..
            } => {
                let mut dict: BTreeMap<Value, Value> = BTreeMap::new();
                for row in self.rows_of(instance, relation)? {
                    let key = row.field(key_field).cloned().ok_or_else(|| {
                        MaterializeError::Eval(EvalError::NoSuchField {
                            value: row.to_string(),
                            field: key_field.clone(),
                        })
                    })?;
                    match dict.entry(key).or_insert_with(|| Value::set([])) {
                        Value::Set(items) => {
                            items.insert(row);
                        }
                        _ => unreachable!("entries are sets by construction"),
                    }
                }
                instance.set(name.clone(), Value::Dict(dict));
            }
            AccessStructure::ClassDict {
                class,
                extent,
                dict,
            } => {
                // The dictionary is the object store itself; the generator
                // provides it and we derive the extent (dom), mirroring
                // "an OO class must have an extent … whose domain is the
                // extent".
                let dict_val = instance.get(dict).cloned().ok_or_else(|| {
                    MaterializeError::MissingClassDict {
                        class: class.clone(),
                        dict: dict.clone(),
                    }
                })?;
                let map = dict_val
                    .as_dict()
                    .ok_or_else(|| MaterializeError::NotASet(dict.clone()))?;
                instance.set(extent.clone(), Value::Set(map.keys().cloned().collect()));
            }
            AccessStructure::MaterializedView { name, def, .. } => {
                let rows = self.eval(instance, def)?;
                instance.set(name.clone(), Value::Set(rows));
            }
            AccessStructure::GmapDict { name, def, .. } => {
                let dict = self.build_gmap(instance, def)?;
                instance.set(name.clone(), dict);
            }
        }
        Ok(())
    }

    fn eval(
        &self,
        instance: &Instance,
        q: &Query,
    ) -> Result<std::collections::BTreeSet<Value>, MaterializeError> {
        let ev = Evaluator::for_catalog(self.catalog, instance);
        Ok(ev.eval_query(q)?)
    }

    /// Builds `dict z in (select K from body) | (select V from body where
    /// K = z)` by grouping one pass over the body.
    fn build_gmap(&self, instance: &Instance, def: &GmapDef) -> Result<Value, MaterializeError> {
        let body = Query::new(
            Output::record([("__key".to_string(), pcql::Path::var("__self"))]),
            def.from.clone(),
            def.where_.clone(),
        );
        // We need both key and value per row; build a combined output.
        let combined = Query::new(
            Output::record(
                def.key
                    .iter()
                    .map(|(f, p)| (format!("k_{f}"), p.clone()))
                    .chain(def.value.iter().map(|(f, p)| (format!("v_{f}"), p.clone()))),
            ),
            body.from,
            body.where_,
        );
        let rows = self.eval(instance, &combined)?;
        let side = |row: &Value, fields: &[(String, pcql::Path)], prefix: &str| -> Value {
            if fields.len() == 1 {
                row.field(&format!("{prefix}_{}", fields[0].0))
                    .cloned()
                    .expect("projected")
            } else {
                Value::Struct(
                    fields
                        .iter()
                        .map(|(f, _)| {
                            (
                                f.clone(),
                                row.field(&format!("{prefix}_{f}"))
                                    .cloned()
                                    .expect("projected"),
                            )
                        })
                        .collect(),
                )
            }
        };
        let mut dict: BTreeMap<Value, Value> = BTreeMap::new();
        for row in rows {
            let key = side(&row, &def.key, "k");
            let val = side(&row, &def.value, "v");
            match dict.entry(key).or_insert_with(|| Value::set([])) {
                Value::Set(items) => {
                    items.insert(val);
                }
                _ => unreachable!(),
            }
        }
        Ok(Value::Dict(dict))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_catalog::Catalog;
    use pcql::parser::parse_query;
    use pcql::types::Type;

    fn base() -> (Catalog, Instance) {
        let mut c = Catalog::new();
        c.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int)]);
        c.add_logical_relation("S", [("B", Type::Int), ("C", Type::Int)]);
        c.add_direct_mapping("R");
        c.add_direct_mapping("S");
        let mut i = Instance::new();
        let row2 = |a, b| Value::record([("A", Value::Int(a)), ("B", Value::Int(b))]);
        let srow = |b, c| Value::record([("B", Value::Int(b)), ("C", Value::Int(c))]);
        i.set("R", Value::set([row2(1, 10), row2(2, 10), row2(3, 30)]));
        i.set("S", Value::set([srow(10, 7), srow(40, 8)]));
        (c, i)
    }

    #[test]
    fn secondary_index_grouping() {
        let (mut c, mut i) = base();
        c.add_secondary_index("SB", "R", "B").unwrap();
        Materializer::new(&c).materialize(&mut i).unwrap();
        let sb = i.get("SB").unwrap().as_dict().unwrap();
        assert_eq!(sb.len(), 2);
        assert_eq!(sb[&Value::Int(10)].as_set().unwrap().len(), 2);
        assert_eq!(sb[&Value::Int(30)].as_set().unwrap().len(), 1);
    }

    #[test]
    fn primary_index_unique_keys() {
        let (mut c, mut i) = base();
        c.add_primary_index("IA", "R", "A").unwrap();
        Materializer::new(&c).materialize(&mut i).unwrap();
        assert_eq!(i.get("IA").unwrap().as_dict().unwrap().len(), 3);

        // Duplicate keys are an error.
        let mut c2 = Catalog::new();
        c2.add_logical_relation("R", [("A", Type::Int), ("B", Type::Int)]);
        c2.add_direct_mapping("R");
        c2.add_primary_index("IB", "R", "B").unwrap();
        let mut i2 = Instance::new();
        i2.set(
            "R",
            Value::set([
                Value::record([("A", Value::Int(1)), ("B", Value::Int(10))]),
                Value::record([("A", Value::Int(2)), ("B", Value::Int(10))]),
            ]),
        );
        assert!(matches!(
            Materializer::new(&c2).materialize(&mut i2),
            Err(MaterializeError::DuplicateKey { .. })
        ));
    }

    #[test]
    fn view_materialization() {
        let (mut c, mut i) = base();
        c.add_materialized_view(
            "V",
            parse_query("select struct(A = r.A) from R r, S s where r.B = s.B").unwrap(),
        )
        .unwrap();
        Materializer::new(&c).materialize(&mut i).unwrap();
        let v = i.get("V").unwrap().as_set().unwrap();
        // Rows with B = 10 join; A ∈ {1, 2}.
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn class_extent_derivation() {
        let mut c = Catalog::new();
        c.declare_class(
            pcql::ClassDecl::new("Dept", [("DName", Type::Str)]),
            "depts",
        );
        c.add_class_dict("Dept", "depts", "Dept").unwrap();
        let o = Value::Oid("Dept".into(), 1);
        let mut i = Instance::new();
        i.set(
            "Dept",
            Value::dict([(o.clone(), Value::record([("DName", Value::str("CS"))]))]),
        );
        Materializer::new(&c).materialize(&mut i).unwrap();
        assert_eq!(i.get("depts"), Some(&Value::set([o])));

        // Missing dictionary is an error.
        let mut empty = Instance::new();
        assert!(matches!(
            Materializer::new(&c).materialize(&mut empty),
            Err(MaterializeError::MissingClassDict { .. })
        ));
    }

    #[test]
    fn gmap_materialization() {
        let (mut c, mut i) = base();
        c.add_gmap(
            "G",
            GmapDef {
                from: vec![pcql::Binding::iter("r", pcql::Path::root("R"))],
                where_: vec![],
                key: vec![("B".into(), pcql::Path::var("r").field("B"))],
                value: vec![("A".into(), pcql::Path::var("r").field("A"))],
            },
        )
        .unwrap();
        Materializer::new(&c).materialize(&mut i).unwrap();
        let g = i.get("G").unwrap().as_dict().unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g[&Value::Int(10)].as_set().unwrap().len(), 2);
    }
}
