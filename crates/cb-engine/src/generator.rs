//! Synthetic data generators for the paper's scenarios.
//!
//! Generated instances satisfy the scenarios' semantic constraints *by
//! construction* (the tests double-check with the constraint checker),
//! so chase/backchase rewrites are sound on them and plan-equivalence
//! differential tests are meaningful.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instance::Instance;
use crate::value::Value;

/// Parameters for the ProjDept generator.
#[derive(Debug, Clone)]
pub struct ProjDeptParams {
    pub n_depts: usize,
    pub projs_per_dept: usize,
    /// Number of distinct customers; customer 0 is "CitiBank", so the
    /// selectivity of the paper's predicate is ~1/n_customers.
    pub n_customers: usize,
    pub seed: u64,
}

impl Default for ProjDeptParams {
    fn default() -> Self {
        ProjDeptParams {
            n_depts: 20,
            projs_per_dept: 5,
            n_customers: 10,
            seed: 42,
        }
    }
}

/// Generates the *logical* ProjDept data: the `Dept` class dictionary
/// (object store) and the `Proj` relation. Physical structures are built
/// by the materializer. The RIC/INV/KEY constraints of Fig. 2 hold by
/// construction: every department project-name set references existing
/// projects, `PDept` is the inverse of membership, and names are keys.
pub fn projdept_instance(p: &ProjDeptParams) -> Instance {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut dept_entries = Vec::new();
    let mut proj_rows = Vec::new();
    for d in 0..p.n_depts {
        let dname = format!("dept{d}");
        let mut proj_names = Vec::new();
        for j in 0..p.projs_per_dept {
            let pname = format!("proj{d}_{j}");
            let cust = if p.n_customers == 0 {
                "CitiBank".to_string()
            } else {
                let c = rng.random_range(0..p.n_customers);
                if c == 0 {
                    "CitiBank".to_string()
                } else {
                    format!("cust{c}")
                }
            };
            proj_rows.push(Value::record([
                ("PName", Value::str(&pname)),
                ("CustName", Value::str(cust)),
                ("PDept", Value::str(&dname)),
                ("Budg", Value::Int(rng.random_range(10..10_000))),
            ]));
            proj_names.push(Value::str(pname));
        }
        dept_entries.push((
            Value::Oid("Dept".into(), d as u64),
            Value::record([
                ("DName", Value::str(dname)),
                ("DProjs", Value::set(proj_names)),
                ("MgrName", Value::str(format!("mgr{d}"))),
            ]),
        ));
    }
    let mut i = Instance::new();
    i.set("Dept", Value::dict(dept_entries));
    i.set("Proj", Value::set(proj_rows));
    i
}

/// Parameters for the `R(A,B,C)` generator of §4 scenario 1.
#[derive(Debug, Clone)]
pub struct RabcParams {
    pub n_rows: usize,
    pub distinct_a: usize,
    pub distinct_b: usize,
    pub seed: u64,
}

impl Default for RabcParams {
    fn default() -> Self {
        RabcParams {
            n_rows: 1000,
            distinct_a: 50,
            distinct_b: 20,
            seed: 7,
        }
    }
}

/// Generates `R(A,B,C)` with the requested value domains. `C` carries a
/// unique value per row so set semantics keep all rows.
pub fn rabc_instance(p: &RabcParams) -> Instance {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let rows: Vec<Value> = (0..p.n_rows)
        .map(|n| {
            Value::record([
                (
                    "A",
                    Value::Int(rng.random_range(0..p.distinct_a.max(1)) as i64),
                ),
                (
                    "B",
                    Value::Int(rng.random_range(0..p.distinct_b.max(1)) as i64),
                ),
                ("C", Value::Int(n as i64)),
            ])
        })
        .collect();
    let mut i = Instance::new();
    i.set("R", Value::set(rows));
    i
}

/// Parameters for the `R(A,B) ⋈ S(B,C)` generator of §4 scenario 2.
#[derive(Debug, Clone)]
pub struct JoinParams {
    pub n_r: usize,
    pub n_s: usize,
    /// Fraction of `R` rows whose `B` has at least one `S` partner; the
    /// view `V = π_A(R ⋈ S)` shrinks with it.
    pub match_fraction: f64,
    pub seed: u64,
}

impl Default for JoinParams {
    fn default() -> Self {
        JoinParams {
            n_r: 500,
            n_s: 500,
            match_fraction: 0.1,
            seed: 11,
        }
    }
}

/// Generates `R(A,B)` and `S(B,C)`. Matching rows share `B` values in a
/// small "hot" domain; non-matching rows get disjoint values.
pub fn join_instance(p: &JoinParams) -> Instance {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let hot = ((p.n_r.min(p.n_s) as f64) * p.match_fraction).ceil() as i64;
    let r_rows: Vec<Value> = (0..p.n_r)
        .map(|n| {
            let b = if (n as f64) < (p.n_r as f64) * p.match_fraction {
                rng.random_range(0..hot.max(1))
            } else {
                // Disjoint from S's values.
                1_000_000 + n as i64
            };
            Value::record([("A", Value::Int(n as i64)), ("B", Value::Int(b))])
        })
        .collect();
    let s_rows: Vec<Value> = (0..p.n_s)
        .map(|n| {
            let b = if (n as f64) < (p.n_s as f64) * p.match_fraction {
                rng.random_range(0..hot.max(1))
            } else {
                2_000_000 + n as i64
            };
            Value::record([("B", Value::Int(b)), ("C", Value::Int(n as i64))])
        })
        .collect();
    let mut i = Instance::new();
    i.set("R", Value::set(r_rows));
    i.set("S", Value::set(s_rows));
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::violations;
    use crate::eval::Evaluator;
    use crate::materialize::Materializer;
    use cb_catalog::scenarios::{projdept, relational_indexes, relational_views};

    #[test]
    fn projdept_instance_satisfies_all_constraints() {
        let cat = projdept::catalog();
        let mut inst = projdept_instance(&ProjDeptParams {
            n_depts: 8,
            projs_per_dept: 3,
            n_customers: 4,
            seed: 1,
        });
        Materializer::new(&cat).materialize(&mut inst).unwrap();
        let ev = Evaluator::for_catalog(&cat, &inst);
        let bad = violations(&ev, &cat.all_constraints()).unwrap();
        assert!(bad.is_empty(), "violated: {bad:?}");
    }

    #[test]
    fn rabc_instance_satisfies_index_constraints() {
        let cat = relational_indexes::catalog();
        let mut inst = rabc_instance(&RabcParams {
            n_rows: 60,
            distinct_a: 10,
            distinct_b: 5,
            seed: 2,
        });
        Materializer::new(&cat).materialize(&mut inst).unwrap();
        let ev = Evaluator::for_catalog(&cat, &inst);
        let bad = violations(&ev, &cat.all_constraints()).unwrap();
        assert!(bad.is_empty(), "violated: {bad:?}");
    }

    #[test]
    fn join_instance_satisfies_view_constraints() {
        let cat = relational_views::catalog();
        let mut inst = join_instance(&JoinParams {
            n_r: 40,
            n_s: 40,
            match_fraction: 0.25,
            seed: 3,
        });
        Materializer::new(&cat).materialize(&mut inst).unwrap();
        let ev = Evaluator::for_catalog(&cat, &inst);
        let bad = violations(&ev, &cat.all_constraints()).unwrap();
        assert!(bad.is_empty(), "violated: {bad:?}");
        // The view is genuinely smaller than the base relations.
        let v = inst.cardinality("V").unwrap();
        assert!(v > 0 && v < 40, "|V| = {v}");
    }

    #[test]
    fn generators_are_deterministic() {
        let a = projdept_instance(&ProjDeptParams::default());
        let b = projdept_instance(&ProjDeptParams::default());
        assert_eq!(a, b);
        let c = projdept_instance(&ProjDeptParams {
            seed: 43,
            ..Default::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn citibank_selectivity_scales() {
        let few = projdept_instance(&ProjDeptParams {
            n_depts: 10,
            projs_per_dept: 10,
            n_customers: 2,
            seed: 5,
        });
        let many = projdept_instance(&ProjDeptParams {
            n_depts: 10,
            projs_per_dept: 10,
            n_customers: 50,
            seed: 5,
        });
        let count = |i: &Instance| {
            i.get("Proj")
                .unwrap()
                .as_set()
                .unwrap()
                .iter()
                .filter(|r| r.field("CustName") == Some(&Value::str("CitiBank")))
                .count()
        };
        assert!(count(&few) > count(&many));
    }
}
