//! Statistics collection: populate the catalog's cost-model statistics
//! from an actual instance.

use std::collections::BTreeSet;

use cb_catalog::{RootStats, Stats};

use crate::instance::Instance;
use crate::value::Value;

/// Collects per-root statistics (cardinality, per-field distinct counts,
/// set-valued fanouts, dictionary entry fanouts) for every root in the
/// instance.
pub fn collect_stats(instance: &Instance) -> Stats {
    let mut stats = Stats::new();
    for (name, value) in &instance.roots {
        match value {
            Value::Set(items) => {
                let mut rs = RootStats::with_cardinality(items.len() as u64);
                field_stats(items.iter(), &mut rs);
                stats.set(name.clone(), rs);
            }
            Value::Dict(map) => {
                let mut rs = RootStats::with_cardinality(map.len() as u64);
                // Entry fanout for set-valued entries.
                let mut total = 0usize;
                let mut n_sets = 0usize;
                for v in map.values() {
                    if let Value::Set(s) = v {
                        total += s.len();
                        n_sets += 1;
                    }
                }
                if n_sets > 0 {
                    rs.avg_fanout
                        .insert(String::new(), total as f64 / n_sets as f64);
                }
                // Field statistics over record entries.
                field_stats(map.values(), &mut rs);
                stats.set(name.clone(), rs);
            }
            _ => {}
        }
    }
    stats
}

fn field_stats<'a>(rows: impl Iterator<Item = &'a Value>, rs: &mut RootStats) {
    use std::collections::BTreeMap;
    let mut distinct: BTreeMap<String, BTreeSet<&Value>> = BTreeMap::new();
    let mut fanout: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for row in rows {
        if let Value::Struct(fields) = row {
            for (f, v) in fields {
                match v {
                    Value::Set(items) => {
                        let e = fanout.entry(f.clone()).or_default();
                        e.0 += items.len();
                        e.1 += 1;
                    }
                    _ => {
                        distinct.entry(f.clone()).or_default().insert(v);
                    }
                }
            }
        }
    }
    for (f, set) in distinct {
        rs.distinct.insert(f, set.len() as u64);
    }
    for (f, (total, n)) in fanout {
        if n > 0 {
            rs.avg_fanout.insert(f, total as f64 / n as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_relation_stats() {
        let row = |a: i64, b: i64| Value::record([("A", Value::Int(a)), ("B", Value::Int(b))]);
        let mut i = Instance::new();
        i.set("R", Value::set([row(1, 10), row(2, 10), row(3, 30)]));
        let stats = collect_stats(&i);
        let r = stats.get("R").unwrap();
        assert_eq!(r.cardinality, 3);
        assert_eq!(r.distinct_of("A"), Some(3));
        assert_eq!(r.distinct_of("B"), Some(2));
    }

    #[test]
    fn collects_dict_fanouts() {
        let mut i = Instance::new();
        i.set(
            "SI",
            Value::dict([
                (Value::Int(1), Value::set([Value::Int(1), Value::Int(2)])),
                (Value::Int(2), Value::set([Value::Int(3)])),
            ]),
        );
        let stats = collect_stats(&i);
        let si = stats.get("SI").unwrap();
        assert_eq!(si.cardinality, 2);
        assert_eq!(si.entry_fanout(), Some(1.5));
    }

    #[test]
    fn collects_class_dict_member_fanouts() {
        let mut i = Instance::new();
        i.set(
            "Dept",
            Value::dict([(
                Value::Oid("Dept".into(), 0),
                Value::record([
                    ("DName", Value::str("cs")),
                    ("DProjs", Value::set([Value::str("a"), Value::str("b")])),
                ]),
            )]),
        );
        let stats = collect_stats(&i);
        let d = stats.get("Dept").unwrap();
        assert_eq!(d.cardinality, 1);
        assert_eq!(d.fanout_of("DProjs"), Some(2.0));
        assert_eq!(d.distinct_of("DName"), Some(1));
    }
}
