//! # cb-engine — in-memory complex-object storage and evaluation
//!
//! The execution substrate for the universal-plans reproduction: the
//! paper's plans have to *run* somewhere for cost claims to be checked.
//! This crate provides:
//!
//! * [`Value`] / [`Instance`] — the runtime complex-object model (records,
//!   sets, dictionaries, OIDs) and named-root databases;
//! * [`Evaluator`] — a set-semantics interpreter for PC queries and
//!   physical plans, with failing (`M[k]`) and non-failing (`M{k}`)
//!   dictionary lookups and ODMG implicit dereferencing;
//! * [`Materializer`] — builds every catalog access structure (indexes,
//!   class extents, views, join indexes, ASRs, gmaps) from base data by
//!   executing its definition;
//! * [`check`] — EPCD satisfaction checking on instances;
//! * [`generator`] — seeded synthetic data for the paper's scenarios;
//! * [`collect_stats`] — cost-model statistics from real instances.

pub mod check;
pub mod eval;
pub mod exec;
pub mod generator;
pub mod instance;
pub mod materialize;
pub mod stats;
pub mod value;

pub use check::{satisfies, violations};
pub use eval::{EvalError, Evaluator};
pub use exec::{
    compile, execute, execute_rows, execute_rows_with_stats, execute_with_stats, Access,
    AccessKind, CompileOptions, CompiledOutput, GroundFilter, OpStats, Operator, Pipeline,
    PipelineLayout, PipelineStats,
};
pub use generator::{
    join_instance, projdept_instance, rabc_instance, JoinParams, ProjDeptParams, RabcParams,
};
pub use instance::Instance;
pub use materialize::{MaterializeError, Materializer};
pub use stats::collect_stats;
pub use value::{Batch, CowValue, SelVec, Value};
