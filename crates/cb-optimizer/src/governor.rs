//! The resource governor: graceful degradation for the service path.
//!
//! A multi-tenant optimizer cannot let one tenant's pathological query —
//! or one injected fault — take the process down or starve its
//! neighbours. When phase 2 runs into trouble, the governor walks a
//! fixed ladder, always trading *quality of exploration* for
//! *availability of an answer*, never correctness (every plan the
//! search streams is equivalence-verified; the universal plan is
//! equivalent by construction):
//!
//! 1. **Shed shard caches.** Under a [`memo byte
//!    limit`](crate::OptimizerConfig::memo_byte_limit) the shared
//!    context's shards drop memo entries instead of growing without
//!    bound; the search proves verdicts again instead of remembering
//!    them.
//! 2. **Collapse to the sequential search.** If the parallel frontier
//!    loses workers to panics and cannot finish, the same lattice walk
//!    is rerun single-threaded against the caller's [`ChaseContext`]
//!    (which never touches the `parallel::*` failpoint sites), under
//!    whatever wall clock the failed attempt left unspent.
//! 3. **Return the universal plan.** If phase 2 itself dies — a panic
//!    escaping the sequential walk — the optimizer keeps any verified
//!    candidates it already streamed and, when there are none, answers
//!    with the verified universal plan: the anytime incumbent of last
//!    resort.
//!
//! Every rung taken is recorded as a [`Degradation`] and surfaced in
//! [`OptimizeOutcome::degradations`](crate::OptimizeOutcome::degradations)
//! and in EXPLAIN's resilience section, so a degraded answer is never
//! silent.
//!
//! [`ChaseContext`]: cb_chase::ChaseContext

use std::fmt;
use std::time::Instant;

use cb_chase::{SearchBudget, SearchOutcome};

/// One rung of the degradation ladder taken during an optimization, in
/// the order taken (see the [module docs](self) for the ladder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Degradation {
    /// Rung 1: the shared context shed shard memo entries to stay under
    /// the configured memo byte limit. `sheds` counts the shard-level
    /// shed events ([`cb_chase::CacheStats::pressure_sheds`]).
    ShardCachesShed { sheds: u64 },
    /// Rung 2: the parallel phase-2 search lost `workers_died` workers
    /// to panics and could not finish; the search was rerun
    /// sequentially under the remaining wall-clock budget.
    SequentialFallback { workers_died: usize },
    /// Rung 3: the phase-2 search itself aborted (`reason` carries the
    /// panic message). Verified candidates streamed before the abort
    /// are kept; with none, the verified universal plan is the answer.
    UniversalFallback { reason: String },
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Degradation::ShardCachesShed { sheds } => {
                write!(
                    f,
                    "shed shard memo caches under memory pressure ({sheds} shed event(s))"
                )
            }
            Degradation::SequentialFallback { workers_died } => {
                write!(
                    f,
                    "parallel search lost {workers_died} worker(s); reran sequentially"
                )
            }
            Degradation::UniversalFallback { reason } => {
                write!(
                    f,
                    "phase-2 search aborted ({reason}); answered with the verified incumbent"
                )
            }
        }
    }
}

/// Walks the degradation ladder for one optimization: owns the memo
/// byte limit (rung 1), decides when a crippled parallel search is
/// rerun sequentially (rung 2), integrates the phase-2 [`SearchBudget`]
/// so the latency SLO covers the *whole* ladder rather than each rung,
/// and records every step taken.
#[derive(Debug)]
pub struct ResourceGovernor {
    memo_byte_limit: Option<usize>,
    budget: SearchBudget,
    start: Instant,
    degradations: Vec<Degradation>,
}

impl ResourceGovernor {
    pub fn new(
        memo_byte_limit: Option<usize>,
        budget: SearchBudget,
        start: Instant,
    ) -> ResourceGovernor {
        ResourceGovernor {
            memo_byte_limit,
            budget,
            start,
            degradations: Vec::new(),
        }
    }

    /// The approximate byte cap the shared context's shards must stay
    /// under (`None`: unbounded).
    pub fn memo_byte_limit(&self) -> Option<usize> {
        self.memo_byte_limit
    }

    /// The phase-2 budget with the wall clock shrunk by what has
    /// already elapsed since the search started — a retry rung runs
    /// under the *remaining* SLO, not a fresh one. A fully spent wall
    /// clock still visits the search root, so even a zero-remaining
    /// retry yields the universal plan.
    pub fn remaining_budget(&self) -> SearchBudget {
        SearchBudget {
            wall_clock: self
                .budget
                .wall_clock
                .map(|d| d.saturating_sub(self.start.elapsed())),
            nodes: self.budget.nodes,
        }
    }

    /// Should a finished parallel attempt be rerun sequentially? Yes
    /// exactly when worker deaths (not the budget, not the visit cap)
    /// left the walk incomplete: every worker died with frontier work
    /// still queued. Survivor-completed searches — even ones that lost
    /// workers along the way — already hold the full result.
    pub fn should_fall_back(&self, out: &SearchOutcome) -> bool {
        out.workers_died > 0 && !out.complete && !out.budget_expired
    }

    /// Record rung 1, if any shed events happened.
    pub fn note_sheds(&mut self, sheds: u64) {
        if sheds > 0 {
            self.degradations
                .push(Degradation::ShardCachesShed { sheds });
        }
    }

    /// Record rung 2.
    pub fn note_sequential_fallback(&mut self, workers_died: usize) {
        self.degradations
            .push(Degradation::SequentialFallback { workers_died });
    }

    /// Record rung 3.
    pub fn note_universal_fallback(&mut self, reason: impl Into<String>) {
        self.degradations.push(Degradation::UniversalFallback {
            reason: reason.into(),
        });
    }

    /// The ladder rungs taken, in order.
    pub fn into_degradations(self) -> Vec<Degradation> {
        self.degradations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn outcome(complete: bool, budget_expired: bool, workers_died: usize) -> SearchOutcome {
        SearchOutcome {
            normal_forms: vec![],
            visited: vec![],
            visited_count: 0,
            complete,
            budget_expired,
            pruned_at_gate: 0,
            pruned_at_visit: 0,
            accepted: false,
            workers_died,
        }
    }

    #[test]
    fn fallback_fires_only_on_death_caused_incompleteness() {
        let g = ResourceGovernor::new(None, SearchBudget::unlimited(), Instant::now());
        assert!(g.should_fall_back(&outcome(false, false, 4)));
        // Survivors finished: no rerun.
        assert!(!g.should_fall_back(&outcome(true, false, 1)));
        // Budget expiry is an SLO, not a fault: no rerun.
        assert!(!g.should_fall_back(&outcome(false, true, 2)));
        // Incomplete for capacity reasons with no deaths: no rerun.
        assert!(!g.should_fall_back(&outcome(false, false, 0)));
    }

    #[test]
    fn remaining_budget_shrinks_the_wall_clock_only() {
        let budget = SearchBudget {
            wall_clock: Some(Duration::from_secs(3600)),
            nodes: Some(17),
        };
        let g = ResourceGovernor::new(None, budget, Instant::now());
        let rest = g.remaining_budget();
        assert!(rest.wall_clock.unwrap() <= Duration::from_secs(3600));
        assert!(rest.wall_clock.unwrap() > Duration::from_secs(3590));
        assert_eq!(rest.nodes, Some(17));

        // An already-expired wall clock saturates to zero, not a panic.
        let spent = ResourceGovernor::new(
            None,
            SearchBudget {
                wall_clock: Some(Duration::ZERO),
                nodes: None,
            },
            Instant::now(),
        );
        assert_eq!(spent.remaining_budget().wall_clock, Some(Duration::ZERO));
    }

    #[test]
    fn rungs_are_recorded_in_order() {
        let mut g = ResourceGovernor::new(Some(4096), SearchBudget::unlimited(), Instant::now());
        g.note_sheds(0); // no-op
        g.note_sheds(3);
        g.note_sequential_fallback(2);
        g.note_universal_fallback("injected panic");
        let d = g.into_degradations();
        assert_eq!(d.len(), 3);
        assert_eq!(d[0], Degradation::ShardCachesShed { sheds: 3 });
        assert_eq!(d[1], Degradation::SequentialFallback { workers_died: 2 });
        assert!(
            matches!(&d[2], Degradation::UniversalFallback { reason } if reason.contains("injected"))
        );
    }
}
