//! Versioned, serializable plan representation.
//!
//! The backchase produces a *plan worth keeping*: the winner of a search
//! that may have taken orders of magnitude longer than executing the
//! plan will. This module gives that artifact a stable external form —
//! modeled on the unified-plan-representation idea of Ba & Rigger (see
//! PAPERS.md) — so plans can be snapshotted, diffed across optimizer
//! versions, and gated in CI.
//!
//! [`PlanRepr::V1`] records the chosen plan and its runners-up (as query
//! text — [`pcql`]'s `Display ↔ parse` round-trip is exercised by the
//! parser corpus), the cost estimates, the compiled pipeline layout
//! ([`cb_engine::PipelineLayout`]), and the search/resilience counters
//! of the [`OptimizeOutcome`] it came from. The text form is plain JSON
//! with a **fixed key order**, rendered and parsed by hand (the crate
//! registry is unreachable, so no serde): `parse ∘ render` is the
//! identity on values and `render ∘ parse ∘ render = render` on text —
//! the fixed point the round-trip proptest pins down.
//!
//! Loading is fail-closed: [`PlanRepr::load_verified`] re-parses the
//! plan text and pushes it through [`cb_analyze::Analyzer`]'s
//! well-formedness, lookup-safety and pipeline-dataflow passes against
//! the *current* catalog before anything compiles to an executable
//! [`Pipeline`] — a stale or hand-edited plan can never run unchecked.

use cb_catalog::Catalog;
use cb_engine::{CompileOptions, Pipeline, PipelineLayout};
use pcql::query::Query;

use crate::optimizer::{OptimizeOutcome, PlanChoice};

/// A versioned plan representation. New format revisions add variants;
/// parsers keep accepting every version they know how to upgrade.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanRepr {
    V1(PlanV1),
}

/// Version 1: the chosen plan, its fallback ladder, the compiled
/// pipeline layout, and the outcome counters.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanV1 {
    /// The input query, as text.
    pub input: String,
    /// The universal plan `chase(Q)`, as text.
    pub universal: String,
    /// The winner.
    pub best: PlanEntryV1,
    /// The `k_best` ladder (a prefix of the outcome's candidates,
    /// cheapest first; includes the winner).
    pub top_k: Vec<PlanEntryV1>,
    /// Layout of the winner's compiled pipeline (default compile
    /// options — the structural identity `plan-diff` compares).
    pub pipeline: PipelineV1,
    /// Search and resilience counters of the producing optimization.
    pub counters: CountersV1,
}

/// One costed plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanEntryV1 {
    /// The executable plan, as text.
    pub query: String,
    /// The backchase subquery it came from, as text.
    pub raw: String,
    /// Estimated cost (finite and nonnegative — the optimizer's
    /// cost-domain boundary enforces this before a choice exists).
    pub cost: f64,
    /// Whether the raw form was a backchase normal form.
    pub minimal: bool,
}

/// The compiled pipeline layout — mirrors [`PipelineLayout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineV1 {
    pub n_slots: u64,
    pub n_tables: u64,
    pub n_runs: u64,
    pub batch_size: u64,
    pub roots: Vec<String>,
    pub ground: Vec<String>,
    pub ops: Vec<String>,
}

/// Search/resilience counters worth diffing across optimizer versions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountersV1 {
    pub nodes_visited: u64,
    pub nodes_pruned_at_gate: u64,
    pub nodes_pruned_at_visit: u64,
    pub workers_died: u64,
    pub complete: bool,
    pub budget_expired: bool,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub deps_resets: u64,
    /// Degradation-ladder rungs taken, in order (debug renderings).
    pub degradations: Vec<String>,
}

/// Why a plan representation could not be produced, parsed, or loaded.
#[derive(Debug, Clone, PartialEq)]
pub enum ReprError {
    /// The text is not a well-formed V-anything plan document.
    Parse(String),
    /// The document parsed, but its version is unknown to this build.
    Version(u64),
    /// A recorded query failed to re-parse (corrupt or hand-edited).
    Query(String),
    /// The plan parsed but the analyzer rejected it against the current
    /// catalog; the rendered report says why.
    Rejected(String),
}

impl std::fmt::Display for ReprError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReprError::Parse(m) => write!(f, "malformed plan document: {m}"),
            ReprError::Version(v) => write!(f, "unsupported plan version {v}"),
            ReprError::Query(m) => write!(f, "recorded plan text does not parse: {m}"),
            ReprError::Rejected(r) => write!(f, "loaded plan rejected by the analyzer:\n{r}"),
        }
    }
}

impl std::error::Error for ReprError {}

impl PlanRepr {
    /// Capture `outcome` as the current-version representation. The
    /// winner's pipeline is compiled with default options — the layout
    /// is a structural identity, not a tuning record.
    pub fn from_outcome(outcome: &OptimizeOutcome) -> PlanRepr {
        let layout = cb_engine::compile(&outcome.best.query, CompileOptions::default()).layout();
        PlanRepr::V1(PlanV1 {
            input: outcome.input.to_string(),
            universal: outcome.universal.to_string(),
            best: PlanEntryV1::of(&outcome.best),
            top_k: outcome.top_k.iter().map(PlanEntryV1::of).collect(),
            pipeline: PipelineV1::of(&layout),
            counters: CountersV1 {
                nodes_visited: outcome.nodes_visited as u64,
                nodes_pruned_at_gate: outcome.nodes_pruned_at_gate as u64,
                nodes_pruned_at_visit: outcome.nodes_pruned_at_visit as u64,
                workers_died: outcome.workers_died as u64,
                complete: outcome.complete,
                budget_expired: outcome.budget_expired,
                cache_hits: outcome.cache.hits(),
                cache_misses: outcome.cache.misses(),
                deps_resets: outcome.cache.deps_resets,
                degradations: outcome
                    .degradations
                    .iter()
                    .map(|d| format!("{d:?}"))
                    .collect(),
            },
        })
    }

    /// The best plan's text, whatever the version.
    pub fn best_query_text(&self) -> &str {
        match self {
            PlanRepr::V1(p) => &p.best.query,
        }
    }

    /// Render to the stable text form (JSON, fixed key order, 2-space
    /// indent). `parse(render(x)) == x` for every representable value.
    pub fn render(&self) -> String {
        let PlanRepr::V1(p) = self;
        let mut w = json::Writer::new();
        w.open();
        w.field_num("version", 1.0);
        w.key("plan");
        w.open();
        w.field_str("input", &p.input);
        w.field_str("universal", &p.universal);
        w.key("best");
        render_entry(&mut w, &p.best);
        w.key("top_k");
        w.open_arr();
        for e in &p.top_k {
            w.arr_item();
            render_entry(&mut w, e);
        }
        w.close_arr();
        w.key("pipeline");
        w.open();
        w.field_num("n_slots", p.pipeline.n_slots as f64);
        w.field_num("n_tables", p.pipeline.n_tables as f64);
        w.field_num("n_runs", p.pipeline.n_runs as f64);
        w.field_num("batch_size", p.pipeline.batch_size as f64);
        w.field_str_arr("roots", &p.pipeline.roots);
        w.field_str_arr("ground", &p.pipeline.ground);
        w.field_str_arr("ops", &p.pipeline.ops);
        w.close();
        w.key("counters");
        w.open();
        w.field_num("nodes_visited", p.counters.nodes_visited as f64);
        w.field_num(
            "nodes_pruned_at_gate",
            p.counters.nodes_pruned_at_gate as f64,
        );
        w.field_num(
            "nodes_pruned_at_visit",
            p.counters.nodes_pruned_at_visit as f64,
        );
        w.field_num("workers_died", p.counters.workers_died as f64);
        w.field_bool("complete", p.counters.complete);
        w.field_bool("budget_expired", p.counters.budget_expired);
        w.field_num("cache_hits", p.counters.cache_hits as f64);
        w.field_num("cache_misses", p.counters.cache_misses as f64);
        w.field_num("deps_resets", p.counters.deps_resets as f64);
        w.field_str_arr("degradations", &p.counters.degradations);
        w.close();
        w.close(); // plan
        w.close(); // document
        w.finish()
    }

    /// Parse the text form back into a value. Strict about structure
    /// (missing or mistyped fields are [`ReprError::Parse`]) but not
    /// about layout — whitespace is free, so hand-pretty-printed
    /// documents still load.
    pub fn parse(text: &str) -> Result<PlanRepr, ReprError> {
        let doc = json::parse(text).map_err(ReprError::Parse)?;
        let version = doc.get_num("version")? as u64;
        if version != 1 {
            return Err(ReprError::Version(version));
        }
        let plan = doc.get_obj("plan")?;
        let pipeline = plan.get_obj("pipeline")?;
        let counters = plan.get_obj("counters")?;
        Ok(PlanRepr::V1(PlanV1 {
            input: plan.get_str("input")?,
            universal: plan.get_str("universal")?,
            best: parse_entry(plan.get_obj("best")?)?,
            top_k: plan
                .get_arr("top_k")?
                .iter()
                .map(|v| parse_entry(v.as_obj()?))
                .collect::<Result<_, _>>()?,
            pipeline: PipelineV1 {
                n_slots: pipeline.get_num("n_slots")? as u64,
                n_tables: pipeline.get_num("n_tables")? as u64,
                n_runs: pipeline.get_num("n_runs")? as u64,
                batch_size: pipeline.get_num("batch_size")? as u64,
                roots: pipeline.get_str_arr("roots")?,
                ground: pipeline.get_str_arr("ground")?,
                ops: pipeline.get_str_arr("ops")?,
            },
            counters: CountersV1 {
                nodes_visited: counters.get_num("nodes_visited")? as u64,
                nodes_pruned_at_gate: counters.get_num("nodes_pruned_at_gate")? as u64,
                nodes_pruned_at_visit: counters.get_num("nodes_pruned_at_visit")? as u64,
                workers_died: counters.get_num("workers_died")? as u64,
                complete: counters.get_bool("complete")?,
                budget_expired: counters.get_bool("budget_expired")?,
                cache_hits: counters.get_num("cache_hits")? as u64,
                cache_misses: counters.get_num("cache_misses")? as u64,
                deps_resets: counters.get_num("deps_resets")? as u64,
                degradations: counters.get_str_arr("degradations")?,
            },
        }))
    }

    /// Re-verify and compile the recorded best plan against `catalog`.
    /// The analyzer's load gate runs first ([`cb_analyze::Analyzer::
    /// verify_loaded_plan`]): a plan that no longer type-checks, reads
    /// unguarded lookups, or compiles to a dataflow-broken pipeline is
    /// [`ReprError::Rejected`], never executed.
    pub fn load_verified(&self, catalog: &Catalog) -> Result<(Query, Pipeline), ReprError> {
        let text = self.best_query_text();
        let q = pcql::parser::parse_query(text)
            .map_err(|e| ReprError::Query(format!("{text:?}: {e}")))?;
        let report = cb_analyze::Analyzer::new(catalog).verify_loaded_plan(&q);
        if report.has_errors() {
            return Err(ReprError::Rejected(report.to_string()));
        }
        let pipeline = cb_engine::compile(&q, CompileOptions::default());
        Ok((q, pipeline))
    }
}

impl PlanEntryV1 {
    fn of(c: &PlanChoice) -> PlanEntryV1 {
        PlanEntryV1 {
            query: c.query.to_string(),
            raw: c.raw.to_string(),
            cost: c.cost,
            minimal: c.minimal,
        }
    }
}

impl PipelineV1 {
    fn of(l: &PipelineLayout) -> PipelineV1 {
        PipelineV1 {
            n_slots: l.n_slots as u64,
            n_tables: l.n_tables as u64,
            n_runs: l.n_runs as u64,
            batch_size: l.batch_size as u64,
            roots: l.roots.clone(),
            ground: l.ground.clone(),
            ops: l.ops.clone(),
        }
    }
}

fn render_entry(w: &mut json::Writer, e: &PlanEntryV1) {
    w.open();
    w.field_str("query", &e.query);
    w.field_str("raw", &e.raw);
    w.field_num("cost", e.cost);
    w.field_bool("minimal", e.minimal);
    w.close();
}

fn parse_entry(o: &json::Obj) -> Result<PlanEntryV1, ReprError> {
    Ok(PlanEntryV1 {
        query: o.get_str("query")?,
        raw: o.get_str("raw")?,
        cost: o.get_num("cost")?,
        minimal: o.get_bool("minimal")?,
    })
}

/// The minimal JSON dialect the plan format needs: objects, arrays,
/// strings, finite numbers, booleans. Hand-rolled writer and
/// recursive-descent parser — no serde in this tree.
mod json {
    use super::ReprError;

    /// Indented writer with the bookkeeping for commas and nesting.
    pub struct Writer {
        out: String,
        depth: usize,
        /// Whether the current container already has an item (comma due).
        has_item: Vec<bool>,
    }

    impl Writer {
        pub fn new() -> Writer {
            Writer {
                out: String::new(),
                depth: 0,
                has_item: Vec::new(),
            }
        }

        fn newline_indent(&mut self) {
            self.out.push('\n');
            for _ in 0..self.depth {
                self.out.push_str("  ");
            }
        }

        fn begin_item(&mut self) {
            if let Some(has) = self.has_item.last_mut() {
                if *has {
                    self.out.push(',');
                }
                *has = true;
            }
            if self.depth > 0 {
                self.newline_indent();
            }
        }

        pub fn key(&mut self, k: &str) {
            self.begin_item();
            self.out.push('"');
            self.out.push_str(k);
            self.out.push_str("\": ");
        }

        pub fn open(&mut self) {
            self.out.push('{');
            self.depth += 1;
            self.has_item.push(false);
        }

        pub fn close(&mut self) {
            let had = self.has_item.pop().unwrap_or(false);
            self.depth -= 1;
            if had {
                self.newline_indent();
            }
            self.out.push('}');
        }

        pub fn open_arr(&mut self) {
            self.out.push('[');
            self.depth += 1;
            self.has_item.push(false);
        }

        pub fn close_arr(&mut self) {
            let had = self.has_item.pop().unwrap_or(false);
            self.depth -= 1;
            if had {
                self.newline_indent();
            }
            self.out.push(']');
        }

        /// Positions (comma + indent) for the next array element.
        pub fn arr_item(&mut self) {
            self.begin_item();
        }

        pub fn field_str(&mut self, k: &str, v: &str) {
            self.key(k);
            self.str_value(v);
        }

        pub fn field_num(&mut self, k: &str, v: f64) {
            self.key(k);
            // Rust's shortest-round-trip Display: `parse` recovers the
            // exact f64, so costs survive the text form bit-for-bit.
            self.out.push_str(&v.to_string());
        }

        pub fn field_bool(&mut self, k: &str, v: bool) {
            self.key(k);
            self.out.push_str(if v { "true" } else { "false" });
        }

        pub fn field_str_arr(&mut self, k: &str, vs: &[String]) {
            self.key(k);
            self.open_arr();
            for v in vs {
                self.arr_item();
                self.str_value(v);
            }
            self.close_arr();
        }

        fn str_value(&mut self, v: &str) {
            self.out.push('"');
            for c in v.chars() {
                match c {
                    '"' => self.out.push_str("\\\""),
                    '\\' => self.out.push_str("\\\\"),
                    '\n' => self.out.push_str("\\n"),
                    '\t' => self.out.push_str("\\t"),
                    '\r' => self.out.push_str("\\r"),
                    c if (c as u32) < 0x20 => {
                        self.out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => self.out.push(c),
                }
            }
            self.out.push('"');
        }

        pub fn finish(mut self) -> String {
            self.out.push('\n');
            self.out
        }
    }

    /// A parsed value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Str(String),
        Num(f64),
        Bool(bool),
        Arr(Vec<Value>),
        Obj(Obj),
    }

    /// A parsed object: insertion-ordered key/value pairs.
    #[derive(Debug, Clone, PartialEq, Default)]
    pub struct Obj {
        pub fields: Vec<(String, Value)>,
    }

    impl Obj {
        fn get(&self, k: &str) -> Result<&Value, ReprError> {
            self.fields
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v)
                .ok_or_else(|| ReprError::Parse(format!("missing field {k:?}")))
        }

        pub fn get_str(&self, k: &str) -> Result<String, ReprError> {
            match self.get(k)? {
                Value::Str(s) => Ok(s.clone()),
                v => Err(type_err(k, "string", v)),
            }
        }

        pub fn get_num(&self, k: &str) -> Result<f64, ReprError> {
            match self.get(k)? {
                Value::Num(n) => Ok(*n),
                v => Err(type_err(k, "number", v)),
            }
        }

        pub fn get_bool(&self, k: &str) -> Result<bool, ReprError> {
            match self.get(k)? {
                Value::Bool(b) => Ok(*b),
                v => Err(type_err(k, "bool", v)),
            }
        }

        pub fn get_obj(&self, k: &str) -> Result<&Obj, ReprError> {
            match self.get(k)? {
                Value::Obj(o) => Ok(o),
                v => Err(type_err(k, "object", v)),
            }
        }

        pub fn get_arr(&self, k: &str) -> Result<&[Value], ReprError> {
            match self.get(k)? {
                Value::Arr(items) => Ok(items),
                v => Err(type_err(k, "array", v)),
            }
        }

        pub fn get_str_arr(&self, k: &str) -> Result<Vec<String>, ReprError> {
            self.get_arr(k)?
                .iter()
                .map(|v| match v {
                    Value::Str(s) => Ok(s.clone()),
                    v => Err(type_err(k, "string element", v)),
                })
                .collect()
        }
    }

    impl Value {
        pub fn as_obj(&self) -> Result<&Obj, ReprError> {
            match self {
                Value::Obj(o) => Ok(o),
                v => Err(ReprError::Parse(format!("expected object, got {v:?}"))),
            }
        }
    }

    fn type_err(k: &str, want: &str, got: &Value) -> ReprError {
        ReprError::Parse(format!("field {k:?}: expected {want}, got {got:?}"))
    }

    /// Parse one document; trailing content is an error.
    pub fn parse(text: &str) -> Result<Obj, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        match v {
            Value::Obj(o) => Ok(o),
            v => Err(format!("document is not an object: {v:?}")),
        }
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(u8::is_ascii_whitespace)
            {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!(
                    "expected {:?} at byte {}, found {:?}",
                    b as char,
                    self.pos,
                    self.peek().map(|b| b as char)
                ))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') | Some(b'f') => self.boolean(),
                Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
                other => Err(format!(
                    "unexpected {:?} at byte {}",
                    other.map(|b| b as char),
                    self.pos
                )),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(Obj { fields }));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let val = self.value()?;
                fields.push((key, val));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(Obj { fields }));
                    }
                    other => {
                        return Err(format!(
                            "expected ',' or '}}' at byte {}, found {:?}",
                            self.pos,
                            other.map(|b| b as char)
                        ))
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    other => {
                        return Err(format!(
                            "expected ',' or ']' at byte {}, found {:?}",
                            self.pos,
                            other.map(|b| b as char)
                        ))
                    }
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| format!("invalid \\u{code:04x}"))?,
                                );
                                self.pos += 4;
                            }
                            other => {
                                return Err(format!(
                                    "unknown escape {:?}",
                                    other.map(|b| b as char)
                                ))
                            }
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar, not one byte.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|e| e.to_string())?;
                        let c = rest.chars().next().ok_or("unterminated string")?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while self.peek().is_some_and(|b| {
                b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
            }) {
                self.pos += 1;
            }
            let text =
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }

        fn boolean(&mut self) -> Result<Value, String> {
            for (word, val) in [("true", true), ("false", false)] {
                if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                    self.pos += word.len();
                    return Ok(Value::Bool(val));
                }
            }
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Optimizer;
    use cb_catalog::scenarios::projdept;

    fn sample_outcome() -> (Catalog, OptimizeOutcome) {
        let mut c = projdept::catalog();
        projdept::stats_for(&mut c, 100, 10, 20);
        let outcome = Optimizer::new(&c).optimize(&projdept::query()).unwrap();
        (c, outcome)
    }

    #[test]
    fn render_parse_is_a_fixed_point() {
        let (_, outcome) = sample_outcome();
        let repr = PlanRepr::from_outcome(&outcome);
        let text = repr.render();
        let parsed = PlanRepr::parse(&text).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn load_verified_accepts_the_plan_it_came_from() {
        let (c, outcome) = sample_outcome();
        let repr = PlanRepr::from_outcome(&outcome);
        let (q, pipeline) = repr.load_verified(&c).unwrap();
        assert_eq!(q, outcome.best.query);
        assert_eq!(pipeline.layout().ops.len(), pipeline.ops.len());
    }

    #[test]
    fn load_verified_rejects_a_tampered_plan() {
        let (c, outcome) = sample_outcome();
        let repr = PlanRepr::from_outcome(&outcome);
        let mut text = repr.render();
        // Hand-edit the plan to read a root the catalog doesn't have.
        let best = outcome.best.query.to_string();
        let tampered = best.replace("SI", "Missing").replace("Proj", "Missing");
        assert_ne!(best, tampered);
        text = text.replace(&render_str(&best), &render_str(&tampered));
        let loaded = PlanRepr::parse(&text).unwrap();
        match loaded.load_verified(&c) {
            Err(ReprError::Rejected(report)) => {
                assert!(report.contains("Missing"), "{report}");
            }
            other => panic!("tampered plan was not rejected: {other:?}"),
        }
    }

    /// The JSON string rendering of `s`, for splicing edits into a
    /// rendered document in tests.
    fn render_str(s: &str) -> String {
        format!("{s:?}")
    }

    #[test]
    fn unknown_versions_are_refused() {
        let text = "{\"version\": 2, \"plan\": {}}";
        assert_eq!(PlanRepr::parse(text), Err(ReprError::Version(2)));
    }

    #[test]
    fn malformed_documents_fail_with_position() {
        for bad in ["", "{", "{\"version\": }", "[1,2]", "{\"a\":1} junk"] {
            assert!(
                matches!(PlanRepr::parse(bad), Err(ReprError::Parse(_))),
                "{bad:?}"
            );
        }
    }
}
