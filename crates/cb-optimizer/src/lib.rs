//! # cb-optimizer — Algorithm 1 of the universal-plans paper
//!
//! Putting the pieces together:
//!
//! 1. **chase** the input query with `D ∪ D'` into the universal plan;
//! 2. **backchase** the universal plan into the set of minimal plans
//!    (plus every physical equivalent subquery along the way);
//! 3. per plan, run the "conventional" step: guard-elimination cleanup
//!    (the §4 non-failing lookup rewrite), greedy binding reordering, and
//!    System-R-style costing;
//! 4. return the cheapest plan, with the whole derivation retained for
//!    [`explain`].

pub mod cleanup;
pub mod cost;
pub mod explain;
pub mod governor;
pub mod optimizer;
pub mod plan_repr;
pub mod reorder;
pub mod service;

pub use cleanup::{cleanup_plan, prune_implied_conditions};
pub use cost::{CostError, CostModel};
pub use explain::{explain, explain_prepared};
pub use governor::{Degradation, ResourceGovernor};
pub use optimizer::{
    CostBound, OptimizeError, OptimizeOutcome, Optimizer, OptimizerConfig, PlanChoice,
    PreflightMode, SearchStrategy,
};
pub use plan_repr::{PlanRepr, PlanV1, ReprError};
pub use reorder::reorder_bindings;
pub use service::{PlanService, Prepared, ServiceStats};
