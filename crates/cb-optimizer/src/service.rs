//! The optimizer as a long-lived service.
//!
//! [`PlanService`] is the front end the ROADMAP's "optimizer-as-a-
//! service" item asks for: one value owning the catalog, a long-lived
//! memoized chase core, and a bounded cache of prepared plans. Where a
//! bare [`Optimizer`] treats every `optimize` call as a cold start, the
//! service amortizes across calls on two levels:
//!
//! * **Chase memos** — every preparation runs through one shared
//!   [`ChaseContext`], so phase 1, the backchase's verification traffic
//!   and plan cleanup all reuse earlier chases, containment verdicts and
//!   implication proofs. (A parallel phase 2 still builds its sharded
//!   [`cb_chase::SharedChaseContext`] twin per search, as always.)
//! * **Prepared plans** — the full [`OptimizeOutcome`] plus its
//!   serialized [`PlanRepr`], keyed by *alpha-normalized query* ×
//!   *canonical catalog fingerprint* × *cost-model fingerprint*. A hit
//!   returns the plan without any phase-2 search at all
//!   ([`Prepared::nodes_visited`] is 0 — the property E21 measures).
//!
//! The key is exactly as strong as the things a plan depends on:
//!
//! * the query, up to bound-variable renaming ([`Query::alpha_normalized`]);
//! * the catalog's constraint theory — via the **order-insensitive**
//!   canonical dependency fingerprint ([`ChaseContext::fingerprint_of`]),
//!   so a reordered-but-identical catalog neither resets the chase core
//!   nor misses the cache — plus both schema signatures;
//! * the statistics the cost model ranks by ([`CostModel::fingerprint`]) —
//!   a stats refresh changes plan choice, so it must miss.
//!
//! Catalog hot-swap ([`PlanService::swap_catalog`]) recomputes both
//! fingerprints, funnels the chase core through the existing
//! [`ChaseContext::ensure_deps`] reset path, and drops every cache entry
//! the new fingerprints orphan (counted as invalidations). A plan can
//! therefore never be served across a `deps_resets` boundary: any swap
//! that resets the core also changes the catalog fingerprint every
//! cached key embeds.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use cb_catalog::Catalog;
use cb_chase::{CacheStats, ChaseContext};
use pcql::query::Query;

use crate::cost::CostModel;
use crate::optimizer::{OptimizeError, OptimizeOutcome, Optimizer, OptimizerConfig};
use crate::plan_repr::PlanRepr;

/// Cache key for one prepared plan. Everything plan choice depends on,
/// nothing it doesn't.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    /// The query, alpha-normalized: `from R r` and `from R x` are the
    /// same preparation.
    query: Query,
    /// [`PlanService::catalog_fingerprint`] at preparation time.
    catalog_fp: u64,
    /// [`CostModel::fingerprint`] at preparation time.
    cost_fp: u64,
}

/// A cached preparation: the outcome and its serialized form.
#[derive(Debug, Clone)]
pub struct PreparedPlan {
    /// The full optimization outcome (EXPLAIN, top-k ladder, counters).
    pub outcome: OptimizeOutcome,
    /// The versioned serialization of the outcome, built once at
    /// preparation time — serving it is free.
    pub repr: PlanRepr,
}

/// What one [`PlanService::prepare`] call returns.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The plan (shared with the cache — cloning is refcounting).
    pub plan: Arc<PreparedPlan>,
    /// Whether this call was served from the cache.
    pub cache_hit: bool,
    /// Phase-2 lattice nodes *this call* verified: 0 on a hit (the
    /// whole search was skipped), the outcome's count on a miss.
    pub nodes_visited: usize,
}

/// Hit/miss/invalidation accounting for the service, in the same
/// counters-not-logs style as [`CacheStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Preparations served from the plan cache.
    pub hits: u64,
    /// Preparations that ran the optimizer.
    pub misses: u64,
    /// Cached plans dropped because a catalog or statistics swap
    /// orphaned their fingerprints.
    pub invalidations: u64,
    /// Cached plans evicted FIFO by the size bound.
    pub evictions: u64,
    /// [`PlanService::swap_catalog`] calls.
    pub catalog_swaps: u64,
}

impl ServiceStats {
    /// Hit rate over all preparations (0.0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The prepared-plan service. See the module docs for the design.
pub struct PlanService {
    catalog: Catalog,
    config: OptimizerConfig,
    /// The long-lived memoized chase core every preparation runs in.
    ctx: ChaseContext,
    cache: HashMap<PlanKey, Arc<PreparedPlan>>,
    /// FIFO insertion order for eviction, mirroring the chase memos'
    /// `insert_bounded` discipline.
    order: VecDeque<PlanKey>,
    /// Max cached plans; 0 means unbounded (the [`cb_chase`] `memo_cap`
    /// convention).
    cache_cap: usize,
    stats: ServiceStats,
    catalog_fp: u64,
    cost_fp: u64,
}

impl PlanService {
    /// A service over `catalog` with the given optimizer configuration.
    /// Use an explicit config (not [`Optimizer::new`]'s env-derived one)
    /// when reproducibility matters — snapshots, tests.
    pub fn new(catalog: Catalog, config: OptimizerConfig) -> PlanService {
        let ctx = ChaseContext::new(catalog.all_constraints(), config.chase.clone());
        let catalog_fp = PlanService::catalog_fingerprint(&catalog, &config);
        let cost_fp = CostModel::for_catalog(&catalog).fingerprint();
        PlanService {
            catalog,
            config,
            ctx,
            cache: HashMap::new(),
            order: VecDeque::new(),
            cache_cap: 0,
            stats: ServiceStats::default(),
            catalog_fp,
            cost_fp,
        }
    }

    /// Bounds the plan cache at `cap` entries, evicted FIFO (0 =
    /// unbounded, the default).
    pub fn with_cache_cap(mut self, cap: usize) -> PlanService {
        self.cache_cap = cap;
        self
    }

    /// The canonical catalog fingerprint a cached plan is keyed under:
    /// the order-insensitive dependency-set fingerprint (the same one
    /// the chase core confirms against) plus both schema signatures.
    /// Reordering constraints does not change it; adding, removing or
    /// rewriting one does, as does any root/type change.
    fn catalog_fingerprint(catalog: &Catalog, config: &OptimizerConfig) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        ChaseContext::fingerprint_of(&catalog.all_constraints(), &config.chase).hash(&mut h);
        for schema in [catalog.logical(), catalog.physical()] {
            for (root, ty) in &schema.roots {
                root.hash(&mut h);
                ty.to_string().hash(&mut h);
            }
        }
        h.finish()
    }

    /// Prepare `q`: serve the cached plan when the key matches, run the
    /// full chase & backchase in the shared core when it doesn't.
    pub fn prepare(&mut self, q: &Query) -> Result<Prepared, OptimizeError> {
        let key = PlanKey {
            query: q.alpha_normalized(),
            catalog_fp: self.catalog_fp,
            cost_fp: self.cost_fp,
        };
        if let Some(plan) = self.cache.get(&key) {
            self.stats.hits += 1;
            return Ok(Prepared {
                plan: Arc::clone(plan),
                cache_hit: true,
                nodes_visited: 0,
            });
        }
        self.stats.misses += 1;
        let optimizer = Optimizer::with_config(&self.catalog, self.config.clone());
        let outcome = optimizer.optimize_in(&mut self.ctx, q)?;
        let repr = PlanRepr::from_outcome(&outcome);
        let nodes_visited = outcome.nodes_visited;
        let plan = Arc::new(PreparedPlan { outcome, repr });
        if self.cache_cap > 0 {
            while self.cache.len() >= self.cache_cap {
                match self.order.pop_front() {
                    Some(oldest) => {
                        self.cache.remove(&oldest);
                        self.stats.evictions += 1;
                    }
                    None => break,
                }
            }
        }
        self.cache.insert(key.clone(), Arc::clone(&plan));
        self.order.push_back(key);
        Ok(Prepared {
            plan,
            cache_hit: false,
            nodes_visited,
        })
    }

    /// Replace the catalog. The chase core goes through the
    /// [`ChaseContext::ensure_deps`] path — reset iff the constraint
    /// theory genuinely changed (a reordered catalog keeps its memos) —
    /// and every cached plan whose fingerprints the swap orphans is
    /// dropped and counted as an invalidation.
    pub fn swap_catalog(&mut self, catalog: Catalog) {
        self.catalog = catalog;
        self.stats.catalog_swaps += 1;
        self.ctx
            .ensure_deps(&self.catalog.all_constraints(), &self.config.chase);
        self.catalog_fp = PlanService::catalog_fingerprint(&self.catalog, &self.config);
        self.cost_fp = CostModel::for_catalog(&self.catalog).fingerprint();
        let (catalog_fp, cost_fp) = (self.catalog_fp, self.cost_fp);
        let before = self.cache.len();
        self.cache
            .retain(|k, _| k.catalog_fp == catalog_fp && k.cost_fp == cost_fp);
        self.stats.invalidations += (before - self.cache.len()) as u64;
        let cache = &self.cache;
        self.order.retain(|k| cache.contains_key(k));
    }

    /// The catalog currently served.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Service-level counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// The shared chase core's memo counters (hits, misses, resets —
    /// including [`CacheStats::reorder_resets_avoided`]).
    pub fn chase_stats(&self) -> CacheStats {
        self.ctx.stats()
    }

    /// Cached plans currently held.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_catalog::scenarios::projdept;

    fn catalog() -> Catalog {
        let mut c = projdept::catalog();
        projdept::stats_for(&mut c, 100, 10, 20);
        c
    }

    fn service() -> PlanService {
        PlanService::new(catalog(), OptimizerConfig::default())
    }

    #[test]
    fn second_preparation_is_a_hit_with_no_search() {
        let mut svc = service();
        let q = projdept::query();
        let cold = svc.prepare(&q).unwrap();
        assert!(!cold.cache_hit);
        assert!(cold.nodes_visited > 0);
        let warm = svc.prepare(&q).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(warm.nodes_visited, 0, "a hit must skip phase 2 entirely");
        assert_eq!(warm.plan.outcome.best.query, cold.plan.outcome.best.query);
        assert_eq!(svc.stats().hits, 1);
        assert_eq!(svc.stats().misses, 1);
    }

    #[test]
    fn alpha_equivalent_queries_share_one_preparation() {
        let mut svc = service();
        let q = projdept::query();
        svc.prepare(&q).unwrap();
        // Same query, different variable names.
        let renamed = q.alpha_normalized();
        let again = svc.prepare(&renamed).unwrap();
        assert!(again.cache_hit);
    }

    #[test]
    fn stats_refresh_misses_but_reuses_chase_memos() {
        let mut svc = service();
        let q = projdept::query();
        svc.prepare(&q).unwrap();
        let warm_chase_misses = svc.chase_stats().misses();
        // New statistics: same constraints, different cost model.
        let mut c2 = projdept::catalog();
        projdept::stats_for(&mut c2, 1000, 50, 5);
        svc.swap_catalog(c2);
        // The cached plan was invalidated (the cost fingerprint moved)…
        assert_eq!(svc.stats().invalidations, 1);
        let re = svc.prepare(&q).unwrap();
        assert!(!re.cache_hit);
        // …but the chase core kept its memos: same theory, no reset.
        assert_eq!(svc.chase_stats().deps_resets, 0);
        assert!(
            svc.chase_stats().hits() > 0,
            "re-preparation should answer chase work from warm memos"
        );
        let _ = warm_chase_misses;
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let mut svc = PlanService::new(catalog(), OptimizerConfig::default()).with_cache_cap(1);
        let q1 = projdept::query();
        let q2 = projdept::paper_plans().remove(0);
        svc.prepare(&q1).unwrap();
        svc.prepare(&q2).unwrap();
        assert_eq!(svc.cached_plans(), 1);
        assert_eq!(svc.stats().evictions, 1);
        // q1 was evicted to admit q2.
        assert!(!svc.prepare(&q1).unwrap().cache_hit);
    }
}
