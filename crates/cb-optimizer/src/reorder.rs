//! Binding reordering — the slice of "conventional optimization
//! techniques … such as selection pushing and join reordering" that
//! Algorithm 1's step 3 applies to each enumerated plan.
//!
//! Greedy: repeatedly place the schedulable binding (all source variables
//! already placed) that minimizes the cost of the plan prefix, with the
//! conditions attached as early as the engine would attach them. Greedy
//! ordering is standard for this plan-space size; the cost model makes
//! selective accesses (filtered scans, dictionary lookups) come first.

use pcql::query::Query;

use crate::cost::CostModel;

/// Reorders `q`'s bindings to a cheaper but semantically identical order.
pub fn reorder_bindings(q: &Query, model: &CostModel<'_>) -> Query {
    if q.from.len() <= 1 {
        return q.clone();
    }
    let mut rest: Vec<usize> = (0..q.from.len()).collect();
    let mut order: Vec<usize> = Vec::with_capacity(rest.len());
    let mut placed_vars: std::collections::BTreeSet<String> = Default::default();
    while !rest.is_empty() {
        // Minimize the intermediate cardinality first (the classic greedy
        // join-ordering criterion), then the prefix cost.
        let mut best: Option<((f64, f64), usize)> = None;
        for (pos, &idx) in rest.iter().enumerate() {
            let b = &q.from[idx];
            if !b.src.free_vars().iter().all(|v| placed_vars.contains(v)) {
                continue;
            }
            let mut prefix_order = order.clone();
            prefix_order.push(idx);
            let prefix = project_prefix(q, &prefix_order);
            let key = (model.result_cardinality(&prefix), model.plan_cost(&prefix));
            if best.is_none_or(|(k, _)| key < k) {
                best = Some((key, pos));
            }
        }
        let Some((_, pos)) = best else {
            // Ill-scoped input (shouldn't happen): keep the original order.
            return q.clone();
        };
        let idx = rest.remove(pos);
        placed_vars.insert(q.from[idx].var.clone());
        order.push(idx);
    }
    let mut out = q.clone();
    out.from = order.into_iter().map(|i| q.from[i].clone()).collect();
    out
}

/// The query restricted to a binding prefix: conditions evaluable with the
/// prefix variables only, and a placeholder output.
fn project_prefix(q: &Query, order: &[usize]) -> Query {
    let from: Vec<_> = order.iter().map(|&i| q.from[i].clone()).collect();
    let vars: std::collections::BTreeSet<String> = from.iter().map(|b| b.var.clone()).collect();
    let where_: Vec<_> = q
        .where_
        .iter()
        .filter(|e| e.free_vars().iter().all(|v| vars.contains(v)))
        .cloned()
        .collect();
    Query::new(
        pcql::Output::record(Vec::<(String, pcql::Path)>::new()),
        from,
        where_,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_catalog::scenarios::projdept;
    use pcql::parser::parse_query;

    #[test]
    fn selective_scan_moves_first() {
        let mut cat = projdept::catalog();
        projdept::stats_for(&mut cat, 100, 10, 20);
        let model = CostModel::for_catalog(&cat);
        // depts × Proj with a selective filter on Proj: Proj should be
        // scanned first.
        let q = parse_query(
            r#"select struct(DN = d.DName, PN = p.PName)
               from depts d, Proj p
               where p.CustName = "CitiBank" and p.PDept = d.DName"#,
        )
        .unwrap();
        let r = reorder_bindings(&q, &model);
        assert_eq!(r.from[0].src.to_string(), "Proj");
        assert_eq!(r.from.len(), 2);
        assert!(model.plan_cost(&r) <= model.plan_cost(&q));
    }

    #[test]
    fn dependent_bindings_stay_after_their_providers() {
        let mut cat = projdept::catalog();
        projdept::stats_for(&mut cat, 100, 10, 20);
        let model = CostModel::for_catalog(&cat);
        let q = projdept::query();
        let r = reorder_bindings(&q, &model);
        // s ranges over d.DProjs, so d must still precede s.
        let pos = |v: &str| {
            r.from
                .iter()
                .position(|b| b.var == v)
                .expect("binding kept")
        };
        assert!(pos("d") < pos("s"));
        assert_eq!(r.from.len(), q.from.len());
        assert!(r.check_scopes().is_ok());
    }

    #[test]
    fn single_binding_unchanged() {
        let mut cat = projdept::catalog();
        projdept::stats_for(&mut cat, 100, 10, 20);
        let model = CostModel::for_catalog(&cat);
        let q = parse_query("select struct(PN = p.PName) from Proj p").unwrap();
        assert_eq!(reorder_bindings(&q, &model), q);
    }
}
