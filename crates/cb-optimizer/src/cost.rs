//! The cost model.
//!
//! The paper deliberately leaves the cost model open ("we expect that the
//! algorithm … will be used in conjunction with good cost models"); we
//! supply a classic System-R-style estimator over the catalog statistics,
//! mirroring the engine's execution discipline exactly: nested loops in
//! binding order, each `where` conjunct applied at the earliest level
//! where its variables are bound, dictionary lookups at unit cost.
//!
//! Costs are abstract "operations": iterating a collection costs its
//! (estimated) cardinality, evaluating a path costs one per dictionary
//! lookup it contains, producing a row costs one.
//!
//! Intermediate row estimates are **clamped at one row** before each
//! nested-loop level (the classic `clamp_row_est` discipline): however
//! selective the conditions above it, an inner loop is never charged
//! less than one full pass of its collection. Besides being the usual
//! guard against compounding selectivity underestimates, the clamp is
//! what makes per-binding access floors *summable* — every binding of a
//! plan contributes at least its own floor to [`CostModel::plan_cost`],
//! so the branch-and-bound lower bound can add the floors of all
//! must-remain bindings ([`CostModel::lattice_lower_bound`]) instead of
//! taking the single cheapest one ([`CostModel::lower_bound`]).

use std::collections::{BTreeMap, BTreeSet};

use cb_catalog::stats::{DEFAULT_EQ_SELECTIVITY, DEFAULT_FANOUT};
use cb_catalog::{Catalog, Stats};
use cb_chase::MustRemainAnalysis;
use pcql::path::Path;
use pcql::query::{BindKind, Equality, Query};

/// A cost estimate left the domain the optimizer's orderings assume.
///
/// Every consumer of [`CostModel::plan_cost`] — the k-best
/// `sort_by(total_cmp)`, the `fetch_min`-over-`to_bits` atomic incumbent
/// of the parallel search — is only correct for **finite, nonnegative**
/// costs: `total_cmp` orders NaN above +∞ (silently burying a poisoned
/// candidate at the bottom of the ranking instead of rejecting it), and
/// the IEEE-754 bit pattern of a negative float compares *above* every
/// positive one as a u64, corrupting the incumbent. The model therefore
/// polices its own boundary: [`CostModel::checked_plan_cost`] returns
/// this error instead of letting such a value escape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostError {
    /// The estimate was NaN, ±∞, or negative (the estimator itself never
    /// produces negatives, but poisoned statistics — e.g. an infinite
    /// recorded fanout — propagate through the arithmetic).
    NonFinite(f64),
}

impl std::fmt::Display for CostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CostError::NonFinite(c) => {
                write!(f, "plan cost {c} is outside the finite nonnegative domain")
            }
        }
    }
}

impl std::error::Error for CostError {}

/// Cost estimator over catalog statistics.
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    stats: &'a Stats,
    /// [`CostModel::global_access_floor`], computed once — the bound
    /// consults it per open binding on the search's hottest path, and
    /// the statistics are immutable for the model's lifetime.
    global_floor: f64,
}

impl<'a> CostModel<'a> {
    pub fn new(stats: &'a Stats) -> CostModel<'a> {
        CostModel {
            stats,
            global_floor: global_access_floor_of(stats),
        }
    }

    pub fn for_catalog(catalog: &'a Catalog) -> CostModel<'a> {
        CostModel::new(catalog.stats())
    }

    /// Estimated total operations to execute `q` with the engine's
    /// nested-loop discipline.
    ///
    /// Debug builds assert the estimate is finite and nonnegative — the
    /// domain every downstream ordering (k-best sort, atomic incumbent)
    /// assumes. Release callers that cannot rule out poisoned statistics
    /// should go through [`CostModel::checked_plan_cost`] instead.
    pub fn plan_cost(&self, q: &Query) -> f64 {
        let cost = self.raw_plan_cost(q);
        debug_assert!(
            cost.is_finite() && cost >= 0.0,
            "plan_cost({q}) = {cost} escapes the finite nonnegative domain"
        );
        cost
    }

    /// [`CostModel::plan_cost`] with the domain check promoted to a typed
    /// error: returns [`CostError::NonFinite`] instead of handing a NaN,
    /// ±∞, or negative estimate to orderings that would silently
    /// mis-rank it.
    pub fn checked_plan_cost(&self, q: &Query) -> Result<f64, CostError> {
        let cost = self.raw_plan_cost(q);
        if cost.is_finite() && cost >= 0.0 {
            Ok(cost)
        } else {
            Err(CostError::NonFinite(cost))
        }
    }

    fn raw_plan_cost(&self, q: &Query) -> f64 {
        let hints = self.var_hints(q);
        // Assign each condition to the earliest level where its variables
        // are all bound (level i means "after binding i-1").
        let mut level_of_var: BTreeMap<&str, usize> = BTreeMap::new();
        for (i, b) in q.from.iter().enumerate() {
            level_of_var.insert(&b.var, i + 1);
        }
        let mut conds_at: Vec<Vec<&Equality>> = vec![Vec::new(); q.from.len() + 1];
        for eq in &q.where_ {
            let level = eq
                .free_vars()
                .iter()
                .map(|v| level_of_var.get(v.as_str()).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            conds_at[level].push(eq);
        }

        let mut rows = 1.0_f64;
        let mut cost = 0.0_f64;
        for eq in &conds_at[0] {
            cost += path_eval_cost(&eq.0) + path_eval_cost(&eq.1);
        }
        for (i, b) in q.from.iter().enumerate() {
            let mult = match b.kind {
                BindKind::Iter => self.collection_cardinality(&b.src, &hints),
                BindKind::Let => 1.0,
            };
            // Iterating costs the collection size (plus the lookups needed
            // to reach it), once per outer row — and at least once: the
            // row estimate is clamped so a binding is never charged below
            // its own access floor (see the module docs).
            cost += rows.max(1.0) * (mult.max(1.0) + path_eval_cost(&b.src));
            rows *= mult;
            for eq in &conds_at[i + 1] {
                cost += rows * (path_eval_cost(&eq.0) + path_eval_cost(&eq.1) + 1.0);
                rows *= self.selectivity(eq, &hints);
            }
        }
        // Output evaluation for surviving rows.
        let out_cost: f64 = q
            .output
            .paths()
            .iter()
            .map(|(_, p)| 1.0 + path_eval_cost(p))
            .sum();
        cost + rows * out_cost
    }

    /// An admissible lower bound on [`CostModel::plan_cost`] — for `q`
    /// itself *and* for every plan the backchase can derive from `q` by
    /// further removals (then cleanup and reordering). This is what lets
    /// the optimizer's cost-guided strategy prune a lattice branch the
    /// moment the bound exceeds its incumbent best.
    ///
    /// The bound is the cheapest access floor among `q`'s bindings:
    /// whatever the final plan looks like, its first binding contributes
    /// at least its own collection cardinality (at least 1), that binding
    /// survives from `q` (removals only drop bindings, reordering only
    /// permutes), and each surviving binding's floor can never shrink
    /// along descent:
    ///
    /// * a *closed* source (no free variables — base scans `R`, guard
    ///   loops `dom(M)`, constant-key lookups `M[c]`) is never rewritten
    ///   by subquery re-expression, and guard-elimination cleanup either
    ///   drops it (covered by the minimum) or turns `M[c]` into `M{c}`
    ///   with the identical entry-fanout estimate — so its own estimate
    ///   is stable and used exactly;
    /// * an *open* source (mentions variables) can be re-expressed to a
    ///   congruent path whose estimate differs (a condition may equate
    ///   `x.F` with a cheaper `y.G`), so it gets the catalog-wide
    ///   minimum access estimate — a floor no re-expressed or cleaned
    ///   form can undercut.
    ///
    /// The minimum over `q`'s bindings therefore under-estimates every
    /// descendant, and is monotone (non-decreasing) along lattice
    /// descent: a subset of bindings can only have a larger minimum.
    ///
    /// This bound needs no lattice context; when the caller knows the
    /// removal set and holds a [`MustRemainAnalysis`],
    /// [`CostModel::lattice_lower_bound`] dominates it.
    pub fn lower_bound(&self, q: &Query) -> f64 {
        let bound = q
            .from
            .iter()
            .map(|b| match b.kind {
                BindKind::Let => 1.0,
                BindKind::Iter => self.path_floor(&b.src),
            })
            .fold(f64::INFINITY, f64::min);
        if bound.is_finite() {
            bound
        } else {
            1.0
        }
    }

    /// The tighter, lattice-aware admissible bound behind
    /// `SearchStrategy::CostGuided`: instead of the single cheapest
    /// access floor of [`CostModel::lower_bound`], it **sums** the floors
    /// of every binding the [`MustRemainAnalysis`] proves present in all
    /// equivalence-preserving descendants of the lattice node `removed`
    /// (of which `q` is the subquery), and takes the old bound as a floor
    /// for the rest — a node forced to keep both a base scan and an index
    /// walk is bounded by scan + walk, not by whichever is cheaper.
    ///
    /// Why this under-estimates every derivable plan `p`:
    ///
    /// * `p` contains all must-remain bindings (that is the analysis's
    ///   contract, and it under-approximates on any doubt);
    /// * [`CostModel::plan_cost`] clamps row estimates at one before each
    ///   nested-loop level, so each binding of `p` contributes at least
    ///   `max(1, cardinality-of-its-source)` wherever reordering puts it;
    /// * a binding's floor is taken over *every* source its congruence
    ///   class can re-express it to: closed (variable-free) paths have
    ///   hint-independent estimates and are priced exactly, open paths
    ///   fall to the catalog-wide minimum no estimate can undercut;
    /// * a `dom(M)` guard loop can be eliminated wholesale by the plan
    ///   cleanup's non-failing-lookup rewrite, so any binding whose class
    ///   contains a `dom` form contributes nothing to the sum.
    ///
    /// Monotone along lattice descent: the must-remain set only grows
    /// (descendants of a descendant are descendants), per-binding floors
    /// are fixed by the class structure of the universal plan, and the
    /// fallback [`CostModel::lower_bound`] is itself monotone.
    pub fn lattice_lower_bound(
        &self,
        q: &Query,
        removed: &BTreeSet<String>,
        analysis: &mut MustRemainAnalysis,
    ) -> f64 {
        let base = self.lower_bound(q);
        let must = analysis.must_remain(removed);
        let mut sum = 0.0;
        for b in &q.from {
            if !must.contains(&b.var) {
                continue;
            }
            sum += match b.kind {
                BindKind::Let => 1.0,
                BindKind::Iter => {
                    let sources = analysis.possible_sources(&b.var);
                    if sources.iter().any(|p| matches!(p, Path::Dom(_))) {
                        // Guard-elimination cleanup may drop the loop
                        // entirely; the costed plan would not pay for it.
                        0.0
                    } else {
                        self.sources_floor(sources)
                    }
                }
            };
        }
        base.max(sum)
    }

    /// The guaranteed minimum a binding pays for iterating one of
    /// `sources` (whichever re-expression a descendant picks).
    fn sources_floor(&self, sources: &[Path]) -> f64 {
        sources
            .iter()
            .map(|p| self.path_floor(p))
            .fold(f64::INFINITY, f64::min)
            // An unknown binding (no recorded sources) still iterates
            // *something*: the catalog-wide floor covers it.
            .min(if sources.is_empty() {
                self.global_access_floor()
            } else {
                f64::INFINITY
            })
    }

    /// The floor of one access path: closed paths are priced by their own
    /// (hint-independent) cardinality estimate, open paths by the
    /// catalog-wide minimum — the same split [`CostModel::lower_bound`]
    /// applies per binding.
    fn path_floor(&self, p: &Path) -> f64 {
        if p.free_vars().is_empty() {
            let no_hints = BTreeMap::new();
            self.collection_cardinality(p, &no_hints).max(1.0)
        } else {
            self.global_access_floor()
        }
    }

    /// The smallest collection-cardinality estimate this model can assign
    /// to *any* access path (precomputed; see [`global_access_floor_of`]).
    fn global_access_floor(&self) -> f64 {
        self.global_floor
    }

    /// Fingerprint of everything this model's estimates depend on: the
    /// full statistics table, in `BTreeMap` (i.e. deterministic) order,
    /// floats hashed by bit pattern. Two models with equal fingerprints
    /// produce identical estimates for every query, so a prepared-plan
    /// cache can key on this to detect stats refreshes that would change
    /// plan choice.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for (root, s) in &self.stats.roots {
            root.hash(&mut h);
            s.cardinality.hash(&mut h);
            for (field, d) in &s.distinct {
                field.hash(&mut h);
                d.hash(&mut h);
            }
            for (field, f) in &s.avg_fanout {
                field.hash(&mut h);
                f.to_bits().hash(&mut h);
            }
        }
        h.finish()
    }

    /// Estimated result cardinality.
    pub fn result_cardinality(&self, q: &Query) -> f64 {
        let hints = self.var_hints(q);
        let mut rows = 1.0_f64;
        for b in &q.from {
            if b.kind == BindKind::Iter {
                rows *= self.collection_cardinality(&b.src, &hints);
            }
        }
        for eq in &q.where_ {
            rows *= self.selectivity(eq, &hints);
        }
        rows
    }

    /// Maps each variable to the schema root whose elements/entries it
    /// ranges over (best effort — used to look up statistics).
    fn var_hints(&self, q: &Query) -> BTreeMap<String, String> {
        let mut hints: BTreeMap<String, String> = BTreeMap::new();
        for b in &q.from {
            if let Some(root) = root_hint(&b.src, &hints) {
                hints.insert(b.var.clone(), root);
            }
        }
        hints
    }

    /// Estimated cardinality of the collection a binding iterates.
    fn collection_cardinality(&self, src: &Path, hints: &BTreeMap<String, String>) -> f64 {
        match src {
            Path::Root(r) => self.stats.cardinality(r),
            Path::Dom(inner) => match root_hint(inner, hints) {
                Some(root) => self.stats.cardinality(&root),
                None => cb_catalog::stats::DEFAULT_CARDINALITY,
            },
            Path::Get(m, _) | Path::GetOrEmpty(m, _) => {
                // Entry sets of a dictionary (secondary index / gmap).
                match root_hint(m, hints) {
                    Some(root) => self
                        .stats
                        .get(&root)
                        .and_then(cb_catalog::RootStats::entry_fanout)
                        .unwrap_or(DEFAULT_FANOUT),
                    None => DEFAULT_FANOUT,
                }
            }
            Path::Field(base, field) => match root_hint(base, hints) {
                Some(root) => self
                    .stats
                    .get(&root)
                    .and_then(|s| s.fanout_of(field))
                    .unwrap_or(DEFAULT_FANOUT),
                None => DEFAULT_FANOUT,
            },
            _ => DEFAULT_FANOUT,
        }
    }

    /// Estimated selectivity of one equality.
    fn selectivity(&self, eq: &Equality, hints: &BTreeMap<String, String>) -> f64 {
        let l = self.side_distinct(&eq.0, hints);
        let r = self.side_distinct(&eq.1, hints);
        match (l, r) {
            (Some(a), Some(b)) => 1.0 / a.max(b).max(1.0),
            (Some(a), None) | (None, Some(a)) => 1.0 / a.max(1.0),
            (None, None) => DEFAULT_EQ_SELECTIVITY,
        }
    }

    /// Distinct-count estimate for one equality side (None for constants
    /// and opaque paths).
    fn side_distinct(&self, p: &Path, hints: &BTreeMap<String, String>) -> Option<f64> {
        match p {
            Path::Const(_) => None,
            Path::Field(base, field) => {
                let root = root_hint(base, hints)?;
                self.stats
                    .get(&root)
                    .and_then(|s| s.distinct_of(field))
                    .map(|d| d as f64)
            }
            // A bare variable over a keyed collection: use its cardinality.
            Path::Var(v) => {
                let root = hints.get(v)?;
                Some(self.stats.cardinality(root))
            }
            _ => None,
        }
    }
}

/// The smallest collection-cardinality estimate assignable to *any*
/// access path under `stats`: the minimum over every recorded root
/// cardinality and fanout, and the defaults used for unrecorded ones
/// (clamped to 1, matching the `mult.max(1.0)` a binding pays in
/// [`CostModel::plan_cost`]).
fn global_access_floor_of(stats: &Stats) -> f64 {
    let mut floor = DEFAULT_FANOUT.min(cb_catalog::stats::DEFAULT_CARDINALITY);
    for s in stats.roots.values() {
        floor = floor.min(s.cardinality as f64);
        for &f in s.avg_fanout.values() {
            floor = floor.min(f);
        }
    }
    floor.max(1.0)
}

/// Which schema root's elements does this path's value come from?
fn root_hint(p: &Path, hints: &BTreeMap<String, String>) -> Option<String> {
    match p {
        Path::Root(r) => Some(r.clone()),
        Path::Var(v) => hints.get(v).cloned(),
        Path::Field(base, _) => root_hint(base, hints),
        Path::Dom(inner) => root_hint(inner, hints),
        Path::Get(m, _) | Path::GetOrEmpty(m, _) => root_hint(m, hints),
        Path::Const(_) => None,
    }
}

/// Lookups are the only non-trivial path evaluation cost.
fn path_eval_cost(p: &Path) -> f64 {
    p.subpaths()
        .iter()
        .filter(|s| matches!(s, Path::Get(_, _) | Path::GetOrEmpty(_, _)))
        .count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_catalog::scenarios::projdept;
    use cb_catalog::RootStats;
    use pcql::parser::parse_query;

    fn model_catalog() -> Catalog {
        let mut c = projdept::catalog();
        projdept::stats_for(&mut c, 100, 10, 20);
        c
    }

    #[test]
    fn index_plan_beats_scan() {
        let c = model_catalog();
        let m = CostModel::for_catalog(&c);
        let plans = projdept::paper_plans();
        let costs: Vec<f64> = plans.iter().map(|p| m.plan_cost(p)).collect();
        // P3 (secondary-index lookup) is the cheapest; P1 (class scan +
        // Proj scan per member) is the most expensive.
        let p1 = costs[0];
        let p2 = costs[1];
        let p3 = costs[2];
        assert!(p3 < p2, "P3 ({p3}) should beat P2 ({p2})");
        assert!(p2 < p1, "P2 ({p2}) should beat P1 ({p1})");
    }

    #[test]
    fn selectivity_uses_distinct_counts() {
        let c = model_catalog();
        let m = CostModel::for_catalog(&c);
        let filtered =
            parse_query(r#"select struct(B = p.Budg) from Proj p where p.CustName = "CitiBank""#)
                .unwrap();
        let unfiltered = parse_query("select struct(B = p.Budg) from Proj p").unwrap();
        assert!(m.result_cardinality(&filtered) < m.result_cardinality(&unfiltered));
        // 1000 projects, 20 customers -> ~50 expected rows.
        let est = m.result_cardinality(&filtered);
        assert!((est - 50.0).abs() < 1.0, "estimate {est}");
    }

    #[test]
    fn join_order_affects_cost() {
        let c = model_catalog();
        let m = CostModel::for_catalog(&c);
        let selective_first = parse_query(
            r#"select struct(PN = p.PName, PN2 = q.PName) from Proj p, Proj q
               where p.CustName = "CitiBank" and p.PName = q.PName"#,
        )
        .unwrap();
        let selective_last = parse_query(
            r#"select struct(PN = p.PName, PN2 = q.PName) from Proj q, Proj p
               where p.CustName = "CitiBank" and p.PName = q.PName"#,
        )
        .unwrap();
        // Filtering p before the join with q is cheaper.
        assert!(m.plan_cost(&selective_first) < m.plan_cost(&selective_last));
    }

    #[test]
    fn lookups_cost_less_than_scans() {
        let c = model_catalog();
        let m = CostModel::for_catalog(&c);
        let by_lookup = parse_query(r#"select struct(T = t.PName) from SI{"CitiBank"} t"#).unwrap();
        let by_scan =
            parse_query(r#"select struct(T = t.PName) from Proj t where t.CustName = "CitiBank""#)
                .unwrap();
        assert!(m.plan_cost(&by_lookup) < m.plan_cost(&by_scan));
    }

    #[test]
    fn lower_bound_is_admissible_on_paper_plans() {
        let c = model_catalog();
        let m = CostModel::for_catalog(&c);
        for p in projdept::paper_plans() {
            assert!(
                m.lower_bound(&p) <= m.plan_cost(&p) + 1e-9,
                "lower_bound({}) = {} > plan_cost = {}",
                p,
                m.lower_bound(&p),
                m.plan_cost(&p)
            );
        }
    }

    #[test]
    fn lower_bound_monotone_under_binding_removal() {
        let c = model_catalog();
        let m = CostModel::for_catalog(&c);
        let parent = parse_query(
            r#"select struct(PN = t.PName) from Proj p, SI{"CitiBank"} t where p.PName = t.PName"#,
        )
        .unwrap();
        // Removing either binding can only raise the cheapest access floor.
        let keep_scan = parse_query("select struct(PN = p.PName) from Proj p").unwrap();
        let keep_lookup =
            parse_query(r#"select struct(PN = t.PName) from SI{"CitiBank"} t"#).unwrap();
        assert!(m.lower_bound(&keep_scan) >= m.lower_bound(&parent));
        assert!(m.lower_bound(&keep_lookup) >= m.lower_bound(&parent));
        // The bound discriminates: a lone scan's floor is the scan.
        assert!(m.lower_bound(&keep_scan) > m.lower_bound(&keep_lookup));
    }

    #[test]
    fn poisoned_statistics_yield_a_typed_cost_error() {
        // An infinite recorded fanout propagates straight through the
        // nested-loop arithmetic; the boundary check must catch it
        // before it reaches a sort or the atomic incumbent.
        let mut stats = Stats::new();
        let mut r = RootStats::with_cardinality(10);
        r.avg_fanout.insert("Kids".into(), f64::INFINITY);
        stats.set("R", r);
        let m = CostModel::new(&stats);
        let q = parse_query("select struct(K = k) from R r, r.Kids k").unwrap();
        assert!(matches!(
            m.checked_plan_cost(&q),
            Err(CostError::NonFinite(c)) if c.is_infinite()
        ));
        // Healthy statistics pass through unchanged.
        let c = model_catalog();
        let healthy = CostModel::for_catalog(&c);
        for p in projdept::paper_plans() {
            assert_eq!(healthy.checked_plan_cost(&p), Ok(healthy.plan_cost(&p)));
        }
    }

    #[test]
    fn fingerprint_tracks_the_statistics() {
        let c = model_catalog();
        let m1 = CostModel::for_catalog(&c);
        let m2 = CostModel::for_catalog(&c);
        assert_eq!(m1.fingerprint(), m2.fingerprint());
        let mut c2 = projdept::catalog();
        projdept::stats_for(&mut c2, 100, 10, 21);
        assert_ne!(
            m1.fingerprint(),
            CostModel::for_catalog(&c2).fingerprint(),
            "a stats refresh must change the fingerprint"
        );
    }

    #[test]
    fn unknown_roots_get_pessimistic_defaults() {
        let stats = Stats::new();
        let m = CostModel::new(&stats);
        let q = parse_query("select struct(A = x.A) from Mystery x").unwrap();
        assert!(m.plan_cost(&q) >= cb_catalog::stats::DEFAULT_CARDINALITY);
    }

    /// The statistics grid the generated cases below sweep: deliberately
    /// includes empty collections, distinct counts exceeding the
    /// cardinality (inconsistent inputs must not break admissibility) and
    /// sub-row fanouts.
    fn stats_grid() -> Vec<Stats> {
        let mut out = Vec::new();
        for &card_r in &[0u64, 1, 7, 100, 5_000] {
            for &card_s in &[0u64, 3, 2_000] {
                for &distinct in &[1u64, 2, 100, 10_000] {
                    for &fanout in &[0.25f64, 3.0] {
                        let mut stats = Stats::new();
                        let mut r = RootStats::with_cardinality(card_r);
                        r.distinct.insert("A".into(), distinct);
                        r.distinct.insert("B".into(), distinct);
                        r.avg_fanout.insert("Kids".into(), fanout);
                        stats.set("R", r);
                        let mut s = RootStats::with_cardinality(card_s);
                        s.distinct.insert("B".into(), distinct);
                        stats.set("S", s);
                        out.push(stats);
                    }
                }
            }
        }
        out
    }

    fn grid_queries() -> Vec<Query> {
        [
            "select struct(A = r.A) from R r",
            "select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B",
            // Two selective conditions ahead of a second scan: the regime
            // where unclamped row estimates drop below one row.
            "select struct(C = s.C) from R r, S s where r.A = 1 and r.B = 2",
            "select struct(K = k) from R r, r.Kids k where r.A = 1",
            "select struct(A = r.A, A2 = q.A) from R r, R q, S s \
             where r.A = 1 and r.B = 2 and q.B = s.B",
        ]
        .iter()
        .map(|s| parse_query(s).unwrap())
        .collect()
    }

    #[test]
    fn lower_bound_admissible_on_generated_statistics() {
        // The hand-picked admissibility case above, generated: at the
        // lattice root, the bound (both variants) never overshoots the
        // plan cost across the stats grid, and the lattice variant
        // dominates the access floor. (Descents are covered by the
        // monotonicity sweep below and by the random-lattice harness in
        // tests/generated_scenarios.rs.)
        for stats in stats_grid() {
            let m = CostModel::new(&stats);
            for q in grid_queries() {
                let mut analysis = MustRemainAnalysis::new(&q);
                let removed = BTreeSet::new();
                let cost = m.plan_cost(&q);
                assert!(
                    m.lower_bound(&q) <= cost + 1e-9,
                    "lower_bound {} > plan_cost {} for {q} under {stats:?}",
                    m.lower_bound(&q),
                    cost
                );
                let lattice = m.lattice_lower_bound(&q, &removed, &mut analysis);
                assert!(
                    lattice <= cost + 1e-9,
                    "lattice bound {lattice} > plan_cost {cost} for {q} under {stats:?}"
                );
                assert!(
                    lattice >= m.lower_bound(&q),
                    "lattice bound {lattice} weaker than access floor for {q}"
                );
            }
        }
    }

    #[test]
    fn clamped_rows_make_binding_floors_summable() {
        // Two highly selective conditions push the unclamped row estimate
        // to 7/10000² « 1 before the S scan; the clamp still charges the
        // scan in full, so the summed bound stays admissible even when a
        // cheap filtered prefix precedes an expensive must-remain scan.
        let mut stats = Stats::new();
        let mut r = RootStats::with_cardinality(7);
        r.distinct.insert("A".into(), 10_000);
        r.distinct.insert("B".into(), 10_000);
        stats.set("R", r);
        stats.set("S", RootStats::with_cardinality(100_000));
        let m = CostModel::new(&stats);
        // The output reads r.C, which no condition equates to anything
        // else — both bindings are pinned, so the lattice bound is the
        // sum. (An output of r.A would *not* pin r: the condition puts
        // the constant 1 in r.A's congruence class.)
        let q =
            parse_query("select struct(A = r.C, C = s.C) from R r, S s where r.A = 1 and r.B = 2")
                .unwrap();
        let mut analysis = MustRemainAnalysis::new(&q);
        let bound = m.lattice_lower_bound(&q, &BTreeSet::new(), &mut analysis);
        assert!((bound - (7.0 + 100_000.0)).abs() < 1e-9, "bound {bound}");
        assert!(bound <= m.plan_cost(&q) + 1e-9, "cost {}", m.plan_cost(&q));
        // And it genuinely dominates the single-floor bound.
        assert!(m.lower_bound(&q) <= 7.0 + 1e-9);
    }

    #[test]
    fn lattice_bound_excludes_guard_droppable_bindings() {
        // A dom(SI) guard loop can be eliminated by the non-failing
        // lookup cleanup; its cardinality must not be summed even when
        // the lattice cannot remove it.
        let c = model_catalog();
        let m = CostModel::for_catalog(&c);
        let raw = parse_query(
            r#"select struct(PN = t.PName) from dom(SI) k, SI[k] t where k = "CitiBank""#,
        )
        .unwrap();
        let mut analysis = MustRemainAnalysis::new(&raw);
        // Only t is pinned: k ≡ "CitiBank" lets SI[k] re-express to the
        // constant-key lookup, so the analysis does not pin the guard
        // (the *safety* obstacle to that removal is deliberately not
        // must-remain evidence — it is not monotone along descent).
        assert_eq!(
            analysis.must_remain(&BTreeSet::new()),
            ["t".to_string()].into(),
        );
        let bound = m.lattice_lower_bound(&raw, &BTreeSet::new(), &mut analysis);
        // The costed plan is the cleaned one-binding form, whose cost the
        // bound must still under-estimate.
        let cleaned = crate::cleanup::cleanup_plan(&c, &raw);
        assert_eq!(cleaned.from.len(), 1);
        assert!(
            bound <= m.plan_cost(&cleaned) + 1e-9,
            "bound {bound} > cleaned cost {}",
            m.plan_cost(&cleaned)
        );

        // When the guard *is* pinned (its key is a genuine iteration
        // variable the output reads), its dom loop still contributes
        // nothing to the sum — cleanup could eliminate it in other
        // contexts, so only the entry binding's floor is counted.
        let pinned_guard =
            parse_query("select struct(K = k, PN = t.PName) from dom(SI) k, SI[k] t").unwrap();
        let mut analysis = MustRemainAnalysis::new(&pinned_guard);
        assert_eq!(
            analysis.must_remain(&BTreeSet::new()),
            ["k".to_string(), "t".to_string()].into(),
        );
        let bound = m.lattice_lower_bound(&pinned_guard, &BTreeSet::new(), &mut analysis);
        // dom(SI) has cardinality 20; summing it would give ≥ 20 + the
        // global floor. The dom exclusion keeps the bound at the floor of
        // the (open) entry lookup alone.
        assert!(bound < 20.0, "dom guard was summed: bound {bound}");
    }

    #[test]
    fn lattice_bound_monotone_under_generated_removals() {
        // The generated counterpart of the hand-picked monotonicity case:
        // along every single-binding descent of the grid queries, the
        // lattice bound never decreases.
        for stats in stats_grid().into_iter().step_by(7) {
            let m = CostModel::new(&stats);
            for q in grid_queries() {
                let mut analysis = MustRemainAnalysis::new(&q);
                let root = m.lattice_lower_bound(&q, &BTreeSet::new(), &mut analysis);
                let pinned = analysis.must_remain(&BTreeSet::new());
                for b in &q.from {
                    // A must-remain binding has no valid removal below the
                    // root — the search never descends there, so the
                    // monotonicity contract does not cover it.
                    if pinned.contains(&b.var) {
                        continue;
                    }
                    let removed: BTreeSet<String> = [b.var.clone()].into();
                    let keep: Vec<_> = q.from.iter().filter(|x| x.var != b.var).cloned().collect();
                    if keep.is_empty()
                        || keep
                            .iter()
                            .any(|x| x.src.free_vars().iter().any(|v| removed.contains(v)))
                    {
                        continue;
                    }
                    let child = Query::new(
                        pcql::Output::record(Vec::<(String, Path)>::new()),
                        keep,
                        q.where_
                            .iter()
                            .filter(|e| e.free_vars().iter().all(|v| !removed.contains(v)))
                            .cloned()
                            .collect(),
                    );
                    let below = m.lattice_lower_bound(&child, &removed, &mut analysis);
                    assert!(
                        below >= root - 1e-9,
                        "bound fell from {root} to {below} removing {} from {q}",
                        b.var
                    );
                }
            }
        }
    }
}
