//! The cost model.
//!
//! The paper deliberately leaves the cost model open ("we expect that the
//! algorithm … will be used in conjunction with good cost models"); we
//! supply a classic System-R-style estimator over the catalog statistics,
//! mirroring the engine's execution discipline exactly: nested loops in
//! binding order, each `where` conjunct applied at the earliest level
//! where its variables are bound, dictionary lookups at unit cost.
//!
//! Costs are abstract "operations": iterating a collection costs its
//! (estimated) cardinality, evaluating a path costs one per dictionary
//! lookup it contains, producing a row costs one.

use std::collections::BTreeMap;

use cb_catalog::stats::{DEFAULT_EQ_SELECTIVITY, DEFAULT_FANOUT};
use cb_catalog::{Catalog, Stats};
use pcql::path::Path;
use pcql::query::{BindKind, Equality, Query};

/// Cost estimator over catalog statistics.
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    stats: &'a Stats,
}

impl<'a> CostModel<'a> {
    pub fn new(stats: &'a Stats) -> CostModel<'a> {
        CostModel { stats }
    }

    pub fn for_catalog(catalog: &'a Catalog) -> CostModel<'a> {
        CostModel {
            stats: catalog.stats(),
        }
    }

    /// Estimated total operations to execute `q` with the engine's
    /// nested-loop discipline.
    pub fn plan_cost(&self, q: &Query) -> f64 {
        let hints = self.var_hints(q);
        // Assign each condition to the earliest level where its variables
        // are all bound (level i means "after binding i-1").
        let mut level_of_var: BTreeMap<&str, usize> = BTreeMap::new();
        for (i, b) in q.from.iter().enumerate() {
            level_of_var.insert(&b.var, i + 1);
        }
        let mut conds_at: Vec<Vec<&Equality>> = vec![Vec::new(); q.from.len() + 1];
        for eq in &q.where_ {
            let level = eq
                .free_vars()
                .iter()
                .map(|v| level_of_var.get(v.as_str()).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            conds_at[level].push(eq);
        }

        let mut rows = 1.0_f64;
        let mut cost = 0.0_f64;
        for eq in &conds_at[0] {
            cost += path_eval_cost(&eq.0) + path_eval_cost(&eq.1);
        }
        for (i, b) in q.from.iter().enumerate() {
            let mult = match b.kind {
                BindKind::Iter => self.collection_cardinality(&b.src, &hints),
                BindKind::Let => 1.0,
            };
            // Iterating costs the collection size (plus the lookups needed
            // to reach it), once per outer row.
            cost += rows * (mult.max(1.0) + path_eval_cost(&b.src));
            rows *= mult;
            for eq in &conds_at[i + 1] {
                cost += rows * (path_eval_cost(&eq.0) + path_eval_cost(&eq.1) + 1.0);
                rows *= self.selectivity(eq, &hints);
            }
        }
        // Output evaluation for surviving rows.
        let out_cost: f64 = q
            .output
            .paths()
            .iter()
            .map(|(_, p)| 1.0 + path_eval_cost(p))
            .sum();
        cost + rows * out_cost
    }

    /// An admissible lower bound on [`CostModel::plan_cost`] — for `q`
    /// itself *and* for every plan the backchase can derive from `q` by
    /// further removals (then cleanup and reordering). This is what lets
    /// the optimizer's cost-guided strategy prune a lattice branch the
    /// moment the bound exceeds its incumbent best.
    ///
    /// The bound is the cheapest access floor among `q`'s bindings:
    /// whatever the final plan looks like, its first binding contributes
    /// at least its own collection cardinality (at least 1), that binding
    /// survives from `q` (removals only drop bindings, reordering only
    /// permutes), and each surviving binding's floor can never shrink
    /// along descent:
    ///
    /// * a *closed* source (no free variables — base scans `R`, guard
    ///   loops `dom(M)`, constant-key lookups `M[c]`) is never rewritten
    ///   by subquery re-expression, and guard-elimination cleanup either
    ///   drops it (covered by the minimum) or turns `M[c]` into `M{c}`
    ///   with the identical entry-fanout estimate — so its own estimate
    ///   is stable and used exactly;
    /// * an *open* source (mentions variables) can be re-expressed to a
    ///   congruent path whose estimate differs (a condition may equate
    ///   `x.F` with a cheaper `y.G`), so it gets the catalog-wide
    ///   minimum access estimate — a floor no re-expressed or cleaned
    ///   form can undercut.
    ///
    /// The minimum over `q`'s bindings therefore under-estimates every
    /// descendant, and is monotone (non-decreasing) along lattice
    /// descent: a subset of bindings can only have a larger minimum.
    pub fn lower_bound(&self, q: &Query) -> f64 {
        let global = self.global_access_floor();
        let no_hints = BTreeMap::new();
        let bound = q
            .from
            .iter()
            .map(|b| match b.kind {
                BindKind::Let => 1.0,
                BindKind::Iter if b.src.free_vars().is_empty() => {
                    self.collection_cardinality(&b.src, &no_hints).max(1.0)
                }
                BindKind::Iter => global,
            })
            .fold(f64::INFINITY, f64::min);
        if bound.is_finite() {
            bound
        } else {
            1.0
        }
    }

    /// The smallest collection-cardinality estimate this model can assign
    /// to *any* access path: the minimum over every recorded root
    /// cardinality and fanout, and the defaults used for unrecorded ones
    /// (clamped to 1, matching the `mult.max(1.0)` a first binding pays
    /// in [`CostModel::plan_cost`]).
    fn global_access_floor(&self) -> f64 {
        let mut floor = DEFAULT_FANOUT.min(cb_catalog::stats::DEFAULT_CARDINALITY);
        for s in self.stats.roots.values() {
            floor = floor.min(s.cardinality as f64);
            for &f in s.avg_fanout.values() {
                floor = floor.min(f);
            }
        }
        floor.max(1.0)
    }

    /// Estimated result cardinality.
    pub fn result_cardinality(&self, q: &Query) -> f64 {
        let hints = self.var_hints(q);
        let mut rows = 1.0_f64;
        for b in &q.from {
            if b.kind == BindKind::Iter {
                rows *= self.collection_cardinality(&b.src, &hints);
            }
        }
        for eq in &q.where_ {
            rows *= self.selectivity(eq, &hints);
        }
        rows
    }

    /// Maps each variable to the schema root whose elements/entries it
    /// ranges over (best effort — used to look up statistics).
    fn var_hints(&self, q: &Query) -> BTreeMap<String, String> {
        let mut hints: BTreeMap<String, String> = BTreeMap::new();
        for b in &q.from {
            if let Some(root) = root_hint(&b.src, &hints) {
                hints.insert(b.var.clone(), root);
            }
        }
        hints
    }

    /// Estimated cardinality of the collection a binding iterates.
    fn collection_cardinality(&self, src: &Path, hints: &BTreeMap<String, String>) -> f64 {
        match src {
            Path::Root(r) => self.stats.cardinality(r),
            Path::Dom(inner) => match root_hint(inner, hints) {
                Some(root) => self.stats.cardinality(&root),
                None => cb_catalog::stats::DEFAULT_CARDINALITY,
            },
            Path::Get(m, _) | Path::GetOrEmpty(m, _) => {
                // Entry sets of a dictionary (secondary index / gmap).
                match root_hint(m, hints) {
                    Some(root) => self
                        .stats
                        .get(&root)
                        .and_then(|s| s.entry_fanout())
                        .unwrap_or(DEFAULT_FANOUT),
                    None => DEFAULT_FANOUT,
                }
            }
            Path::Field(base, field) => match root_hint(base, hints) {
                Some(root) => self
                    .stats
                    .get(&root)
                    .and_then(|s| s.fanout_of(field))
                    .unwrap_or(DEFAULT_FANOUT),
                None => DEFAULT_FANOUT,
            },
            _ => DEFAULT_FANOUT,
        }
    }

    /// Estimated selectivity of one equality.
    fn selectivity(&self, eq: &Equality, hints: &BTreeMap<String, String>) -> f64 {
        let l = self.side_distinct(&eq.0, hints);
        let r = self.side_distinct(&eq.1, hints);
        match (l, r) {
            (Some(a), Some(b)) => 1.0 / a.max(b).max(1.0),
            (Some(a), None) | (None, Some(a)) => 1.0 / a.max(1.0),
            (None, None) => DEFAULT_EQ_SELECTIVITY,
        }
    }

    /// Distinct-count estimate for one equality side (None for constants
    /// and opaque paths).
    fn side_distinct(&self, p: &Path, hints: &BTreeMap<String, String>) -> Option<f64> {
        match p {
            Path::Const(_) => None,
            Path::Field(base, field) => {
                let root = root_hint(base, hints)?;
                self.stats
                    .get(&root)
                    .and_then(|s| s.distinct_of(field))
                    .map(|d| d as f64)
            }
            // A bare variable over a keyed collection: use its cardinality.
            Path::Var(v) => {
                let root = hints.get(v)?;
                Some(self.stats.cardinality(root))
            }
            _ => None,
        }
    }
}

/// Which schema root's elements does this path's value come from?
fn root_hint(p: &Path, hints: &BTreeMap<String, String>) -> Option<String> {
    match p {
        Path::Root(r) => Some(r.clone()),
        Path::Var(v) => hints.get(v).cloned(),
        Path::Field(base, _) => root_hint(base, hints),
        Path::Dom(inner) => root_hint(inner, hints),
        Path::Get(m, _) | Path::GetOrEmpty(m, _) => root_hint(m, hints),
        Path::Const(_) => None,
    }
}

/// Lookups are the only non-trivial path evaluation cost.
fn path_eval_cost(p: &Path) -> f64 {
    p.subpaths()
        .iter()
        .filter(|s| matches!(s, Path::Get(_, _) | Path::GetOrEmpty(_, _)))
        .count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_catalog::scenarios::projdept;
    use pcql::parser::parse_query;

    fn model_catalog() -> Catalog {
        let mut c = projdept::catalog();
        projdept::stats_for(&mut c, 100, 10, 20);
        c
    }

    #[test]
    fn index_plan_beats_scan() {
        let c = model_catalog();
        let m = CostModel::for_catalog(&c);
        let plans = projdept::paper_plans();
        let costs: Vec<f64> = plans.iter().map(|p| m.plan_cost(p)).collect();
        // P3 (secondary-index lookup) is the cheapest; P1 (class scan +
        // Proj scan per member) is the most expensive.
        let p1 = costs[0];
        let p2 = costs[1];
        let p3 = costs[2];
        assert!(p3 < p2, "P3 ({p3}) should beat P2 ({p2})");
        assert!(p2 < p1, "P2 ({p2}) should beat P1 ({p1})");
    }

    #[test]
    fn selectivity_uses_distinct_counts() {
        let c = model_catalog();
        let m = CostModel::for_catalog(&c);
        let filtered =
            parse_query(r#"select struct(B = p.Budg) from Proj p where p.CustName = "CitiBank""#)
                .unwrap();
        let unfiltered = parse_query("select struct(B = p.Budg) from Proj p").unwrap();
        assert!(m.result_cardinality(&filtered) < m.result_cardinality(&unfiltered));
        // 1000 projects, 20 customers -> ~50 expected rows.
        let est = m.result_cardinality(&filtered);
        assert!((est - 50.0).abs() < 1.0, "estimate {est}");
    }

    #[test]
    fn join_order_affects_cost() {
        let c = model_catalog();
        let m = CostModel::for_catalog(&c);
        let selective_first = parse_query(
            r#"select struct(PN = p.PName, PN2 = q.PName) from Proj p, Proj q
               where p.CustName = "CitiBank" and p.PName = q.PName"#,
        )
        .unwrap();
        let selective_last = parse_query(
            r#"select struct(PN = p.PName, PN2 = q.PName) from Proj q, Proj p
               where p.CustName = "CitiBank" and p.PName = q.PName"#,
        )
        .unwrap();
        // Filtering p before the join with q is cheaper.
        assert!(m.plan_cost(&selective_first) < m.plan_cost(&selective_last));
    }

    #[test]
    fn lookups_cost_less_than_scans() {
        let c = model_catalog();
        let m = CostModel::for_catalog(&c);
        let by_lookup = parse_query(r#"select struct(T = t.PName) from SI{"CitiBank"} t"#).unwrap();
        let by_scan =
            parse_query(r#"select struct(T = t.PName) from Proj t where t.CustName = "CitiBank""#)
                .unwrap();
        assert!(m.plan_cost(&by_lookup) < m.plan_cost(&by_scan));
    }

    #[test]
    fn lower_bound_is_admissible_on_paper_plans() {
        let c = model_catalog();
        let m = CostModel::for_catalog(&c);
        for p in projdept::paper_plans() {
            assert!(
                m.lower_bound(&p) <= m.plan_cost(&p) + 1e-9,
                "lower_bound({}) = {} > plan_cost = {}",
                p,
                m.lower_bound(&p),
                m.plan_cost(&p)
            );
        }
    }

    #[test]
    fn lower_bound_monotone_under_binding_removal() {
        let c = model_catalog();
        let m = CostModel::for_catalog(&c);
        let parent = parse_query(
            r#"select struct(PN = t.PName) from Proj p, SI{"CitiBank"} t where p.PName = t.PName"#,
        )
        .unwrap();
        // Removing either binding can only raise the cheapest access floor.
        let keep_scan = parse_query("select struct(PN = p.PName) from Proj p").unwrap();
        let keep_lookup =
            parse_query(r#"select struct(PN = t.PName) from SI{"CitiBank"} t"#).unwrap();
        assert!(m.lower_bound(&keep_scan) >= m.lower_bound(&parent));
        assert!(m.lower_bound(&keep_lookup) >= m.lower_bound(&parent));
        // The bound discriminates: a lone scan's floor is the scan.
        assert!(m.lower_bound(&keep_scan) > m.lower_bound(&keep_lookup));
    }

    #[test]
    fn unknown_roots_get_pessimistic_defaults() {
        let stats = Stats::new();
        let m = CostModel::new(&stats);
        let q = parse_query("select struct(A = x.A) from Mystery x").unwrap();
        assert!(m.plan_cost(&q) >= cb_catalog::stats::DEFAULT_CARDINALITY);
    }
}
