//! Plan cleanup: the non-failing-lookup rewrite of paper §4.
//!
//! A backchase normal form keeps `dom` guards it cannot prove away:
//!
//! ```text
//! … from dom(SI) k, SI[k] t, …  where k = K and …
//! ```
//!
//! When `K` does not depend on `k` and the dictionary has set-valued
//! entries, "this loop together with the condition `k = K` is only a
//! guard that ensures that the lookup … doesn't fail"; replacing it with
//! the non-failing lookup is unconditionally sound:
//!
//! ```text
//! … from SI{K} t, …
//! ```
//!
//! This is exactly how the paper turns the PC forms into its display
//! plans P3 and the §4 navigation join (`IS⟨r'.B⟩ s'`).

use std::collections::BTreeMap;

use cb_catalog::Catalog;
use cb_chase::QueryGraph;
use pcql::path::Path;
use pcql::query::{BindKind, Binding, Query};
use pcql::types::Type;

/// Applies the guard-elimination rewrite to fixpoint.
pub fn cleanup_plan(catalog: &Catalog, q: &Query) -> Query {
    let mut out = q.clone();
    while let Some(next) = cleanup_once(catalog, &out) {
        out = next;
    }
    out
}

/// Drops `where` conditions that are implied by the rest of the plan
/// under `D ∪ D'` — the maximal `C'` of a backchase subquery routinely
/// carries conditions like `t = I[t.PName]` that are true on every
/// constraint-satisfying instance and would only cost lookups at run
/// time. Must run *before* [`cleanup_plan`] (the prover reasons over
/// plain PC lookups, not the non-failing plan forms).
pub fn prune_implied_conditions(
    catalog: &Catalog,
    q: &Query,
    cfg: &cb_chase::ChaseConfig,
) -> Query {
    let mut ctx = cb_chase::ChaseContext::new(catalog.all_constraints(), cfg.clone());
    prune_implied_conditions_in(&mut ctx, q)
}

/// [`prune_implied_conditions`] against a shared prover — usually the
/// one [`cb_chase::ChaseContext`] of an optimization run (so proof
/// obligations repeated across plans are answered from the implication
/// memo), or a [`cb_chase::SharedProver`] handle when the parallel
/// search costs candidates from several workers at once.
pub fn prune_implied_conditions_in<P: cb_chase::ChaseProver>(ctx: &mut P, q: &Query) -> Query {
    let mut out = q.clone();
    let mut i = 0;
    while i < out.where_.len() {
        let mut premise = out.where_.clone();
        let conclusion = premise.remove(i);
        let sigma = pcql::Dependency::new(
            "prune",
            out.from.clone(),
            premise.clone(),
            vec![],
            vec![conclusion],
        );
        if ctx.implies(&sigma) {
            out.where_ = premise;
        } else {
            i += 1;
        }
    }
    out
}

fn entry_is_set(catalog: &Catalog, dict: &Path) -> bool {
    let Path::Root(name) = dict else { return false };
    matches!(
        catalog.physical().root(name),
        Some(Type::Dict(_, entry)) if matches!(entry.as_ref(), Type::Set(_))
    )
}

fn cleanup_once(catalog: &Catalog, q: &Query) -> Option<Query> {
    let mut graph = QueryGraph::of_query(q);
    for b in &q.from {
        let Path::Dom(dict) = &b.src else { continue };
        if b.kind != BindKind::Iter || !entry_is_set(catalog, dict) {
            continue;
        }
        // A key expression congruent to the guard variable but not using
        // it.
        let g_class = graph.egraph.add_path(&Path::Var(b.var.clone()));
        let forbidden: std::collections::BTreeSet<String> = [b.var.clone()].into();
        let Some(key) = graph.egraph.extract(g_class, &forbidden) else {
            continue;
        };
        // At least one iterated entry binding M[g'] with g' ≡ g provides
        // the emptiness filtering that makes dropping the loop sound.
        let serves_entry = q.from.iter().any(|other| {
            other.kind == BindKind::Iter
                && matches!(&other.src, Path::Get(m, k)
                    if m.as_ref() == dict.as_ref()
                        && graph.egraph.paths_equal(k, &Path::Var(b.var.clone())))
        });
        if !serves_entry {
            continue;
        }
        // Rewrite: drop the guard binding; entry lookups become
        // non-failing on the key expression; other uses of g become the
        // key expression.
        let subst: BTreeMap<String, Path> = [(b.var.clone(), key)].into();
        let mut from = Vec::new();
        for other in &q.from {
            if other.var == b.var {
                continue;
            }
            let src = match &other.src {
                Path::Get(m, k)
                    if m.as_ref() == dict.as_ref()
                        && graph.egraph.paths_equal(k, &Path::Var(b.var.clone())) =>
                {
                    Path::GetOrEmpty(m.clone(), Box::new(k.subst(&subst)))
                }
                other_src => other_src.subst(&subst),
            };
            from.push(Binding {
                var: other.var.clone(),
                src,
                kind: other.kind,
            });
        }
        let mut where_: Vec<pcql::Equality> = q.where_.iter().map(|e| e.subst(&subst)).collect();
        where_.retain(|e| e.0 != e.1);
        let output = q.output.map_paths(&mut |p| p.subst(&subst));
        let candidate = Query::new(output, from, where_);
        // The key expression may reference a variable bound after one of
        // the rewritten positions; only keep the rewrite if the binding
        // order can be fixed up.
        if candidate.check_scopes().is_ok() {
            return Some(candidate);
        }
        if let Some(reordered) = fix_scopes(&candidate) {
            return Some(reordered);
        }
        // Otherwise leave this guard alone and try the next one.
    }
    None
}

/// Reorders bindings into any dependency-valid order, if one exists.
fn fix_scopes(q: &Query) -> Option<Query> {
    let mut rest = q.from.clone();
    let mut placed: std::collections::BTreeSet<String> = Default::default();
    let mut from = Vec::with_capacity(rest.len());
    while !rest.is_empty() {
        let pos = rest
            .iter()
            .position(|b| b.src.free_vars().iter().all(|v| placed.contains(v)))?;
        let b = rest.remove(pos);
        placed.insert(b.var.clone());
        from.push(b);
    }
    Some(Query::new(q.output.clone(), from, q.where_.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_catalog::scenarios::{projdept, relational_views};
    use pcql::parser::parse_query;

    #[test]
    fn p3_guard_elimination() {
        let cat = projdept::catalog();
        let pc_form = parse_query(
            r#"select struct(PN = t.PName, PB = t.Budg, DN = t.PDept)
               from dom(SI) k, SI[k] t where k = "CitiBank""#,
        )
        .unwrap();
        let cleaned = cleanup_plan(&cat, &pc_form);
        assert_eq!(cleaned.from.len(), 1);
        assert_eq!(cleaned.from[0].src.to_string(), "SI{\"CitiBank\"}");
        assert!(cleaned.where_.is_empty());
    }

    #[test]
    fn navigation_join_guard_elimination() {
        // §4's final step: the dom(IS) loop with p = r'.B becomes the
        // non-failing lookup IS{r'.B}.
        let cat = relational_views::catalog();
        let pc_form = parse_query(
            "select struct(A = rr.A, B = ss.B, C = ss.C) \
             from V v, IR{v.A} rr, dom(IS) p, IS[p] ss where p = rr.B",
        )
        .unwrap();
        let cleaned = cleanup_plan(&cat, &pc_form);
        assert_eq!(cleaned.from.len(), 3);
        assert!(cleaned.from.iter().any(|b| b.src.to_string() == "IS{rr.B}"));
    }

    #[test]
    fn guard_without_entry_binding_stays() {
        // The dom loop is the only access to the dictionary — dropping it
        // would change the result, so cleanup must leave it alone.
        let cat = projdept::catalog();
        let q = parse_query(r#"select struct(K = k) from dom(SI) k where k = "CitiBank""#).unwrap();
        assert_eq!(cleanup_plan(&cat, &q), q);
    }

    #[test]
    fn record_valued_dictionaries_keep_guards() {
        // I is a primary index (record entries): no non-failing form
        // exists, so the guard loop must stay.
        let cat = projdept::catalog();
        let q =
            parse_query(r#"select struct(B = I[i].Budg) from dom(I) i where i = "proj1""#).unwrap();
        assert_eq!(cleanup_plan(&cat, &q), q);
    }

    #[test]
    fn unrelated_guards_untouched() {
        let cat = projdept::catalog();
        // k is a genuine iteration variable (no equality pins it down).
        let q = parse_query("select struct(K = k, PN = t.PName) from dom(SI) k, SI[k] t").unwrap();
        assert_eq!(cleanup_plan(&cat, &q), q);
    }
}
