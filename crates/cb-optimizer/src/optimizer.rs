//! Algorithm 1 of the paper.
//!
//! ```text
//! Input:  logical schema Λ with constraints D,
//!         constraints D' characterizing physical schema Φ,
//!         cost function C, query Q
//! Output: cheapest plan Q' equivalent to Q under D ∪ D'
//!
//! 1 U := chase_{D ∪ D'}(Q)                      (universal plan)
//! 2 for each p ∈ backchase_{D ∪ D'}(U)          (minimal plans)
//! 3     do cost-based conventional optimization
//!       keep cheapest plan so far
//! 4 Q' := cheapest
//! ```
//!
//! Steps 1 and 2 are cost-independent, as the paper stresses (contrast
//! with Volcano); step 3 here is plan cleanup (non-failing-lookup
//! introduction, §4) plus greedy binding reordering, followed by costing.
//! Since every subquery the backchase visits is a sound plan ("we can
//! stop this rewriting anytime"), the optimizer costs all *physical*
//! visited subqueries, not just the normal forms — reproducing, e.g., the
//! paper's P1, which is an equivalent physical plan even in regimes where
//! it is not minimal.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use cb_analyze::{Analyzer, Report};
use cb_catalog::Catalog;
use cb_chase::{
    backchase_greedy_in, BackchaseConfig, BackchaseOutcome, CacheStats, ChaseConfig, ChaseContext,
    ChaseProver, ChaseStepTrace, ExploreAll, MustRemainAnalysis, ParallelExploreAll,
    ParallelPlanSearch, ParallelVisitor, PlanSearch, SearchBudget, SearchVisitor,
    SharedChaseContext, SharedProver, TerminationVerdict, Visit,
};
use pcql::query::Query;
use pcql::typecheck::{check_query, TypeError};
use std::collections::BTreeSet;

use crate::cleanup::cleanup_plan;
use crate::cost::CostModel;
use crate::governor::{Degradation, ResourceGovernor};
use crate::reorder::reorder_bindings;

/// How to search the plan space in phase 2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Full lattice enumeration with equivalence pruning (Theorem 2's
    /// complete procedure) — exponential, finds *all* minimal plans.
    #[default]
    Exhaustive,
    /// The paper's §3 heuristic: one greedy descent that removes
    /// logical-only bindings first — linear, finds *one* minimal plan.
    Greedy,
    /// Branch-and-bound over the same lattice as `Exhaustive`: each
    /// equivalence-verified subquery is costed *as it is reached* (the
    /// paper's "used in conjunction with good cost models"), and a
    /// sublattice is pruned the moment its admissible cost lower bound
    /// ([`CostModel::lower_bound`]) exceeds the incumbent best. Finds a
    /// plan with the same best cost as `Exhaustive` while costing
    /// strictly fewer subqueries whenever the bound bites; the pruning is
    /// reported in [`OptimizeOutcome::nodes_pruned_by_cost`]. Every
    /// visited physical subquery is costed (this strategy implies
    /// `cost_visited`); normal forms under pruned branches are not
    /// enumerated, so `candidates` may mark fewer plans `minimal`.
    CostGuided,
}

/// Which admissible lower bound [`SearchStrategy::CostGuided`] prunes
/// with.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CostBound {
    /// [`CostModel::lattice_lower_bound`]: the **sum** of the access
    /// floors of every binding the must-remain analysis proves present in
    /// all descendants of a lattice node, with the single-floor bound as
    /// a fallback. Strictly dominates `AccessFloor`, multiplying the
    /// pruning ratio on the catalog scenarios (E16).
    #[default]
    MustRemain,
    /// [`CostModel::lower_bound`]: the single cheapest access floor among
    /// the subquery's bindings — the pre-must-remain bound, kept for the
    /// E16 ablation and as a no-analysis baseline.
    AccessFloor,
}

/// What the optimizer does with the static analyzer's pre-flight lint
/// (cb-analyze's catalog + query + lookup passes, run before phase 1, and
/// the pipeline dataflow verification of every costed candidate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PreflightMode {
    /// Skip the lint entirely ([`OptimizeOutcome::diagnostics`] stays
    /// empty; the termination verdict is still computed).
    Off,
    /// Run the lint and carry all findings in
    /// [`OptimizeOutcome::diagnostics`] (EXPLAIN prints them), but never
    /// fail the optimization over them.
    #[default]
    Warn,
    /// Like `Warn`, but any error-severity finding aborts with
    /// [`OptimizeError::Rejected`] before the chase runs — and a
    /// candidate pipeline failing dataflow verification aborts after the
    /// search.
    Deny,
}

/// Optimizer configuration.
///
/// One [`ChaseContext`] built from `chase` runs the whole optimization
/// (universal plan, backchase, condition pruning), so `backchase.chase`
/// is not consulted by [`Optimizer::optimize`] — only
/// `backchase.max_visited` is. The nested config remains for callers
/// that drive `cb_chase::backchase` directly.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    pub chase: ChaseConfig,
    pub backchase: BackchaseConfig,
    /// Cost also the non-minimal physical subqueries encountered during
    /// backchase (they are sound plans; the paper's P1 is one).
    pub cost_visited: bool,
    pub strategy: SearchStrategy,
    /// The lower bound `CostGuided` prunes with (ignored by the other
    /// strategies).
    pub bound: CostBound,
    /// Test-only hook: every lower bound is multiplied by this factor
    /// before it is compared against the incumbent. `1.0` (the default)
    /// is the real bound; a factor above one makes the bound deliberately
    /// **inadmissible** so the differential harness can prove it would
    /// catch an overshooting bound. Not part of the public contract.
    #[doc(hidden)]
    pub bound_scale: f64,
    /// What to do with the static analyzer's findings (default: run it,
    /// carry the diagnostics, never fail).
    pub preflight: PreflightMode,
    /// Phase-2 worker count. `1` (the default) runs the sequential
    /// search, bit-for-bit today's behavior; `> 1` runs the same lattice
    /// walk as a work-sharing frontier over a [`SharedChaseContext`]
    /// (sharded chase/containment/implication memos, incumbent best cost
    /// published atomically across workers). The best plan and its cost
    /// are thread-count-independent; per-run counters (`nodes_visited`,
    /// pruning splits, cache traffic) and the `minimal` flags on
    /// non-best candidates may differ, since workers race the incumbent
    /// down in different orders. [`Optimizer::new`] seeds this from the
    /// `CB_SEARCH_THREADS` environment variable.
    pub threads: usize,
    /// Anytime budget for the phase-2 search. On expiry the search stops
    /// and the incumbent — always a fully equivalence-verified plan — is
    /// accepted: a latency SLO, not a correctness change. A budget of
    /// zero nodes (or zero wall clock) still visits the root, so the
    /// universal plan itself is always available as the fallback.
    pub search_budget: SearchBudget,
    /// How many verified plans [`OptimizeOutcome::top_k`] retains
    /// (mutually distinct, cheapest first) for serving-tier fallback.
    pub k_best: usize,
    /// Approximate cap on the parallel search's shared memo tables, in
    /// bytes (rung 1 of the resource governor's degradation ladder): a
    /// shard over its even split of the cap sheds memo entries instead
    /// of growing, each shed counted in
    /// [`CacheStats::pressure_sheds`] and surfaced as a
    /// [`Degradation::ShardCachesShed`]. `None` (the default) leaves
    /// the memos unbounded. [`Optimizer::new`] seeds this from the
    /// `CB_MEMO_BYTES` environment variable.
    pub memo_byte_limit: Option<usize>,
}

impl OptimizerConfig {
    /// Ceiling [`OptimizerConfig::validated`] clamps `threads` to.
    pub const MAX_THREADS: usize = 256;

    /// Deterministic normalization of out-of-range settings, applied by
    /// both [`Optimizer::new`] and [`Optimizer::with_config`] — the
    /// same input config always yields the same effective one, so a bad
    /// knob can change performance but never the answer:
    ///
    /// - `threads == 0` (meaningless) becomes 1, the sequential search;
    ///   values above [`OptimizerConfig::MAX_THREADS`] are clamped down
    ///   to it.
    /// - `k_best == 0` becomes 1: the winner always retains itself.
    /// - A non-finite or non-positive `bound_scale` becomes `1.0`, the
    ///   real admissible bound; a NaN would otherwise decide every
    ///   prune comparison vacuously, in a strategy-dependent way.
    ///
    /// Deliberately *not* clamped: a zero [`SearchBudget`] (zero nodes
    /// or a zero wall clock) is legal and still visits the root, so
    /// the universal plan is always available as the anytime answer;
    /// `backchase.max_visited == 0` means unlimited by contract; and
    /// `memo_byte_limit == Some(0)` is the strictest legal cache
    /// pressure — every shard sheds on every insert.
    #[must_use]
    pub fn validated(mut self) -> OptimizerConfig {
        self.threads = self.threads.clamp(1, Self::MAX_THREADS);
        self.k_best = self.k_best.max(1);
        if !self.bound_scale.is_finite() || self.bound_scale <= 0.0 {
            self.bound_scale = 1.0;
        }
        self
    }
}

impl Default for OptimizerConfig {
    fn default() -> OptimizerConfig {
        OptimizerConfig {
            chase: ChaseConfig::default(),
            backchase: BackchaseConfig::default(),
            cost_visited: false,
            strategy: SearchStrategy::default(),
            bound: CostBound::default(),
            bound_scale: 1.0,
            preflight: PreflightMode::default(),
            threads: 1,
            search_budget: SearchBudget::default(),
            k_best: 3,
            memo_byte_limit: None,
        }
    }
}

/// One costed plan.
#[derive(Debug, Clone)]
pub struct PlanChoice {
    /// The executable plan (cleaned up and reordered).
    pub query: Query,
    /// The backchase subquery it came from.
    pub raw: Query,
    /// Estimated cost.
    pub cost: f64,
    /// Whether the raw form was a backchase normal form (minimal plan).
    pub minimal: bool,
}

/// The full outcome of Algorithm 1 (kept for EXPLAIN and experiments).
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// The input query.
    pub input: Query,
    /// The universal plan `chase(Q)`.
    pub universal: Query,
    /// Chase steps applied to reach it.
    pub chase_steps: Vec<ChaseStepTrace>,
    /// All costed physical plans, cheapest first.
    pub candidates: Vec<PlanChoice>,
    /// The winner.
    pub best: PlanChoice,
    /// The `k_best` cheapest verified plans (mutually distinct,
    /// cost-ordered; a prefix of `candidates`) — the serving tier's
    /// fallback ladder when the best plan's physical structures go cold.
    pub top_k: Vec<PlanChoice>,
    /// Whether both phases ran to completion within budgets.
    pub complete: bool,
    /// Whether the phase-2 [`SearchBudget`] expired: `best` is then the
    /// anytime incumbent (still fully equivalence-verified), not
    /// necessarily the global optimum.
    pub budget_expired: bool,
    /// The incumbent's descent over time under `CostGuided`: one
    /// `(elapsed, cost)` point per improvement, measured from the start
    /// of phase 2. Empty for the phased strategies.
    pub incumbent_trace: Vec<(Duration, f64)>,
    /// Per-shard cache counters of the [`SharedChaseContext`] when the
    /// search ran parallel (`threads > 1`); empty otherwise. Summed into
    /// [`OptimizeOutcome::cache`] either way.
    pub shard_cache: Vec<CacheStats>,
    /// Cache counters of the [`ChaseContext`] that ran this optimization
    /// (chase/containment/implication memo hits and misses).
    pub cache: CacheStats,
    /// Equivalence-verified lattice nodes the phase-2 search examined
    /// (each one passed the two-way containment check; for `CostGuided`,
    /// strictly fewer than `Exhaustive` whenever pruning bites).
    pub nodes_visited: usize,
    /// Sublattices cut because their admissible cost lower bound already
    /// exceeded the incumbent best (`CostGuided` only; 0 for the other
    /// strategies). Counts both kinds of cut: candidates rejected at the
    /// admission gate (skipped before any equivalence verification) and
    /// already-verified nodes pruned at visit (skipped before costing
    /// and descent) — split in [`OptimizeOutcome::nodes_pruned_at_gate`]
    /// / [`OptimizeOutcome::nodes_pruned_at_visit`].
    pub nodes_pruned_by_cost: usize,
    /// Of [`OptimizeOutcome::nodes_pruned_by_cost`], the candidates cut
    /// at the admission gate, before any chase or containment work.
    pub nodes_pruned_at_gate: usize,
    /// Of [`OptimizeOutcome::nodes_pruned_by_cost`], the verified nodes
    /// cut at visit, before costing and descent.
    pub nodes_pruned_at_visit: usize,
    /// The bindings of the universal plan that the must-remain analysis
    /// proves present in every equivalence-preserving plan — the
    /// structural core no removal set can touch (sorted; computed for
    /// every strategy, EXPLAIN reports it).
    pub must_remain: Vec<String>,
    /// The static chase-termination verdict for this catalog's
    /// constraint set (computed for every optimization, independent of
    /// [`PreflightMode`]) — EXPLAIN gates its "budgets were hit" caveat
    /// on it.
    pub termination: TerminationVerdict,
    /// Everything the static analyzer found: catalog, query and lookup
    /// diagnostics from the pre-flight, plus pipeline dataflow findings
    /// for every costed candidate (labeled by plan rank). Empty under
    /// [`PreflightMode::Off`].
    pub diagnostics: Report,
    /// Rungs of the resource governor's degradation ladder taken during
    /// this optimization, in the order taken (empty on a clean run):
    /// shed shard caches, sequential fallback, universal-plan fallback.
    /// See [`crate::governor`]. EXPLAIN prints them in its resilience
    /// section.
    pub degradations: Vec<Degradation>,
    /// Phase-2 search workers that died to a panic and were recovered —
    /// their claims abandoned and re-claimed by survivors, or, when all
    /// of them died, the walk rerun sequentially
    /// ([`Degradation::SequentialFallback`]). Always 0 when
    /// `threads == 1`.
    pub workers_died: usize,
}

/// Optimization errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimizeError {
    Type(TypeError),
    /// No enumerated plan mentions only physical-schema roots.
    NoPhysicalPlan {
        universal: String,
    },
    /// [`PreflightMode::Deny`] and the static analyzer reported
    /// error-severity diagnostics (carried in the report).
    Rejected {
        report: Report,
    },
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::Type(e) => write!(f, "{e}"),
            OptimizeError::NoPhysicalPlan { universal } => {
                write!(f, "no physical plan found; universal plan was: {universal}")
            }
            OptimizeError::Rejected { report } => {
                write!(f, "rejected by static analysis:\n{report}")
            }
        }
    }
}

impl std::error::Error for OptimizeError {}

impl From<TypeError> for OptimizeError {
    fn from(e: TypeError) -> Self {
        OptimizeError::Type(e)
    }
}

/// The chase & backchase optimizer.
#[derive(Debug, Clone)]
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
    config: OptimizerConfig,
}

impl<'a> Optimizer<'a> {
    pub fn new(catalog: &'a Catalog) -> Optimizer<'a> {
        // Only the convenience constructor consults the environment:
        // `with_config` keeps exact, reproducible settings for tests and
        // embedders, while `CB_SEARCH_THREADS=N` flips every default
        // optimizer in a process (the CLI, the experiments) to the
        // parallel frontier.
        let threads = std::env::var("CB_SEARCH_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map_or(1, |t| t.max(1));
        // `CB_MEMO_BYTES=N` arms the governor's cache-pressure rung for
        // every default optimizer in the process (service deployments
        // set it once; unset means unbounded memos, today's behavior).
        let memo_byte_limit = std::env::var("CB_MEMO_BYTES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok());
        Optimizer {
            catalog,
            config: OptimizerConfig {
                backchase: BackchaseConfig {
                    max_visited: 4096,
                    ..Default::default()
                },
                cost_visited: true,
                threads,
                memo_byte_limit,
                ..Default::default()
            }
            .validated(),
        }
    }

    /// Builds an optimizer over an explicit configuration, normalized
    /// by [`OptimizerConfig::validated`] (out-of-range knobs are
    /// clamped deterministically, never rejected at runtime).
    pub fn with_config(catalog: &'a Catalog, config: OptimizerConfig) -> Optimizer<'a> {
        Optimizer {
            catalog,
            config: config.validated(),
        }
    }

    /// Runs Algorithm 1 on `q`. One [`ChaseContext`] is allocated per
    /// optimization, so the chase, backchase and plan-cleanup phases all
    /// reuse the same memoized chases, containment verdicts and
    /// implication proofs.
    pub fn optimize(&self, q: &Query) -> Result<OptimizeOutcome, OptimizeError> {
        let mut ctx = ChaseContext::new(self.catalog.all_constraints(), self.config.chase.clone());
        self.optimize_in(&mut ctx, q)
    }

    /// [`Optimizer::optimize`] against a caller-held [`ChaseContext`].
    ///
    /// Phases 1–3 are cost-independent, so repeated optimizations over
    /// the same constraint set (re-optimizing after a statistics refresh,
    /// sweeping data scales, differential testing across seeds) can share
    /// one context and answer the entire chase/backchase from its memos.
    /// The context is checked against this catalog's `all_constraints()`
    /// (and this config's chase budget) on entry and automatically reset
    /// when they differ — verdicts cached under other dependency sets
    /// would be unsound here; the reset is counted in
    /// [`CacheStats::deps_resets`].
    pub fn optimize_in(
        &self,
        ctx: &mut ChaseContext,
        q: &Query,
    ) -> Result<OptimizeOutcome, OptimizeError> {
        // Static-analysis pre-flight: lint the catalog and the query
        // before the type check and any chase work, so deny mode reports
        // *all* findings as one diagnostic batch instead of stopping at
        // the first type error. The termination verdict is computed
        // regardless (EXPLAIN keys off it); the full lint only when the
        // pre-flight is on.
        let analyzer = Analyzer::new(self.catalog);
        let mut diagnostics = Report::new();
        let termination = if self.config.preflight == PreflightMode::Off {
            cb_chase::analyze_termination(&self.catalog.all_constraints())
        } else {
            let (verdict, catalog_report) = analyzer.check_catalog();
            diagnostics.merge(catalog_report);
            diagnostics.merge(analyzer.check_query(q));
            // A malformed CB_FAULTS schedule is an error finding (deny
            // mode refuses to optimize under it); an armed one is a
            // warning, so chaos-run outcomes are labeled as such.
            diagnostics.merge(analyzer.check_environment());
            if self.config.preflight == PreflightMode::Deny && diagnostics.has_errors() {
                return Err(OptimizeError::Rejected {
                    report: diagnostics,
                });
            }
            verdict
        };

        let schema = self.catalog.combined_schema();
        check_query(&schema, q)?;

        // Guard the context-reuse footgun before asking it anything.
        ctx.ensure_deps(&self.catalog.all_constraints(), &self.config.chase);

        // Phase 1: chase to the universal plan.
        let chased = ctx.chase(q);
        let universal = chased.query.clone();

        // Phase 2: search the subquery lattice — enumerate-then-cost for
        // the phased strategies, a single interleaved branch-and-bound
        // for `CostGuided`.
        let model = CostModel::for_catalog(self.catalog);
        // The lattice's structural core: which bindings every
        // output-preserving removal set keeps. `CostGuided` prunes with
        // it; every strategy reports it (EXPLAIN shows the set) — a
        // deliberate choice: the root set costs one e-graph pass over the
        // universal plan, noise next to the chase that produced it.
        let mut analysis = MustRemainAnalysis::new(&universal);
        let mut candidates: Vec<PlanChoice> = Vec::new();
        let mut nodes_visited = 0usize;
        let mut nodes_pruned_at_gate = 0usize;
        let mut nodes_pruned_at_visit = 0usize;
        let mut budget_expired = false;
        let mut incumbent_trace: Vec<(Duration, f64)> = Vec::new();
        let mut shard_cache: Vec<CacheStats> = Vec::new();
        let mut shared_stats: Option<CacheStats> = None;
        let mut workers_died = 0usize;
        let threads = self.config.threads.max(1);
        let search_start = Instant::now();
        let mut governor = ResourceGovernor::new(
            self.config.memo_byte_limit,
            self.config.search_budget,
            search_start,
        );
        let mut search_complete = false;
        // Phase 2 runs inside a panic boundary: a panic escaping the
        // search machinery (the failpoint sites inject exactly that) is
        // rung 3 of the governor's ladder, not a crashed tenant thread.
        // Everything written before the panic stays usable — candidates
        // hold only fully verified plans and the memo tables insert
        // only completed verdicts, so partial state is merely *less*,
        // never wrong.
        let search_panic = catch_unwind(AssertUnwindSafe(|| {
            search_complete = match self.config.strategy {
                SearchStrategy::Exhaustive => {
                    let out = if threads > 1 {
                        let shared = self.shared_context(ctx);
                        let out = ParallelPlanSearch::new(&universal, threads)
                            .with_max_visited(self.config.backchase.max_visited)
                            .with_budget(self.config.search_budget)
                            .run(&shared, &ParallelExploreAll);
                        shard_cache = shared.shard_stats();
                        let stats = shared.stats();
                        governor.note_sheds(stats.pressure_sheds);
                        shared_stats = Some(stats);
                        workers_died = out.workers_died;
                        if governor.should_fall_back(&out) {
                            // Rung 2: every worker died with frontier work
                            // still queued. The sequential walk shares no
                            // state with the dead workers and never touches
                            // the parallel failpoint sites; it runs under
                            // whatever wall clock the attempt left unspent.
                            governor.note_sequential_fallback(out.workers_died);
                            PlanSearch::new(&universal)
                                .with_max_visited(self.config.backchase.max_visited)
                                .with_budget(governor.remaining_budget())
                                .run(ctx, &mut ExploreAll)
                        } else {
                            out
                        }
                    } else {
                        PlanSearch::new(&universal)
                            .with_max_visited(self.config.backchase.max_visited)
                            .with_budget(self.config.search_budget)
                            .run(ctx, &mut ExploreAll)
                    };
                    nodes_visited = out.visited_count;
                    budget_expired = out.budget_expired;
                    let bc = BackchaseOutcome {
                        normal_forms: out.normal_forms,
                        visited: out.visited,
                        complete: out.complete,
                    };
                    self.cost_phased(ctx, &model, &bc, &mut candidates);
                    bc.complete
                }
                SearchStrategy::Greedy => {
                    // Prefer removing what is logical-only, per the paper's
                    // "obvious strategy".
                    let prefer: BTreeSet<String> = self
                        .catalog
                        .logical()
                        .roots
                        .keys()
                        .filter(|r| !self.catalog.is_physical_root(r))
                        .cloned()
                        .collect();
                    let plan = backchase_greedy_in(ctx, &universal, &prefer);
                    let bc = BackchaseOutcome {
                        normal_forms: vec![plan],
                        visited: vec![universal.clone()],
                        complete: true,
                    };
                    nodes_visited = bc.visited.len();
                    self.cost_phased(ctx, &model, &bc, &mut candidates);
                    bc.complete
                }
                SearchStrategy::CostGuided => {
                    // Branch-and-bound: cost each equivalence-verified node
                    // as it streams in, explore cheap regions first so the
                    // incumbent best drops early, and cut any branch whose
                    // admissible lower bound already exceeds the incumbent
                    // (the bound is monotone along descent, so nothing below
                    // a cut can be cheaper) — candidates under a cut are
                    // skipped *before* the equivalence checks, so they are
                    // never verified or costed at all.
                    let out = if threads > 1 {
                        let shared = self.shared_context(ctx);
                        let (out, par_candidates, par_trace) = {
                            let guide = ParallelCostGuide {
                                catalog: self.catalog,
                                model: &model,
                                analysis: Mutex::new(&mut analysis),
                                bound: self.config.bound,
                                bound_scale: self.config.bound_scale,
                                candidates: Mutex::new(Vec::new()),
                                incumbent: AtomicU64::new(f64::INFINITY.to_bits()),
                                trace: Mutex::new(Vec::new()),
                                start: search_start,
                            };
                            let out = ParallelPlanSearch::new(&universal, threads)
                                .with_max_visited(self.config.backchase.max_visited)
                                .with_budget(self.config.search_budget)
                                .with_collect_visited(false)
                                .run(&shared, &guide);
                            // A worker that panicked while appending has
                            // poisoned these locks; the data under them is
                            // append-only and every element is a complete
                            // verified plan, so take it regardless.
                            (
                                out,
                                guide
                                    .candidates
                                    .into_inner()
                                    .unwrap_or_else(PoisonError::into_inner),
                                guide
                                    .trace
                                    .into_inner()
                                    .unwrap_or_else(PoisonError::into_inner),
                            )
                        };
                        shard_cache = shared.shard_stats();
                        let stats = shared.stats();
                        governor.note_sheds(stats.pressure_sheds);
                        shared_stats = Some(stats);
                        workers_died = out.workers_died;
                        if governor.should_fall_back(&out) {
                            // Rung 2: discard the crippled attempt's partial
                            // results and redo the walk sequentially, so the
                            // outcome is exactly the single-threaded one.
                            governor.note_sequential_fallback(out.workers_died);
                            let mut guide = CostGuide {
                                catalog: self.catalog,
                                model: &model,
                                analysis: &mut analysis,
                                bound: self.config.bound,
                                bound_scale: self.config.bound_scale,
                                candidates: &mut candidates,
                                incumbent: f64::INFINITY,
                                trace: &mut incumbent_trace,
                                start: search_start,
                            };
                            PlanSearch::new(&universal)
                                .with_max_visited(self.config.backchase.max_visited)
                                .with_budget(governor.remaining_budget())
                                .with_collect_visited(false)
                                .run(ctx, &mut guide)
                        } else {
                            candidates.extend(par_candidates);
                            incumbent_trace = par_trace;
                            // Improvements raced in from several workers:
                            // order the curve by time, keep only the
                            // monotone descent.
                            incumbent_trace.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
                            incumbent_trace.dedup_by(|next, prev| next.1 >= prev.1);
                            out
                        }
                    } else {
                        let mut guide = CostGuide {
                            catalog: self.catalog,
                            model: &model,
                            analysis: &mut analysis,
                            bound: self.config.bound,
                            bound_scale: self.config.bound_scale,
                            candidates: &mut candidates,
                            incumbent: f64::INFINITY,
                            trace: &mut incumbent_trace,
                            start: search_start,
                        };
                        PlanSearch::new(&universal)
                            .with_max_visited(self.config.backchase.max_visited)
                            .with_budget(self.config.search_budget)
                            // The guide accumulates its own candidates as
                            // nodes stream in; no need to clone each visited
                            // query.
                            .with_collect_visited(false)
                            .run(ctx, &mut guide)
                    };
                    nodes_visited = out.visited_count;
                    nodes_pruned_at_gate = out.pruned_at_gate;
                    nodes_pruned_at_visit = out.pruned_at_visit;
                    budget_expired = out.budget_expired;
                    // Flag the minimality the search did determine (anything
                    // touched by pruning leaves it undetermined).
                    let nf_set: BTreeSet<Query> = out
                        .normal_forms
                        .iter()
                        .map(Query::alpha_normalized)
                        .collect();
                    for c in &mut candidates {
                        if nf_set.contains(&c.raw.alpha_normalized()) {
                            c.minimal = true;
                        }
                    }
                    out.complete
                }
            };
        }))
        .err();
        if let Some(payload) = search_panic {
            // Rung 3: the search machinery itself died. Injected panics
            // (the chaos harness's bread and butter) are acknowledged as
            // recovered; genuine ones are degraded identically but keep
            // their message in the trace, so a real bug is never silent.
            if cb_chase::faults::is_injected_panic(payload.as_ref()) {
                cb_chase::faults::note_recovered();
            }
            governor.note_universal_fallback(panic_message(payload.as_ref()));
            search_complete = false;
        }
        let degradations = governor.into_degradations();

        // Deduplicate by final plan, cheapest first; ties broken by the
        // canonical plan key — first of the cleaned plan, then of the raw
        // subquery it came from — so the ranking (and therefore the best
        // plan) is a function of the candidate *set*, never of the order
        // workers happened to verify them in. Deliberately not a key:
        // the `minimal` flag, which pruning leaves undetermined on
        // different nodes in different runs. Every `cost` here is finite
        // and nonnegative — `cost_one` enforces that boundary — so
        // `total_cmp` is a plain numeric order with no NaN placement
        // surprises.
        candidates.sort_by(|a, b| {
            a.cost
                .total_cmp(&b.cost)
                .then_with(|| a.query.from.len().cmp(&b.query.from.len()))
                .then_with(|| a.query.size().cmp(&b.query.size()))
                .then_with(|| a.query.alpha_normalized().cmp(&b.query.alpha_normalized()))
                .then_with(|| a.raw.from.len().cmp(&b.raw.from.len()))
                .then_with(|| a.raw.size().cmp(&b.raw.size()))
                .then_with(|| a.raw.alpha_normalized().cmp(&b.raw.alpha_normalized()))
        });
        candidates.dedup_by(|a, b| a.query.alpha_normalized() == b.query.alpha_normalized());

        // An expired budget — or a rung-3 abort — may stop the search
        // before any *physical* subquery was reached; the universal
        // plan — equivalent by construction — is then the anytime
        // incumbent of last resort.
        let aborted = degradations
            .iter()
            .any(|d| matches!(d, Degradation::UniversalFallback { .. }));
        if candidates.is_empty() && (budget_expired || aborted) {
            candidates.push(PlanChoice {
                query: universal.clone(),
                raw: universal.clone(),
                // Informational only (the plan is the sole candidate);
                // saturate rather than let a poisoned estimate through.
                cost: model.checked_plan_cost(&universal).unwrap_or(f64::MAX),
                minimal: false,
            });
        }

        let best = candidates
            .first()
            .cloned()
            .ok_or_else(|| OptimizeError::NoPhysicalPlan {
                universal: universal.to_string(),
            })?;
        let top_k = candidates
            .iter()
            .take(self.config.k_best.max(1))
            .cloned()
            .collect();

        let must_remain: Vec<String> = analysis.must_remain(&BTreeSet::new()).into_iter().collect();

        // Verify the dataflow of every plan the optimizer produced, as
        // the engine will actually run it (both compile modes). A finding
        // here is a compiler bug surfacing before execution.
        if self.config.preflight != PreflightMode::Off {
            for (rank, c) in candidates.iter().enumerate() {
                // Both compile modes: plain, and with the physical join
                // operators (hash + merge) enabled, so every operator
                // the executor could run is verified.
                for joins in [false, true] {
                    let pipeline = cb_engine::compile(
                        &c.query,
                        cb_engine::CompileOptions {
                            hash_joins: joins,
                            merge_joins: joins,
                            ..Default::default()
                        },
                    );
                    let label = format!(
                        "plan #{}{}",
                        rank + 1,
                        if joins { ", hash/merge joins" } else { "" }
                    );
                    diagnostics.merge_labeled(&label, analyzer.check_pipeline(&pipeline));
                }
            }
            if self.config.preflight == PreflightMode::Deny && diagnostics.has_errors() {
                return Err(OptimizeError::Rejected {
                    report: diagnostics,
                });
            }
        }

        let mut cache = ctx.stats();
        if let Some(s) = &shared_stats {
            cache.absorb(s);
        }
        Ok(OptimizeOutcome {
            input: q.clone(),
            universal,
            chase_steps: chased.steps,
            candidates,
            best,
            top_k,
            complete: chased.complete && search_complete,
            budget_expired,
            incumbent_trace,
            shard_cache,
            cache,
            nodes_visited,
            nodes_pruned_by_cost: nodes_pruned_at_gate + nodes_pruned_at_visit,
            nodes_pruned_at_gate,
            nodes_pruned_at_visit,
            must_remain,
            termination,
            diagnostics,
            degradations,
            workers_died,
        })
    }

    /// The thread-shareable twin of `ctx` for a parallel phase-2 run:
    /// same dependency set, same chase budget, same memo cap, memo
    /// tables sharded behind per-shard locks. Fresh per search — the
    /// sequential context's memos stay with `ctx` (phase 1 and the
    /// cleanup phase keep using them); only phase 2's traffic goes
    /// through the shards.
    fn shared_context(&self, ctx: &ChaseContext) -> SharedChaseContext {
        // 0 means unbounded on both sides, so the cap passes through
        // unconditionally.
        let shared = SharedChaseContext::new(ctx.deps().to_vec(), self.config.chase.clone())
            .with_memo_cap(ctx.memo_cap());
        // Rung 1 of the governor's ladder: under a byte limit the
        // shards shed memo entries instead of growing without bound.
        match self.config.memo_byte_limit {
            Some(bytes) => shared.with_byte_limit(bytes),
            None => shared,
        }
    }

    /// The phased "enumerate, then cost" step 3 shared by `Exhaustive`
    /// and `Greedy`: normal forms first (flagged minimal), then — under
    /// `cost_visited` — every other visited physical subquery.
    fn cost_phased(
        &self,
        ctx: &mut ChaseContext,
        model: &CostModel<'_>,
        bc: &BackchaseOutcome,
        candidates: &mut Vec<PlanChoice>,
    ) {
        for nf in &bc.normal_forms {
            if let Some(choice) = cost_one(self.catalog, model, ctx, nf, true) {
                candidates.push(choice);
            }
        }
        if self.config.cost_visited {
            let nf_set: BTreeSet<Query> = bc
                .normal_forms
                .iter()
                .map(Query::alpha_normalized)
                .collect();
            for v in &bc.visited {
                if !nf_set.contains(&v.alpha_normalized()) {
                    if let Some(choice) = cost_one(self.catalog, model, ctx, v, false) {
                        candidates.push(choice);
                    }
                }
            }
        }
    }
}

/// Best-effort text of a caught panic payload, for the degradation
/// trace (`panic!` with a literal gives `&str`, with a format string
/// gives `String`; anything else is opaque).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic".to_string()
    }
}

/// Step 3 for one plan: conventional optimization (condition pruning,
/// guard-elimination cleanup, binding reordering) + costing. `None` for
/// non-physical subqueries, which cannot execute. Generic over the
/// prover so the sequential search costs against its [`ChaseContext`]
/// and parallel workers against their [`SharedProver`] handles.
fn cost_one<P: ChaseProver>(
    catalog: &Catalog,
    model: &CostModel<'_>,
    ctx: &mut P,
    raw: &Query,
    minimal: bool,
) -> Option<PlanChoice> {
    if !catalog.is_physical_query(raw) {
        return None;
    }
    let pruned = crate::cleanup::prune_implied_conditions_in(ctx, raw);
    let cleaned = cleanup_plan(catalog, &pruned);
    let ordered = reorder_bindings(&cleaned, model);
    // The cost-domain boundary: a non-finite estimate (poisoned
    // statistics) would silently mis-sort in the k-best `total_cmp`
    // ranking and corrupt the bit-ordered atomic incumbent, so such a
    // candidate never becomes a choice at all.
    let cost = model.checked_plan_cost(&ordered).ok()?;
    Some(PlanChoice {
        query: ordered,
        raw: raw.clone(),
        cost,
        minimal,
    })
}

/// The branch-and-bound steering of [`SearchStrategy::CostGuided`]:
/// best-first exploration by estimated plan cost, each verified physical
/// node costed on arrival (updating the incumbent), and both the
/// pre-verification gate and the visit verdict cut anything whose
/// admissible lower bound exceeds the incumbent — by default the summed
/// must-remain bound ([`CostModel::lattice_lower_bound`] over the shared
/// [`MustRemainAnalysis`]), selectable via [`OptimizerConfig::bound`].
struct CostGuide<'a, 'b> {
    catalog: &'a Catalog,
    model: &'b CostModel<'a>,
    analysis: &'b mut MustRemainAnalysis,
    bound: CostBound,
    bound_scale: f64,
    candidates: &'b mut Vec<PlanChoice>,
    incumbent: f64,
    trace: &'b mut Vec<(Duration, f64)>,
    start: Instant,
}

impl CostGuide<'_, '_> {
    fn bound_of(&mut self, q: &Query, removed: &BTreeSet<String>) -> f64 {
        let b = match self.bound {
            CostBound::MustRemain => self.model.lattice_lower_bound(q, removed, self.analysis),
            CostBound::AccessFloor => self.model.lower_bound(q),
        };
        b * self.bound_scale
    }
}

impl SearchVisitor for CostGuide<'_, '_> {
    fn visit(&mut self, ctx: &mut ChaseContext, q: &Query, removed: &BTreeSet<String>) -> Visit {
        // An admissible bound under-estimates `q` itself too: nothing to
        // gain from costing or descending once it exceeds the incumbent.
        if self.bound_of(q, removed) > self.incumbent {
            return Visit::Prune;
        }
        if let Some(choice) = cost_one(self.catalog, self.model, ctx, q, false) {
            if choice.cost < self.incumbent {
                self.incumbent = choice.cost;
                self.trace.push((self.start.elapsed(), choice.cost));
            }
            self.candidates.push(choice);
        }
        Visit::Explore
    }

    fn admit(&mut self, q: &Query, removed: &BTreeSet<String>) -> bool {
        // The bound is monotone along lattice descent, so exceeding the
        // incumbent here rules out the candidate's whole sublattice —
        // skip the equivalence checks entirely.
        self.bound_of(q, removed) <= self.incumbent
    }

    fn priority(&mut self, q: &Query, _removed: &BTreeSet<String>) -> f64 {
        // Best-first by the estimated cost of the raw subquery (plans and
        // logical subqueries alike): cheap regions are explored first, so
        // the incumbent drops early and the bound starts biting.
        self.model.plan_cost(q)
    }
}

/// [`CostGuide`] for the parallel frontier: the same branch-and-bound
/// steering shared by reference across N workers. The incumbent is an
/// `AtomicU64` over the cost's bit pattern — for non-negative floats the
/// bit order is the numeric order, so `fetch_min` publishes one worker's
/// improvement to every other worker's gate without a lock. Candidates
/// and the incumbent-vs-time trace go behind mutexes (appends, off the
/// hot path); the must-remain analysis behind its own (its memo is a
/// shared accelerator, held only inside `bound_of`).
///
/// Pruning uses a *strict* comparison against the incumbent, and the
/// final ranking breaks cost ties on canonical plan keys — so every
/// candidate that could still be (or tie) the best survives every
/// schedule, and the best plan is thread-count-independent even though
/// the visit order and the pruned-node counts are not.
struct ParallelCostGuide<'a, 'b> {
    catalog: &'a Catalog,
    model: &'b CostModel<'a>,
    analysis: Mutex<&'b mut MustRemainAnalysis>,
    bound: CostBound,
    bound_scale: f64,
    candidates: Mutex<Vec<PlanChoice>>,
    incumbent: AtomicU64,
    trace: Mutex<Vec<(Duration, f64)>>,
    start: Instant,
}

impl ParallelCostGuide<'_, '_> {
    fn incumbent(&self) -> f64 {
        f64::from_bits(self.incumbent.load(Ordering::SeqCst))
    }

    fn publish(&self, cost: f64) {
        // `fetch_min` over bit patterns is only a numeric min for finite
        // nonnegative floats (NaN/negative bit patterns mis-order).
        // `cost_one` already refuses such costs, so this is a second
        // line of defense, not a live path.
        debug_assert!(cost.is_finite() && cost >= 0.0, "incumbent {cost}");
        if !(cost.is_finite() && cost >= 0.0) {
            return;
        }
        let prev = self.incumbent.fetch_min(cost.to_bits(), Ordering::SeqCst);
        if cost.to_bits() < prev {
            // A sibling worker's panic may have poisoned the lock; the
            // vec under it is append-only and re-sorted at the end, so
            // it stays usable — don't let the poison cascade.
            self.trace
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push((self.start.elapsed(), cost));
        }
    }

    fn bound_of(&self, q: &Query, removed: &BTreeSet<String>) -> f64 {
        let b = match self.bound {
            CostBound::MustRemain => {
                // The analysis is a memo accelerator: entries are only
                // inserted whole, so a poisoned lock still guards a
                // consistent table.
                let mut analysis = self.analysis.lock().unwrap_or_else(PoisonError::into_inner);
                self.model.lattice_lower_bound(q, removed, &mut analysis)
            }
            CostBound::AccessFloor => self.model.lower_bound(q),
        };
        b * self.bound_scale
    }
}

impl ParallelVisitor for ParallelCostGuide<'_, '_> {
    fn visit(&self, prover: &mut SharedProver<'_>, q: &Query, removed: &BTreeSet<String>) -> Visit {
        if self.bound_of(q, removed) > self.incumbent() {
            return Visit::Prune;
        }
        if let Some(choice) = cost_one(self.catalog, self.model, prover, q, false) {
            self.publish(choice.cost);
            self.candidates
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(choice);
        }
        Visit::Explore
    }

    fn admit(&self, q: &Query, removed: &BTreeSet<String>) -> bool {
        self.bound_of(q, removed) <= self.incumbent()
    }

    fn priority(&self, q: &Query, _removed: &BTreeSet<String>) -> f64 {
        self.model.plan_cost(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_catalog::scenarios::{projdept, relational_indexes, relational_views};

    #[test]
    fn projdept_end_to_end() {
        let mut cat = projdept::catalog();
        projdept::stats_for(&mut cat, 100, 10, 20);
        let out = Optimizer::new(&cat).optimize(&projdept::query()).unwrap();
        assert!(out.complete);
        assert!(!out.candidates.is_empty());
        // With these statistics the secondary-index plan (P3) wins: a
        // single non-failing lookup on SI.
        let best = out.best.query.to_string();
        assert!(best.contains("SI{\"CitiBank\"}"), "best = {best}");
        // P2 and P4 shapes are among the candidates.
        assert!(out
            .candidates
            .iter()
            .any(|c| c.raw.from.len() == 1 && c.raw.to_string().contains("from Proj")));
        assert!(out
            .candidates
            .iter()
            .any(|c| c.raw.from.len() == 1 && c.raw.to_string().contains("from JI")));
        // Costs are sorted.
        for w in out.candidates.windows(2) {
            assert!(w[0].cost <= w[1].cost);
        }
    }

    #[test]
    fn index_only_plan_wins_when_selective() {
        let mut cat = relational_indexes::catalog();
        relational_indexes::stats_for(&mut cat, 10_000, 1000, 1000);
        let out = Optimizer::new(&cat)
            .optimize(&relational_indexes::query())
            .unwrap();
        // The best plan avoids scanning R: it uses SA and/or SB.
        let best = &out.best.query;
        assert!(
            !best.from.iter().any(|b| b.src.to_string() == "R"),
            "best should not scan R: {best}"
        );
        let s = best.to_string();
        assert!(s.contains("SA") || s.contains("SB"), "best = {s}");
    }

    #[test]
    fn view_plan_wins_when_view_small() {
        let mut cat = relational_views::catalog();
        // Tiny view over big relations.
        relational_views::stats_for(&mut cat, 10_000, 10_000, 10);
        let out = Optimizer::new(&cat)
            .optimize(&relational_views::query())
            .unwrap();
        let s = out.best.query.to_string();
        assert!(s.contains('V'), "best should use the view: {s}");
        // The navigation form uses the indexes, not base scans.
        assert!(
            !out.best.query.from.iter().any(|b| matches!(
                b.src,
                pcql::Path::Root(ref r) if r == "R" || r == "S"
            )),
            "best = {s}"
        );
    }

    #[test]
    fn base_join_wins_when_view_useless() {
        let mut cat = relational_views::catalog();
        // The "view" is as large as the join itself and the relations are
        // small: scanning the base tables is competitive. Make the view
        // enormous to force the base plan.
        relational_views::stats_for(&mut cat, 50, 50, 1_000_000);
        let out = Optimizer::new(&cat)
            .optimize(&relational_views::query())
            .unwrap();
        let s = out.best.query.to_string();
        assert!(
            !s.contains("from V"),
            "best should avoid the view scan: {s}"
        );
    }

    #[test]
    fn greedy_strategy_returns_a_sound_plan_fast() {
        let mut cat = projdept::catalog();
        projdept::stats_for(&mut cat, 100, 10, 20);
        let config = OptimizerConfig {
            strategy: SearchStrategy::Greedy,
            cost_visited: false,
            ..Default::default()
        };
        let out = Optimizer::with_config(&cat, config)
            .optimize(&projdept::query())
            .unwrap();
        // Exactly one plan, physical, minimal.
        assert_eq!(out.candidates.len(), 1);
        assert!(
            cat.is_physical_query(&out.best.raw),
            "plan: {}",
            out.best.raw
        );
        // The exhaustive strategy can only be equal or better on cost.
        let full = Optimizer::new(&cat).optimize(&projdept::query()).unwrap();
        assert!(full.best.cost <= out.best.cost + 1e-9);
    }

    #[test]
    fn cost_guided_matches_exhaustive_best_cost_with_fewer_nodes() {
        let mut cat = projdept::catalog();
        projdept::stats_for(&mut cat, 100, 10, 20);
        let q = projdept::query();
        let full = Optimizer::new(&cat).optimize(&q).unwrap();
        let config = OptimizerConfig {
            strategy: SearchStrategy::CostGuided,
            ..Default::default()
        };
        let guided = Optimizer::with_config(&cat, config).optimize(&q).unwrap();
        assert!(
            (guided.best.cost - full.best.cost).abs() < 1e-9,
            "guided {} vs exhaustive {}",
            guided.best.cost,
            full.best.cost
        );
        assert!(guided.complete);
        // Strictly fewer subqueries costed, and the savings are reported.
        assert!(
            guided.nodes_visited < full.nodes_visited,
            "guided visited {} vs exhaustive {}",
            guided.nodes_visited,
            full.nodes_visited
        );
        assert!(guided.nodes_pruned_by_cost > 0);
        assert_eq!(full.nodes_pruned_by_cost, 0);
    }

    #[test]
    fn stale_context_is_reset_not_reused() {
        // Reusing one context across catalogs with different constraint
        // sets must reset it (and say so), not serve unsound memos.
        let mut cat = projdept::catalog();
        projdept::stats_for(&mut cat, 100, 10, 20);
        let q = projdept::query();
        let mut ctx = ChaseContext::new(cat.all_constraints(), ChaseConfig::default());
        let first = Optimizer::new(&cat).optimize_in(&mut ctx, &q).unwrap();
        assert_eq!(first.cache.deps_resets, 0);

        let bare = cat.without_semantic_constraints();
        let reused = Optimizer::new(&bare).optimize_in(&mut ctx, &q).unwrap();
        assert_eq!(reused.cache.deps_resets, 1);
        // Identical to a fresh-context optimization under the bare catalog.
        let fresh = Optimizer::new(&bare).optimize(&q).unwrap();
        assert_eq!(reused.best.query, fresh.best.query);
        assert_eq!(reused.candidates.len(), fresh.candidates.len());
    }

    #[test]
    fn preflight_warn_carries_diagnostics_without_failing() {
        let mut cat = projdept::catalog();
        projdept::stats_for(&mut cat, 100, 10, 20);
        let out = Optimizer::new(&cat).optimize(&projdept::query()).unwrap();
        // projdept's constraint set is Unknown: the lint carries the
        // cycle evidence (warnings), but nothing reaches error severity
        // and the optimization succeeds.
        assert_eq!(out.termination, TerminationVerdict::Unknown);
        assert!(!out.diagnostics.is_empty());
        assert!(!out.diagnostics.has_errors(), "{}", out.diagnostics);
    }

    #[test]
    fn preflight_deny_rejects_with_the_full_report() {
        let cat = projdept::catalog();
        let config = OptimizerConfig {
            preflight: PreflightMode::Deny,
            ..Default::default()
        };
        let q = pcql::parser::parse_query("select struct(X = x.X) from Nowhere x").unwrap();
        match Optimizer::with_config(&cat, config).optimize(&q) {
            Err(OptimizeError::Rejected { report }) => {
                assert!(report.has_errors());
                assert!(report
                    .errors()
                    .any(|d| d.code == cb_analyze::codes::UNKNOWN_ROOT));
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
        // The same malformed query under Warn falls through to the type
        // checker, as before.
        let warn = OptimizerConfig::default();
        assert!(matches!(
            Optimizer::with_config(&cat, warn).optimize(&q),
            Err(OptimizeError::Type(_))
        ));
    }

    #[test]
    fn preflight_off_still_reports_termination() {
        let mut cat = projdept::catalog();
        projdept::stats_for(&mut cat, 100, 10, 20);
        let config = OptimizerConfig {
            preflight: PreflightMode::Off,
            ..Default::default()
        };
        let out = Optimizer::with_config(&cat, config)
            .optimize(&projdept::query())
            .unwrap();
        assert_eq!(out.termination, TerminationVerdict::Unknown);
        assert!(out.diagnostics.is_empty());
    }

    #[test]
    fn every_candidate_pipeline_verifies_clean() {
        for (name, mut cat, q) in [
            ("projdept", projdept::catalog(), projdept::query()),
            (
                "relational_indexes",
                relational_indexes::catalog(),
                relational_indexes::query(),
            ),
            (
                "relational_views",
                relational_views::catalog(),
                relational_views::query(),
            ),
        ] {
            match name {
                "projdept" => projdept::stats_for(&mut cat, 100, 10, 20),
                "relational_indexes" => relational_indexes::stats_for(&mut cat, 1000, 100, 100),
                _ => relational_views::stats_for(&mut cat, 1000, 1000, 50),
            }
            let out = Optimizer::new(&cat).optimize(&q).unwrap();
            // The pre-flight already verified every candidate's compiled
            // pipeline; no error-severity dataflow finding may survive.
            assert!(!out.diagnostics.has_errors(), "{name}: {}", out.diagnostics);
        }
    }

    fn exhaustive_config(threads: usize) -> OptimizerConfig {
        OptimizerConfig {
            backchase: BackchaseConfig {
                max_visited: 4096,
                ..Default::default()
            },
            cost_visited: true,
            threads,
            ..Default::default()
        }
    }

    #[test]
    fn all_workers_dying_degrades_to_the_sequential_search() {
        let mut cat = projdept::catalog();
        projdept::stats_for(&mut cat, 100, 10, 20);
        let q = projdept::query();
        let faulty = {
            // Every spawning worker dies instantly: the parallel attempt
            // cannot finish, and rung 2 reruns the walk sequentially.
            let _guard = cb_chase::faults::ScopedFaults::install("parallel::spawn=panic").unwrap();
            let out = Optimizer::with_config(&cat, exhaustive_config(4))
                .optimize(&q)
                .unwrap();
            let fs = cb_chase::faults::stats();
            assert_eq!(fs.injected, fs.acknowledged(), "{fs:?}");
            assert!(fs.injected >= 4, "{fs:?}");
            out
        };
        assert_eq!(faulty.workers_died, 4);
        assert!(
            faulty
                .degradations
                .iter()
                .any(|d| matches!(d, Degradation::SequentialFallback { workers_died: 4 })),
            "{:?}",
            faulty.degradations
        );
        // The degraded answer is exactly the sequential one.
        let clean = Optimizer::with_config(&cat, exhaustive_config(1))
            .optimize(&q)
            .unwrap();
        assert_eq!(faulty.best.query, clean.best.query);
        assert!((faulty.best.cost - clean.best.cost).abs() < 1e-9);
        assert_eq!(faulty.candidates.len(), clean.candidates.len());
        assert!(faulty.complete);
        // EXPLAIN tells the story.
        let text = crate::explain::explain(&faulty);
        assert!(text.contains("reran sequentially"), "{text}");
        assert!(text.contains("worker(s) died"), "{text}");
        // The pre-flight flagged the armed schedule (CB040): a chaos
        // outcome is never mistaken for a clean one.
        assert!(
            faulty
                .diagnostics
                .diagnostics
                .iter()
                .any(|d| d.code == cb_analyze::codes::FAULT_SPEC),
            "{}",
            faulty.diagnostics
        );
    }

    #[test]
    fn a_panic_escaping_the_sequential_search_yields_the_universal_plan() {
        let mut cat = projdept::catalog();
        projdept::stats_for(&mut cat, 100, 10, 20);
        let q = projdept::query();
        // Every containment proof panics: the sequential phase-2 search
        // dies on its first verification, and rung 3 answers with the
        // verified universal plan rather than crashing the tenant.
        let _guard =
            cb_chase::faults::ScopedFaults::install("context::contained_in=panic").unwrap();
        let out = Optimizer::with_config(&cat, exhaustive_config(1))
            .optimize(&q)
            .unwrap();
        let fs = cb_chase::faults::stats();
        assert_eq!(fs.injected, fs.acknowledged(), "{fs:?}");
        assert!(!out.complete);
        assert!(
            out.degradations.iter().any(|d| matches!(
                d,
                Degradation::UniversalFallback { reason }
                    if reason.contains("cb-fault")
            )),
            "{:?}",
            out.degradations
        );
        assert_eq!(out.best.raw, out.universal);
        let text = crate::explain::explain(&out);
        assert!(text.contains("phase-2 search aborted"), "{text}");
    }

    #[test]
    fn memory_pressure_sheds_are_traced_and_harmless() {
        let mut cat = projdept::catalog();
        projdept::stats_for(&mut cat, 100, 10, 20);
        let q = projdept::query();
        let unlimited = Optimizer::with_config(&cat, exhaustive_config(2))
            .optimize(&q)
            .unwrap();
        let squeezed = Optimizer::with_config(
            &cat,
            OptimizerConfig {
                // A cap far below one memo entry: every shard sheds on
                // every insert (rung 1), and the search just re-proves.
                memo_byte_limit: Some(64),
                ..exhaustive_config(2)
            },
        )
        .optimize(&q)
        .unwrap();
        assert!(squeezed.cache.pressure_sheds > 0, "{:?}", squeezed.cache);
        assert!(
            squeezed.degradations.iter().any(|d| matches!(
                d,
                Degradation::ShardCachesShed { sheds } if *sheds > 0
            )),
            "{:?}",
            squeezed.degradations
        );
        assert_eq!(squeezed.best.query, unlimited.best.query);
        assert_eq!(squeezed.candidates.len(), unlimited.candidates.len());
    }

    #[test]
    fn out_of_range_config_is_clamped_deterministically() {
        let cfg = OptimizerConfig {
            threads: 0,
            k_best: 0,
            bound_scale: f64::NAN,
            ..Default::default()
        }
        .validated();
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.k_best, 1);
        assert_eq!(cfg.bound_scale, 1.0);
        assert_eq!(
            OptimizerConfig {
                threads: 100_000,
                ..Default::default()
            }
            .validated()
            .threads,
            OptimizerConfig::MAX_THREADS
        );

        // End to end: `threads: 0` behaves exactly as the sequential
        // search, and `k_best: 0` still retains the winner.
        let mut cat = projdept::catalog();
        projdept::stats_for(&mut cat, 100, 10, 20);
        let q = projdept::query();
        let zero = Optimizer::with_config(
            &cat,
            OptimizerConfig {
                threads: 0,
                k_best: 0,
                ..exhaustive_config(1)
            },
        )
        .optimize(&q)
        .unwrap();
        let one = Optimizer::with_config(&cat, exhaustive_config(1))
            .optimize(&q)
            .unwrap();
        assert_eq!(zero.best.query, one.best.query);
        assert_eq!(zero.candidates.len(), one.candidates.len());
        assert_eq!(zero.top_k.len(), 1);
    }

    #[test]
    fn unknown_query_is_a_type_error() {
        let cat = projdept::catalog();
        let q = pcql::parser::parse_query("select struct(X = x.X) from Nowhere x").unwrap();
        assert!(matches!(
            Optimizer::new(&cat).optimize(&q),
            Err(OptimizeError::Type(_))
        ));
    }

    #[test]
    fn logical_only_catalog_has_no_physical_plan() {
        // A catalog whose physical schema is empty cannot produce plans.
        let mut cat = Catalog::new();
        cat.add_logical_relation("L", [("X", pcql::Type::Int)]);
        let q = pcql::parser::parse_query("select struct(X = l.X) from L l").unwrap();
        assert!(matches!(
            Optimizer::new(&cat).optimize(&q),
            Err(OptimizeError::NoPhysicalPlan { .. })
        ));
    }
}
