//! Algorithm 1 of the paper.
//!
//! ```text
//! Input:  logical schema Λ with constraints D,
//!         constraints D' characterizing physical schema Φ,
//!         cost function C, query Q
//! Output: cheapest plan Q' equivalent to Q under D ∪ D'
//!
//! 1 U := chase_{D ∪ D'}(Q)                      (universal plan)
//! 2 for each p ∈ backchase_{D ∪ D'}(U)          (minimal plans)
//! 3     do cost-based conventional optimization
//!       keep cheapest plan so far
//! 4 Q' := cheapest
//! ```
//!
//! Steps 1 and 2 are cost-independent, as the paper stresses (contrast
//! with Volcano); step 3 here is plan cleanup (non-failing-lookup
//! introduction, §4) plus greedy binding reordering, followed by costing.
//! Since every subquery the backchase visits is a sound plan ("we can
//! stop this rewriting anytime"), the optimizer costs all *physical*
//! visited subqueries, not just the normal forms — reproducing, e.g., the
//! paper's P1, which is an equivalent physical plan even in regimes where
//! it is not minimal.

use std::fmt;

use cb_catalog::Catalog;
use cb_chase::{
    backchase_greedy_in, backchase_in, BackchaseConfig, BackchaseOutcome, CacheStats, ChaseConfig,
    ChaseContext, ChaseStepTrace,
};
use pcql::query::Query;
use pcql::typecheck::{check_query, TypeError};

use crate::cleanup::cleanup_plan;
use crate::cost::CostModel;
use crate::reorder::reorder_bindings;

/// How to search the plan space in phase 2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Full lattice enumeration with equivalence pruning (Theorem 2's
    /// complete procedure) — exponential, finds *all* minimal plans.
    #[default]
    Exhaustive,
    /// The paper's §3 heuristic: one greedy descent that removes
    /// logical-only bindings first — linear, finds *one* minimal plan.
    Greedy,
}

/// Optimizer configuration.
///
/// One [`ChaseContext`] built from `chase` runs the whole optimization
/// (universal plan, backchase, condition pruning), so `backchase.chase`
/// is not consulted by [`Optimizer::optimize`] — only
/// `backchase.max_visited` is. The nested config remains for callers
/// that drive `cb_chase::backchase` directly.
#[derive(Debug, Clone, Default)]
pub struct OptimizerConfig {
    pub chase: ChaseConfig,
    pub backchase: BackchaseConfig,
    /// Cost also the non-minimal physical subqueries encountered during
    /// backchase (they are sound plans; the paper's P1 is one).
    pub cost_visited: bool,
    pub strategy: SearchStrategy,
}

/// One costed plan.
#[derive(Debug, Clone)]
pub struct PlanChoice {
    /// The executable plan (cleaned up and reordered).
    pub query: Query,
    /// The backchase subquery it came from.
    pub raw: Query,
    /// Estimated cost.
    pub cost: f64,
    /// Whether the raw form was a backchase normal form (minimal plan).
    pub minimal: bool,
}

/// The full outcome of Algorithm 1 (kept for EXPLAIN and experiments).
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// The input query.
    pub input: Query,
    /// The universal plan `chase(Q)`.
    pub universal: Query,
    /// Chase steps applied to reach it.
    pub chase_steps: Vec<ChaseStepTrace>,
    /// All costed physical plans, cheapest first.
    pub candidates: Vec<PlanChoice>,
    /// The winner.
    pub best: PlanChoice,
    /// Whether both phases ran to completion within budgets.
    pub complete: bool,
    /// Cache counters of the [`ChaseContext`] that ran this optimization
    /// (chase/containment/implication memo hits and misses).
    pub cache: CacheStats,
}

/// Optimization errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimizeError {
    Type(TypeError),
    /// No enumerated plan mentions only physical-schema roots.
    NoPhysicalPlan {
        universal: String,
    },
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::Type(e) => write!(f, "{e}"),
            OptimizeError::NoPhysicalPlan { universal } => {
                write!(f, "no physical plan found; universal plan was: {universal}")
            }
        }
    }
}

impl std::error::Error for OptimizeError {}

impl From<TypeError> for OptimizeError {
    fn from(e: TypeError) -> Self {
        OptimizeError::Type(e)
    }
}

/// The chase & backchase optimizer.
#[derive(Debug, Clone)]
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
    config: OptimizerConfig,
}

impl<'a> Optimizer<'a> {
    pub fn new(catalog: &'a Catalog) -> Optimizer<'a> {
        Optimizer {
            catalog,
            config: OptimizerConfig {
                backchase: BackchaseConfig {
                    max_visited: 4096,
                    ..Default::default()
                },
                cost_visited: true,
                ..Default::default()
            },
        }
    }

    pub fn with_config(catalog: &'a Catalog, config: OptimizerConfig) -> Optimizer<'a> {
        Optimizer { catalog, config }
    }

    /// Runs Algorithm 1 on `q`. One [`ChaseContext`] is allocated per
    /// optimization, so the chase, backchase and plan-cleanup phases all
    /// reuse the same memoized chases, containment verdicts and
    /// implication proofs.
    pub fn optimize(&self, q: &Query) -> Result<OptimizeOutcome, OptimizeError> {
        let mut ctx = ChaseContext::new(self.catalog.all_constraints(), self.config.chase.clone());
        self.optimize_in(&mut ctx, q)
    }

    /// [`Optimizer::optimize`] against a caller-held [`ChaseContext`].
    ///
    /// Phases 1–3 are cost-independent, so repeated optimizations over
    /// the same constraint set (re-optimizing after a statistics refresh,
    /// sweeping data scales, differential testing across seeds) can share
    /// one context and answer the entire chase/backchase from its memos.
    /// The context must have been built from this catalog's
    /// `all_constraints()` (and the same chase budget); verdicts cached
    /// under other dependency sets would be unsound here.
    pub fn optimize_in(
        &self,
        ctx: &mut ChaseContext,
        q: &Query,
    ) -> Result<OptimizeOutcome, OptimizeError> {
        let schema = self.catalog.combined_schema();
        check_query(&schema, q)?;

        // Phase 1: chase to the universal plan.
        let chased = ctx.chase(q);
        let universal = chased.query.clone();

        // Phase 2: backchase enumeration of minimal plans.
        let bc = match self.config.strategy {
            SearchStrategy::Exhaustive => {
                backchase_in(ctx, &universal, self.config.backchase.max_visited)
            }
            SearchStrategy::Greedy => {
                // Prefer removing what is logical-only, per the paper's
                // "obvious strategy".
                let prefer: std::collections::BTreeSet<String> = self
                    .catalog
                    .logical()
                    .roots
                    .keys()
                    .filter(|r| !self.catalog.is_physical_root(r))
                    .cloned()
                    .collect();
                let plan = backchase_greedy_in(ctx, &universal, &prefer);
                BackchaseOutcome {
                    normal_forms: vec![plan],
                    visited: vec![universal.clone()],
                    complete: true,
                }
            }
        };

        // Step 3: conventional optimization + costing of each physical
        // plan.
        let model = CostModel::for_catalog(self.catalog);
        let mut candidates: Vec<PlanChoice> = Vec::new();
        let consider = |ctx: &mut ChaseContext,
                        raw: &Query,
                        minimal: bool,
                        candidates: &mut Vec<PlanChoice>| {
            if !self.catalog.is_physical_query(raw) {
                return;
            }
            let pruned = crate::cleanup::prune_implied_conditions_in(ctx, raw);
            let cleaned = cleanup_plan(self.catalog, &pruned);
            let ordered = reorder_bindings(&cleaned, &model);
            let cost = model.plan_cost(&ordered);
            candidates.push(PlanChoice {
                query: ordered,
                raw: raw.clone(),
                cost,
                minimal,
            });
        };
        for nf in &bc.normal_forms {
            consider(ctx, nf, true, &mut candidates);
        }
        if self.config.cost_visited {
            let nf_set: std::collections::BTreeSet<Query> = bc
                .normal_forms
                .iter()
                .map(|p| p.alpha_normalized())
                .collect();
            for v in &bc.visited {
                if !nf_set.contains(&v.alpha_normalized()) {
                    consider(ctx, v, false, &mut candidates);
                }
            }
        }
        // Deduplicate by final plan, cheapest first; deterministic ties.
        candidates.sort_by(|a, b| {
            a.cost
                .partial_cmp(&b.cost)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.query.from.len().cmp(&b.query.from.len()))
                .then_with(|| a.query.size().cmp(&b.query.size()))
                .then_with(|| a.query.alpha_normalized().cmp(&b.query.alpha_normalized()))
        });
        candidates.dedup_by(|a, b| a.query.alpha_normalized() == b.query.alpha_normalized());

        let best = candidates
            .first()
            .cloned()
            .ok_or_else(|| OptimizeError::NoPhysicalPlan {
                universal: universal.to_string(),
            })?;

        Ok(OptimizeOutcome {
            input: q.clone(),
            universal,
            chase_steps: chased.steps,
            candidates,
            best,
            complete: chased.complete && bc.complete,
            cache: ctx.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_catalog::scenarios::{projdept, relational_indexes, relational_views};

    #[test]
    fn projdept_end_to_end() {
        let mut cat = projdept::catalog();
        projdept::stats_for(&mut cat, 100, 10, 20);
        let out = Optimizer::new(&cat).optimize(&projdept::query()).unwrap();
        assert!(out.complete);
        assert!(!out.candidates.is_empty());
        // With these statistics the secondary-index plan (P3) wins: a
        // single non-failing lookup on SI.
        let best = out.best.query.to_string();
        assert!(best.contains("SI{\"CitiBank\"}"), "best = {best}");
        // P2 and P4 shapes are among the candidates.
        assert!(out
            .candidates
            .iter()
            .any(|c| c.raw.from.len() == 1 && c.raw.to_string().contains("from Proj")));
        assert!(out
            .candidates
            .iter()
            .any(|c| c.raw.from.len() == 1 && c.raw.to_string().contains("from JI")));
        // Costs are sorted.
        for w in out.candidates.windows(2) {
            assert!(w[0].cost <= w[1].cost);
        }
    }

    #[test]
    fn index_only_plan_wins_when_selective() {
        let mut cat = relational_indexes::catalog();
        relational_indexes::stats_for(&mut cat, 10_000, 1000, 1000);
        let out = Optimizer::new(&cat)
            .optimize(&relational_indexes::query())
            .unwrap();
        // The best plan avoids scanning R: it uses SA and/or SB.
        let best = &out.best.query;
        assert!(
            !best.from.iter().any(|b| b.src.to_string() == "R"),
            "best should not scan R: {best}"
        );
        let s = best.to_string();
        assert!(s.contains("SA") || s.contains("SB"), "best = {s}");
    }

    #[test]
    fn view_plan_wins_when_view_small() {
        let mut cat = relational_views::catalog();
        // Tiny view over big relations.
        relational_views::stats_for(&mut cat, 10_000, 10_000, 10);
        let out = Optimizer::new(&cat)
            .optimize(&relational_views::query())
            .unwrap();
        let s = out.best.query.to_string();
        assert!(s.contains('V'), "best should use the view: {s}");
        // The navigation form uses the indexes, not base scans.
        assert!(
            !out.best.query.from.iter().any(|b| matches!(
                b.src,
                pcql::Path::Root(ref r) if r == "R" || r == "S"
            )),
            "best = {s}"
        );
    }

    #[test]
    fn base_join_wins_when_view_useless() {
        let mut cat = relational_views::catalog();
        // The "view" is as large as the join itself and the relations are
        // small: scanning the base tables is competitive. Make the view
        // enormous to force the base plan.
        relational_views::stats_for(&mut cat, 50, 50, 1_000_000);
        let out = Optimizer::new(&cat)
            .optimize(&relational_views::query())
            .unwrap();
        let s = out.best.query.to_string();
        assert!(
            !s.contains("from V"),
            "best should avoid the view scan: {s}"
        );
    }

    #[test]
    fn greedy_strategy_returns_a_sound_plan_fast() {
        let mut cat = projdept::catalog();
        projdept::stats_for(&mut cat, 100, 10, 20);
        let config = OptimizerConfig {
            strategy: SearchStrategy::Greedy,
            cost_visited: false,
            ..Default::default()
        };
        let out = Optimizer::with_config(&cat, config)
            .optimize(&projdept::query())
            .unwrap();
        // Exactly one plan, physical, minimal.
        assert_eq!(out.candidates.len(), 1);
        assert!(
            cat.is_physical_query(&out.best.raw),
            "plan: {}",
            out.best.raw
        );
        // The exhaustive strategy can only be equal or better on cost.
        let full = Optimizer::new(&cat).optimize(&projdept::query()).unwrap();
        assert!(full.best.cost <= out.best.cost + 1e-9);
    }

    #[test]
    fn unknown_query_is_a_type_error() {
        let cat = projdept::catalog();
        let q = pcql::parser::parse_query("select struct(X = x.X) from Nowhere x").unwrap();
        assert!(matches!(
            Optimizer::new(&cat).optimize(&q),
            Err(OptimizeError::Type(_))
        ));
    }

    #[test]
    fn logical_only_catalog_has_no_physical_plan() {
        // A catalog whose physical schema is empty cannot produce plans.
        let mut cat = cb_catalog::Catalog::new();
        cat.add_logical_relation("L", [("X", pcql::Type::Int)]);
        let q = pcql::parser::parse_query("select struct(X = l.X) from L l").unwrap();
        assert!(matches!(
            Optimizer::new(&cat).optimize(&q),
            Err(OptimizeError::NoPhysicalPlan { .. })
        ));
    }
}
