//! Human-readable EXPLAIN output for an optimization outcome.

use std::fmt::Write as _;

use crate::optimizer::OptimizeOutcome;
use crate::plan_repr::PlanRepr;

/// Renders the full story of one optimization: input, chase steps,
/// universal plan, candidate plans with costs, and the winner.
pub fn explain(outcome: &OptimizeOutcome) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== input query ==");
    let _ = writeln!(s, "{}", outcome.input);
    let _ = writeln!(
        s,
        "\n== chase (phase 1): {} steps ==",
        outcome.chase_steps.len()
    );
    for step in &outcome.chase_steps {
        let adds: Vec<String> = step
            .added_bindings
            .iter()
            .map(|b| format!("{} in {}", b.var, b.src))
            .collect();
        let eqs: Vec<String> = step
            .added_eqs
            .iter()
            .map(|e| format!("{} = {}", e.0, e.1))
            .collect();
        let _ = writeln!(
            s,
            "  [{}] + bindings {{{}}} + conditions {{{}}}",
            step.dep,
            adds.join(", "),
            eqs.join(", ")
        );
    }
    let _ = writeln!(s, "\n== universal plan ==");
    let _ = writeln!(s, "{}", outcome.universal);
    let _ = writeln!(s, "  (constraint-set termination: {})", outcome.termination);
    let _ = writeln!(
        s,
        "\n== backchase (phase 2): {} physical plan(s), cheapest first ==",
        outcome.candidates.len()
    );
    let _ = writeln!(
        s,
        "  (search: {} lattice node(s) visited, {} sublattice(s) cost-pruned: {} at the gate, {} at visit)",
        outcome.nodes_visited,
        outcome.nodes_pruned_by_cost,
        outcome.nodes_pruned_at_gate,
        outcome.nodes_pruned_at_visit
    );
    let _ = writeln!(
        s,
        "  (retained: top-{} plan(s){})",
        outcome.top_k.len(),
        if outcome.budget_expired {
            "; anytime budget expired — best is the verified incumbent"
        } else {
            ""
        }
    );
    let _ = writeln!(
        s,
        "  (must-remain bindings of the universal plan: {})",
        if outcome.must_remain.is_empty() {
            "none".to_string()
        } else {
            outcome.must_remain.join(", ")
        }
    );
    for (i, c) in outcome.candidates.iter().enumerate() {
        let _ = writeln!(
            s,
            "  #{:<2} cost {:>12.1} {} {}",
            i + 1,
            c.cost,
            if c.minimal { "[minimal]" } else { "[interim]" },
            c.query
        );
    }
    let _ = writeln!(s, "\n== chosen plan (cost {:.1}) ==", outcome.best.cost);
    let _ = writeln!(s, "{}", outcome.best.query);
    // The plan as the engine will actually run it: the slot-compiled
    // pipeline (hash and merge joins on), with its register/table/run/
    // batch layout. `execute_with_stats` reports rows per operator
    // against this shape.
    let pipeline = cb_engine::compile(
        &outcome.best.query,
        cb_engine::CompileOptions {
            hash_joins: true,
            merge_joins: true,
            ..Default::default()
        },
    );
    let _ = writeln!(s, "\n== slot-compiled pipeline (hash/merge joins on) ==");
    let _ = writeln!(
        s,
        "  registers: {}   hash tables: {}   merge runs: {}   hoisted ground filters: {}",
        pipeline.n_slots,
        pipeline.n_tables,
        pipeline.n_runs,
        pipeline.ground.len()
    );
    let _ = writeln!(
        s,
        "  batch layout: {} rows/batch over {} column(s), push-based driver",
        pipeline.batch_size, pipeline.n_slots
    );
    for g in &pipeline.ground {
        let _ = writeln!(s, "  Ground({} = {})", g.left, g.right);
    }
    for op in &pipeline.ops {
        let algo = match op {
            cb_engine::Operator::HashJoin { .. } => "  [join: hash]",
            cb_engine::Operator::MergeJoin { .. } => "  [join: merge]",
            _ => "",
        };
        let _ = writeln!(s, "  {op}{algo}");
    }
    let _ = writeln!(s, "  Project");
    let _ = writeln!(s, "\n== static analysis ==");
    let (e, w, i) = outcome.diagnostics.counts();
    if outcome.diagnostics.is_empty() {
        let _ = writeln!(s, "no diagnostics");
    } else {
        for d in &outcome.diagnostics.diagnostics {
            let _ = writeln!(s, "  {d}");
        }
        let _ = writeln!(s, "  {e} error(s), {w} warning(s), {i} info");
    }
    // The resource governor's story: every degradation rung taken, plus
    // the fault-recovery counters, so a degraded answer is never silent
    // — and a clean run says so explicitly.
    let _ = writeln!(s, "\n== resilience ==");
    if outcome.degradations.is_empty()
        && outcome.workers_died == 0
        && outcome.cache.poison_recoveries == 0
    {
        let _ = writeln!(s, "clean run: no degradations, no faults recovered");
    } else {
        for d in &outcome.degradations {
            let _ = writeln!(s, "  degraded: {d}");
        }
        if outcome.workers_died > 0 {
            let _ = writeln!(
                s,
                "  {} search worker(s) died and had their claims recovered",
                outcome.workers_died
            );
        }
        if outcome.cache.poison_recoveries > 0 {
            let _ = writeln!(
                s,
                "  {} poisoned memo shard(s) recovered (entries discarded)",
                outcome.cache.poison_recoveries
            );
        }
    }
    // An incomplete search is only worth a caveat when the analyzer could
    // not certify termination: with a terminating constraint set the
    // budgets are a formality, not a soundness risk.
    if !outcome.complete && outcome.termination == cb_chase::TerminationVerdict::Unknown {
        let _ = writeln!(
            s,
            "\n(note: search budgets were hit; the plan space may be larger)"
        );
    }
    s
}

/// EXPLAIN for a *serialized* plan: what can be said from the
/// [`PlanRepr`] alone, without a catalog or a live outcome — the view a
/// service front end or `plan-diff` shows for a plan loaded off disk.
pub fn explain_prepared(repr: &PlanRepr) -> String {
    let PlanRepr::V1(p) = repr;
    let mut s = String::new();
    let _ = writeln!(s, "== prepared plan (format v1) ==");
    let _ = writeln!(s, "input:     {}", p.input);
    let _ = writeln!(s, "universal: {}", p.universal);
    let _ = writeln!(s, "\n== plan ladder ({} entries) ==", p.top_k.len());
    for (i, e) in p.top_k.iter().enumerate() {
        let _ = writeln!(
            s,
            "  #{:<2} cost {:>12.1} {} {}",
            i + 1,
            e.cost,
            if e.minimal { "[minimal]" } else { "[interim]" },
            e.query
        );
    }
    let _ = writeln!(s, "\n== chosen plan (cost {:.1}) ==", p.best.cost);
    let _ = writeln!(s, "{}", p.best.query);
    let _ = writeln!(s, "\n== pipeline layout ==");
    let _ = writeln!(
        s,
        "  registers: {}   hash tables: {}   merge runs: {}   batch: {} rows",
        p.pipeline.n_slots, p.pipeline.n_tables, p.pipeline.n_runs, p.pipeline.batch_size
    );
    let _ = writeln!(s, "  roots: {}", p.pipeline.roots.join(", "));
    for g in &p.pipeline.ground {
        let _ = writeln!(s, "  Ground({g})");
    }
    for op in &p.pipeline.ops {
        let _ = writeln!(s, "  {op}");
    }
    let _ = writeln!(s, "  Project");
    let c = &p.counters;
    let _ = writeln!(s, "\n== producing search ==");
    let _ = writeln!(
        s,
        "  {} node(s) visited, {} pruned at the gate, {} at visit; cache {} hit(s) / {} miss(es)",
        c.nodes_visited,
        c.nodes_pruned_at_gate,
        c.nodes_pruned_at_visit,
        c.cache_hits,
        c.cache_misses
    );
    let _ = writeln!(
        s,
        "  complete: {}   budget expired: {}   workers died: {}",
        c.complete, c.budget_expired, c.workers_died
    );
    if c.degradations.is_empty() {
        let _ = writeln!(s, "  clean run: no degradations");
    } else {
        for d in &c.degradations {
            let _ = writeln!(s, "  degraded: {d}");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Optimizer;
    use cb_catalog::scenarios::projdept;

    #[test]
    fn explain_mentions_all_sections() {
        let mut cat = projdept::catalog();
        projdept::stats_for(&mut cat, 50, 5, 10);
        let out = Optimizer::new(&cat).optimize(&projdept::query()).unwrap();
        let text = explain(&out);
        for needle in [
            "== input query ==",
            "== chase (phase 1)",
            "== universal plan ==",
            "== backchase (phase 2)",
            "== chosen plan",
            "== slot-compiled pipeline",
            "registers:",
            "[minimal]",
            "lattice node(s) visited",
            "retained: top-",
            "must-remain bindings",
            "constraint-set termination:",
            "== static analysis ==",
            "== resilience ==",
            "clean run: no degradations",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        // projdept's constraint set has a special-edge cycle: the verdict
        // and its evidence are surfaced.
        assert!(text.contains("unknown (budget-bounded chase)"), "{text}");
        assert!(text.contains("CB020"), "{text}");
    }

    #[test]
    fn budget_note_requires_unknown_termination() {
        // With a terminating constraint set, an incomplete search is not
        // worth the caveat — the note keys on the termination verdict.
        let mut cat = cb_catalog::Catalog::new();
        cat.add_logical_relation("R", [("A", pcql::Type::Int)]);
        cat.add_direct_mapping("R");
        let q = pcql::parser::parse_query("select struct(A = r.A) from R r").unwrap();
        let mut out = Optimizer::new(&cat).optimize(&q).unwrap();
        assert_ne!(out.termination, cb_chase::TerminationVerdict::Unknown);
        out.complete = false;
        let text = explain(&out);
        assert!(!text.contains("search budgets were hit"), "{text}");

        // An Unknown verdict with the same incomplete search prints it.
        out.termination = cb_chase::TerminationVerdict::Unknown;
        let text = explain(&out);
        assert!(text.contains("search budgets were hit"), "{text}");
    }

    #[test]
    fn explain_prepared_covers_the_serialized_sections() {
        let mut cat = projdept::catalog();
        projdept::stats_for(&mut cat, 50, 5, 10);
        let out = Optimizer::new(&cat).optimize(&projdept::query()).unwrap();
        let repr = PlanRepr::from_outcome(&out);
        let text = explain_prepared(&repr);
        for needle in [
            "== prepared plan (format v1) ==",
            "== plan ladder",
            "== chosen plan",
            "== pipeline layout ==",
            "== producing search ==",
            "registers:",
            "node(s) visited",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn explain_reports_cost_pruning() {
        use crate::optimizer::{OptimizerConfig, SearchStrategy};
        let mut cat = projdept::catalog();
        projdept::stats_for(&mut cat, 100, 10, 20);
        let config = OptimizerConfig {
            strategy: SearchStrategy::CostGuided,
            ..Default::default()
        };
        let out = Optimizer::with_config(&cat, config)
            .optimize(&projdept::query())
            .unwrap();
        assert!(out.nodes_pruned_by_cost > 0, "no pruning on ProjDept");
        let text = explain(&out);
        assert!(
            text.contains(&format!(
                "{} sublattice(s) cost-pruned",
                out.nodes_pruned_by_cost
            )),
            "{text}"
        );
    }
}
