//! Embedded path-conjunctive dependencies (EPCDs).
//!
//! ```text
//! forall (x1 in P1) … (xn in Pn) where B1(x)
//! -> exists (y1 in P1') … (yk in Pk') where B2(x, y)
//! ```
//!
//! `Pi` may refer to `x1 … x(i-1)`; `Pj'` may refer to all the `x`s and to
//! `y1 … y(j-1)` — an EPCD is *not* a first-order formula (paper §5).
//!
//! Two special classes matter operationally:
//!
//! * **EGDs** — no existentials, conclusion is equalities only (keys,
//!   functional dependencies, the conditions of backchase steps);
//! * **full** EPCDs — every existential variable is *determined*: equated
//!   by the conclusion to a path over already-known variables. Chasing
//!   with full dependencies terminates with a polynomially-sized result
//!   (Theorem 1), which is why view constraints `c_V` keep the universal
//!   plan small.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::path::Path;
use crate::query::{BindKind, Binding, Equality, ScopeError};

/// An embedded path-conjunctive dependency.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dependency {
    /// Name used in traces and EXPLAIN output (e.g. `"PI1"`, `"c_JI"`).
    pub name: String,
    /// Universally quantified bindings `x_i in P_i`.
    pub forall: Vec<Binding>,
    /// Premise path conjunction `B1`.
    pub premise: Vec<Equality>,
    /// Existentially quantified bindings `y_j in P_j'`.
    pub exists: Vec<Binding>,
    /// Conclusion path conjunction `B2`.
    pub conclusion: Vec<Equality>,
}

impl Dependency {
    pub fn new(
        name: impl Into<String>,
        forall: Vec<Binding>,
        premise: Vec<Equality>,
        exists: Vec<Binding>,
        conclusion: Vec<Equality>,
    ) -> Dependency {
        Dependency {
            name: name.into(),
            forall,
            premise,
            exists,
            conclusion,
        }
    }

    /// An equality-generating dependency: no existential bindings.
    pub fn is_egd(&self) -> bool {
        self.exists.is_empty()
    }

    /// The existential variables that are *determined* by the conclusion:
    /// `y` such that some conclusion equality reads `y = P` (or `P = y`)
    /// with `P` built only from universal variables and previously
    /// determined existentials. Iterates to a fixpoint.
    pub fn determined_existentials(&self) -> BTreeSet<String> {
        let universal: BTreeSet<String> = self.forall.iter().map(|b| b.var.clone()).collect();
        let existential: BTreeSet<String> = self.exists.iter().map(|b| b.var.clone()).collect();
        let mut known = universal;
        let mut determined = BTreeSet::new();
        loop {
            let mut changed = false;
            for Equality(l, r) in &self.conclusion {
                for (side, other) in [(l, r), (r, l)] {
                    if let Path::Var(v) = side {
                        if existential.contains(v)
                            && !determined.contains(v)
                            && other.free_vars().iter().all(|u| known.contains(u))
                        {
                            determined.insert(v.clone());
                            known.insert(v.clone());
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return determined;
            }
        }
    }

    /// A *full* dependency: every existential variable is determined, so
    /// chasing never invents genuinely new values. The view constraints
    /// `c_V` of paper §2 are full; referential-integrity constraints are
    /// not.
    pub fn is_full(&self) -> bool {
        let determined = self.determined_existentials();
        self.exists.iter().all(|b| determined.contains(&b.var))
    }

    /// Scoping rules for EPCDs (dependent bindings on both sides).
    pub fn check_scopes(&self) -> Result<(), ScopeError> {
        let mut bound: BTreeSet<String> = BTreeSet::new();
        for b in self.forall.iter().chain(&self.exists) {
            if b.kind != BindKind::Iter {
                // Only iterated bindings make sense in constraints.
                return Err(ScopeError::UnboundInBinding {
                    binding: b.var.clone(),
                    var: "<let-binding>".to_string(),
                });
            }
            for v in b.src.free_vars() {
                if !bound.contains(&v) {
                    return Err(ScopeError::UnboundInBinding {
                        binding: b.var.clone(),
                        var: v,
                    });
                }
            }
            if !bound.insert(b.var.clone()) {
                return Err(ScopeError::DuplicateVar(b.var.clone()));
            }
        }
        let universal: BTreeSet<String> = self.forall.iter().map(|b| b.var.clone()).collect();
        for eq in &self.premise {
            for v in eq.free_vars() {
                if !universal.contains(&v) {
                    return Err(ScopeError::UnboundInWhere(v));
                }
            }
        }
        for eq in &self.conclusion {
            for v in eq.free_vars() {
                if !bound.contains(&v) {
                    return Err(ScopeError::UnboundInWhere(v));
                }
            }
        }
        Ok(())
    }

    /// Schema roots mentioned anywhere in the dependency.
    pub fn roots(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for b in self.forall.iter().chain(&self.exists) {
            out.extend(b.src.roots());
        }
        for eq in self.premise.iter().chain(&self.conclusion) {
            out.extend(eq.0.roots());
            out.extend(eq.1.roots());
        }
        out
    }

    /// Renames all bound variables with the given prefix, producing a
    /// dependency whose variables cannot clash with a query's. Used before
    /// chasing.
    pub fn freshen(&self, suffix: &str) -> Dependency {
        let map: BTreeMap<String, String> = self
            .forall
            .iter()
            .chain(&self.exists)
            .map(|b| (b.var.clone(), format!("{}_{}", b.var, suffix)))
            .collect();
        let ren_bindings = |bs: &Vec<Binding>| {
            bs.iter()
                .map(|b| Binding {
                    var: map[&b.var].clone(),
                    src: b.src.rename(&map),
                    kind: b.kind,
                })
                .collect()
        };
        Dependency {
            name: self.name.clone(),
            forall: ren_bindings(&self.forall),
            premise: self.premise.iter().map(|e| e.rename(&map)).collect(),
            exists: ren_bindings(&self.exists),
            conclusion: self.conclusion.iter().map(|e| e.rename(&map)).collect(),
        }
    }

    /// Total AST size.
    pub fn size(&self) -> usize {
        let mut n = 0;
        for b in self.forall.iter().chain(&self.exists) {
            n += 1 + b.src.size();
        }
        for eq in self.premise.iter().chain(&self.conclusion) {
            n += eq.0.size() + eq.1.size();
        }
        n
    }
}

impl fmt::Display for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] forall", self.name)?;
        for b in &self.forall {
            write!(f, " ({} in {})", b.var, b.src)?;
        }
        if !self.premise.is_empty() {
            write!(f, " where ")?;
            for (i, Equality(l, r)) in self.premise.iter().enumerate() {
                if i > 0 {
                    write!(f, " and ")?;
                }
                write!(f, "{l} = {r}")?;
            }
        }
        write!(f, " ->")?;
        if !self.exists.is_empty() {
            write!(f, " exists")?;
            for b in &self.exists {
                write!(f, " ({} in {})", b.var, b.src)?;
            }
            if !self.conclusion.is_empty() {
                write!(f, " where ")?;
            }
        } else {
            write!(f, " ")?;
        }
        for (i, Equality(l, r)) in self.conclusion.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{l} = {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RIC1 from the paper: forall (d in depts) (s in d.DProjs)
    /// -> exists (p in Proj) where s = p.PName
    fn ric1() -> Dependency {
        Dependency::new(
            "RIC1",
            vec![
                Binding::iter("d", Path::root("depts")),
                Binding::iter("s", Path::var("d").field("DProjs")),
            ],
            vec![],
            vec![Binding::iter("p", Path::root("Proj"))],
            vec![Equality(Path::var("s"), Path::var("p").field("PName"))],
        )
    }

    /// KEY2 from the paper: forall (p in Proj) (p' in Proj)
    /// where p.PName = p'.PName -> p = p'
    fn key2() -> Dependency {
        Dependency::new(
            "KEY2",
            vec![
                Binding::iter("p", Path::root("Proj")),
                Binding::iter("q", Path::root("Proj")),
            ],
            vec![Equality(
                Path::var("p").field("PName"),
                Path::var("q").field("PName"),
            )],
            vec![],
            vec![Equality(Path::var("p"), Path::var("q"))],
        )
    }

    /// c_JI from the paper (a full tgd): the view tuple exists and is
    /// determined componentwise.
    fn c_ji_like() -> Dependency {
        Dependency::new(
            "c_JI",
            vec![
                Binding::iter("d", Path::root("depts")),
                Binding::iter("s", Path::var("d").field("DProjs")),
                Binding::iter("p", Path::root("Proj")),
            ],
            vec![Equality(Path::var("s"), Path::var("p").field("PName"))],
            vec![Binding::iter("j", Path::root("JI"))],
            vec![
                Equality(Path::var("j").field("DOID"), Path::var("d")),
                Equality(Path::var("j").field("PN"), Path::var("p").field("PName")),
            ],
        )
    }

    #[test]
    fn egd_classification() {
        assert!(key2().is_egd());
        assert!(!ric1().is_egd());
        assert!(key2().is_full());
    }

    #[test]
    fn ric_is_not_full() {
        // p is only constrained through p.PName, not equated to a known
        // path, so RIC1 genuinely invents a Proj element.
        assert!(!ric1().is_full());
        assert!(ric1().determined_existentials().is_empty());
    }

    #[test]
    fn view_constraint_is_not_full_but_determined_by_components() {
        // j itself is not equated to a known path (only its fields are),
        // so c_JI is not "full" in the strict variable-determination sense…
        let d = c_ji_like();
        assert!(!d.is_full());
        // …but a view constraint over a view with a key-like output is:
        let det = Dependency::new(
            "c_V",
            vec![Binding::iter("r", Path::root("R"))],
            vec![],
            vec![Binding::iter("v", Path::root("V"))],
            vec![Equality(Path::var("v"), Path::var("r").field("A"))],
        );
        assert!(det.is_full());
        assert_eq!(det.determined_existentials().len(), 1);
    }

    #[test]
    fn chained_determination() {
        // y determined by x; z determined by y.
        let d = Dependency::new(
            "chain",
            vec![Binding::iter("x", Path::root("R"))],
            vec![],
            vec![
                Binding::iter("y", Path::root("S")),
                Binding::iter("z", Path::root("T")),
            ],
            vec![
                Equality(Path::var("z"), Path::var("y").field("B")),
                Equality(Path::var("y"), Path::var("x").field("A")),
            ],
        );
        assert!(d.is_full());
    }

    #[test]
    fn scope_checks() {
        assert!(ric1().check_scopes().is_ok());
        assert!(key2().check_scopes().is_ok());
        assert!(c_ji_like().check_scopes().is_ok());

        let bad = Dependency::new(
            "bad",
            vec![Binding::iter("d", Path::var("z").field("DProjs"))],
            vec![],
            vec![],
            vec![Equality(Path::var("d"), Path::var("d"))],
        );
        assert!(bad.check_scopes().is_err());

        // Premise may not mention existential variables.
        let bad2 = Dependency::new(
            "bad2",
            vec![Binding::iter("x", Path::root("R"))],
            vec![Equality(Path::var("y"), Path::var("x"))],
            vec![Binding::iter("y", Path::root("S"))],
            vec![],
        );
        assert!(bad2.check_scopes().is_err());
    }

    #[test]
    fn freshen_avoids_capture() {
        let d = ric1().freshen("7");
        assert_eq!(d.forall[0].var, "d_7");
        assert_eq!(d.forall[1].src.to_string(), "d_7.DProjs");
        assert_eq!(d.exists[0].var, "p_7");
        assert_eq!(
            d.conclusion[0].to_string_pair(),
            ("s_7".to_string(), "p_7.PName".to_string())
        );
    }

    impl Equality {
        fn to_string_pair(&self) -> (String, String) {
            (self.0.to_string(), self.1.to_string())
        }
    }

    #[test]
    fn display_shape() {
        let s = ric1().to_string();
        assert_eq!(
            s,
            "[RIC1] forall (d in depts) (s in d.DProjs) -> exists (p in Proj) where s = p.PName"
        );
        let k = key2().to_string();
        assert!(k.contains("where p.PName = q.PName -> p = q"));
    }
}
