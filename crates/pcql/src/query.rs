//! Path-conjunctive queries and physical plans.
//!
//! A PC query is
//!
//! ```text
//! select struct(A1 = P1', …, An = Pn') from P1 x1, …, Pm xm where B
//! ```
//!
//! Binding paths are *dependent*: `Pi` may refer to `x1 … x(i-1)` (paper
//! §5). Physical plans extend PC queries with `let`-bindings (singleton
//! bindings such as `I_R[v.A] r'` in §4's navigation-join plan) and
//! non-failing lookups.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::path::Path;

/// How a `from`-clause binding ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BindKind {
    /// `from P x` — `x` iterates over the set `P`. The only kind allowed in
    /// PC queries.
    Iter,
    /// `from P x` where `P` is scalar — `x` is bound to the single value of
    /// `P` (plan-level sugar for navigation joins, e.g. `I_R[v.A] r'`).
    Let,
}

/// One `from`-clause binding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Binding {
    pub var: String,
    pub src: Path,
    pub kind: BindKind,
}

impl Binding {
    pub fn iter(var: impl Into<String>, src: Path) -> Binding {
        Binding {
            var: var.into(),
            src,
            kind: BindKind::Iter,
        }
    }

    pub fn let_(var: impl Into<String>, src: Path) -> Binding {
        Binding {
            var: var.into(),
            src,
            kind: BindKind::Let,
        }
    }
}

/// An equality atom `P = P'` of a path conjunction.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Equality(pub Path, pub Path);

impl Equality {
    /// Orientation-insensitive canonical form (smaller side first).
    pub fn normalized(&self) -> Equality {
        if self.0 <= self.1 {
            self.clone()
        } else {
            Equality(self.1.clone(), self.0.clone())
        }
    }

    pub fn free_vars(&self) -> BTreeSet<String> {
        let mut v = self.0.free_vars();
        v.extend(self.1.free_vars());
        v
    }

    pub fn rename(&self, map: &BTreeMap<String, String>) -> Equality {
        Equality(self.0.rename(map), self.1.rename(map))
    }

    pub fn subst(&self, map: &BTreeMap<String, Path>) -> Equality {
        Equality(self.0.subst(map), self.1.subst(map))
    }
}

/// The `select` clause.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Output {
    /// `select struct(A1 = P1, …)` — fields are kept sorted by name.
    Struct(BTreeMap<String, Path>),
    /// `select P` — a single path.
    Path(Path),
}

impl Output {
    pub fn record<I, S>(fields: I) -> Output
    where
        I: IntoIterator<Item = (S, Path)>,
        S: Into<String>,
    {
        Output::Struct(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// The paths of the output, with their field labels (`None` for a bare
    /// path output).
    pub fn paths(&self) -> Vec<(Option<&str>, &Path)> {
        match self {
            Output::Struct(fields) => fields.iter().map(|(k, v)| (Some(k.as_str()), v)).collect(),
            Output::Path(p) => vec![(None, p)],
        }
    }

    pub fn map_paths(&self, f: &mut impl FnMut(&Path) -> Path) -> Output {
        match self {
            Output::Struct(fields) => {
                Output::Struct(fields.iter().map(|(k, v)| (k.clone(), f(v))).collect())
            }
            Output::Path(p) => Output::Path(f(p)),
        }
    }

    pub fn free_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for (_, p) in self.paths() {
            out.extend(p.free_vars());
        }
        out
    }
}

/// A PC query (or, with `Let` bindings / non-failing lookups, a physical
/// plan).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Query {
    pub output: Output,
    pub from: Vec<Binding>,
    pub where_: Vec<Equality>,
}

/// Structural well-formedness violations (scoping; not typing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScopeError {
    /// A binding path refers to a variable not bound earlier in the
    /// `from` clause.
    UnboundInBinding { binding: String, var: String },
    /// Two bindings introduce the same variable.
    DuplicateVar(String),
    /// The `where` clause refers to an unbound variable.
    UnboundInWhere(String),
    /// The `select` clause refers to an unbound variable.
    UnboundInSelect(String),
}

impl fmt::Display for ScopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScopeError::UnboundInBinding { binding, var } => {
                write!(f, "binding `{binding}` refers to unbound variable `{var}`")
            }
            ScopeError::DuplicateVar(v) => write!(f, "duplicate from-variable `{v}`"),
            ScopeError::UnboundInWhere(v) => {
                write!(f, "where clause refers to unbound variable `{v}`")
            }
            ScopeError::UnboundInSelect(v) => {
                write!(f, "select clause refers to unbound variable `{v}`")
            }
        }
    }
}

impl std::error::Error for ScopeError {}

impl Query {
    pub fn new(output: Output, from: Vec<Binding>, where_: Vec<Equality>) -> Query {
        Query {
            output,
            from,
            where_,
        }
    }

    /// The variables bound by the `from` clause, in binding order.
    pub fn bound_vars(&self) -> Vec<&str> {
        self.from.iter().map(|b| b.var.as_str()).collect()
    }

    /// Checks dependent-binding scoping: each binding path may only use
    /// variables bound strictly earlier; `where` and `select` may use any
    /// bound variable.
    pub fn check_scopes(&self) -> Result<(), ScopeError> {
        let mut bound: BTreeSet<String> = BTreeSet::new();
        for b in &self.from {
            for v in b.src.free_vars() {
                if !bound.contains(&v) {
                    return Err(ScopeError::UnboundInBinding {
                        binding: b.var.clone(),
                        var: v,
                    });
                }
            }
            if !bound.insert(b.var.clone()) {
                return Err(ScopeError::DuplicateVar(b.var.clone()));
            }
        }
        for eq in &self.where_ {
            for v in eq.free_vars() {
                if !bound.contains(&v) {
                    return Err(ScopeError::UnboundInWhere(v));
                }
            }
        }
        for v in self.output.free_vars() {
            if !bound.contains(&v) {
                return Err(ScopeError::UnboundInSelect(v));
            }
        }
        Ok(())
    }

    /// All schema roots mentioned anywhere in the query.
    pub fn roots(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for b in &self.from {
            out.extend(b.src.roots());
        }
        for eq in &self.where_ {
            out.extend(eq.0.roots());
            out.extend(eq.1.roots());
        }
        for (_, p) in self.output.paths() {
            out.extend(p.roots());
        }
        out
    }

    /// Renames all bound variables according to `map` (simultaneously, in
    /// binding paths, conditions and output).
    pub fn rename(&self, map: &BTreeMap<String, String>) -> Query {
        Query {
            output: self.output.map_paths(&mut |p| p.rename(map)),
            from: self
                .from
                .iter()
                .map(|b| Binding {
                    var: map.get(&b.var).cloned().unwrap_or_else(|| b.var.clone()),
                    src: b.src.rename(map),
                    kind: b.kind,
                })
                .collect(),
            where_: self.where_.iter().map(|e| e.rename(map)).collect(),
        }
    }

    /// Alpha-normal form: bound variables renamed to `v0, v1, …` in binding
    /// order and the where clause sorted/deduplicated. Two queries that
    /// differ only in variable names and condition order have identical
    /// alpha-normal forms, which is how plan sets are deduplicated.
    pub fn alpha_normalized(&self) -> Query {
        let map: BTreeMap<String, String> = self
            .from
            .iter()
            .enumerate()
            .map(|(i, b)| (b.var.clone(), format!("v{i}")))
            .collect();
        let mut q = self.rename(&map);
        let mut eqs: Vec<Equality> = q.where_.iter().map(Equality::normalized).collect();
        eqs.sort();
        eqs.dedup();
        q.where_ = eqs;
        q
    }

    /// The variables of bindings whose source path (transitively) depends
    /// on `var` — the "dependent bindings" of the backchase footnote. Does
    /// not include `var` itself.
    pub fn dependents_of(&self, var: &str) -> BTreeSet<String> {
        let mut dep: BTreeSet<String> = BTreeSet::new();
        dep.insert(var.to_string());
        // Bindings are ordered, so one forward pass suffices.
        for b in &self.from {
            if b.src.free_vars().iter().any(|v| dep.contains(v)) {
                dep.insert(b.var.clone());
            }
        }
        dep.remove(var);
        dep
    }

    /// Total AST size (for the polynomial chase bound and cost tie-breaks).
    pub fn size(&self) -> usize {
        let mut n = 0;
        for b in &self.from {
            n += 1 + b.src.size();
        }
        for eq in &self.where_ {
            n += eq.0.size() + eq.1.size();
        }
        for (_, p) in self.output.paths() {
            n += p.size();
        }
        n
    }

    /// True if this query is syntactically a pure PC query (no plan-level
    /// constructs). Typing/guardedness are checked separately in
    /// [`crate::typecheck`].
    pub fn is_plain_pc(&self) -> bool {
        self.from
            .iter()
            .all(|b| b.kind == BindKind::Iter && !b.src.has_nonfailing_lookup())
            && self
                .where_
                .iter()
                .all(|e| !e.0.has_nonfailing_lookup() && !e.1.has_nonfailing_lookup())
            && self
                .output
                .paths()
                .iter()
                .all(|(_, p)| !p.has_nonfailing_lookup())
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select ")?;
        match &self.output {
            Output::Struct(fields) => {
                write!(f, "struct(")?;
                for (i, (name, p)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name} = {p}")?;
                }
                write!(f, ")")?;
            }
            Output::Path(p) => write!(f, "{p}")?,
        }
        if !self.from.is_empty() {
            write!(f, " from ")?;
            for (i, b) in self.from.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match b.kind {
                    BindKind::Iter => write!(f, "{} {}", b.src, b.var)?,
                    BindKind::Let => write!(f, "let {} := {}", b.var, b.src)?,
                }
            }
        }
        if !self.where_.is_empty() {
            write!(f, " where ")?;
            for (i, Equality(l, r)) in self.where_.iter().enumerate() {
                if i > 0 {
                    write!(f, " and ")?;
                }
                write!(f, "{l} = {r}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running query Q over the ProjDept schema.
    fn paper_q() -> Query {
        Query::new(
            Output::record([
                ("PN", Path::var("s")),
                ("PB", Path::var("p").field("Budg")),
                ("DN", Path::var("d").field("DName")),
            ]),
            vec![
                Binding::iter("d", Path::root("depts")),
                Binding::iter("s", Path::var("d").field("DProjs")),
                Binding::iter("p", Path::root("Proj")),
            ],
            vec![
                Equality(Path::var("s"), Path::var("p").field("PName")),
                Equality(Path::var("p").field("CustName"), Path::str("CitiBank")),
            ],
        )
    }

    #[test]
    fn display_matches_paper_shape() {
        let q = paper_q();
        let s = q.to_string();
        assert_eq!(
            s,
            "select struct(DN = d.DName, PB = p.Budg, PN = s) \
             from depts d, d.DProjs s, Proj p \
             where s = p.PName and p.CustName = \"CitiBank\""
        );
    }

    #[test]
    fn scope_checking() {
        let q = paper_q();
        assert!(q.check_scopes().is_ok());

        // `s` bound before `d` would be out of scope.
        let bad = Query::new(
            Output::Path(Path::var("s")),
            vec![
                Binding::iter("s", Path::var("d").field("DProjs")),
                Binding::iter("d", Path::root("depts")),
            ],
            vec![],
        );
        assert!(matches!(
            bad.check_scopes(),
            Err(ScopeError::UnboundInBinding { .. })
        ));

        let dup = Query::new(
            Output::Path(Path::var("x")),
            vec![
                Binding::iter("x", Path::root("R")),
                Binding::iter("x", Path::root("S")),
            ],
            vec![],
        );
        assert!(matches!(
            dup.check_scopes(),
            Err(ScopeError::DuplicateVar(_))
        ));
    }

    #[test]
    fn roots_and_dependents() {
        let q = paper_q();
        let roots: Vec<String> = q.roots().into_iter().collect();
        assert_eq!(roots, vec!["Proj", "depts"]);
        // s ranges over d.DProjs, so s depends on d.
        assert_eq!(q.dependents_of("d"), BTreeSet::from(["s".to_string()]));
        assert!(q.dependents_of("p").is_empty());
    }

    #[test]
    fn alpha_normalization_identifies_renamings() {
        let q = paper_q();
        let map: BTreeMap<String, String> = [
            ("d".to_string(), "dept".to_string()),
            ("s".to_string(), "sn".to_string()),
            ("p".to_string(), "proj".to_string()),
        ]
        .into_iter()
        .collect();
        let q2 = q.rename(&map);
        assert_ne!(q, q2);
        assert_eq!(q.alpha_normalized(), q2.alpha_normalized());
    }

    #[test]
    fn plain_pc_detection() {
        assert!(paper_q().is_plain_pc());
        let plan = Query::new(
            Output::Path(Path::var("s")),
            vec![Binding::iter(
                "s",
                Path::root("IS").get_or_empty(Path::str("x")),
            )],
            vec![],
        );
        assert!(!plan.is_plain_pc());
        let with_let = Query::new(
            Output::Path(Path::var("r")),
            vec![Binding::let_("r", Path::root("I").get(Path::str("k")))],
            vec![],
        );
        assert!(!with_let.is_plain_pc());
    }

    #[test]
    fn size_counts_nodes() {
        let q = paper_q();
        assert!(q.size() > 10);
        assert_eq!(
            Query::new(
                Output::Path(Path::var("x")),
                vec![Binding::iter("x", Path::root("R"))],
                vec![]
            )
            .size(),
            3
        );
    }
}
