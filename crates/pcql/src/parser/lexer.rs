//! Lexer for the concrete OQL-ish syntax.

use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    // keywords
    Select,
    Struct,
    From,
    Where,
    And,
    Dom,
    Forall,
    Exists,
    In,
    True,
    False,
    Let,
    Class,
    // punctuation
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Lt,
    Gt,
    Dot,
    Comma,
    Eq,
    Colon,
    Semi,
    Arrow,
    Assign,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(i) => write!(f, "integer `{i}`"),
            Tok::Str(s) => write!(f, "string {s:?}"),
            Tok::Select => write!(f, "`select`"),
            Tok::Struct => write!(f, "`struct`"),
            Tok::From => write!(f, "`from`"),
            Tok::Where => write!(f, "`where`"),
            Tok::And => write!(f, "`and`"),
            Tok::Dom => write!(f, "`dom`"),
            Tok::Forall => write!(f, "`forall`"),
            Tok::Exists => write!(f, "`exists`"),
            Tok::In => write!(f, "`in`"),
            Tok::True => write!(f, "`true`"),
            Tok::False => write!(f, "`false`"),
            Tok::Let => write!(f, "`let`"),
            Tok::Class => write!(f, "`class`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::Assign => write!(f, "`:=`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token together with its byte offset in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    pub tok: Tok,
    pub offset: usize,
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

fn keyword(word: &str) -> Option<Tok> {
    Some(match word {
        "select" => Tok::Select,
        "struct" => Tok::Struct,
        "from" => Tok::From,
        "where" => Tok::Where,
        "and" => Tok::And,
        "dom" => Tok::Dom,
        "forall" => Tok::Forall,
        "exists" => Tok::Exists,
        "in" => Tok::In,
        "true" => Tok::True,
        "false" => Tok::False,
        "let" => Tok::Let,
        "class" => Tok::Class,
        _ => return None,
    })
}

/// Tokenizes `src`. Comments run from `--` to end of line.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        let tok = match c {
            '(' => {
                i += 1;
                Tok::LParen
            }
            ')' => {
                i += 1;
                Tok::RParen
            }
            '[' => {
                i += 1;
                Tok::LBracket
            }
            ']' => {
                i += 1;
                Tok::RBracket
            }
            '{' => {
                i += 1;
                Tok::LBrace
            }
            '}' => {
                i += 1;
                Tok::RBrace
            }
            '<' => {
                i += 1;
                Tok::Lt
            }
            '>' => {
                i += 1;
                Tok::Gt
            }
            '.' => {
                i += 1;
                Tok::Dot
            }
            ',' => {
                i += 1;
                Tok::Comma
            }
            '=' => {
                i += 1;
                Tok::Eq
            }
            ';' => {
                i += 1;
                Tok::Semi
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Tok::Assign
                } else {
                    i += 1;
                    Tok::Colon
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    i += 2;
                    Tok::Arrow
                } else if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    i += 1;
                    let (n, j) = lex_int(bytes, i, start)?;
                    i = j;
                    Tok::Int(-n)
                } else {
                    return Err(LexError {
                        offset: start,
                        message: "stray `-` (expected `->` or a number)".into(),
                    });
                }
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                offset: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            match bytes.get(i + 1) {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'n') => s.push('\n'),
                                Some(other) => {
                                    return Err(LexError {
                                        offset: i,
                                        message: format!("unknown escape `\\{}`", *other as char),
                                    })
                                }
                                None => {
                                    return Err(LexError {
                                        offset: i,
                                        message: "unterminated escape".into(),
                                    })
                                }
                            }
                            i += 2;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                Tok::Str(s)
            }
            c if c.is_ascii_digit() => {
                let (n, j) = lex_int(bytes, i, start)?;
                i = j;
                Tok::Int(n)
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &src[i..j];
                i = j;
                keyword(word).unwrap_or_else(|| Tok::Ident(word.to_string()))
            }
            other => {
                return Err(LexError {
                    offset: start,
                    message: format!("unexpected character `{other}`"),
                })
            }
        };
        toks.push(Spanned { tok, offset: start });
    }
    toks.push(Spanned {
        tok: Tok::Eof,
        offset: bytes.len(),
    });
    Ok(toks)
}

fn lex_int(bytes: &[u8], mut i: usize, start: usize) -> Result<(i64, usize), LexError> {
    let from = i;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let text = std::str::from_utf8(&bytes[from..i]).expect("digits are ascii");
    match text.parse::<i64>() {
        Ok(n) => Ok((n, i)),
        Err(_) => Err(LexError {
            offset: start,
            message: format!("integer out of range: {text}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("select struct Select"),
            vec![
                Tok::Select,
                Tok::Struct,
                Tok::Ident("Select".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn punctuation() {
        assert_eq!(
            toks("( ) [ ] { } . , = : ; -> := < >"),
            vec![
                Tok::LParen,
                Tok::RParen,
                Tok::LBracket,
                Tok::RBracket,
                Tok::LBrace,
                Tok::RBrace,
                Tok::Dot,
                Tok::Comma,
                Tok::Eq,
                Tok::Colon,
                Tok::Semi,
                Tok::Arrow,
                Tok::Assign,
                Tok::Lt,
                Tok::Gt,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn literals() {
        assert_eq!(
            toks(r#"42 -7 "CitiBank" true false"#),
            vec![
                Tok::Int(42),
                Tok::Int(-7),
                Tok::Str("CitiBank".into()),
                Tok::True,
                Tok::False,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            toks(r#""a\"b\\c""#),
            vec![Tok::Str("a\"b\\c".into()), Tok::Eof]
        );
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("select -- the output\nx"),
            vec![Tok::Select, Tok::Ident("x".into()), Tok::Eof]
        );
    }

    #[test]
    fn errors_have_offsets() {
        let e = lex("a ? b").unwrap_err();
        assert_eq!(e.offset, 2);
        assert!(lex("x - y").is_err());
    }
}
