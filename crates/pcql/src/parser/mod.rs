//! Recursive-descent parser for the concrete syntax.
//!
//! ```text
//! query  := "select" output "from" fromitem ("," fromitem)* ("where" conj)?
//! output := "struct" "(" (A "=" path),* ")" | path
//! fromitem := path IDENT | "let" IDENT ":=" path
//! conj   := path "=" path ("and" path "=" path)*
//! path   := primary ( "." IDENT | "[" path "]" | "{" path "}" )*
//! primary:= "dom" "(" path ")" | "(" path ")" | IDENT | literal
//!
//! dep    := "forall" binder+ ("where" conj)? "->"
//!           ( "exists" binder+ ("where" conj)? | conj )
//! binder := "(" IDENT "in" path ")"
//!
//! schema := ( "class" IDENT "{" (IDENT ":" type),* "}"
//!           | "let" IDENT ":" type ";" )*
//! type   := "Set" "<" type ">" | "Dict" "<" type "," type ">"
//!         | "Oid" "<" IDENT ">" | "Struct" "{" (IDENT ":" type),* "}"
//!         | "Int" | "String" | "Bool"
//! ```
//!
//! Bare identifiers denote bound variables when in scope and schema roots
//! otherwise; the parser performs that resolution with the dependent-
//! binding scoping rules (a binding path sees only earlier variables).

mod lexer;

pub use lexer::{lex, LexError, Spanned, Tok};

use std::collections::BTreeSet;
use std::fmt;

use crate::constraint::Dependency;
use crate::path::{Constant, Path};
use crate::query::{Binding, Equality, Output, Query};
use crate::schema::{ClassDecl, Schema};
use crate::types::Type;

/// A parse error with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            offset: e.offset,
            message: e.message,
        }
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            toks: lex(src)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].offset
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Tok) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {want}, found {}", self.peek())))
        }
    }

    fn eat_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            offset: self.offset(),
            message,
        }
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    // ---- paths (unresolved: all bare idents parse as variables) ----

    fn path(&mut self) -> Result<Path, ParseError> {
        let mut p = self.primary()?;
        loop {
            match self.peek() {
                Tok::Dot => {
                    self.bump();
                    let field = self.eat_ident()?;
                    p = p.field(field);
                }
                Tok::LBracket => {
                    self.bump();
                    let k = self.path()?;
                    self.eat(&Tok::RBracket)?;
                    p = p.get(k);
                }
                Tok::LBrace => {
                    self.bump();
                    let k = self.path()?;
                    self.eat(&Tok::RBrace)?;
                    p = p.get_or_empty(k);
                }
                _ => return Ok(p),
            }
        }
    }

    fn primary(&mut self) -> Result<Path, ParseError> {
        match self.peek().clone() {
            Tok::Dom => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let p = self.path()?;
                self.eat(&Tok::RParen)?;
                Ok(p.dom())
            }
            Tok::LParen => {
                self.bump();
                let p = self.path()?;
                self.eat(&Tok::RParen)?;
                Ok(p)
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(Path::Var(name))
            }
            Tok::Int(n) => {
                self.bump();
                Ok(Path::Const(Constant::Int(n)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Path::Const(Constant::Str(s)))
            }
            Tok::True => {
                self.bump();
                Ok(Path::Const(Constant::Bool(true)))
            }
            Tok::False => {
                self.bump();
                Ok(Path::Const(Constant::Bool(false)))
            }
            other => Err(self.err(format!("expected a path, found {other}"))),
        }
    }

    fn conj(&mut self) -> Result<Vec<Equality>, ParseError> {
        let mut out = Vec::new();
        loop {
            let l = self.path()?;
            self.eat(&Tok::Eq)?;
            let r = self.path()?;
            out.push(Equality(l, r));
            if matches!(self.peek(), Tok::And) {
                self.bump();
            } else {
                return Ok(out);
            }
        }
    }

    // ---- queries ----

    fn query(&mut self) -> Result<Query, ParseError> {
        self.eat(&Tok::Select)?;
        let output = if matches!(self.peek(), Tok::Struct) {
            self.bump();
            self.eat(&Tok::LParen)?;
            let mut fields = Vec::new();
            if !matches!(self.peek(), Tok::RParen) {
                loop {
                    let name = self.eat_ident()?;
                    self.eat(&Tok::Eq)?;
                    fields.push((name, self.path()?));
                    if matches!(self.peek(), Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.eat(&Tok::RParen)?;
            Output::record(fields)
        } else {
            Output::Path(self.path()?)
        };

        let mut from = Vec::new();
        if matches!(self.peek(), Tok::From) {
            self.bump();
            loop {
                if matches!(self.peek(), Tok::Let) {
                    self.bump();
                    let var = self.eat_ident()?;
                    self.eat(&Tok::Assign)?;
                    let src = self.path()?;
                    from.push(Binding::let_(var, src));
                } else {
                    let src = self.path()?;
                    let var = self.eat_ident()?;
                    from.push(Binding::iter(var, src));
                }
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }

        let where_ = if matches!(self.peek(), Tok::Where) {
            self.bump();
            self.conj()?
        } else {
            Vec::new()
        };

        Ok(resolve_query(Query::new(output, from, where_)))
    }

    // ---- dependencies ----

    fn binders(&mut self) -> Result<Vec<Binding>, ParseError> {
        let mut out = Vec::new();
        while matches!(self.peek(), Tok::LParen) {
            self.bump();
            let var = self.eat_ident()?;
            self.eat(&Tok::In)?;
            let src = self.path()?;
            self.eat(&Tok::RParen)?;
            out.push(Binding::iter(var, src));
        }
        if out.is_empty() {
            return Err(self.err("expected at least one `(x in P)` binder".into()));
        }
        Ok(out)
    }

    fn dependency(&mut self, name: &str) -> Result<Dependency, ParseError> {
        self.eat(&Tok::Forall)?;
        let forall = self.binders()?;
        let premise = if matches!(self.peek(), Tok::Where) {
            self.bump();
            self.conj()?
        } else {
            Vec::new()
        };
        self.eat(&Tok::Arrow)?;
        let (exists, conclusion) = if matches!(self.peek(), Tok::Exists) {
            self.bump();
            let exists = self.binders()?;
            let conclusion = if matches!(self.peek(), Tok::Where) {
                self.bump();
                self.conj()?
            } else {
                Vec::new()
            };
            (exists, conclusion)
        } else {
            (Vec::new(), self.conj()?)
        };
        Ok(resolve_dependency(Dependency::new(
            name, forall, premise, exists, conclusion,
        )))
    }

    // ---- schemas ----

    fn ty(&mut self) -> Result<Type, ParseError> {
        let name = self.eat_ident()?;
        match name.as_str() {
            "Int" => Ok(Type::Int),
            "String" => Ok(Type::Str),
            "Bool" => Ok(Type::Bool),
            "Set" => {
                self.eat(&Tok::Lt)?;
                let t = self.ty()?;
                self.eat(&Tok::Gt)?;
                Ok(Type::set(t))
            }
            "Dict" => {
                self.eat(&Tok::Lt)?;
                let k = self.ty()?;
                self.eat(&Tok::Comma)?;
                let v = self.ty()?;
                self.eat(&Tok::Gt)?;
                Ok(Type::dict(k, v))
            }
            "Oid" => {
                self.eat(&Tok::Lt)?;
                let class = self.eat_ident()?;
                self.eat(&Tok::Gt)?;
                Ok(Type::Oid(class))
            }
            "Struct" => {
                self.eat(&Tok::LBrace)?;
                let fields = self.field_list()?;
                self.eat(&Tok::RBrace)?;
                Ok(Type::record(fields))
            }
            other => Err(self.err(format!("unknown type constructor `{other}`"))),
        }
    }

    fn field_list(&mut self) -> Result<Vec<(String, Type)>, ParseError> {
        let mut fields = Vec::new();
        if matches!(self.peek(), Tok::RBrace) {
            return Ok(fields);
        }
        loop {
            let name = self.eat_ident()?;
            self.eat(&Tok::Colon)?;
            fields.push((name, self.ty()?));
            if matches!(self.peek(), Tok::Comma) {
                self.bump();
            } else {
                return Ok(fields);
            }
        }
    }

    fn schema(&mut self) -> Result<Schema, ParseError> {
        let mut s = Schema::new();
        while !self.at_eof() {
            match self.peek() {
                Tok::Class => {
                    self.bump();
                    let name = self.eat_ident()?;
                    self.eat(&Tok::LBrace)?;
                    let fields = self.field_list()?;
                    self.eat(&Tok::RBrace)?;
                    s.declare_class(ClassDecl::new(name, fields));
                }
                Tok::Let => {
                    self.bump();
                    let name = self.eat_ident()?;
                    self.eat(&Tok::Colon)?;
                    let ty = self.ty()?;
                    self.eat(&Tok::Semi)?;
                    s.add_root(name, ty);
                }
                other => {
                    return Err(self.err(format!(
                        "expected `class` or `let` declaration, found {other}"
                    )))
                }
            }
        }
        Ok(s)
    }
}

/// Replaces `Var(n)` with `Root(n)` for names not in `bound`.
fn resolve_path(p: &Path, bound: &BTreeSet<String>) -> Path {
    match p {
        Path::Var(n) => {
            if bound.contains(n) {
                p.clone()
            } else {
                Path::Root(n.clone())
            }
        }
        Path::Const(_) | Path::Root(_) => p.clone(),
        Path::Field(q, a) => Path::Field(Box::new(resolve_path(q, bound)), a.clone()),
        Path::Dom(q) => Path::Dom(Box::new(resolve_path(q, bound))),
        Path::Get(q, k) => Path::Get(
            Box::new(resolve_path(q, bound)),
            Box::new(resolve_path(k, bound)),
        ),
        Path::GetOrEmpty(q, k) => Path::GetOrEmpty(
            Box::new(resolve_path(q, bound)),
            Box::new(resolve_path(k, bound)),
        ),
    }
}

fn resolve_bindings(bindings: &mut [Binding], bound: &mut BTreeSet<String>) {
    for b in bindings {
        b.src = resolve_path(&b.src, bound);
        bound.insert(b.var.clone());
    }
}

fn resolve_query(mut q: Query) -> Query {
    let mut bound = BTreeSet::new();
    resolve_bindings(&mut q.from, &mut bound);
    q.where_ = q
        .where_
        .iter()
        .map(|Equality(l, r)| Equality(resolve_path(l, &bound), resolve_path(r, &bound)))
        .collect();
    q.output = q.output.map_paths(&mut |p| resolve_path(p, &bound));
    q
}

fn resolve_dependency(mut d: Dependency) -> Dependency {
    let mut bound = BTreeSet::new();
    resolve_bindings(&mut d.forall, &mut bound);
    d.premise = d
        .premise
        .iter()
        .map(|Equality(l, r)| Equality(resolve_path(l, &bound), resolve_path(r, &bound)))
        .collect();
    resolve_bindings(&mut d.exists, &mut bound);
    d.conclusion = d
        .conclusion
        .iter()
        .map(|Equality(l, r)| Equality(resolve_path(l, &bound), resolve_path(r, &bound)))
        .collect();
    d
}

/// Parses a standalone path; every bare identifier resolves to a schema
/// root.
pub fn parse_path(src: &str) -> Result<Path, ParseError> {
    let mut p = Parser::new(src)?;
    let path = p.path()?;
    if !p.at_eof() {
        return Err(p.err(format!("trailing input: {}", p.peek())));
    }
    Ok(resolve_path(&path, &BTreeSet::new()))
}

/// Parses a query or plan.
pub fn parse_query(src: &str) -> Result<Query, ParseError> {
    let mut p = Parser::new(src)?;
    let q = p.query()?;
    if !p.at_eof() {
        return Err(p.err(format!("trailing input: {}", p.peek())));
    }
    Ok(q)
}

/// Parses a dependency, attaching `name` for traces.
pub fn parse_dependency(name: &str, src: &str) -> Result<Dependency, ParseError> {
    let mut p = Parser::new(src)?;
    let d = p.dependency(name)?;
    if !p.at_eof() {
        return Err(p.err(format!("trailing input: {}", p.peek())));
    }
    Ok(d)
}

/// Parses a schema (a sequence of `class` and `let` declarations).
pub fn parse_schema(src: &str) -> Result<Schema, ParseError> {
    let mut p = Parser::new(src)?;
    p.schema()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::BindKind;

    #[test]
    fn parse_paper_query() {
        let q = parse_query(
            r#"select struct(PN = s, PB = p.Budg, DN = d.DName)
               from depts d, d.DProjs s, Proj p
               where s = p.PName and p.CustName = "CitiBank""#,
        )
        .unwrap();
        assert_eq!(q.from.len(), 3);
        assert_eq!(q.from[0].src, Path::root("depts"));
        // `d` is bound by the time `d.DProjs` is parsed.
        assert_eq!(q.from[1].src, Path::var("d").field("DProjs"));
        assert_eq!(q.where_.len(), 2);
        assert_eq!(
            q.where_[1],
            Equality(Path::var("p").field("CustName"), Path::str("CitiBank"))
        );
        assert!(q.check_scopes().is_ok());
    }

    #[test]
    fn round_trip_display_parse() {
        let q = parse_query(
            r#"select struct(A = r.A, B = s.B)
               from V v, R r, S s
               where v.A = r.A and r.B = s.B"#,
        )
        .unwrap();
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn parse_plan_constructs() {
        let plan = parse_query(
            r#"select struct(A = rr.A, C = ss.C)
               from V v, let rr := IR[v.A], IS{rr.B} ss"#,
        )
        .unwrap();
        assert_eq!(plan.from[1].kind, BindKind::Let);
        assert_eq!(
            plan.from[1].src,
            Path::root("IR").get(Path::var("v").field("A"))
        );
        assert_eq!(
            plan.from[2].src,
            Path::root("IS").get_or_empty(Path::var("rr").field("B"))
        );
        assert!(!plan.is_plain_pc());
        let reparsed = parse_query(&plan.to_string()).unwrap();
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn parse_dom_and_lookup() {
        let q = parse_query("select struct(C = r.C) from dom(SA) x, SA[x] r where x = 5").unwrap();
        assert_eq!(q.from[0].src, Path::root("SA").dom());
        assert_eq!(q.from[1].src, Path::root("SA").get(Path::var("x")));
    }

    #[test]
    fn parse_tgd_dependency() {
        let d = parse_dependency(
            "RIC1",
            "forall (d in depts) (s in d.DProjs) -> exists (p in Proj) where s = p.PName",
        )
        .unwrap();
        assert_eq!(d.forall.len(), 2);
        assert_eq!(d.exists.len(), 1);
        assert!(!d.is_egd());
        assert!(d.check_scopes().is_ok());
        assert_eq!(d.forall[1].src, Path::var("d").field("DProjs"));
    }

    #[test]
    fn parse_egd_dependency() {
        let d = parse_dependency(
            "KEY2",
            "forall (p in Proj) (q in Proj) where p.PName = q.PName -> p = q",
        )
        .unwrap();
        assert!(d.is_egd());
        assert_eq!(d.conclusion, vec![Equality(Path::var("p"), Path::var("q"))]);
    }

    #[test]
    fn dependency_round_trip_via_display() {
        let src = "forall (p in Proj) -> exists (i in dom(I)) where i = p.PName and I[i] = p";
        let d = parse_dependency("PI1", src).unwrap();
        // Display prints "[PI1] forall …"; strip the name prefix and reparse.
        let text = d.to_string();
        let stripped = text.strip_prefix("[PI1] ").unwrap();
        let d2 = parse_dependency("PI1", stripped).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn parse_schema_decls() {
        let s = parse_schema(
            r#"
            class Dept { DName: String, DProjs: Set<String>, MgrName: String }
            let depts : Set<Oid<Dept>>;
            let Proj : Set<Struct{PName: String, CustName: String, PDept: String, Budg: Int}>;
            let I : Dict<String, Struct{PName: String, CustName: String, PDept: String, Budg: Int}>;
            let SI : Dict<String, Set<Struct{PName: String, CustName: String, PDept: String, Budg: Int}>>;
            "#,
        )
        .unwrap();
        assert_eq!(s.classes.len(), 1);
        assert_eq!(s.roots.len(), 4);
        assert_eq!(s.root("depts"), Some(&Type::set(Type::Oid("Dept".into()))));
        assert!(matches!(s.root("SI"), Some(Type::Dict(_, _))));
    }

    #[test]
    fn error_reporting() {
        assert!(parse_query("select").is_err());
        assert!(parse_query("select x from").is_err());
        assert!(parse_dependency("d", "forall -> x = y").is_err());
        assert!(parse_schema("let x Int;").is_err());
        let e = parse_query("select x where x = ").unwrap_err();
        assert!(e.message.contains("expected a path"));
    }

    #[test]
    fn trailing_input_rejected() {
        assert!(parse_path("R.A extra").is_err());
        assert!(parse_query("select x from R x garbage garbage").is_err());
    }
}
