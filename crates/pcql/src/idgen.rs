//! Fresh-name generation for chase-introduced variables.

use std::collections::BTreeSet;

/// Generates variable names that are fresh with respect to a set of used
/// names. Chase steps use this to introduce existential witnesses without
/// capture.
#[derive(Debug, Default, Clone)]
pub struct VarGen {
    used: BTreeSet<String>,
    counter: u64,
}

impl VarGen {
    pub fn new() -> VarGen {
        VarGen::default()
    }

    /// A generator that will avoid every name in `used`.
    pub fn avoiding<I, S>(used: I) -> VarGen
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        VarGen {
            used: used.into_iter().map(Into::into).collect(),
            counter: 0,
        }
    }

    /// Marks a name as used.
    pub fn reserve(&mut self, name: impl Into<String>) {
        self.used.insert(name.into());
    }

    /// Returns a fresh name based on `hint` (e.g. `p` -> `p0`, `p1`, …).
    pub fn fresh(&mut self, hint: &str) -> String {
        // Strip a trailing numeric suffix so hints from previous rounds
        // don't snowball ("p0" -> "p00").
        let base: &str = hint.trim_end_matches(|c: char| c.is_ascii_digit());
        let base = if base.is_empty() { "v" } else { base };
        loop {
            let candidate = format!("{base}{}", self.counter);
            self.counter += 1;
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_names_avoid_used() {
        let mut g = VarGen::avoiding(["p0", "p1"]);
        assert_eq!(g.fresh("p"), "p2");
        assert_eq!(g.fresh("p"), "p3");
    }

    #[test]
    fn hint_suffix_stripped() {
        let mut g = VarGen::new();
        let a = g.fresh("x12");
        assert!(a.starts_with('x'));
        assert!(!a.starts_with("x12"), "suffix must be stripped, got {a}");
    }

    #[test]
    fn empty_hint_defaults() {
        let mut g = VarGen::new();
        assert!(g.fresh("42").starts_with('v'));
    }

    #[test]
    fn reserve_blocks_name() {
        let mut g = VarGen::new();
        g.reserve("k0");
        assert_eq!(g.fresh("k"), "k1");
    }
}
