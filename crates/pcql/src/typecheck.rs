//! Type checking and the PC well-formedness restrictions.
//!
//! Restrictions on PC queries (paper §5):
//!
//! 1. dictionary keys, `where`-clause equalities and `select` expressions
//!    may not be (or contain) expressions of set/dictionary type;
//! 2. a lookup `P[x]` must be *guarded*: there must be a binding
//!    `(y in dom(P))` in the `from` clause with `x = y` implied by the
//!    `where` clause (a PTIME-checkable condition — we use transitive
//!    closure of the syntactic equalities).
//!
//! Physical *plans* are typed with the same rules but are exempt from the
//! guardedness restriction (plans such as P4 of §1 contain lookups whose
//! safety is justified semantically, by the catalog's constraints, rather
//! than syntactically).

use std::collections::BTreeMap;
use std::fmt;

use crate::constraint::Dependency;
use crate::path::{Constant, Path};
use crate::query::{BindKind, Binding, Equality, Output, Query, ScopeError};
use crate::schema::Schema;
use crate::types::Type;

/// A typing or well-formedness error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    Scope(ScopeError),
    UnknownRoot(String),
    UnknownVar(String),
    UnknownField {
        on: String,
        field: String,
    },
    UnknownClass(String),
    NotASet {
        path: String,
        ty: String,
    },
    NotADict {
        path: String,
        ty: String,
    },
    KeyMismatch {
        dict: String,
        expected: String,
        got: String,
    },
    NonSetEntryNonFailing {
        path: String,
    },
    EqMismatch {
        left: String,
        right: String,
        lt: String,
        rt: String,
    },
    /// PC restriction 1 violated.
    CollectionTyped {
        path: String,
        ty: String,
        place: &'static str,
    },
    /// PC restriction 2 violated.
    UnguardedLookup {
        path: String,
    },
    /// `Let` bindings / non-failing lookups are not PC.
    NotPlainPc,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Scope(e) => write!(f, "{e}"),
            TypeError::UnknownRoot(r) => write!(f, "unknown schema root `{r}`"),
            TypeError::UnknownVar(v) => write!(f, "unknown variable `{v}`"),
            TypeError::UnknownField { on, field } => {
                write!(f, "no field `{field}` on `{on}`")
            }
            TypeError::UnknownClass(c) => write!(f, "unknown class `{c}`"),
            TypeError::NotASet { path, ty } => {
                write!(f, "`{path}` has type `{ty}`, expected a set")
            }
            TypeError::NotADict { path, ty } => {
                write!(f, "`{path}` has type `{ty}`, expected a dictionary")
            }
            TypeError::KeyMismatch {
                dict,
                expected,
                got,
            } => {
                write!(
                    f,
                    "lookup key for `{dict}` has type `{got}`, expected `{expected}`"
                )
            }
            TypeError::NonSetEntryNonFailing { path } => {
                write!(
                    f,
                    "non-failing lookup `{path}` requires a set-valued entry type"
                )
            }
            TypeError::EqMismatch {
                left,
                right,
                lt,
                rt,
            } => {
                write!(f, "cannot equate `{left}` : `{lt}` with `{right}` : `{rt}`")
            }
            TypeError::CollectionTyped { path, ty, place } => {
                write!(
                    f,
                    "`{path}` : `{ty}` is collection-typed, not allowed in {place}"
                )
            }
            TypeError::UnguardedLookup { path } => {
                write!(f, "unguarded lookup `{path}` in a PC query")
            }
            TypeError::NotPlainPc => write!(f, "plan-level construct in a PC query"),
        }
    }
}

impl std::error::Error for TypeError {}

impl From<ScopeError> for TypeError {
    fn from(e: ScopeError) -> TypeError {
        TypeError::Scope(e)
    }
}

/// The result of typing a query: per-variable types and the output type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTyping {
    pub vars: BTreeMap<String, Type>,
    pub output: Type,
}

/// Types a path under `schema` and a variable environment.
pub fn path_type(
    schema: &Schema,
    env: &BTreeMap<String, Type>,
    path: &Path,
) -> Result<Type, TypeError> {
    match path {
        Path::Var(v) => env
            .get(v)
            .cloned()
            .ok_or_else(|| TypeError::UnknownVar(v.clone())),
        Path::Const(Constant::Bool(_)) => Ok(Type::Bool),
        Path::Const(Constant::Int(_)) => Ok(Type::Int),
        Path::Const(Constant::Str(_)) => Ok(Type::Str),
        Path::Root(r) => schema
            .root(r)
            .cloned()
            .ok_or_else(|| TypeError::UnknownRoot(r.clone())),
        Path::Field(p, a) => {
            let t = path_type(schema, env, p)?;
            match &t {
                Type::Struct(fields) => {
                    fields
                        .get(a)
                        .cloned()
                        .ok_or_else(|| TypeError::UnknownField {
                            on: p.to_string(),
                            field: a.clone(),
                        })
                }
                // ODMG implicit dereferencing on OID-typed paths.
                Type::Oid(class) => match schema.class(class) {
                    None => Err(TypeError::UnknownClass(class.clone())),
                    Some(decl) => {
                        decl.attrs
                            .get(a)
                            .cloned()
                            .ok_or_else(|| TypeError::UnknownField {
                                on: p.to_string(),
                                field: a.clone(),
                            })
                    }
                },
                other => Err(TypeError::UnknownField {
                    on: format!("{p} : {other}"),
                    field: a.clone(),
                }),
            }
        }
        Path::Dom(p) => {
            let t = path_type(schema, env, p)?;
            match t {
                Type::Dict(k, _) => Ok(Type::Set(k)),
                other => Err(TypeError::NotADict {
                    path: p.to_string(),
                    ty: other.to_string(),
                }),
            }
        }
        Path::Get(p, k) | Path::GetOrEmpty(p, k) => {
            let t = path_type(schema, env, p)?;
            let (kt, vt) = match &t {
                Type::Dict(kt, vt) => (kt.as_ref().clone(), vt.as_ref().clone()),
                other => {
                    return Err(TypeError::NotADict {
                        path: p.to_string(),
                        ty: other.to_string(),
                    })
                }
            };
            let key_t = path_type(schema, env, k)?;
            if key_t != kt {
                return Err(TypeError::KeyMismatch {
                    dict: p.to_string(),
                    expected: kt.to_string(),
                    got: key_t.to_string(),
                });
            }
            if matches!(path, Path::GetOrEmpty(_, _)) && !matches!(vt, Type::Set(_)) {
                return Err(TypeError::NonSetEntryNonFailing {
                    path: path.to_string(),
                });
            }
            Ok(vt)
        }
    }
}

fn check_equalities(
    schema: &Schema,
    env: &BTreeMap<String, Type>,
    eqs: &[Equality],
) -> Result<(), TypeError> {
    for Equality(l, r) in eqs {
        let lt = path_type(schema, env, l)?;
        let rt = path_type(schema, env, r)?;
        if lt != rt {
            return Err(TypeError::EqMismatch {
                left: l.to_string(),
                right: r.to_string(),
                lt: lt.to_string(),
                rt: rt.to_string(),
            });
        }
    }
    Ok(())
}

fn extend_env(
    schema: &Schema,
    env: &mut BTreeMap<String, Type>,
    bindings: &[Binding],
) -> Result<(), TypeError> {
    for b in bindings {
        let src_t = path_type(schema, env, &b.src)?;
        let var_t = match b.kind {
            BindKind::Iter => match src_t {
                Type::Set(t) => *t,
                other => {
                    return Err(TypeError::NotASet {
                        path: b.src.to_string(),
                        ty: other.to_string(),
                    })
                }
            },
            BindKind::Let => src_t,
        };
        env.insert(b.var.clone(), var_t);
    }
    Ok(())
}

/// Types a query (or plan) and returns the typing.
pub fn check_query(schema: &Schema, q: &Query) -> Result<QueryTyping, TypeError> {
    q.check_scopes()?;
    let mut env = BTreeMap::new();
    extend_env(schema, &mut env, &q.from)?;
    check_equalities(schema, &env, &q.where_)?;
    let output = match &q.output {
        Output::Struct(fields) => {
            let mut tys = BTreeMap::new();
            for (name, p) in fields {
                tys.insert(name.clone(), path_type(schema, &env, p)?);
            }
            Type::Struct(tys)
        }
        Output::Path(p) => path_type(schema, &env, p)?,
    };
    Ok(QueryTyping { vars: env, output })
}

/// Types a dependency.
pub fn check_dependency(schema: &Schema, d: &Dependency) -> Result<(), TypeError> {
    d.check_scopes()?;
    let mut env = BTreeMap::new();
    extend_env(schema, &mut env, &d.forall)?;
    check_equalities(schema, &env, &d.premise)?;
    extend_env(schema, &mut env, &d.exists)?;
    check_equalities(schema, &env, &d.conclusion)?;
    Ok(())
}

/// Transitive (but not congruence) closure of equalities: enough for the
/// PTIME guardedness check of paper §5's footnote.
struct SyntacticClasses {
    ids: BTreeMap<Path, usize>,
    parent: Vec<usize>,
}

impl SyntacticClasses {
    fn new(eqs: &[Equality]) -> SyntacticClasses {
        let mut s = SyntacticClasses {
            ids: BTreeMap::new(),
            parent: Vec::new(),
        };
        for Equality(l, r) in eqs {
            let a = s.intern(l);
            let b = s.intern(r);
            s.union(a, b);
        }
        s
    }

    fn intern(&mut self, p: &Path) -> usize {
        if let Some(&id) = self.ids.get(p) {
            return id;
        }
        let id = self.parent.len();
        self.parent.push(id);
        self.ids.insert(p.clone(), id);
        id
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    fn equal(&mut self, a: &Path, b: &Path) -> bool {
        if a == b {
            return true;
        }
        match (self.ids.get(a).copied(), self.ids.get(b).copied()) {
            (Some(x), Some(y)) => self.find(x) == self.find(y),
            _ => false,
        }
    }
}

fn check_collection_free(
    schema: &Schema,
    env: &BTreeMap<String, Type>,
    p: &Path,
    place: &'static str,
) -> Result<(), TypeError> {
    let t = path_type(schema, env, p)?;
    if !t.is_collection_free() {
        return Err(TypeError::CollectionTyped {
            path: p.to_string(),
            ty: t.to_string(),
            place,
        });
    }
    Ok(())
}

/// Checks restriction 2 for every lookup occurring in `paths`: each
/// `M[k]` needs a from-binding `(y in dom(M))` with `k = y` implied.
fn check_guards(
    q: &Query,
    classes: &mut SyntacticClasses,
    paths: &[&Path],
) -> Result<(), TypeError> {
    for p in paths {
        for sub in p.subpaths() {
            if let Path::Get(m, k) = sub {
                let mut guarded = false;
                for b in &q.from {
                    if let Path::Dom(m2) = &b.src {
                        if classes.equal(m, m2) && classes.equal(k, &Path::Var(b.var.clone())) {
                            guarded = true;
                            break;
                        }
                    }
                }
                if !guarded {
                    return Err(TypeError::UnguardedLookup {
                        path: sub.to_string(),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Full PC well-formedness: typing plus restrictions 1 and 2 plus "no
/// plan-level constructs".
pub fn check_pc_query(schema: &Schema, q: &Query) -> Result<QueryTyping, TypeError> {
    if !q.is_plain_pc() {
        return Err(TypeError::NotPlainPc);
    }
    let typing = check_query(schema, q)?;
    let env = &typing.vars;

    // Restriction 1: equalities, outputs and lookup keys collection-free.
    for Equality(l, r) in &q.where_ {
        check_collection_free(schema, env, l, "a where-clause equality")?;
        check_collection_free(schema, env, r, "a where-clause equality")?;
    }
    for (_, p) in q.output.paths() {
        check_collection_free(schema, env, p, "the select clause")?;
    }
    let mut all_paths: Vec<&Path> = Vec::new();
    for b in &q.from {
        all_paths.push(&b.src);
    }
    for Equality(l, r) in &q.where_ {
        all_paths.push(l);
        all_paths.push(r);
    }
    for (_, p) in q.output.paths() {
        all_paths.push(p);
    }
    for p in &all_paths {
        for sub in p.subpaths() {
            if let Path::Get(_, k) | Path::GetOrEmpty(_, k) = sub {
                check_collection_free(schema, env, k, "a dictionary key")?;
            }
        }
    }

    // Restriction 2: guarded lookups.
    let mut classes = SyntacticClasses::new(&q.where_);
    check_guards(q, &mut classes, &all_paths)?;

    Ok(typing)
}

/// PC well-formedness for dependencies: both sides must satisfy the PC
/// restrictions; lookups must be guarded by `dom` bindings of the
/// appropriate side.
pub fn check_pc_dependency(schema: &Schema, d: &Dependency) -> Result<(), TypeError> {
    check_dependency(schema, d)?;
    // View each side as a query body for the guardedness/collection checks.
    let as_query = |bindings: &[Binding], eqs: &[Equality]| Query {
        output: Output::record(Vec::<(String, Path)>::new()),
        from: bindings.to_vec(),
        where_: eqs.to_vec(),
    };
    // LHS alone.
    let lhs = as_query(&d.forall, &d.premise);
    let mut env = BTreeMap::new();
    extend_env(schema, &mut env, &d.forall)?;
    for Equality(l, r) in &d.premise {
        check_collection_free(schema, env_ref(&env), l, "a premise equality")?;
        check_collection_free(schema, env_ref(&env), r, "a premise equality")?;
    }
    let mut classes = SyntacticClasses::new(&lhs.where_);
    let lhs_paths: Vec<&Path> = lhs.from.iter().map(|b| &b.src).collect();
    check_guards(&lhs, &mut classes, &lhs_paths)?;

    // Whole dependency (RHS may use LHS guards).
    let mut both = d.forall.clone();
    both.extend(d.exists.iter().cloned());
    let mut eqs = d.premise.clone();
    eqs.extend(d.conclusion.iter().cloned());
    let whole = as_query(&both, &eqs);
    extend_env(schema, &mut env, &d.exists)?;
    for Equality(l, r) in &d.conclusion {
        check_collection_free(schema, env_ref(&env), l, "a conclusion equality")?;
        check_collection_free(schema, env_ref(&env), r, "a conclusion equality")?;
    }
    let mut classes = SyntacticClasses::new(&whole.where_);
    let whole_paths: Vec<&Path> = whole.from.iter().map(|b| &b.src).collect();
    check_guards(&whole, &mut classes, &whole_paths)?;
    Ok(())
}

fn env_ref(env: &BTreeMap<String, Type>) -> &BTreeMap<String, Type> {
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ClassDecl;

    fn projdept_schema() -> Schema {
        let mut s = Schema::new();
        s.declare_class(ClassDecl::new(
            "Dept",
            [
                ("DName", Type::Str),
                ("DProjs", Type::set(Type::Str)),
                ("MgrName", Type::Str),
            ],
        ));
        let proj_row = Type::record([
            ("PName", Type::Str),
            ("CustName", Type::Str),
            ("PDept", Type::Str),
            ("Budg", Type::Int),
        ]);
        s.add_root("depts", Type::set(Type::Oid("Dept".into())));
        s.add_root("Proj", Type::set(proj_row.clone()));
        s.add_root(
            "Dept",
            Type::dict(
                Type::Oid("Dept".into()),
                Type::record([
                    ("DName", Type::Str),
                    ("DProjs", Type::set(Type::Str)),
                    ("MgrName", Type::Str),
                ]),
            ),
        );
        s.add_root("I", Type::dict(Type::Str, proj_row.clone()));
        s.add_root("SI", Type::dict(Type::Str, Type::set(proj_row)));
        s
    }

    fn paper_q() -> Query {
        Query::new(
            Output::record([
                ("PN", Path::var("s")),
                ("PB", Path::var("p").field("Budg")),
                ("DN", Path::var("d").field("DName")),
            ]),
            vec![
                Binding::iter("d", Path::root("depts")),
                Binding::iter("s", Path::var("d").field("DProjs")),
                Binding::iter("p", Path::root("Proj")),
            ],
            vec![
                Equality(Path::var("s"), Path::var("p").field("PName")),
                Equality(Path::var("p").field("CustName"), Path::str("CitiBank")),
            ],
        )
    }

    #[test]
    fn paper_query_types() {
        let s = projdept_schema();
        let t = check_pc_query(&s, &paper_q()).unwrap();
        assert_eq!(t.vars["s"], Type::Str);
        assert_eq!(t.vars["d"], Type::Oid("Dept".into()));
        assert_eq!(
            t.output,
            Type::record([("PN", Type::Str), ("PB", Type::Int), ("DN", Type::Str)])
        );
    }

    #[test]
    fn implicit_dereferencing_types_oid_fields() {
        let s = projdept_schema();
        let env = BTreeMap::from([("d".to_string(), Type::Oid("Dept".into()))]);
        let t = path_type(&s, &env, &Path::var("d").field("DProjs")).unwrap();
        assert_eq!(t, Type::set(Type::Str));
        let err = path_type(&s, &env, &Path::var("d").field("Nope")).unwrap_err();
        assert!(matches!(err, TypeError::UnknownField { .. }));
    }

    #[test]
    fn dict_operations_type() {
        let s = projdept_schema();
        let env = BTreeMap::new();
        assert_eq!(
            path_type(&s, &env, &Path::root("I").dom()).unwrap(),
            Type::set(Type::Str)
        );
        assert_eq!(
            path_type(&s, &env, &Path::root("SI").get_or_empty(Path::str("c"))).unwrap(),
            path_type(&s, &env, &Path::root("SI").get(Path::str("c"))).unwrap()
        );
        // Non-failing lookup on a record-valued dictionary is rejected.
        let err = path_type(&s, &env, &Path::root("I").get_or_empty(Path::str("c"))).unwrap_err();
        assert!(matches!(err, TypeError::NonSetEntryNonFailing { .. }));
        // Key type mismatch.
        let err = path_type(&s, &env, &Path::root("I").get(Path::int(3))).unwrap_err();
        assert!(matches!(err, TypeError::KeyMismatch { .. }));
    }

    #[test]
    fn guarded_lookup_accepted() {
        let s = projdept_schema();
        // P1 from the paper: from dom(Dept) d, Dept[d].DProjs s, Proj p …
        let p1 = Query::new(
            Output::record([
                ("PN", Path::var("s")),
                ("PB", Path::var("p").field("Budg")),
                ("DN", Path::root("Dept").get(Path::var("d")).field("DName")),
            ]),
            vec![
                Binding::iter("d", Path::root("Dept").dom()),
                Binding::iter("s", Path::root("Dept").get(Path::var("d")).field("DProjs")),
                Binding::iter("p", Path::root("Proj")),
            ],
            vec![
                Equality(Path::var("s"), Path::var("p").field("PName")),
                Equality(Path::var("p").field("CustName"), Path::str("CitiBank")),
            ],
        );
        check_pc_query(&s, &p1).unwrap();
    }

    #[test]
    fn unguarded_lookup_rejected() {
        let s = projdept_schema();
        let bad = Query::new(
            Output::Path(Path::root("I").get(Path::var("x")).field("Budg")),
            vec![Binding::iter("x", Path::root("I").dom().clone())],
            vec![],
        );
        // Guarded: x ranges over dom(I).
        check_pc_query(&s, &bad).unwrap();

        let really_bad = Query::new(
            Output::Path(
                Path::root("I")
                    .get(Path::var("p").field("PName"))
                    .field("Budg"),
            ),
            vec![Binding::iter("p", Path::root("Proj"))],
            vec![],
        );
        let err = check_pc_query(&s, &really_bad).unwrap_err();
        assert!(matches!(err, TypeError::UnguardedLookup { .. }));
    }

    #[test]
    fn guard_through_equality() {
        let s = projdept_schema();
        // Lookup key equal (via where) to a dom-bound variable is guarded.
        let q = Query::new(
            Output::Path(
                Path::root("I")
                    .get(Path::var("p").field("PName"))
                    .field("Budg"),
            ),
            vec![
                Binding::iter("p", Path::root("Proj")),
                Binding::iter("i", Path::root("I").dom()),
            ],
            vec![Equality(Path::var("i"), Path::var("p").field("PName"))],
        );
        check_pc_query(&s, &q).unwrap();
    }

    #[test]
    fn collection_equality_rejected() {
        let s = projdept_schema();
        let q = Query::new(
            Output::Path(Path::var("d").field("DName")),
            vec![
                Binding::iter("d", Path::root("depts")),
                Binding::iter("e", Path::root("depts")),
            ],
            vec![Equality(
                Path::var("d").field("DProjs"),
                Path::var("e").field("DProjs"),
            )],
        );
        let err = check_pc_query(&s, &q).unwrap_err();
        assert!(matches!(err, TypeError::CollectionTyped { .. }));
        // Plain typing is fine with it — the restriction is PC-specific.
        check_query(&s, &q).unwrap();
    }

    #[test]
    fn dependency_checking() {
        let s = projdept_schema();
        let ric = Dependency::new(
            "RIC1",
            vec![
                Binding::iter("d", Path::root("depts")),
                Binding::iter("s", Path::var("d").field("DProjs")),
            ],
            vec![],
            vec![Binding::iter("p", Path::root("Proj"))],
            vec![Equality(Path::var("s"), Path::var("p").field("PName"))],
        );
        check_dependency(&s, &ric).unwrap();
        check_pc_dependency(&s, &ric).unwrap();

        let bad = Dependency::new(
            "bad",
            vec![Binding::iter("d", Path::root("nonexistent"))],
            vec![],
            vec![],
            vec![],
        );
        assert!(matches!(
            check_dependency(&s, &bad),
            Err(TypeError::UnknownRoot(_))
        ));
    }

    #[test]
    fn pi1_style_dependency_is_pc() {
        let s = projdept_schema();
        // PI1: forall (p in Proj) exists (i in dom(I))
        //      where i = p.PName and I[i] = p
        let pi1 = Dependency::new(
            "PI1",
            vec![Binding::iter("p", Path::root("Proj"))],
            vec![],
            vec![Binding::iter("i", Path::root("I").dom())],
            vec![
                Equality(Path::var("i"), Path::var("p").field("PName")),
                Equality(Path::root("I").get(Path::var("i")), Path::var("p")),
            ],
        );
        check_pc_dependency(&s, &pi1).unwrap();
    }

    #[test]
    fn let_binding_types_but_is_not_pc() {
        let s = projdept_schema();
        let plan = Query::new(
            Output::Path(Path::var("r").field("Budg")),
            vec![Binding::let_("r", Path::root("I").get(Path::str("p1")))],
            vec![],
        );
        let t = check_query(&s, &plan).unwrap();
        assert_eq!(t.output, Type::Int);
        assert!(matches!(
            check_pc_query(&s, &plan),
            Err(TypeError::NotPlainPc)
        ));
    }
}
