//! The complex-object type system.
//!
//! Types follow the paper's physical data model: base types, abstract OID
//! types (one per class), records (`Struct`), finite sets and dictionaries
//! (finite functions `Dict<K, V>` with a `dom` operation and lookup).

use std::collections::BTreeMap;
use std::fmt;

/// A type in the complex-object data model.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Type {
    /// Booleans.
    Bool,
    /// 64-bit signed integers.
    Int,
    /// Unicode strings.
    Str,
    /// The abstract OID type of the named class. The paper "invents fresh
    /// new base types" for OIDs (e.g. `Doid` for class `Dept`); we name the
    /// OID type after its class. No operations other than equality are
    /// available on OIDs themselves, but field projection on an OID is
    /// ODMG implicit dereferencing (resolved through the class dictionary).
    Oid(String),
    /// Record type with named fields.
    Struct(BTreeMap<String, Type>),
    /// Finite set.
    Set(Box<Type>),
    /// Dictionary (finite function) from keys to entries.
    Dict(Box<Type>, Box<Type>),
}

impl Type {
    /// Builds a `Struct` type from `(field, type)` pairs.
    pub fn record<I, S>(fields: I) -> Type
    where
        I: IntoIterator<Item = (S, Type)>,
        S: Into<String>,
    {
        Type::Struct(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a `Set` type.
    pub fn set(elem: Type) -> Type {
        Type::Set(Box::new(elem))
    }

    /// Builds a `Dict` type.
    pub fn dict(key: Type, entry: Type) -> Type {
        Type::Dict(Box::new(key), Box::new(entry))
    }

    /// True for the base types (including OID types): the types at which
    /// PC queries may compare, output and use as dictionary keys.
    pub fn is_base(&self) -> bool {
        matches!(self, Type::Bool | Type::Int | Type::Str | Type::Oid(_))
    }

    /// True if the type contains no set or dictionary anywhere. PC queries
    /// restrict equalities and outputs to such types (paper §5,
    /// restriction 1 applies to set/dictionary types; flat records of base
    /// types are the outputs of PSJ-style views).
    pub fn is_collection_free(&self) -> bool {
        match self {
            Type::Bool | Type::Int | Type::Str | Type::Oid(_) => true,
            Type::Struct(fields) => fields.values().all(Type::is_collection_free),
            Type::Set(_) | Type::Dict(_, _) => false,
        }
    }

    /// The element type if this is a set.
    pub fn set_elem(&self) -> Option<&Type> {
        match self {
            Type::Set(t) => Some(t),
            _ => None,
        }
    }

    /// The `(key, entry)` types if this is a dictionary.
    pub fn dict_parts(&self) -> Option<(&Type, &Type)> {
        match self {
            Type::Dict(k, v) => Some((k, v)),
            _ => None,
        }
    }

    /// The type of field `name` if this is a struct that has it.
    pub fn field(&self, name: &str) -> Option<&Type> {
        match self {
            Type::Struct(fields) => fields.get(name),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Bool => write!(f, "Bool"),
            Type::Int => write!(f, "Int"),
            Type::Str => write!(f, "String"),
            Type::Oid(class) => write!(f, "Oid<{class}>"),
            Type::Struct(fields) => {
                write!(f, "Struct{{")?;
                for (i, (name, ty)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name}: {ty}")?;
                }
                write!(f, "}}")
            }
            Type::Set(t) => write!(f, "Set<{t}>"),
            Type::Dict(k, v) => write!(f, "Dict<{k}, {v}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proj_row() -> Type {
        Type::record([
            ("PName", Type::Str),
            ("CustName", Type::Str),
            ("PDept", Type::Str),
            ("Budg", Type::Int),
        ])
    }

    #[test]
    fn display_round_trip_shape() {
        let t = Type::dict(Type::Str, Type::set(proj_row()));
        let s = t.to_string();
        assert!(s.starts_with("Dict<String, Set<Struct{"));
        assert!(s.contains("Budg: Int"));
        assert!(s.contains("PName: String"));
    }

    #[test]
    fn base_types() {
        assert!(Type::Str.is_base());
        assert!(Type::Oid("Dept".into()).is_base());
        assert!(!proj_row().is_base());
        assert!(proj_row().is_collection_free());
        assert!(!Type::set(Type::Int).is_collection_free());
        assert!(!Type::record([("a", Type::set(Type::Int))]).is_collection_free());
    }

    #[test]
    fn accessors() {
        let t = Type::dict(Type::Str, Type::set(Type::Int));
        let (k, v) = t.dict_parts().unwrap();
        assert_eq!(k, &Type::Str);
        assert_eq!(v.set_elem(), Some(&Type::Int));
        assert_eq!(proj_row().field("Budg"), Some(&Type::Int));
        assert_eq!(proj_row().field("Nope"), None);
        assert_eq!(Type::Int.field("x"), None);
    }

    #[test]
    fn struct_fields_are_sorted_canonically() {
        let a = Type::record([("b", Type::Int), ("a", Type::Str)]);
        let b = Type::record([("a", Type::Str), ("b", Type::Int)]);
        assert_eq!(a, b);
    }
}
