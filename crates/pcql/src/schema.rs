//! Schemas: named roots plus class declarations.
//!
//! Both logical and physical schemas are "a typed data definition language
//! with constraints" (paper §1); a [`Schema`] is the typed part. A class
//! `C` contributes an abstract OID type `Oid<C>`; its *extent* (a
//! `Set<Oid<C>>` root such as `depts`) lives in the logical schema, while
//! its implementing dictionary (a `Dict<Oid<C>, Struct{…}>` root such as
//! `Dept`) lives in the physical schema. Field projection on an OID-typed
//! path is ODMG implicit dereferencing and is typed against the class
//! declaration.

use std::collections::BTreeMap;
use std::fmt;

use crate::types::Type;

/// A class declaration: the attributes visible through implicit
/// dereferencing of its OIDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDecl {
    pub name: String,
    pub attrs: BTreeMap<String, Type>,
}

impl ClassDecl {
    pub fn new<I, S>(name: impl Into<String>, attrs: I) -> ClassDecl
    where
        I: IntoIterator<Item = (S, Type)>,
        S: Into<String>,
    {
        ClassDecl {
            name: name.into(),
            attrs: attrs.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        }
    }

    /// The record type stored for each object of the class (the dictionary
    /// entry type of the class's physical representation).
    pub fn record_type(&self) -> Type {
        Type::Struct(self.attrs.clone())
    }

    /// The OID type of this class.
    pub fn oid_type(&self) -> Type {
        Type::Oid(self.name.clone())
    }

    /// The type of the class's implementing dictionary.
    pub fn dict_type(&self) -> Type {
        Type::dict(self.oid_type(), self.record_type())
    }

    /// The type of the class's extent.
    pub fn extent_type(&self) -> Type {
        Type::set(self.oid_type())
    }
}

/// A schema: a set of typed roots plus class declarations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    pub roots: BTreeMap<String, Type>,
    pub classes: BTreeMap<String, ClassDecl>,
}

/// Error when merging schemas that disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaConflict {
    pub name: String,
    pub left: String,
    pub right: String,
}

impl fmt::Display for SchemaConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schema conflict on `{}`: `{}` vs `{}`",
            self.name, self.left, self.right
        )
    }
}

impl std::error::Error for SchemaConflict {}

impl Schema {
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Adds (or replaces) a root.
    pub fn add_root(&mut self, name: impl Into<String>, ty: Type) -> &mut Self {
        self.roots.insert(name.into(), ty);
        self
    }

    /// Declares a class (enables implicit dereferencing for its OID type).
    pub fn declare_class(&mut self, decl: ClassDecl) -> &mut Self {
        self.classes.insert(decl.name.clone(), decl);
        self
    }

    pub fn root(&self, name: &str) -> Option<&Type> {
        self.roots.get(name)
    }

    pub fn class(&self, name: &str) -> Option<&ClassDecl> {
        self.classes.get(name)
    }

    /// The type of attribute `attr` of class `class`, if any.
    pub fn class_attr(&self, class: &str, attr: &str) -> Option<&Type> {
        self.classes.get(class).and_then(|c| c.attrs.get(attr))
    }

    /// Union of two schemas; identical double declarations are fine,
    /// conflicting ones are errors. Used to type universal plans, which
    /// mention logical and physical roots at once ("the physical level …
    /// is not disjoint from the logical; this is a common situation").
    pub fn merged(&self, other: &Schema) -> Result<Schema, SchemaConflict> {
        let mut out = self.clone();
        for (name, ty) in &other.roots {
            match out.roots.get(name) {
                Some(existing) if existing != ty => {
                    return Err(SchemaConflict {
                        name: name.clone(),
                        left: existing.to_string(),
                        right: ty.to_string(),
                    });
                }
                _ => {
                    out.roots.insert(name.clone(), ty.clone());
                }
            }
        }
        for (name, decl) in &other.classes {
            match out.classes.get(name) {
                Some(existing) if existing != decl => {
                    return Err(SchemaConflict {
                        name: name.clone(),
                        left: format!("{:?}", existing.attrs),
                        right: format!("{:?}", decl.attrs),
                    });
                }
                _ => {
                    out.classes.insert(name.clone(), decl.clone());
                }
            }
        }
        Ok(out)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for decl in self.classes.values() {
            write!(f, "class {} {{ ", decl.name)?;
            for (i, (a, t)) in decl.attrs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}: {t}")?;
            }
            writeln!(f, " }}")?;
        }
        for (name, ty) in &self.roots {
            writeln!(f, "let {name} : {ty};")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dept_class() -> ClassDecl {
        ClassDecl::new(
            "Dept",
            [
                ("DName", Type::Str),
                ("DProjs", Type::set(Type::Str)),
                ("MgrName", Type::Str),
            ],
        )
    }

    #[test]
    fn class_derived_types() {
        let c = dept_class();
        assert_eq!(c.oid_type(), Type::Oid("Dept".into()));
        assert_eq!(c.extent_type(), Type::set(Type::Oid("Dept".into())));
        let dict = c.dict_type();
        let (k, v) = dict.dict_parts().unwrap();
        assert_eq!(k, &Type::Oid("Dept".into()));
        assert_eq!(v.field("DProjs"), Some(&Type::set(Type::Str)));
    }

    #[test]
    fn attr_lookup() {
        let mut s = Schema::new();
        s.declare_class(dept_class());
        assert_eq!(s.class_attr("Dept", "DName"), Some(&Type::Str));
        assert_eq!(s.class_attr("Dept", "Nope"), None);
        assert_eq!(s.class_attr("Nope", "DName"), None);
    }

    #[test]
    fn merge_compatible() {
        let mut a = Schema::new();
        a.add_root("Proj", Type::set(Type::record([("PName", Type::Str)])));
        let mut b = Schema::new();
        b.add_root("Proj", Type::set(Type::record([("PName", Type::Str)])));
        b.add_root(
            "I",
            Type::dict(Type::Str, Type::record([("PName", Type::Str)])),
        );
        let m = a.merged(&b).unwrap();
        assert_eq!(m.roots.len(), 2);
    }

    #[test]
    fn merge_conflict() {
        let mut a = Schema::new();
        a.add_root("R", Type::set(Type::Int));
        let mut b = Schema::new();
        b.add_root("R", Type::set(Type::Str));
        assert!(a.merged(&b).is_err());
    }

    #[test]
    fn display_shape() {
        let mut s = Schema::new();
        s.declare_class(dept_class());
        s.add_root("depts", dept_class().extent_type());
        let text = s.to_string();
        assert!(text.contains("class Dept {"));
        assert!(text.contains("let depts : Set<Oid<Dept>>;"));
    }
}
