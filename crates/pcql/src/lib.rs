//! # pcql — the path-conjunctive query language
//!
//! The data model, query language and constraint language of
//! *Physical Data Independence, Constraints and Optimization with Universal
//! Plans* (Deutsch, Popa, Tannen; VLDB 1999).
//!
//! The language is the path-conjunctive (PC) fragment of ODMG ODL/OQL
//! extended with dictionaries:
//!
//! ```text
//! Paths            P ::= x | c | R | P.A | dom(P) | P[x]
//! PathConjunctions B ::= P1 = P1' and … and Pk = Pk'
//! PC Queries           select struct(A1 = P1', …, An = Pn')
//!                      from P1 x1, …, Pm xm
//!                      where B
//! ```
//!
//! together with embedded path-conjunctive dependencies (EPCDs):
//!
//! ```text
//! forall (x1 in P1) … (xn in Pn) where B1(x)
//! -> exists (y1 in P1') … (yk in Pk') where B2(x, y)
//! ```
//!
//! This crate provides:
//!
//! * [`types::Type`] — the complex-object type system (base types, OIDs,
//!   records, sets, dictionaries);
//! * [`schema::Schema`] — named schema roots plus class declarations
//!   (classes are dictionaries from OIDs to attribute records, following
//!   the paper's representation of OO classes);
//! * [`path::Path`] — path expressions, including the *non-failing* lookup
//!   `M{k}` used by physical plans (paper §4);
//! * [`query::Query`] — PC queries, plus `let`-style singleton bindings
//!   that appear only in physical plans;
//! * [`constraint::Dependency`] — EPCDs, with the EGD / full-TGD
//!   classification that drives chase termination;
//! * [`parser`] — a concrete OQL-ish syntax for all of the above;
//! * [`typecheck`] — type checking and the PC well-formedness restrictions
//!   of paper §5 (no collection-typed equalities, guarded lookups).
//!
//! Downstream crates build the catalog (`cb-catalog`), the chase/backchase
//! engines (`cb-chase`), the evaluator (`cb-engine`) and the optimizer
//! (`cb-optimizer`) on top of these definitions.

pub mod constraint;
pub mod idgen;
pub mod parser;
pub mod path;
pub mod query;
pub mod schema;
pub mod typecheck;
pub mod types;

pub use constraint::Dependency;
pub use path::{Constant, Path};
pub use query::{BindKind, Binding, Equality, Output, Query};
pub use schema::{ClassDecl, Schema};
pub use types::Type;

/// Convenient glob-import for downstream crates and examples.
pub mod prelude {
    pub use crate::constraint::Dependency;
    pub use crate::parser::{parse_dependency, parse_path, parse_query, parse_schema};
    pub use crate::path::{Constant, Path};
    pub use crate::query::{BindKind, Binding, Equality, Output, Query};
    pub use crate::schema::{ClassDecl, Schema};
    pub use crate::typecheck::{check_dependency, check_pc_query, check_query};
    pub use crate::types::Type;
}
