//! Path expressions.
//!
//! ```text
//! P ::= x | c | R | P.A | dom(P) | P[x] | P{x}
//! ```
//!
//! `P[x]` is the failing lookup `M[k]` of OQL; `P{x}` is the *non-failing*
//! lookup that returns the empty set when `k ∉ dom(M)` — the physical
//! operation written `M⟨k⟩` in the paper, used only in final plans (§4).

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

/// A constant at base type.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Constant {
    Bool(bool),
    Int(i64),
    Str(String),
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Bool(b) => write!(f, "{b}"),
            Constant::Int(i) => write!(f, "{i}"),
            Constant::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// A path expression.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Path {
    /// A variable bound by an enclosing `from`/`forall`/`exists` clause.
    Var(String),
    /// A constant.
    Const(Constant),
    /// A schema root (relation, class dictionary, index, view, …).
    Root(String),
    /// Field projection `P.A`; on OID-typed paths this is ODMG implicit
    /// dereferencing.
    Field(Box<Path>, String),
    /// `dom(P)` — the set of keys of dictionary `P`.
    Dom(Box<Path>),
    /// `P[k]` — failing dictionary lookup.
    Get(Box<Path>, Box<Path>),
    /// `P{k}` — non-failing dictionary lookup returning the empty set when
    /// the key is absent (only for set-valued entries; plan-level only).
    GetOrEmpty(Box<Path>, Box<Path>),
}

impl Path {
    pub fn var(name: impl Into<String>) -> Path {
        Path::Var(name.into())
    }

    pub fn root(name: impl Into<String>) -> Path {
        Path::Root(name.into())
    }

    pub fn str(s: impl Into<String>) -> Path {
        Path::Const(Constant::Str(s.into()))
    }

    pub fn int(i: i64) -> Path {
        Path::Const(Constant::Int(i))
    }

    pub fn bool(b: bool) -> Path {
        Path::Const(Constant::Bool(b))
    }

    /// `self.name`
    pub fn field(self, name: impl Into<String>) -> Path {
        Path::Field(Box::new(self), name.into())
    }

    /// `dom(self)`
    pub fn dom(self) -> Path {
        Path::Dom(Box::new(self))
    }

    /// `self[key]`
    pub fn get(self, key: Path) -> Path {
        Path::Get(Box::new(self), Box::new(key))
    }

    /// `self{key}`
    pub fn get_or_empty(self, key: Path) -> Path {
        Path::GetOrEmpty(Box::new(self), Box::new(key))
    }

    /// The variables occurring in this path.
    pub fn free_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Path::Var(v) => {
                out.insert(v.clone());
            }
            Path::Const(_) | Path::Root(_) => {}
            Path::Field(p, _) | Path::Dom(p) => p.collect_vars(out),
            Path::Get(p, k) | Path::GetOrEmpty(p, k) => {
                p.collect_vars(out);
                k.collect_vars(out);
            }
        }
    }

    /// Does this path mention variable `v`?
    pub fn mentions_var(&self, v: &str) -> bool {
        match self {
            Path::Var(x) => x == v,
            Path::Const(_) | Path::Root(_) => false,
            Path::Field(p, _) | Path::Dom(p) => p.mentions_var(v),
            Path::Get(p, k) | Path::GetOrEmpty(p, k) => p.mentions_var(v) || k.mentions_var(v),
        }
    }

    /// Does this path mention any variable from `vars`?
    pub fn mentions_any(&self, vars: &BTreeSet<String>) -> bool {
        match self {
            Path::Var(x) => vars.contains(x),
            Path::Const(_) | Path::Root(_) => false,
            Path::Field(p, _) | Path::Dom(p) => p.mentions_any(vars),
            Path::Get(p, k) | Path::GetOrEmpty(p, k) => {
                p.mentions_any(vars) || k.mentions_any(vars)
            }
        }
    }

    /// Does this path mention schema root `name`?
    pub fn mentions_root(&self, name: &str) -> bool {
        match self {
            Path::Root(r) => r == name,
            Path::Var(_) | Path::Const(_) => false,
            Path::Field(p, _) | Path::Dom(p) => p.mentions_root(name),
            Path::Get(p, k) | Path::GetOrEmpty(p, k) => {
                p.mentions_root(name) || k.mentions_root(name)
            }
        }
    }

    /// The schema roots mentioned by this path.
    pub fn roots(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_roots(&mut out);
        out
    }

    fn collect_roots(&self, out: &mut BTreeSet<String>) {
        match self {
            Path::Root(r) => {
                out.insert(r.clone());
            }
            Path::Var(_) | Path::Const(_) => {}
            Path::Field(p, _) | Path::Dom(p) => p.collect_roots(out),
            Path::Get(p, k) | Path::GetOrEmpty(p, k) => {
                p.collect_roots(out);
                k.collect_roots(out);
            }
        }
    }

    /// Capture-avoiding substitution of whole paths for variables.
    ///
    /// Paths have no binders, so this is plain simultaneous substitution.
    pub fn subst(&self, map: &BTreeMap<String, Path>) -> Path {
        match self {
            Path::Var(v) => map.get(v).cloned().unwrap_or_else(|| self.clone()),
            Path::Const(_) | Path::Root(_) => self.clone(),
            Path::Field(p, a) => Path::Field(Box::new(p.subst(map)), a.clone()),
            Path::Dom(p) => Path::Dom(Box::new(p.subst(map))),
            Path::Get(p, k) => Path::Get(Box::new(p.subst(map)), Box::new(k.subst(map))),
            Path::GetOrEmpty(p, k) => {
                Path::GetOrEmpty(Box::new(p.subst(map)), Box::new(k.subst(map)))
            }
        }
    }

    /// Substitute a single variable.
    pub fn subst1(&self, var: &str, with: &Path) -> Path {
        let mut m = BTreeMap::new();
        m.insert(var.to_string(), with.clone());
        self.subst(&m)
    }

    /// Rename variables according to `map` (variables not in the map are
    /// left alone).
    pub fn rename(&self, map: &BTreeMap<String, String>) -> Path {
        match self {
            Path::Var(v) => match map.get(v) {
                Some(n) => Path::Var(n.clone()),
                None => self.clone(),
            },
            Path::Const(_) | Path::Root(_) => self.clone(),
            Path::Field(p, a) => Path::Field(Box::new(p.rename(map)), a.clone()),
            Path::Dom(p) => Path::Dom(Box::new(p.rename(map))),
            Path::Get(p, k) => Path::Get(Box::new(p.rename(map)), Box::new(k.rename(map))),
            Path::GetOrEmpty(p, k) => {
                Path::GetOrEmpty(Box::new(p.rename(map)), Box::new(k.rename(map)))
            }
        }
    }

    /// Number of AST nodes — used for chase-size accounting (Theorem 1's
    /// polynomial bound) and cost tie-breaking.
    pub fn size(&self) -> usize {
        match self {
            Path::Var(_) | Path::Const(_) | Path::Root(_) => 1,
            Path::Field(p, _) | Path::Dom(p) => 1 + p.size(),
            Path::Get(p, k) | Path::GetOrEmpty(p, k) => 1 + p.size() + k.size(),
        }
    }

    /// All subpaths (including `self`), outermost first.
    pub fn subpaths(&self) -> Vec<&Path> {
        let mut out = Vec::new();
        self.collect_subpaths(&mut out);
        out
    }

    fn collect_subpaths<'a>(&'a self, out: &mut Vec<&'a Path>) {
        out.push(self);
        match self {
            Path::Var(_) | Path::Const(_) | Path::Root(_) => {}
            Path::Field(p, _) | Path::Dom(p) => p.collect_subpaths(out),
            Path::Get(p, k) | Path::GetOrEmpty(p, k) => {
                p.collect_subpaths(out);
                k.collect_subpaths(out);
            }
        }
    }

    /// Splits the trailing field projections off a path: `x.A.B` yields
    /// the base `x` and the chain `["A", "B"]` (applied left to right).
    /// This is the pre-resolution hook for compiled executors that turn a
    /// path into a `(slot, field chain)` accessor at plan-compile time
    /// instead of re-walking the AST per row.
    pub fn split_fields(&self) -> (&Path, Vec<&str>) {
        match self {
            Path::Field(p, name) => {
                let (base, mut chain) = p.split_fields();
                chain.push(name);
                (base, chain)
            }
            _ => (self, Vec::new()),
        }
    }

    /// True if the path contains a non-failing lookup (`P{k}`); such paths
    /// are plan-level only and are rejected by the PC well-formedness check.
    pub fn has_nonfailing_lookup(&self) -> bool {
        match self {
            Path::Var(_) | Path::Const(_) | Path::Root(_) => false,
            Path::Field(p, _) | Path::Dom(p) => p.has_nonfailing_lookup(),
            Path::GetOrEmpty(_, _) => true,
            Path::Get(p, k) => p.has_nonfailing_lookup() || k.has_nonfailing_lookup(),
        }
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Path::Var(v) => write!(f, "{v}"),
            Path::Const(c) => write!(f, "{c}"),
            Path::Root(r) => write!(f, "{r}"),
            Path::Field(p, a) => write!(f, "{p}.{a}"),
            Path::Dom(p) => write!(f, "dom({p})"),
            Path::Get(p, k) => write!(f, "{p}[{k}]"),
            Path::GetOrEmpty(p, k) => write!(f, "{p}{{{k}}}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let p = Path::root("Dept").get(Path::var("d")).field("DName");
        assert_eq!(p.to_string(), "Dept[d].DName");
        let q = Path::root("SI").get_or_empty(Path::str("CitiBank"));
        assert_eq!(q.to_string(), "SI{\"CitiBank\"}");
        let r = Path::root("I").dom();
        assert_eq!(r.to_string(), "dom(I)");
    }

    #[test]
    fn free_vars_and_roots() {
        let p = Path::root("Dept").get(Path::var("d")).field("DProjs");
        assert_eq!(p.free_vars().into_iter().collect::<Vec<_>>(), vec!["d"]);
        assert!(p.mentions_root("Dept"));
        assert!(!p.mentions_root("Proj"));
        assert!(p.mentions_var("d"));
        assert!(!p.mentions_var("x"));
    }

    #[test]
    fn substitution() {
        let p = Path::var("x").field("A");
        let s = p.subst1("x", &Path::root("R").get(Path::var("k")));
        assert_eq!(s.to_string(), "R[k].A");
        // Substituting an unrelated variable leaves the path intact.
        assert_eq!(p.subst1("y", &Path::int(3)), p);
    }

    #[test]
    fn rename_only_mapped() {
        let p = Path::var("x").field("A").get(Path::var("y"));
        let mut m = BTreeMap::new();
        m.insert("x".to_string(), "z".to_string());
        assert_eq!(p.rename(&m).to_string(), "z.A[y]");
    }

    #[test]
    fn size_and_subpaths() {
        let p = Path::root("M").get(Path::var("k")).field("A");
        assert_eq!(p.size(), 4);
        let subs: Vec<String> = p.subpaths().iter().map(ToString::to_string).collect();
        assert_eq!(subs, vec!["M[k].A", "M[k]", "M", "k"]);
    }

    #[test]
    fn split_fields_peels_trailing_projections() {
        let p = Path::var("x").field("A").field("B");
        let (base, chain) = p.split_fields();
        assert_eq!(base, &Path::var("x"));
        assert_eq!(chain, vec!["A", "B"]);
        // Fields inside a lookup are not trailing: only the outer chain peels.
        let q = Path::root("M").get(Path::var("k").field("A")).field("C");
        let (base, chain) = q.split_fields();
        assert_eq!(base.to_string(), "M[k.A]");
        assert_eq!(chain, vec!["C"]);
        let three = Path::int(3);
        let (base, chain) = three.split_fields();
        assert_eq!(base, &three);
        assert!(chain.is_empty());
    }

    #[test]
    fn nonfailing_detection() {
        let p = Path::root("IS").get_or_empty(Path::var("k"));
        assert!(p.has_nonfailing_lookup());
        let q = Path::root("IS").get(Path::var("k"));
        assert!(!q.has_nonfailing_lookup());
    }
}
