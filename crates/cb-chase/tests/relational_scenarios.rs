//! C&B on the two relational scenarios of paper §4.

use std::collections::BTreeSet;

use cb_catalog::scenarios::{relational_indexes, relational_views};
use cb_chase::{backchase, chase, BackchaseConfig, ChaseConfig};

fn shapes(plans: &[pcql::Query]) -> BTreeSet<Vec<String>> {
    plans
        .iter()
        .map(|p| {
            let mut v: Vec<String> = p
                .from
                .iter()
                .map(|b| b.src.roots().into_iter().collect::<Vec<_>>().join("."))
                .collect();
            v.sort();
            v
        })
        .collect()
}

#[test]
fn index_only_access_path_is_found() {
    // §4 scenario 1: R(A,B,C), SA on A, SB on B, query
    // select r.C from R r where r.A = 5 and r.B = 7.
    let cat = relational_indexes::catalog();
    let deps = cat.all_constraints();
    let u = chase(&relational_indexes::query(), &deps, &ChaseConfig::default()).query;
    // U brings in both indexes.
    let srcs: Vec<String> = u.from.iter().map(|b| b.src.to_string()).collect();
    assert!(srcs.contains(&"dom(SA)".to_string()), "{srcs:?}");
    assert!(srcs.contains(&"dom(SB)".to_string()), "{srcs:?}");

    let out = backchase(
        &u,
        &deps,
        &BackchaseConfig {
            max_visited: 4096,
            ..Default::default()
        },
    );
    assert!(out.complete);
    let nf = shapes(&out.normal_forms);
    // Index-only plans: no scan of R at all. Our secondary indexes store
    // whole rows (not RIDs), so a *single* index suffices and is minimal;
    // the paper's interleaved SA ∩ SB plan is an equivalent subquery but
    // not a minimal one in this representation (see EXPERIMENTS.md).
    assert!(
        nf.contains(&vec!["SA".to_string(), "SA".to_string()]),
        "{nf:?}"
    );
    assert!(
        nf.contains(&vec!["SB".to_string(), "SB".to_string()]),
        "{nf:?}"
    );
    assert!(
        nf.contains(&vec!["R".to_string()]),
        "base plan missing: {nf:?}"
    );
    // The interleaved two-index plan is among the visited equivalents.
    let visited = shapes(&out.visited);
    assert!(
        visited.contains(&vec![
            "SA".to_string(),
            "SA".to_string(),
            "SB".to_string(),
            "SB".to_string()
        ]),
        "interleaved plan missing from visited: {visited:?}"
    );
}

#[test]
fn view_navigation_plan_is_found() {
    // §4 scenario 2: the universal plan integrates V, IR, IS; the minimal
    // plans include the navigation join over the view and both indexes
    // (the paper's final plan), the index-joins, and the base join.
    let cat = relational_views::catalog();
    let deps = cat.all_constraints();
    let u = chase(&relational_views::query(), &deps, &ChaseConfig::default()).query;
    assert_eq!(u.from.len(), 7, "U = {u}");

    let out = backchase(
        &u,
        &deps,
        &BackchaseConfig {
            max_visited: 4096,
            ..Default::default()
        },
    );
    assert!(out.complete);
    let nf = shapes(&out.normal_forms);
    assert!(
        nf.contains(&vec![
            "IR".to_string(),
            "IS".to_string(),
            "IS".to_string(),
            "V".to_string()
        ]),
        "navigation plan missing: {nf:?}"
    );
    assert!(
        nf.contains(&vec!["R".to_string(), "S".to_string()]),
        "base join: {nf:?}"
    );

    // The paper's intermediate P (V joined with base R and S) is among
    // the visited equivalent subqueries but is *not* minimal — exactly
    // the point §4 makes against view-only rewriting frameworks.
    let visited = shapes(&out.visited);
    assert!(visited.contains(&vec!["R".to_string(), "S".to_string(), "V".to_string()]));
    assert!(!nf.contains(&vec!["R".to_string(), "S".to_string(), "V".to_string()]));
}
