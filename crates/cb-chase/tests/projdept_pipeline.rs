//! End-to-end C&B on the paper's running ProjDept example (§1 + §3):
//! chase Q to the universal plan U, then backchase to the minimal plans.

use std::collections::BTreeSet;

use cb_catalog::scenarios::projdept;
use cb_chase::{backchase, chase, BackchaseConfig, ChaseConfig};

fn roots_of(q: &pcql::Query) -> Vec<String> {
    q.from
        .iter()
        .map(|b| b.src.roots().into_iter().collect::<Vec<_>>().join("."))
        .collect()
}

#[test]
fn universal_plan_contains_all_access_paths() {
    let cat = projdept::catalog();
    let q = projdept::query();
    let out = chase(&q, &cat.all_constraints(), &ChaseConfig::default());
    assert!(out.complete, "chase must reach a fixpoint on ProjDept");
    let u = &out.query;
    // The paper's U has 9 bindings: d, s, p plus j (JI), d', s' (Dept
    // dictionary), k, t (SI), i (I).
    assert_eq!(u.from.len(), 9, "universal plan: {u}");
    let sources: Vec<String> = u.from.iter().map(|b| b.src.to_string()).collect();
    assert!(sources.contains(&"depts".to_string()));
    assert!(sources.contains(&"Proj".to_string()));
    assert!(sources.contains(&"JI".to_string()));
    assert!(sources.contains(&"dom(Dept)".to_string()));
    assert!(sources.contains(&"dom(SI)".to_string()));
    assert!(sources.contains(&"dom(I)".to_string()));
    // The INV1 EGD fired: d.DName = p.PDept is among the conditions.
    let conds: Vec<String> = u
        .where_
        .iter()
        .map(|e| format!("{} = {}", e.0, e.1))
        .collect();
    assert!(
        conds
            .iter()
            .any(|c| c == "d.DName = p.PDept" || c == "p.PDept = d.DName"),
        "INV1 condition missing: {conds:?}"
    );
}

#[test]
fn backchase_finds_the_paper_plans() {
    let cat = projdept::catalog();
    let q = projdept::query();
    let deps = cat.all_constraints();
    let u = chase(&q, &deps, &ChaseConfig::default()).query;
    let cfg = BackchaseConfig {
        max_visited: 4096,
        ..BackchaseConfig::default()
    };
    let out = backchase(&u, &deps, &cfg);
    assert!(out.complete, "backchase enumeration must finish");

    // Summarize plans by the multiset of their binding sources' roots.
    let shapes: BTreeSet<Vec<String>> = out
        .normal_forms
        .iter()
        .map(|p| {
            let mut v = roots_of(p);
            v.sort();
            v
        })
        .collect();

    // P2: single Proj scan (semantic optimization via RIC2+INV2).
    assert!(
        shapes.contains(&vec!["Proj".to_string()]),
        "P2 shape missing from {shapes:?}"
    );
    // P3 (PC form): dom(SI) k, SI[k] t.
    assert!(
        shapes.contains(&vec!["SI".to_string(), "SI".to_string()]),
        "P3 shape missing from {shapes:?}"
    );
    // P4: single JI scan with I/Dept lookups.
    assert!(
        shapes.contains(&vec!["JI".to_string()]),
        "P4 shape missing from {shapes:?}"
    );

    // All plans that mention only physical roots, among everything
    // visited, include P1's shape {dom(Dept), Dept[d].DProjs, Proj}.
    let physical_visited: BTreeSet<Vec<String>> = out
        .visited
        .iter()
        .filter(|p| cat.is_physical_query(p))
        .map(|p| {
            let mut v = roots_of(p);
            v.sort();
            v
        })
        .collect();
    assert!(
        physical_visited.contains(&vec![
            "Dept".to_string(),
            "Dept".to_string(),
            "Proj".to_string()
        ]),
        "P1 shape missing from visited physical plans: {physical_visited:?}"
    );
}

#[test]
fn mapping_only_regime() {
    // Without the semantic constraints (the completeness-theorem regime):
    //
    // * P2 is out of reach — its output rewrite DN -> p.PDept needs INV1;
    // * P3 is out of reach for the same reason (DN = t.PDept);
    // * P4 survives (JI scan with index/dictionary dereferences);
    // * the paper's P1 is an equivalent subquery but is *not* minimal: the
    //   backchase discovers that PI2 lets the Proj scan itself be replaced
    //   by primary-index lookups keyed on the member names — a plan the
    //   paper does not list. (The paper presents P1 as minimal because its
    //   §1 walkthrough does not backchase against the index constraints.)
    let cat = projdept::catalog().without_semantic_constraints();
    let q = projdept::query();
    let deps = cat.all_constraints();
    let u = chase(&q, &deps, &ChaseConfig::default()).query;
    let out = backchase(
        &u,
        &deps,
        &BackchaseConfig {
            max_visited: 4096,
            ..Default::default()
        },
    );
    assert!(out.complete);
    let nf_shapes: BTreeSet<Vec<String>> = out
        .normal_forms
        .iter()
        .map(|p| {
            let mut v = roots_of(p);
            v.sort();
            v
        })
        .collect();
    // P4.
    assert!(nf_shapes.contains(&vec!["JI".to_string()]), "{nf_shapes:?}");
    // The PI2-refined dictionary plan: dom(Dept), Dept[o].DProjs, dom(I).
    assert!(
        nf_shapes.contains(&vec![
            "Dept".to_string(),
            "Dept".to_string(),
            "I".to_string()
        ]),
        "{nf_shapes:?}"
    );
    // P2 and P3 shapes must be absent without the INV constraints.
    assert!(!nf_shapes.contains(&vec!["Proj".to_string()]));
    assert!(!nf_shapes.contains(&vec!["SI".to_string(), "SI".to_string()]));

    // The paper's P1 is still among the visited equivalent subqueries.
    let visited_shapes: BTreeSet<Vec<String>> = out
        .visited
        .iter()
        .map(|p| {
            let mut v = roots_of(p);
            v.sort();
            v
        })
        .collect();
    assert!(visited_shapes.contains(&vec![
        "Dept".to_string(),
        "Dept".to_string(),
        "Proj".to_string()
    ]));
}
