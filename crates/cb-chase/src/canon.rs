//! Canonical databases: the e-graph view of a query's body.
//!
//! The paper's backchase "builds a database instance out of the syntax of
//! Q"; [`QueryGraph`] is that instance — membership facts from the `from`
//! clause plus the congruence closure of the `where` clause.

use std::collections::BTreeSet;

use pcql::path::Path;
use pcql::query::{BindKind, Query};

use crate::egraph::{ClassId, EGraph};

/// One membership fact `var ∈ src` of the canonical database.
#[derive(Debug, Clone)]
pub struct MemberFact {
    pub var: String,
    pub var_class: ClassId,
    pub src_class: ClassId,
}

/// A query body as a canonical database.
#[derive(Debug, Clone)]
pub struct QueryGraph {
    pub egraph: EGraph,
    pub members: Vec<MemberFact>,
}

impl QueryGraph {
    /// Builds the canonical database of a query: intern every binding and
    /// condition, union the equalities (`let` bindings are equalities
    /// `var = src`).
    pub fn of_query(q: &Query) -> QueryGraph {
        let mut egraph = EGraph::new();
        let mut members = Vec::new();
        for b in &q.from {
            let var_class = egraph.add_path(&Path::Var(b.var.clone()));
            let src_class = egraph.add_path(&b.src);
            match b.kind {
                BindKind::Iter => members.push(MemberFact {
                    var: b.var.clone(),
                    var_class,
                    src_class,
                }),
                BindKind::Let => {
                    egraph.union(var_class, src_class);
                }
            }
        }
        for eq in &q.where_ {
            egraph.union_paths(&eq.0, &eq.1);
        }
        for (_, p) in q.output.paths() {
            egraph.add_path(p);
        }
        // Canonical ids may have shifted after unions; refresh the facts.
        let mut g = QueryGraph { egraph, members };
        g.refresh();
        g
    }

    fn refresh(&mut self) {
        for m in &mut self.members {
            m.var_class = self.egraph.find(m.var_class);
            m.src_class = self.egraph.find(m.src_class);
        }
    }

    /// Records one more binding's facts — the incremental counterpart of
    /// the `from`-clause loop in [`QueryGraph::of_query`]. The chase
    /// maintains one graph across all of its steps this way instead of
    /// rebuilding the canonical database from scratch per step.
    pub fn add_binding(&mut self, b: &pcql::query::Binding) {
        let var_class = self.egraph.add_path(&Path::Var(b.var.clone()));
        let src_class = self.egraph.add_path(&b.src);
        match b.kind {
            BindKind::Iter => self.members.push(MemberFact {
                var: b.var.clone(),
                var_class,
                src_class,
            }),
            BindKind::Let => {
                self.egraph.union(var_class, src_class);
                self.refresh();
            }
        }
    }

    /// Records one more equality, refreshing the membership facts after
    /// the union.
    pub fn add_equality(&mut self, eq: &pcql::query::Equality) {
        self.egraph.union_paths(&eq.0, &eq.1);
        self.refresh();
    }

    /// Is there a membership fact `v ∈ src` with `src` congruent to
    /// `class` and `v` congruent to `key_class`? Used for guardedness.
    pub fn has_member(&mut self, src: &Path, key: &Path) -> bool {
        let src_class = self.egraph.add_path(src);
        let key_class = self.egraph.add_path(key);
        self.refresh();
        let (src_class, key_class) = (self.egraph.find(src_class), self.egraph.find(key_class));
        self.members
            .iter()
            .any(|m| m.src_class == src_class && m.var_class == key_class)
    }

    /// The variables whose binding is `var ∈ src` with `src` congruent to
    /// the given class.
    pub fn members_of(&self, src_class: ClassId) -> Vec<&MemberFact> {
        let src_class = self.egraph.find(src_class);
        self.members
            .iter()
            .filter(|m| self.egraph.find(m.src_class) == src_class)
            .collect()
    }

    /// Every failing lookup `M[k]` occurring in the query must either be
    /// syntactically guarded by a binding `(g in dom(M))` with `g ≡ k`, or
    /// be reported here for a semantic-safety check.
    pub fn unguarded_lookups(&mut self, q: &Query) -> Vec<(Path, Path)> {
        let mut all_paths: Vec<Path> = Vec::new();
        for b in &q.from {
            all_paths.push(b.src.clone());
        }
        for eq in &q.where_ {
            all_paths.push(eq.0.clone());
            all_paths.push(eq.1.clone());
        }
        for (_, p) in q.output.paths() {
            all_paths.push(p.clone());
        }
        let mut seen: BTreeSet<Path> = BTreeSet::new();
        let mut out = Vec::new();
        for p in &all_paths {
            for sub in p.subpaths() {
                if let Path::Get(m, k) = sub {
                    if !seen.insert(sub.clone()) {
                        continue;
                    }
                    if !self.has_member(&Path::Dom(m.clone()), k) {
                        out.push((m.as_ref().clone(), k.as_ref().clone()));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcql::parser::parse_query;

    #[test]
    fn membership_and_congruence() {
        let q = parse_query(
            r#"select struct(PN = s) from depts d, d.DProjs s, Proj p
               where s = p.PName and p.CustName = "CitiBank""#,
        )
        .unwrap();
        let mut g = QueryGraph::of_query(&q);
        assert_eq!(g.members.len(), 3);
        assert!(g
            .egraph
            .paths_equal(&Path::var("s"), &Path::var("p").field("PName")));
        assert!(g
            .egraph
            .paths_equal(&Path::var("p").field("CustName"), &Path::str("CitiBank")));
        assert!(!g.egraph.paths_equal(&Path::var("s"), &Path::var("d")));
    }

    #[test]
    fn let_bindings_are_equalities() {
        let q = parse_query("select r.A from let r := I[5]").unwrap();
        let mut g = QueryGraph::of_query(&q);
        assert!(g
            .egraph
            .paths_equal(&Path::var("r"), &Path::root("I").get(Path::int(5))));
        assert!(g.members.is_empty());
    }

    #[test]
    fn guarded_lookup_detection() {
        let q = parse_query("select struct(B = I[x].B) from dom(I) x where x = 5").unwrap();
        let mut g = QueryGraph::of_query(&q);
        assert!(g.unguarded_lookups(&q).is_empty());

        // Guard through congruence: the key is a path equal to the bound
        // dom variable.
        let q2 =
            parse_query("select struct(B = I[r.A].B) from R r, dom(I) x where x = r.A").unwrap();
        let mut g2 = QueryGraph::of_query(&q2);
        assert!(g2.unguarded_lookups(&q2).is_empty());

        let q3 = parse_query("select struct(B = I[r.A].B) from R r").unwrap();
        let mut g3 = QueryGraph::of_query(&q3);
        let unguarded = g3.unguarded_lookups(&q3);
        assert_eq!(unguarded.len(), 1);
        assert_eq!(unguarded[0].0, Path::root("I"));
    }

    #[test]
    fn members_of_groups_by_source_class() {
        let q = parse_query("select x from R x, R y, S z").unwrap();
        let g = QueryGraph::of_query(&q);
        let r_class = {
            let mut eg = g.egraph.clone();
            eg.add_path(&Path::root("R"))
        };
        let vars: Vec<&str> = g
            .members_of(r_class)
            .iter()
            .map(|m| m.var.as_str())
            .collect();
        assert_eq!(vars, vec!["x", "y"]);
    }
}
